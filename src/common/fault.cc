#include "common/fault.h"

#include "common/metrics.h"

namespace fbstream {

FaultRegistry* FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return registry;
}

Status FaultRegistry::Hit(std::string_view site) {
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    // Count hits even for sites nothing is armed against, so a chaos run
    // can report coverage of the sites it chose not to fault.
    sites_[std::string(site)].hits = 1;
    return Status::OK();
  }
  SiteState& s = it->second;
  ++s.hits;

  // One-shot script has priority: it expresses an exact intent ("fail the
  // next write") that must not be preempted by a probabilistic rule.
  if (s.oneshot_remaining > 0) {
    const uint64_t n = s.oneshot_hit++;
    if (n >= s.oneshot_skip) {
      --s.oneshot_remaining;
      return FireLocked(it->first, &s, s.oneshot_code);
    }
  }
  if (s.window_start < s.window_end) {
    Clock* clock = clock_ != nullptr ? clock_ : SystemClock::Get();
    const Micros now = clock->NowMicros();
    if (now >= s.window_start && now < s.window_end) {
      return FireLocked(it->first, &s, s.window_code);
    }
  }
  if (s.probability > 0 && s.rng.Bernoulli(s.probability)) {
    return FireLocked(it->first, &s, s.probability_code);
  }
  return Status::OK();
}

Status FaultRegistry::FireLocked(const std::string& site, SiteState* state,
                                 StatusCode code) {
  ++state->fires;
  // Fires are rare by construction, so a registry lookup per fire is fine
  // (node label = fault site, e.g. "scribe.append").
  MetricsRegistry::Global()->GetCounter("fault.fires", site)->Add();
  const std::string entry = site + "#" + std::to_string(state->hits - 1);
  if (journal_.size() < kJournalCapacity) journal_.push_back(entry);
  return Status(code, "injected fault at " + entry);
}

void FaultRegistry::FailNext(const std::string& site, StatusCode code,
                             uint64_t count, uint64_t skip) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& s = sites_[site];
  s.oneshot_skip = skip;
  s.oneshot_remaining = count;
  s.oneshot_hit = 0;
  s.oneshot_code = code;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::FailWithProbability(const std::string& site, double p,
                                        uint64_t seed, StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& s = sites_[site];
  s.probability = p;
  s.rng = Rng(seed);
  s.probability_code = code;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::SetUnavailableBetween(const std::string& site,
                                          Micros start_micros,
                                          Micros end_micros, StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& s = sites_[site];
  s.window_start = start_micros;
  s.window_end = end_micros;
  s.window_code = code;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::SetClock(Clock* clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = clock;
}

void FaultRegistry::Clear(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  SiteState& s = it->second;
  s.oneshot_remaining = 0;
  s.probability = 0;
  s.window_start = s.window_end = 0;
}

void FaultRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  journal_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

uint64_t FaultRegistry::Hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultRegistry::Fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultRegistry::FiringJournal() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_;
}

}  // namespace fbstream
