#include "common/fault.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <string_view>

#include "common/metrics.h"

namespace fbstream {

FaultRegistry* FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return registry;
}

Status FaultRegistry::Hit(std::string_view site) {
  if (!armed_.load(std::memory_order_relaxed)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    // Count hits even for sites nothing is armed against, so a chaos run
    // can report coverage of the sites it chose not to fault.
    sites_[std::string(site)].hits = 1;
    return Status::OK();
  }
  SiteState& s = it->second;
  ++s.hits;

  // Kill schedule outranks every status rule: it models the process dying
  // at this instruction, so nothing downstream of it can matter.
  if (s.kill_armed && s.kill_hit++ >= s.kill_at) {
    // A spent-marker file records that this kill fired, so a respawned
    // process arming from the same inherited environment skips it instead
    // of crash-looping.
    if (!s.kill_marker.empty()) {
      const int fd = ::open(s.kill_marker.c_str(),
                            O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
      if (fd >= 0) ::close(fd);
    }
    // One line to stderr so a supervisor's log shows *where* the child
    // died, then _exit: no destructors, no stream flushes — the on-disk
    // state is whatever the instrumented layer had made durable.
    const std::string marker = "fbstream: injected kill at " + it->first +
                               "#" + std::to_string(s.hits - 1) + "\n";
    [[maybe_unused]] const ssize_t n =
        ::write(STDERR_FILENO, marker.data(), marker.size());
    ::_exit(kKillExitCode);
  }

  // One-shot script has priority: it expresses an exact intent ("fail the
  // next write") that must not be preempted by a probabilistic rule.
  if (s.oneshot_remaining > 0) {
    const uint64_t n = s.oneshot_hit++;
    if (n >= s.oneshot_skip) {
      --s.oneshot_remaining;
      return FireLocked(it->first, &s, s.oneshot_code);
    }
  }
  if (s.window_start < s.window_end) {
    Clock* clock = clock_ != nullptr ? clock_ : SystemClock::Get();
    const Micros now = clock->NowMicros();
    if (now >= s.window_start && now < s.window_end) {
      return FireLocked(it->first, &s, s.window_code);
    }
  }
  if (s.probability > 0 && s.rng.Bernoulli(s.probability)) {
    return FireLocked(it->first, &s, s.probability_code);
  }
  return Status::OK();
}

Status FaultRegistry::FireLocked(const std::string& site, SiteState* state,
                                 StatusCode code) {
  ++state->fires;
  // Fires are rare by construction, so a registry lookup per fire is fine
  // (node label = fault site, e.g. "scribe.append").
  MetricsRegistry::Global()->GetCounter("fault.fires", site)->Add();
  const std::string entry = site + "#" + std::to_string(state->hits - 1);
  if (journal_.size() < kJournalCapacity) journal_.push_back(entry);
  return Status(code, "injected fault at " + entry);
}

void FaultRegistry::FailNext(const std::string& site, StatusCode code,
                             uint64_t count, uint64_t skip) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& s = sites_[site];
  s.oneshot_skip = skip;
  s.oneshot_remaining = count;
  s.oneshot_hit = 0;
  s.oneshot_code = code;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::FailWithProbability(const std::string& site, double p,
                                        uint64_t seed, StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& s = sites_[site];
  s.probability = p;
  s.rng = Rng(seed);
  s.probability_code = code;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::SetUnavailableBetween(const std::string& site,
                                          Micros start_micros,
                                          Micros end_micros, StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& s = sites_[site];
  s.window_start = start_micros;
  s.window_end = end_micros;
  s.window_code = code;
  armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::ArmKillAt(const std::string& site, uint64_t hit_index,
                              const std::string& marker_path) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& s = sites_[site];
  s.kill_armed = true;
  s.kill_at = hit_index;
  s.kill_hit = 0;
  s.kill_marker = marker_path;
  MetricsRegistry::Global()->GetCounter("fault.kill.armed", site)->Add();
  armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::SetProcessName(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  process_name_ = name;
}

std::string FaultRegistry::process_name() const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!process_name_.empty()) return process_name_;
  }
  const char* env = std::getenv(kProcessNameEnvVar);
  return env != nullptr ? std::string(env) : std::string();
}

bool FaultRegistry::ArmOneKillSpec(std::string_view spec) {
  // Peel the suffixes back to front: "!marker" may contain anything but
  // ';', "@process" may not contain '!' or '@'.
  std::string marker_path;
  const size_t bang = spec.find('!');
  if (bang != std::string_view::npos) {
    marker_path = std::string(spec.substr(bang + 1));
    spec = spec.substr(0, bang);
  }
  std::string process;
  const size_t at = spec.find('@');
  if (at != std::string_view::npos) {
    process = std::string(spec.substr(at + 1));
    spec = spec.substr(0, at);
  }
  const size_t hash = spec.find_last_of('#');
  if (hash == std::string_view::npos || hash == 0 || hash + 1 >= spec.size()) {
    return false;
  }
  uint64_t hit_index = 0;
  for (size_t i = hash + 1; i < spec.size(); ++i) {
    if (spec[i] < '0' || spec[i] > '9') return false;
    hit_index = hit_index * 10 + static_cast<uint64_t>(spec[i] - '0');
  }
  if (!process.empty() && process != process_name()) return false;
  if (!marker_path.empty()) {
    // The kill already fired in an earlier incarnation of this process:
    // the spec is spent.
    struct stat st;
    if (::stat(marker_path.c_str(), &st) == 0) return false;
  }
  ArmKillAt(std::string(spec.substr(0, hash)), hit_index, marker_path);
  return true;
}

bool FaultRegistry::ArmKillFromEnvironment() {
  const char* env = std::getenv(kKillSpecEnvVar);
  if (env == nullptr || *env == '\0') return false;
  std::string_view rest(env);
  bool armed_any = false;
  while (!rest.empty()) {
    const size_t semi = rest.find(';');
    const std::string_view one =
        semi == std::string_view::npos ? rest : rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    if (!one.empty() && ArmOneKillSpec(one)) armed_any = true;
  }
  return armed_any;
}

void FaultRegistry::SetClock(Clock* clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = clock;
}

void FaultRegistry::Clear(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  SiteState& s = it->second;
  s.oneshot_remaining = 0;
  s.probability = 0;
  s.window_start = s.window_end = 0;
  s.kill_armed = false;
}

void FaultRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  journal_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

uint64_t FaultRegistry::Hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultRegistry::Fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultRegistry::FiringJournal() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_;
}

}  // namespace fbstream
