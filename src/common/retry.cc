#include "common/retry.h"

#include <algorithm>

#include "common/metrics.h"

namespace fbstream {

RetryPolicy::RetryPolicy(Clock* clock, RetryOptions options)
    : clock_(clock != nullptr ? clock : SystemClock::Get()),
      options_(options),
      rng_(options.jitter_seed) {}

Micros RetryPolicy::BackoffForRetry(int retry) {
  double backoff = static_cast<double>(options_.initial_backoff_micros);
  for (int i = 0; i < retry; ++i) backoff *= options_.backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(options_.max_backoff_micros));
  if (options_.jitter > 0) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    // Uniform in [1 - jitter, 1 + jitter).
    backoff *= 1.0 + options_.jitter * (2.0 * rng_.NextDouble() - 1.0);
  }
  return std::max<Micros>(0, static_cast<Micros>(backoff));
}

Status RetryPolicy::Run(std::string_view op_name,
                        const std::function<Status()>& op) {
  Status st;
  for (int attempt = 0; attempt < std::max(1, options_.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      // Off the happy path (a retry implies a failure + backoff), so the
      // registry lookup cost is irrelevant. First attempts are deliberately
      // NOT counted here: per-attempt totals stay in the lock-free
      // attempts_/stats() atomics.
      MetricsRegistry::Global()
          ->GetCounter("retry.retries", std::string(op_name))
          ->Add();
      clock_->AdvanceMicros(BackoffForRetry(attempt - 1));
    }
    attempts_.fetch_add(1, std::memory_order_relaxed);
    st = op();
    if (st.ok() || !st.IsRetryable()) return st;
  }
  exhausted_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Global()
      ->GetCounter("retry.exhausted", std::string(op_name))
      ->Add();
  return Status(st.code(), std::string(op_name) + " failed after " +
                               std::to_string(std::max(1, options_.max_attempts)) +
                               " attempts: " + st.message());
}

RetryPolicy::StatsSnapshot RetryPolicy::stats() const {
  StatsSnapshot s;
  s.attempts = attempts_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.exhausted = exhausted_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace fbstream
