#include "common/value.h"

#include <cstdio>
#include <cstdlib>

namespace fbstream {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int64_t Value::AsInt64() const { return std::get<int64_t>(data_); }
double Value::AsDouble() const { return std::get<double>(data_); }
const std::string& Value::AsString() const {
  return std::get<std::string>(data_);
}

int64_t Value::CoerceInt64() const {
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
      return AsInt64();
    case ValueType::kDouble:
      return static_cast<int64_t>(AsDouble());
    case ValueType::kString:
      return strtoll(AsString().c_str(), nullptr, 10);
  }
  return 0;
}

double Value::CoerceDouble() const {
  switch (type()) {
    case ValueType::kNull:
      return 0.0;
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    case ValueType::kString:
      return strtod(AsString().c_str(), nullptr);
  }
  return 0.0;
}

std::string Value::CoerceString() const {
  if (type() == ValueType::kString) return AsString();
  return ToString();
}

int Value::Compare(const Value& other) const {
  const ValueType a = type();
  const ValueType b = other.type();
  const bool a_num = a == ValueType::kInt64 || a == ValueType::kDouble;
  const bool b_num = b == ValueType::kInt64 || b == ValueType::kDouble;
  if (a_num && b_num) {
    if (a == ValueType::kInt64 && b == ValueType::kInt64) {
      const int64_t x = AsInt64();
      const int64_t y = other.AsInt64();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = CoerceDouble();
    const double y = other.CoerceDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a != b) return static_cast<int>(a) < static_cast<int>(b) ? -1 : 1;
  switch (a) {
    case ValueType::kNull:
      return 0;
    case ValueType::kString: {
      const int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;  // Unreachable: numeric cases handled above.
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      char buf[32];
      snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return "";
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    index_.emplace(columns_[i].name, static_cast<int>(i));
  }
}

int Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

namespace {
const Value& NullValue() {
  static const Value* kNull = new Value();
  return *kNull;
}
}  // namespace

const Value& Row::Get(const std::string& name) const {
  if (schema_ == nullptr) return NullValue();
  const int i = schema_->IndexOf(name);
  if (i < 0 || static_cast<size_t>(i) >= values_.size()) return NullValue();
  return values_[i];
}

bool Row::Set(const std::string& name, Value v) {
  if (schema_ == nullptr) return false;
  const int i = schema_->IndexOf(name);
  if (i < 0) return false;
  if (static_cast<size_t>(i) >= values_.size()) {
    values_.resize(schema_->num_columns());
  }
  values_[i] = std::move(v);
  return true;
}

std::string Row::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    if (schema_ != nullptr && i < schema_->num_columns()) {
      out += schema_->column(i).name;
      out += "=";
    }
    out += values_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace fbstream
