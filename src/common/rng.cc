#include "common/rng.h"

namespace fbstream {

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}
}  // namespace

Zipf::Zipf(uint64_t n, double theta) : n_(n), theta_(theta) {
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

uint64_t Zipf::Sample(Rng* rng) const {
  // Gray et al. "Quickly generating billion-record synthetic databases."
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace fbstream
