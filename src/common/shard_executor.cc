#include "common/shard_executor.h"

#include "common/metrics.h"

namespace fbstream {

ShardExecutor::ShardExecutor(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ShardExecutor::~ShardExecutor() { Shutdown(); }

void ShardExecutor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_.notify_all();
  // join() exactly once even when Shutdown races the destructor or another
  // explicit Shutdown call.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (joined_) return;
  joined_ = true;
  for (std::thread& worker : workers_) worker.join();
}

void ShardExecutor::WorkerLoop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain queued work even when stopping: a pending batch's submitter is
      // blocked until every task runs.
      if (queue_.empty()) return;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    item.first();
    if (item.second != nullptr) {
      std::lock_guard<std::mutex> lock(item.second->mu);
      if (--item.second->remaining == 0) item.second->done.notify_all();
    }
  }
}

void ShardExecutor::RunBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  static Counter* batches =
      MetricsRegistry::Global()->GetCounter("stylus.executor.batches");
  static Histogram* batch_latency =
      MetricsRegistry::Global()->GetHistogram("stylus.executor.batch_us");
  batches->Add();
  // Wall time from submission until the last task finishes — the round's
  // critical-path length under the parallel scheduler.
  ScopedLatencyTimer timer(batch_latency);
  auto batch = std::make_shared<Batch>();
  batch->remaining = tasks.size();
  bool run_inline = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // The pool is stopping (or stopped): workers may already have exited,
      // so an enqueue here could wait forever. Run inline instead — the
      // batch contract (every task completed on return) still holds.
      run_inline = true;
    } else {
      for (auto& task : tasks) queue_.emplace_back(std::move(task), batch);
    }
  }
  if (run_inline) {
    // Outside mu_, mirroring Submit(): a task that re-enters this executor
    // must not find the mutex already held by its own thread.
    for (auto& task : tasks) task();
    return;
  }
  work_.notify_all();
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done.wait(lock, [&batch] { return batch->remaining == 0; });
}

void ShardExecutor::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stop_) {
      queue_.emplace_back(std::move(task), nullptr);
      work_.notify_one();
      return;
    }
  }
  task();  // Stopping: no worker is guaranteed to pick it up.
}

}  // namespace fbstream
