#ifndef FBSTREAM_COMMON_LOGGING_H_
#define FBSTREAM_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace fbstream {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped. Tests raise the
// threshold to keep output quiet.
void SetMinLogLevel(LogLevel level);
LogLevel GetMinLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Lets the macro below consume a whole `<<` chain: `&` binds looser than
// `<<`, so the chain is evaluated into the LogMessage stream first.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define FBSTREAM_LOG(level)                                         \
  (static_cast<int>(::fbstream::LogLevel::k##level) <               \
   static_cast<int>(::fbstream::GetMinLogLevel()))                  \
      ? (void)0                                                     \
      : ::fbstream::internal::Voidify() &                           \
            ::fbstream::internal::LogMessage(                       \
                ::fbstream::LogLevel::k##level, __FILE__, __LINE__) \
                .stream()

#define FBSTREAM_CHECK(cond)                                           \
  if (!(cond)) {                                                        \
    fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, \
            #cond);                                                     \
    abort();                                                            \
  }

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_LOGGING_H_
