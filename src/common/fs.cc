#include "common/fs.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace fbstream {

namespace stdfs = std::filesystem;

Status WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("open for write: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IoError("write: " + path);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  FBSTREAM_RETURN_IF_ERROR(WriteFile(tmp, data));
  return RenameFile(tmp, path);
}

Status AppendToFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IoError("open for append: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IoError("append: " + path);
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("open for read: " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

Status CreateDirs(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(path, ec);
  if (ec) return Status::IoError("mkdir " + path + ": " + ec.message());
  return Status::OK();
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  stdfs::remove_all(path, ec);
  if (ec) return Status::IoError("rm -r " + path + ": " + ec.message());
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  stdfs::remove(path, ec);
  if (ec) return Status::IoError("rm " + path + ": " + ec.message());
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  stdfs::rename(from, to, ec);
  if (ec) {
    return Status::IoError("rename " + from + " -> " + to + ": " +
                           ec.message());
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return stdfs::exists(path, ec);
}

StatusOr<std::vector<std::string>> ListDir(const std::string& path) {
  std::error_code ec;
  std::vector<std::string> names;
  for (const auto& entry : stdfs::directory_iterator(path, ec)) {
    names.push_back(entry.path().filename().string());
  }
  if (ec) return Status::IoError("ls " + path + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

StatusOr<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  const uint64_t size = stdfs::file_size(path, ec);
  if (ec) return Status::IoError("stat " + path + ": " + ec.message());
  return size;
}

std::string MakeTempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  const std::string base = stdfs::temp_directory_path().string();
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const std::string dir = base + "/" + prefix + "." +
                            std::to_string(getpid()) + "." +
                            std::to_string(counter.fetch_add(1));
    std::error_code ec;
    if (stdfs::create_directories(dir, ec) && !ec) return dir;
  }
  return base + "/" + prefix + ".fallback";
}

}  // namespace fbstream
