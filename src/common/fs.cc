#include "common/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace fbstream {

namespace stdfs = std::filesystem;

Status WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("open for write: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) return Status::IoError("write: " + path);
  return Status::OK();
}

// Writes `data` to `path` through a file descriptor and fsyncs it before
// closing, so e.g. the rename that follows can only publish durable bytes.
Status WriteFileDurable(const std::string& path, const std::string& data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError("open for write: " + path);
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      ::close(fd);
      return Status::IoError("write: " + path);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IoError("fsync: " + path);
  }
  if (::close(fd) != 0) return Status::IoError("close: " + path);
  return Status::OK();
}

// Fsyncs a directory so a just-created or just-renamed entry survives power
// loss. Best-effort: some filesystems reject O_RDONLY on directories.
void SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  SyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
}

Status WriteFileAtomic(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  Status st = WriteFileDurable(tmp, data);
  if (st.ok()) st = RenameFile(tmp, path);
  if (!st.ok()) {
    RemoveFile(tmp);  // Best-effort: never leave a stale temp behind.
    return st;
  }
  SyncParentDir(path);
  return Status::OK();
}

Status AppendToFile(const std::string& path, const std::string& data,
                    bool sync) {
  if (!sync) {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) return Status::IoError("open for append: " + path);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) return Status::IoError("append: " + path);
    return Status::OK();
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Status::IoError("open for append: " + path);
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      ::close(fd);
      return Status::IoError("append: " + path);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IoError("fsync: " + path);
  }
  if (::close(fd) != 0) return Status::IoError("close: " + path);
  return Status::OK();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  std::error_code ec;
  stdfs::resize_file(path, size, ec);
  if (ec) {
    return Status::IoError("truncate " + path + ": " + ec.message());
  }
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("open for read: " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

Status CreateDirs(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(path, ec);
  if (ec) return Status::IoError("mkdir " + path + ": " + ec.message());
  return Status::OK();
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  stdfs::remove_all(path, ec);
  if (ec) return Status::IoError("rm -r " + path + ": " + ec.message());
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  stdfs::remove(path, ec);
  if (ec) return Status::IoError("rm " + path + ": " + ec.message());
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  stdfs::rename(from, to, ec);
  if (ec) {
    return Status::IoError("rename " + from + " -> " + to + ": " +
                           ec.message());
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return stdfs::exists(path, ec);
}

StatusOr<std::vector<std::string>> ListDir(const std::string& path) {
  std::error_code ec;
  std::vector<std::string> names;
  for (const auto& entry : stdfs::directory_iterator(path, ec)) {
    names.push_back(entry.path().filename().string());
  }
  if (ec) return Status::IoError("ls " + path + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

StatusOr<uint64_t> FileSize(const std::string& path) {
  std::error_code ec;
  const uint64_t size = stdfs::file_size(path, ec);
  if (ec) return Status::IoError("stat " + path + ": " + ec.message());
  return size;
}

std::string MakeTempDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  const std::string base = stdfs::temp_directory_path().string();
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const std::string dir = base + "/" + prefix + "." +
                            std::to_string(getpid()) + "." +
                            std::to_string(counter.fetch_add(1));
    std::error_code ec;
    if (stdfs::create_directories(dir, ec) && !ec) return dir;
  }
  return base + "/" + prefix + ".fallback";
}

}  // namespace fbstream
