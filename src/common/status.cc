#include "common/status.h"

namespace fbstream {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace fbstream
