#ifndef FBSTREAM_COMMON_CLOCK_H_
#define FBSTREAM_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace fbstream {

// All engine timestamps are microseconds since the unix epoch.
using Micros = int64_t;

constexpr Micros kMicrosPerSecond = 1'000'000;
constexpr Micros kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr Micros kMicrosPerHour = 60 * kMicrosPerMinute;
constexpr Micros kMicrosPerDay = 24 * kMicrosPerHour;

// Time source abstraction. The stream runtime never reads the system clock
// directly; tests and the Section 5.3 scheduling experiment substitute a
// SimClock to get deterministic, fast-forwardable time.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros NowMicros() const = 0;
  // Advances time by `micros`: sleeps on a real clock, jumps on a simulated
  // one.
  virtual void AdvanceMicros(Micros micros) = 0;
};

class SystemClock : public Clock {
 public:
  Micros NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }
  void AdvanceMicros(Micros micros) override;

  // Process-wide instance (the default for production-style configs).
  static SystemClock* Get();
};

// Deterministic, manually advanced clock. Reads and advances are atomic so
// a driver thread can fast-forward time while pipeline worker threads read
// it (the parallel shard scheduler polls NowMicros from every worker).
class SimClock : public Clock {
 public:
  explicit SimClock(Micros start = 0) : now_(start) {}
  Micros NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void AdvanceMicros(Micros micros) override {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }
  void SetMicros(Micros now) { now_.store(now, std::memory_order_relaxed); }

 private:
  std::atomic<Micros> now_;
};

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_CLOCK_H_
