#ifndef FBSTREAM_COMMON_HLL_H_
#define FBSTREAM_COMMON_HLL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fbstream {

// HyperLogLog approximate distinct counter (Flajolet et al. 2007, with the
// small-range linear-counting correction). The paper's Section 6.5 notes that
// "good approximate unique counts (computed with HyperLogLog) are often as
// actionable as exact numbers"; Puma exposes this as APPROX_COUNT_DISTINCT.
//
// HyperLogLog sketches form a monoid (empty sketch identity, register-wise
// max as the associative merge), so they compose with Stylus monoid state and
// Puma map-side partial aggregation.
class HyperLogLog {
 public:
  // `precision` selects 2^precision registers; 12 gives ~1.6% typical error.
  explicit HyperLogLog(int precision = 12);

  void Add(std::string_view item);
  void AddHash(uint64_t hash);

  // Register-wise max; both sketches must share the precision.
  void Merge(const HyperLogLog& other);

  double Estimate() const;

  int precision() const { return precision_; }

  // Serialization for checkpoints and batch shuffle.
  std::string Serialize() const;
  static HyperLogLog Deserialize(std::string_view data);

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_HLL_H_
