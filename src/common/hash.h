#ifndef FBSTREAM_COMMON_HASH_H_
#define FBSTREAM_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace fbstream {

// 64-bit FNV-1a. Used for Scribe bucket sharding, ZippyDB shard routing, and
// HyperLogLog. Stable across runs so sharding decisions are reproducible.
inline uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0) {
  uint64_t h = 14695981039346656037ULL ^ seed;
  for (const char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Finalizer from MurmurHash3 for mixing integer keys.
inline uint64_t MixHash64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_HASH_H_
