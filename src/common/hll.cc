#include "common/hll.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace fbstream {

HyperLogLog::HyperLogLog(int precision)
    : precision_(precision), registers_(size_t{1} << precision, 0) {}

// FNV-1a alone has weak avalanche in the high bits (which select the
// register), so finalize with a strong mixer.
void HyperLogLog::Add(std::string_view item) {
  AddHash(MixHash64(Fnv1a64(item)));
}

void HyperLogLog::AddHash(uint64_t hash) {
  const size_t index = hash >> (64 - precision_);
  const uint64_t rest = hash << precision_;
  // Rank = position of the leftmost 1-bit in the remaining bits, 1-based.
  const uint8_t rank =
      rest == 0 ? static_cast<uint8_t>(64 - precision_ + 1)
                : static_cast<uint8_t>(__builtin_clzll(rest) + 1);
  registers_[index] = std::max(registers_[index], rank);
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) return;
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  if (registers_.size() == 16) {
    alpha = 0.673;
  } else if (registers_.size() == 32) {
    alpha = 0.697;
  } else if (registers_.size() == 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }
  double sum = 0;
  size_t zeros = 0;
  for (const uint8_t r : registers_) {
    sum += std::ldexp(1.0, -r);
    if (r == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;
  if (estimate <= 2.5 * m && zeros > 0) {
    // Linear counting for small cardinalities.
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

std::string HyperLogLog::Serialize() const {
  std::string out;
  out.push_back(static_cast<char>(precision_));
  out.append(reinterpret_cast<const char*>(registers_.data()),
             registers_.size());
  return out;
}

HyperLogLog HyperLogLog::Deserialize(std::string_view data) {
  if (data.empty()) return HyperLogLog();
  const int precision = data[0];
  HyperLogLog hll(precision);
  const size_t expected = size_t{1} << precision;
  if (data.size() - 1 >= expected) {
    for (size_t i = 0; i < expected; ++i) {
      hll.registers_[i] = static_cast<uint8_t>(data[1 + i]);
    }
  }
  return hll;
}

}  // namespace fbstream
