#include "common/shutdown.h"

#include <csignal>

#include <atomic>

namespace fbstream {

namespace {
// Lock-free and async-signal-safe on every supported platform; the handler
// touches nothing else.
std::atomic<bool> g_shutdown_requested{false};

void HandleSignal(int /*signum*/) {
  g_shutdown_requested.store(true, std::memory_order_release);
}
}  // namespace

bool ShutdownRequested() {
  return g_shutdown_requested.load(std::memory_order_acquire);
}

void RequestShutdown() {
  g_shutdown_requested.store(true, std::memory_order_release);
}

void ResetShutdown() {
  g_shutdown_requested.store(false, std::memory_order_release);
}

void InstallShutdownSignalHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = HandleSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;  // Don't turn in-flight I/O into EINTR churn.
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

}  // namespace fbstream
