#ifndef FBSTREAM_COMMON_FS_H_
#define FBSTREAM_COMMON_FS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace fbstream {

// Thin wrappers over the local filesystem used by the storage engines
// (LSM WAL/SST files, Scribe segments, Hive partitions, simulated HDFS
// blocks). All paths are plain strings; errors surface as Status.

Status WriteFile(const std::string& path, const std::string& data);
// Writes to `path + ".tmp"` then renames, so readers never observe a torn
// file. Used for checkpoints and SST publication.
Status WriteFileAtomic(const std::string& path, const std::string& data);
Status AppendToFile(const std::string& path, const std::string& data);
StatusOr<std::string> ReadFileToString(const std::string& path);
Status CreateDirs(const std::string& path);
Status RemoveAll(const std::string& path);
Status RemoveFile(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);
bool FileExists(const std::string& path);
StatusOr<std::vector<std::string>> ListDir(const std::string& path);
StatusOr<uint64_t> FileSize(const std::string& path);

// Creates a unique fresh directory under the system temp dir with the given
// prefix; used by tests and benches.
std::string MakeTempDir(const std::string& prefix);

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_FS_H_
