#ifndef FBSTREAM_COMMON_FS_H_
#define FBSTREAM_COMMON_FS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace fbstream {

// Thin wrappers over the local filesystem used by the storage engines
// (LSM WAL/SST files, Scribe segments, Hive partitions, simulated HDFS
// blocks). All paths are plain strings; errors surface as Status.

Status WriteFile(const std::string& path, const std::string& data);
// Like WriteFile, but through a file descriptor with an fsync before close:
// the bytes are on disk when this returns. Does NOT sync the parent
// directory — pair with SyncDir when the file itself is new (HDFS block
// writes, WAL creation), or use WriteFileAtomic which does both.
Status WriteFileDurable(const std::string& path, const std::string& data);
// Crash-safe replace: writes to `path + ".tmp"`, fsyncs the data, renames
// over `path`, and fsyncs the parent directory — so a crash at any point
// leaves either the old intact file or the new intact file, never a torn
// one, even across power loss (a plain rename can be reordered before the
// data blocks reach disk). A failed attempt removes its temp file. Used for
// checkpoints, SST publication, and the HDFS namespace image.
Status WriteFileAtomic(const std::string& path, const std::string& data);
// With sync=true the append goes through O_APPEND + fsync, so the record is
// durable when this returns (a crash immediately after cannot lose it, only
// tear a later one). The default buffered path matches the previous
// behavior: cheap, durable only against process death, not power loss.
Status AppendToFile(const std::string& path, const std::string& data,
                    bool sync = false);
// Fsyncs a directory so entries created/renamed inside it survive power
// loss. Best-effort: some filesystems reject opening directories.
void SyncDir(const std::string& dir);
// SyncDir on the directory containing `path`.
void SyncParentDir(const std::string& path);
// Shrinks the file to `size` bytes (segment replay uses this to cut a
// corrupt tail so later appends continue from an intact record boundary).
Status TruncateFile(const std::string& path, uint64_t size);
StatusOr<std::string> ReadFileToString(const std::string& path);
Status CreateDirs(const std::string& path);
Status RemoveAll(const std::string& path);
Status RemoveFile(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);
bool FileExists(const std::string& path);
StatusOr<std::vector<std::string>> ListDir(const std::string& path);
StatusOr<uint64_t> FileSize(const std::string& path);

// Creates a unique fresh directory under the system temp dir with the given
// prefix; used by tests and benches.
std::string MakeTempDir(const std::string& prefix);

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_FS_H_
