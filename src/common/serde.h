#ifndef FBSTREAM_COMMON_SERDE_H_
#define FBSTREAM_COMMON_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/value.h"

namespace fbstream {

// Low-level append/parse helpers for the binary wire and checkpoint formats.
// Integers use LEB128 varints; strings are length-prefixed.
void PutVarint64(std::string* dst, uint64_t v);
bool GetVarint64(std::string_view* src, uint64_t* v);
void PutFixed64(std::string* dst, uint64_t v);
bool GetFixed64(std::string_view* src, uint64_t* v);
void PutLengthPrefixed(std::string* dst, std::string_view s);
bool GetLengthPrefixed(std::string_view* src, std::string_view* s);

// Zigzag-encodes signed integers so small negatives stay small.
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// Binary encoding of a single Value (type tag + payload).
void EncodeValue(const Value& v, std::string* dst);
Status DecodeValue(std::string_view* src, Value* v);

// Binary row codec used for checkpoints and state snapshots: a compact
// column-count-prefixed sequence of encoded values. The schema is not
// embedded; the reader must supply it.
class BinaryRowCodec {
 public:
  explicit BinaryRowCodec(SchemaPtr schema) : schema_(std::move(schema)) {}

  std::string Encode(const Row& row) const;
  StatusOr<Row> Decode(std::string_view data) const;

 private:
  SchemaPtr schema_;
};

// Text row codec used for Scribe payloads: tab-separated cells, one row per
// message, numbers rendered in decimal. Deserialization re-parses every cell
// according to the schema; this is deliberately the CPU-heavy path the paper's
// Figure 9 experiment stresses ("deserialization is the performance
// bottleneck").
class TextRowCodec {
 public:
  explicit TextRowCodec(SchemaPtr schema) : schema_(std::move(schema)) {}

  std::string Encode(const Row& row) const;
  StatusOr<Row> Decode(std::string_view data) const;

  const SchemaPtr& schema() const { return schema_; }

 private:
  SchemaPtr schema_;
};

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_SERDE_H_
