#include "common/serde.h"

#include <cstring>

namespace fbstream {

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

bool GetVarint64(std::string_view* src, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !src->empty(); shift += 7) {
    const uint8_t byte = static_cast<uint8_t>(src->front());
    src->remove_prefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

bool GetFixed64(std::string_view* src, uint64_t* v) {
  if (src->size() < 8) return false;
  memcpy(v, src->data(), 8);
  src->remove_prefix(8);
  return true;
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

bool GetLengthPrefixed(std::string_view* src, std::string_view* s) {
  uint64_t len = 0;
  if (!GetVarint64(src, &len)) return false;
  if (src->size() < len) return false;
  *s = src->substr(0, len);
  src->remove_prefix(len);
  return true;
}

void EncodeValue(const Value& v, std::string* dst) {
  dst->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      PutVarint64(dst, ZigzagEncode(v.AsInt64()));
      break;
    case ValueType::kDouble: {
      uint64_t bits = 0;
      const double d = v.AsDouble();
      memcpy(&bits, &d, 8);
      PutFixed64(dst, bits);
      break;
    }
    case ValueType::kString:
      PutLengthPrefixed(dst, v.AsString());
      break;
  }
}

Status DecodeValue(std::string_view* src, Value* v) {
  if (src->empty()) return Status::Corruption("value: empty input");
  const auto type = static_cast<ValueType>(src->front());
  src->remove_prefix(1);
  switch (type) {
    case ValueType::kNull:
      *v = Value();
      return Status::OK();
    case ValueType::kInt64: {
      uint64_t raw = 0;
      if (!GetVarint64(src, &raw)) {
        return Status::Corruption("value: bad varint");
      }
      *v = Value(ZigzagDecode(raw));
      return Status::OK();
    }
    case ValueType::kDouble: {
      uint64_t bits = 0;
      if (!GetFixed64(src, &bits)) {
        return Status::Corruption("value: bad double");
      }
      double d = 0;
      memcpy(&d, &bits, 8);
      *v = Value(d);
      return Status::OK();
    }
    case ValueType::kString: {
      std::string_view s;
      if (!GetLengthPrefixed(src, &s)) {
        return Status::Corruption("value: bad string");
      }
      *v = Value(std::string(s));
      return Status::OK();
    }
  }
  return Status::Corruption("value: unknown type tag");
}

std::string BinaryRowCodec::Encode(const Row& row) const {
  std::string out;
  PutVarint64(&out, row.num_columns());
  for (size_t i = 0; i < row.num_columns(); ++i) {
    EncodeValue(row.Get(i), &out);
  }
  return out;
}

StatusOr<Row> BinaryRowCodec::Decode(std::string_view data) const {
  uint64_t n = 0;
  if (!GetVarint64(&data, &n)) return Status::Corruption("row: bad count");
  // Each encoded value needs at least one byte; a count beyond that is
  // corrupt (and must not drive a huge reserve()).
  if (n > data.size()) return Status::Corruption("row: count too large");
  std::vector<Value> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Value v;
    FBSTREAM_RETURN_IF_ERROR(DecodeValue(&data, &v));
    values.push_back(std::move(v));
  }
  return Row(schema_, std::move(values));
}

std::string TextRowCodec::Encode(const Row& row) const {
  std::string out;
  for (size_t i = 0; i < row.num_columns(); ++i) {
    if (i > 0) out.push_back('\t');
    if (!row.Get(i).is_null()) out += row.Get(i).ToString();
  }
  return out;
}

StatusOr<Row> TextRowCodec::Decode(std::string_view data) const {
  std::vector<Value> values;
  values.reserve(schema_->num_columns());
  size_t col = 0;
  size_t start = 0;
  const size_t n = data.size();
  for (size_t pos = 0; pos <= n && col < schema_->num_columns(); ++pos) {
    if (pos == n || data[pos] == '\t') {
      const std::string_view cell = data.substr(start, pos - start);
      switch (schema_->column(col).type) {
        case ValueType::kInt64: {
          // Hand-rolled parse avoids a temporary std::string per cell.
          int64_t v = 0;
          bool neg = false;
          size_t i = 0;
          if (i < cell.size() && (cell[i] == '-' || cell[i] == '+')) {
            neg = cell[i] == '-';
            ++i;
          }
          for (; i < cell.size(); ++i) {
            const char c = cell[i];
            if (c < '0' || c > '9') break;
            v = v * 10 + (c - '0');
          }
          values.emplace_back(neg ? -v : v);
          break;
        }
        case ValueType::kDouble: {
          const std::string tmp(cell);
          values.emplace_back(strtod(tmp.c_str(), nullptr));
          break;
        }
        case ValueType::kString:
        case ValueType::kNull:
          values.emplace_back(std::string(cell));
          break;
      }
      ++col;
      start = pos + 1;
    }
  }
  while (values.size() < schema_->num_columns()) values.emplace_back();
  return Row(schema_, std::move(values));
}

}  // namespace fbstream
