#include "common/clock.h"

#include <thread>

namespace fbstream {

void SystemClock::AdvanceMicros(Micros micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

SystemClock* SystemClock::Get() {
  static SystemClock* clock = new SystemClock();
  return clock;
}

}  // namespace fbstream
