#ifndef FBSTREAM_COMMON_STATUS_H_
#define FBSTREAM_COMMON_STATUS_H_

#include <cassert>
#include <ostream>
#include <string>
#include <utility>

namespace fbstream {

// Error codes used across fbstream. Modeled after absl::StatusCode; the
// library does not throw exceptions across API boundaries.
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kIoError = 3,
  kFailedPrecondition = 4,
  kUnavailable = 5,
  kAlreadyExists = 6,
  kAborted = 7,
  kOutOfRange = 8,
  kCorruption = 9,
  kUnimplemented = 10,
  kInternal = 11,
  kDeadlineExceeded = 12,
  kCancelled = 13,
};

// Returns a short name like "NotFound" for diagnostics.
const char* StatusCodeToString(StatusCode code);

// A success-or-error result for operations that return no value.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  // True for transient conditions a caller may retry with backoff
  // (RetryPolicy consults this): the peer was unavailable or the attempt
  // timed out. Everything else is permanent or a bug.
  bool IsRetryable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kDeadlineExceeded;
  }

  // Human-readable "Code: message" form.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// A value-or-error result. On error, the value must not be accessed.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

// Propagates a non-OK status to the caller.
#define FBSTREAM_RETURN_IF_ERROR(expr)                 \
  do {                                                 \
    ::fbstream::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                         \
  } while (0)

#define FBSTREAM_CONCAT_INNER(a, b) a##b
#define FBSTREAM_CONCAT(a, b) FBSTREAM_CONCAT_INNER(a, b)

// Evaluates a StatusOr expression; on error returns the status, otherwise
// moves the value into `lhs`.
#define FBSTREAM_ASSIGN_OR_RETURN(lhs, expr)                          \
  auto FBSTREAM_CONCAT(_sor_, __LINE__) = (expr);                     \
  if (!FBSTREAM_CONCAT(_sor_, __LINE__).ok())                         \
    return FBSTREAM_CONCAT(_sor_, __LINE__).status();                 \
  lhs = std::move(FBSTREAM_CONCAT(_sor_, __LINE__)).value()

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_STATUS_H_
