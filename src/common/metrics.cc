#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <set>

namespace fbstream {

const char* MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

int Histogram::BucketFor(uint64_t value) {
  const int width = std::bit_width(value);
  return width < kNumBuckets ? width : kNumBuckets - 1;
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= kNumBuckets - 1) return ~uint64_t{0};
  return (uint64_t{1} << bucket) - 1;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile among `count` samples, 1-based.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * double(count) + 0.5));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // The top bucket's nominal bound is 2^64-1; report the observed max
      // instead so outliers don't render as infinity.
      const uint64_t bound = BucketUpperBound(i);
      return std::min(bound, max);
    }
  }
  return max;
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::Reset() {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& node, int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[Key{name, node, shard}];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& node, int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[Key{name, node, shard}];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& node, int shard) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[Key{name, node, shard}];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, counter] : counters_) {
    MetricSnapshot s;
    s.name = key.name;
    s.node = key.node;
    s.shard = key.shard;
    s.kind = MetricKind::kCounter;
    s.value = static_cast<double>(counter->value());
    s.count = counter->value();
    out.push_back(std::move(s));
  }
  for (const auto& [key, gauge] : gauges_) {
    MetricSnapshot s;
    s.name = key.name;
    s.node = key.node;
    s.shard = key.shard;
    s.kind = MetricKind::kGauge;
    s.value = static_cast<double>(gauge->value());
    out.push_back(std::move(s));
  }
  for (const auto& [key, histogram] : histograms_) {
    const Histogram::Snapshot h = histogram->GetSnapshot();
    MetricSnapshot s;
    s.name = key.name;
    s.node = key.node;
    s.shard = key.shard;
    s.kind = MetricKind::kHistogram;
    s.value = static_cast<double>(h.sum);
    s.count = h.count;
    s.p50 = static_cast<double>(h.Percentile(0.5));
    s.p99 = static_cast<double>(h.Percentile(0.99));
    s.max = static_cast<double>(h.max);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              if (a.node != b.node) return a.node < b.node;
              return a.shard < b.shard;
            });
  return out;
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<std::string> names;
  for (const auto& [key, unused] : counters_) names.insert(key.name);
  for (const auto& [key, unused] : gauges_) names.insert(key.name);
  for (const auto& [key, unused] : histograms_) names.insert(key.name);
  return std::vector<std::string>(names.begin(), names.end());
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, counter] : counters_) counter->Reset();
  for (auto& [key, gauge] : gauges_) gauge->Reset();
  for (auto& [key, histogram] : histograms_) histogram->Reset();
}

Tracer* Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return tracer;
}

void Tracer::SetSampleEvery(uint64_t n) {
  sample_every_.store(n, std::memory_order_relaxed);
}

uint64_t Tracer::MaybeStartTrace() {
  const uint64_t every = sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return 0;
  const uint64_t n = appends_.fetch_add(1, std::memory_order_relaxed);
  if (n % every != 0) return 0;
  return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::RecordSpan(SpanRecord span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxBufferedSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(span));
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::DrainSpans() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.swap(spans_);
  return out;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sample_every_.store(0, std::memory_order_relaxed);
  appends_.store(0, std::memory_order_relaxed);
  next_trace_id_.store(1, std::memory_order_relaxed);
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  spans_.clear();
}

ScopedLatencyTimer::ScopedLatencyTimer(Histogram* histogram)
    : histogram_(histogram),
      start_ns_(std::chrono::steady_clock::now().time_since_epoch().count()) {}

uint64_t ScopedLatencyTimer::ElapsedMicros() const {
  const int64_t now_ns =
      std::chrono::steady_clock::now().time_since_epoch().count();
  const int64_t elapsed = now_ns - start_ns_;
  return elapsed > 0 ? static_cast<uint64_t>(elapsed) / 1000 : 0;
}

ScopedLatencyTimer::~ScopedLatencyTimer() {
  if (histogram_ != nullptr) histogram_->Record(ElapsedMicros());
}

}  // namespace fbstream
