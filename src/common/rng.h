#ifndef FBSTREAM_COMMON_RNG_H_
#define FBSTREAM_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace fbstream {

// Small, fast, seedable PRNG (xorshift128+). Workload generators use this so
// every experiment is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    s0_ = seed ^ 0x9e3779b97f4a7c15ULL;
    s1_ = (seed << 21) | 0x2545f4914f6cdd1dULL;
    for (int i = 0; i < 8; ++i) Next64();
  }

  uint64_t Next64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next64() % n; }

  // Uniform in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / (1ULL << 53));
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Lowercase ASCII string of length `len`.
  std::string NextString(size_t len) {
    std::string s(len, 'a');
    for (size_t i = 0; i < len; ++i) {
      s[i] = static_cast<char>('a' + Uniform(26));
    }
    return s;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

// Zipfian rank sampler over [0, n): rank 0 is the most popular item. Used by
// workload generators to model skewed topic/event popularity.
class Zipf {
 public:
  Zipf(uint64_t n, double theta = 0.99);

  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_RNG_H_
