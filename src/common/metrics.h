#ifndef FBSTREAM_COMMON_METRICS_H_
#define FBSTREAM_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace fbstream {

// Process-wide observability substrate (paper §5 Scuba / §6.4): named
// counters, gauges, and fixed-bucket latency histograms, registered once and
// updated lock-free on the hot path. The paper's operational lesson is that
// Facebook monitors its streaming apps *with the same realtime stack* — lag
// dashboards and alerts are Scuba queries over Scribe-ingested telemetry.
// This registry is the source of that telemetry: every instrumented layer
// (Scribe appends, LSM flushes, HDFS backups, Stylus rounds) bumps metrics
// here, and core/telemetry.h periodically flattens the registry into rows on
// a dedicated Scribe category that Scuba tails (see OBSERVABILITY.md).
//
// Naming scheme: "<module>.<subsystem>.<metric>[_<unit>]", lowercase, dots
// between levels — e.g. "scribe.append.messages", "lsm.flush.latency_us".
// Metrics are additionally labeled by (node, shard): node holds the logical
// instance (a pipeline node name, a Scribe category, a fault site), shard
// the bucket index, or -1 for unsharded metrics. The full inventory lives in
// OBSERVABILITY.md and is spot-checked against the registry by a test.
//
// Threading / lifetime contract:
//  - Registration (Get*) takes the registry mutex; instrumented call sites
//    look a metric up once and cache the pointer (member field or
//    function-local static).
//  - Updates (Add / Set / Record) are single atomic RMW ops — safe from any
//    thread, cheap enough for release hot paths.
//  - Registered metrics are immortal: ResetValues() zeroes them but never
//    deallocates, so cached pointers can't dangle (mirrors FaultRegistry's
//    arm/Reset contract).

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindToString(MetricKind kind);

// Monotonic event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket latency histogram: power-of-two buckets (bucket i counts
// values whose bit width is i, i.e. [2^(i-1), 2^i); bucket 0 counts zeros),
// covering 1µs .. ~2^38µs (~3 days) with 40 buckets. Recording is three
// relaxed atomic RMWs plus a CAS loop for the max — no locks, so concurrent
// recorders never serialize (the -DFBSTREAM_TSAN concurrency test hammers
// one histogram from many threads).
class Histogram {
 public:
  static constexpr int kNumBuckets = 40;

  void Record(uint64_t value);

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t buckets[kNumBuckets] = {};

    double mean() const {
      return count > 0 ? static_cast<double>(sum) / double(count) : 0;
    }
    // Upper bound of the bucket containing the q-quantile rank (exact to
    // within one power of two; good enough for "where did the seconds go").
    uint64_t Percentile(double q) const;
  };
  // Buckets/count/sum are read individually (each exact); a snapshot racing
  // concurrent Record calls is cross-field best-effort, like BackupHealth.
  Snapshot GetSnapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

  // Bucket index for a value (std::bit_width, capped); exposed for tests.
  static int BucketFor(uint64_t value);
  // Inclusive upper bound of bucket i.
  static uint64_t BucketUpperBound(int bucket);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// One flattened registry entry, the unit the telemetry exporter turns into a
// Scuba row.
struct MetricSnapshot {
  std::string name;
  std::string node;
  int shard = -1;
  MetricKind kind = MetricKind::kCounter;
  double value = 0;     // Counter/gauge value; histogram sum.
  uint64_t count = 0;   // Histogram sample count (counters: == value).
  double p50 = 0;       // Histograms only.
  double p99 = 0;
  double max = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The instance every built-in instrumentation site uses.
  static MetricsRegistry* Global();

  // Returns the metric registered under (name, node, shard), creating it on
  // first use. The returned pointer is valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name, const std::string& node = "",
                      int shard = -1);
  Gauge* GetGauge(const std::string& name, const std::string& node = "",
                  int shard = -1);
  Histogram* GetHistogram(const std::string& name,
                          const std::string& node = "", int shard = -1);

  // Flattens every registered metric, ordered by (name, node, shard).
  std::vector<MetricSnapshot> Snapshot() const;

  // Sorted distinct metric names (no labels) across all kinds — what the
  // OBSERVABILITY.md inventory is checked against.
  std::vector<std::string> Names() const;

  // Zeroes every metric value; registered objects (and cached pointers to
  // them) stay valid. Benches and tests call this between phases.
  void ResetValues();

 private:
  struct Key {
    std::string name;
    std::string node;
    int shard;
    bool operator<(const Key& other) const {
      if (name != other.name) return name < other.name;
      if (node != other.node) return node < other.node;
      return shard < other.shard;
    }
  };

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

// Lightweight event tracing (§4.2.1: "we can identify connection points
// where seconds of latency are introduced"). A trace id is minted for a
// sampled fraction of Scribe appends, carried on the message through engine
// nodes to storage sinks, and each hop records a span. The telemetry
// exporter drains spans into the same Scuba table as the metrics, so the
// per-hop breakdown (Scribe batching vs processing vs storage commit) is a
// slice-and-dice query away.
struct SpanRecord {
  uint64_t trace_id = 0;
  std::string hop;   // "scribe.deliver", "engine.process", "storage.commit".
  std::string node;  // Pipeline node that recorded the span.
  int shard = -1;
  Micros start_time = 0;       // Stream-time at span start.
  Micros duration_micros = 0;  // See OBSERVABILITY.md for hop time bases.
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer* Global();

  // Sampling policy: every Nth append starts a trace; 0 (default) disables
  // tracing entirely — the hot-path cost is then one relaxed atomic load.
  void SetSampleEvery(uint64_t n);
  bool enabled() const {
    return sample_every_.load(std::memory_order_relaxed) > 0;
  }

  // Called at Scribe append: returns a fresh trace id for sampled messages,
  // 0 otherwise.
  uint64_t MaybeStartTrace();

  // Buffers a span; drops (and counts) beyond kMaxBufferedSpans so a stalled
  // exporter can't grow memory without bound.
  static constexpr size_t kMaxBufferedSpans = 1 << 16;
  void RecordSpan(SpanRecord span);

  // Removes and returns all buffered spans (exporter hot loop).
  std::vector<SpanRecord> DrainSpans();

  uint64_t spans_recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t spans_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // Disables sampling and forgets buffered spans and counters.
  void Reset();

 private:
  std::atomic<uint64_t> sample_every_{0};
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

// RAII latency probe: records elapsed wall time (steady clock) into a
// histogram at scope exit. Null histogram = no-op.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram);
  ~ScopedLatencyTimer();

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

  // Elapsed micros so far (monotonic).
  uint64_t ElapsedMicros() const;

 private:
  Histogram* histogram_;
  int64_t start_ns_;
};

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_METRICS_H_
