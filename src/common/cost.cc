#include "common/cost.h"

#include <chrono>

namespace fbstream {

void SpinWaitMicros(double micros) {
  if (micros <= 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(static_cast<int64_t>(micros * 1000.0));
  while (std::chrono::steady_clock::now() < deadline) {
    // Busy wait; precision matters more than efficiency here.
  }
}

namespace {

// Estimates loop iterations per microsecond once per process.
double CalibrateItersPerMicro() {
  volatile uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  constexpr uint64_t kIters = 20'000'000;
  uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (uint64_t i = 0; i < kIters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  sink = x;
  (void)sink;
  const double micros =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - start)
          .count();
  return micros > 0 ? static_cast<double>(kIters) / micros : 1e3;
}

}  // namespace

void BurnCpuMicros(double micros) {
  if (micros <= 0) return;
  static const double kItersPerMicro = CalibrateItersPerMicro();
  const uint64_t iters = static_cast<uint64_t>(micros * kItersPerMicro);
  volatile uint64_t sink = 0;
  uint64_t x = 0x2545f4914f6cdd1dULL;
  for (uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  sink = x;
  (void)sink;
}

std::string OpStats::ToString() const {
  return "reads=" + std::to_string(reads.load()) +
         " writes=" + std::to_string(writes.load()) +
         " merges=" + std::to_string(merges.load()) +
         " bytes=" + std::to_string(bytes.load());
}

}  // namespace fbstream
