#ifndef FBSTREAM_COMMON_FAULT_H_
#define FBSTREAM_COMMON_FAULT_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"

namespace fbstream {

// Process-wide fault-injection substrate (paper §4.4.2: the system is
// designed so that "if HDFS is not available for writes, processing
// continues without remote backup copies" — exercising that requires
// injecting unavailability on demand).
//
// Every layer that can fail declares a named *fault site* and consults the
// registry at that point:
//
//   FBSTREAM_RETURN_IF_ERROR(FaultRegistry::Global()->Hit("hdfs.write"));
//
// Sites currently wired: "hdfs.write", "hdfs.read", "hdfs.block.write",
// "hdfs.fsimage.write", "scribe.append", "scribe.segment.append",
// "lsm.wal.append", "lsm.wal.sync", "lsm.flush", "lsm.compaction",
// "zippydb.write", "checkpoint.write.state", "checkpoint.write.offset",
// "recovery.offsets.write".
//
// Tests and the chaos harness arm rules against sites:
//   - FailNext: scripted one-shot faults (fail hits [skip, skip+count)).
//   - FailWithProbability: Bernoulli faults from a per-site seeded RNG, so
//     a single-threaded driver gets an identical firing sequence for the
//     same seed (the determinism the chaos soak test asserts).
//   - SetUnavailableBetween: a timed unavailability window evaluated
//     against the registry clock (a SimClock in tests), modeling a planned
//     or measured outage.
//   - ArmKillAt: hard process death — when the site's hit counter reaches
//     the scheduled index the process calls _exit(137) at the instrumented
//     point, with no destructors, no flushes, no atexit handlers: exactly
//     what SIGKILL leaves behind. The crash-recovery harness arms this in a
//     forked child (directly or via the FBSTREAM_KILL_SPEC environment
//     variable and ArmKillFromEnvironment), so each child dies
//     deterministically at a chosen site while the supervisor survives.
//
// When no rule is armed the registry is a single relaxed atomic load per
// hit, cheap enough to leave in release hot paths. Hit counters and the
// firing journal are maintained only while rules are armed (since the
// first Arm* call after the last Reset).
//
// Thread-safe: rules, counters, and the journal are mutex-guarded. Under a
// multi-threaded driver the per-site RNG draws interleave in scheduling
// order, so firing *sequences* are only deterministic for single-threaded
// drivers; per-site hit/fire totals remain exact either way.
class FaultRegistry {
 public:
  FaultRegistry() = default;
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  // The instance every built-in fault site consults.
  static FaultRegistry* Global();

  // Consulted by fault sites. Returns OK, or the armed fault's status with
  // a message like "injected fault at hdfs.write (hit 7)".
  Status Hit(std::string_view site);

  // Fails hits number [skip, skip+count) of `site` (0-indexed from the
  // moment of arming). Replaces any previous one-shot rule for the site.
  void FailNext(const std::string& site, StatusCode code = StatusCode::kUnavailable,
                uint64_t count = 1, uint64_t skip = 0);

  // Every hit fails independently with probability `p`, drawn from a
  // per-site RNG seeded with `seed`. p <= 0 disarms.
  void FailWithProbability(const std::string& site, double p, uint64_t seed,
                           StatusCode code = StatusCode::kUnavailable);

  // Hits fail while `start_micros <= now < end_micros` on the registry
  // clock. Equal bounds disarm.
  void SetUnavailableBetween(const std::string& site, Micros start_micros,
                             Micros end_micros,
                             StatusCode code = StatusCode::kUnavailable);

  // Process exit code used by kill mode (the conventional SIGKILL code).
  static constexpr int kKillExitCode = 137;
  // Environment variable ArmKillFromEnvironment reads. Grammar:
  //
  //   spec (";" spec)*
  //   spec = <site> "#" <hit> ["@" <process>] ["!" <marker_path>]
  //
  // e.g. "lsm.wal.append#3" — die at the fourth consultation of that site;
  // "scribe.append#2@worker.alpha!/tmp/k1" — only in the process named
  // worker.alpha (SetProcessName / FBSTREAM_PROCESS_NAME), and only if
  // /tmp/k1 does not exist yet; the marker file is created at the moment of
  // death. The marker makes an exec-armed kill one-shot: environment
  // variables survive a supervisor's respawn (unlike a fork-armed driver
  // that clears them), so without the marker a respawned worker would die
  // at the same site forever — a crash loop, not a crash.
  static constexpr char kKillSpecEnvVar[] = "FBSTREAM_KILL_SPEC";
  // Names this process for "@process"-targeted kill specs. Read by
  // ArmKillFromEnvironment when SetProcessName was not called.
  static constexpr char kProcessNameEnvVar[] = "FBSTREAM_PROCESS_NAME";

  // Arms hard process death: hit number `hit_index` of `site` (0-indexed
  // from the moment of arming) writes a one-line marker to stderr and calls
  // _exit(137). Supervisors recognize the death by the exit code. If
  // `marker_path` is nonempty, the file is created (O_CREAT|O_EXCL)
  // immediately before death, so later arming attempts can tell the kill
  // already fired.
  void ArmKillAt(const std::string& site, uint64_t hit_index,
                 const std::string& marker_path = "");

  // Arms kills from FBSTREAM_KILL_SPEC if it is set. A forked *or exec'd*
  // child inherits the supervisor's environment, so this is how both the
  // fork-based chaos driver and supervisor-spawned worker binaries pick up
  // their crash schedule. Specs targeted at a different "@process", specs
  // whose "!marker" file already exists (the kill is spent), and malformed
  // specs are skipped. Returns true if at least one kill was armed.
  bool ArmKillFromEnvironment();

  // Identity for "@process" kill-spec targeting. Overrides the
  // FBSTREAM_PROCESS_NAME environment variable.
  void SetProcessName(const std::string& name);
  std::string process_name() const;

  // Clock used to evaluate unavailability windows. Defaults to the system
  // clock; tests install a SimClock. Pass nullptr to restore the default.
  void SetClock(Clock* clock);

  // Removes every rule for one site (its counters survive until Reset).
  void Clear(const std::string& site);
  // Removes all rules, counters, and the journal; keeps the clock.
  void Reset();

  // Total consultations / injected failures for a site since the last
  // Reset (counted only while rules are armed).
  uint64_t Hits(const std::string& site) const;
  uint64_t Fires(const std::string& site) const;

  // Firing journal: "<site>#<hit>" per injected fault, in firing order.
  // Bounded at kJournalCapacity entries; later fires only bump Fires().
  static constexpr size_t kJournalCapacity = 1 << 16;
  std::vector<std::string> FiringJournal() const;

 private:
  struct SiteState {
    uint64_t hits = 0;
    uint64_t fires = 0;
    // One-shot script.
    uint64_t oneshot_skip = 0;
    uint64_t oneshot_remaining = 0;
    uint64_t oneshot_hit = 0;  // Hits seen since FailNext armed.
    StatusCode oneshot_code = StatusCode::kUnavailable;
    // Probabilistic rule.
    double probability = 0;
    Rng rng{0};
    StatusCode probability_code = StatusCode::kUnavailable;
    // Unavailability window.
    Micros window_start = 0;
    Micros window_end = 0;
    StatusCode window_code = StatusCode::kUnavailable;
    // Kill schedule (_exit(137) at hit kill_at).
    bool kill_armed = false;
    uint64_t kill_at = 0;
    uint64_t kill_hit = 0;  // Hits seen since ArmKillAt.
    std::string kill_marker;  // Created right before death if nonempty.
  };

  Status FireLocked(const std::string& site, SiteState* state,
                    StatusCode code);
  // Parses and (maybe) arms one "site#hit[@process][!marker]" spec.
  bool ArmOneKillSpec(std::string_view spec);

  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};
  Clock* clock_ = nullptr;  // nullptr = SystemClock::Get().
  std::string process_name_;
  std::map<std::string, SiteState, std::less<>> sites_;
  std::vector<std::string> journal_;
};

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_FAULT_H_
