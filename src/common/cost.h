#ifndef FBSTREAM_COMMON_COST_H_
#define FBSTREAM_COMMON_COST_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace fbstream {

// Busy-waits for approximately `micros` wall-clock microseconds. The
// simulated-distribution layers (ZippyDB replication, HDFS copies, Scribe
// delivery latency) use this to model network and fsync latency precisely at
// microsecond scale, which sleep() cannot do. A zero or negative argument is
// a no-op.
void SpinWaitMicros(double micros);

// Burns approximately `micros` of pure CPU (no clock reads in the inner
// loop) to model compute-bound work such as interpreted-language
// deserialization in the Figure 9 experiment. Calibrated once per process.
void BurnCpuMicros(double micros);

// Thread-safe counters for modeled remote operations, used by benches to
// report op counts alongside throughput.
struct OpStats {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> merges{0};
  std::atomic<uint64_t> bytes{0};

  void Reset() {
    reads = 0;
    writes = 0;
    merges = 0;
    bytes = 0;
  }
  std::string ToString() const;
};

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_COST_H_
