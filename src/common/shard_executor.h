#ifndef FBSTREAM_COMMON_SHARD_EXECUTOR_H_
#define FBSTREAM_COMMON_SHARD_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace fbstream {

// Fixed worker pool that runs batches of independent shard tasks.
//
// The paper's scaling argument (§4.2.2, §6.4) rests on Scribe buckets
// decoupling node shards: every shard owns its bucket cursor, its checkpoint
// store, and its processor state, so shards of one node can run concurrently
// with no coordination beyond the thread-safe Scribe bus. The executor is
// the primitive that exploits that: Pipeline::RunRound dispatches one task
// per alive shard and waits for the batch, node by node, preserving the DAG
// order between nodes while shards within a node run fully in parallel.
// Continuous mode uses the same pool through Submit() to offload checkpoint
// commits (§4.2 processing overlap). The query side reuses it too: Scuba
// fans block scans of concurrent queries across one shared pool (it lives
// in common/ because core links the storage engines, not the other way
// around).
//
// RunBatch / Submit may be called concurrently from multiple threads; each
// batch tracks its own completion. Tasks must not recursively call RunBatch
// on the same executor (workers do not re-enter the pool).
//
// Teardown contract: Shutdown() (or the destructor) stops the pool. Queued
// work is never dropped — workers drain the queue before exiting, and a
// RunBatch/Submit that races or follows Shutdown runs its tasks inline on
// the submitting thread instead of enqueueing, so no submitter can block on
// a batch no worker will ever pick up. The stop flag and the queue share one
// mutex, which closes the missed-notify window: an enqueue either
// happens-before stop (workers see a non-empty queue and drain it) or
// observes stop and goes inline.
class ShardExecutor {
 public:
  explicit ShardExecutor(int num_threads);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  // Runs every task on the pool and blocks until all have completed. Tasks
  // within a batch must be independent of each other. After Shutdown, runs
  // the tasks inline (still blocking until all have completed).
  void RunBatch(std::vector<std::function<void()>> tasks);

  // Enqueues one task with no completion barrier (continuous-mode commit
  // offload; callers that need the result signal through state captured in
  // the closure). After Shutdown, runs the task inline before returning.
  void Submit(std::function<void()> task);

  // Stops the pool: drains already-queued work, then joins every worker.
  // Idempotent; called by the destructor. Safe to race with RunBatch/Submit
  // from other threads (see teardown contract above).
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  // Shared between the batch submitter and the workers executing its tasks.
  // Null for Submit() tasks, which have no barrier.
  struct Batch {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining = 0;
  };
  using Item = std::pair<std::function<void()>, std::shared_ptr<Batch>>;

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_;
  std::deque<Item> queue_;
  bool stop_ = false;
  bool joined_ = false;  // Guarded by join_mu_; workers joined exactly once.
  std::mutex join_mu_;
  std::vector<std::thread> workers_;
};

// The executor predates the query-layer reuse and grew up under
// core/stylus; existing engine code refers to it through this alias.
namespace stylus {
using fbstream::ShardExecutor;
}  // namespace stylus

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_SHARD_EXECUTOR_H_
