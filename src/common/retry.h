#ifndef FBSTREAM_COMMON_RETRY_H_
#define FBSTREAM_COMMON_RETRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"

namespace fbstream {

// Exponential backoff with jitter for transient failures. Only statuses for
// which Status::IsRetryable() holds (Unavailable, DeadlineExceeded) are
// retried — everything else reflects a bug or a permanent condition and
// surfaces immediately.
struct RetryOptions {
  int max_attempts = 3;                     // Total tries, including the first.
  Micros initial_backoff_micros = 1'000;    // Sleep before the first retry.
  double backoff_multiplier = 2.0;
  Micros max_backoff_micros = 1'000'000;    // Cap per sleep.
  double jitter = 0.1;                      // +/- fraction of the backoff.
  uint64_t jitter_seed = 42;                // Jitter RNG seed (determinism).
};

// Runs an operation under a retry budget. Sleeps go through the injectable
// Clock: a SystemClock really sleeps, a SimClock jumps — so backoff
// sequencing is unit-testable and chaos runs with simulated time are
// deterministic and instant.
//
// Thread-safe: concurrent Run calls share the stats counters (atomics) and
// draw jitter from one mutex-guarded RNG.
class RetryPolicy {
 public:
  // `clock` may be null, meaning SystemClock::Get().
  explicit RetryPolicy(Clock* clock, RetryOptions options = {});

  RetryPolicy(const RetryPolicy&) = delete;
  RetryPolicy& operator=(const RetryPolicy&) = delete;

  // Runs `op` up to max_attempts times, sleeping between attempts. Returns
  // the first success, the first non-retryable error, or the last retryable
  // error annotated with the attempt count.
  Status Run(std::string_view op_name, const std::function<Status()>& op);

  // The sleep before retry number `retry` (0-based), jitter included; each
  // call draws one jitter sample. Exposed for backoff-sequencing tests.
  Micros BackoffForRetry(int retry);

  struct StatsSnapshot {
    uint64_t attempts = 0;   // Operations started (first tries + retries).
    uint64_t retries = 0;    // Sleeps taken.
    uint64_t exhausted = 0;  // Runs that failed after the full budget.
  };
  StatsSnapshot stats() const;

  const RetryOptions& options() const { return options_; }

 private:
  Clock* clock_;
  RetryOptions options_;
  std::mutex rng_mu_;
  Rng rng_;
  std::atomic<uint64_t> attempts_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> exhausted_{0};
};

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_RETRY_H_
