#ifndef FBSTREAM_COMMON_VALUE_H_
#define FBSTREAM_COMMON_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace fbstream {

enum class ValueType { kNull = 0, kInt64 = 1, kDouble = 2, kString = 3 };

const char* ValueTypeToString(ValueType type);

// A dynamically typed scalar: the cell type for rows flowing through Scribe,
// the stream engines, and the analysis stores.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  Value(int64_t v) : data_(v) {}              // NOLINT
  Value(int v) : data_(int64_t{v}) {}         // NOLINT
  Value(double v) : data_(v) {}               // NOLINT
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  // Lossy conversions used by expression evaluation: numbers convert between
  // each other; strings parse; null converts to 0 / 0.0 / "".
  int64_t CoerceInt64() const;
  double CoerceDouble() const;
  std::string CoerceString() const;

  // Total order: null < int/double (numeric order) < string (lexical).
  // Mixed int/double compare numerically.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

struct Column {
  std::string name;
  ValueType type = ValueType::kString;
};

// An ordered list of named, typed columns shared by all rows of a stream or
// table. Schemas are immutable once constructed and shared via shared_ptr.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  static std::shared_ptr<const Schema> Make(std::vector<Column> columns) {
    return std::make_shared<const Schema>(std::move(columns));
  }

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  // Returns the index of `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;
  bool Has(const std::string& name) const { return IndexOf(name) >= 0; }

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
  std::map<std::string, int> index_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

// One event/record: a schema plus one Value per column.
class Row {
 public:
  Row() = default;
  Row(SchemaPtr schema, std::vector<Value> values)
      : schema_(std::move(schema)), values_(std::move(values)) {}
  explicit Row(SchemaPtr schema)
      : schema_(std::move(schema)), values_(schema_->num_columns()) {}

  const SchemaPtr& schema() const { return schema_; }
  size_t num_columns() const { return values_.size(); }

  const Value& Get(size_t i) const { return values_[i]; }
  Value& Mutable(size_t i) { return values_[i]; }
  void Set(size_t i, Value v) { values_[i] = std::move(v); }

  // Named access; returns a shared null Value if the column is absent.
  const Value& Get(const std::string& name) const;
  bool Set(const std::string& name, Value v);

  const std::vector<Value>& values() const { return values_; }
  // Destructively takes the values; for ingest paths that scatter a row
  // into columnar storage. Leaves the row empty.
  std::vector<Value> TakeValues() { return std::move(values_); }

  bool operator==(const Row& other) const { return values_ == other.values_; }

  std::string ToString() const;

 private:
  SchemaPtr schema_;
  std::vector<Value> values_;
};

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_VALUE_H_
