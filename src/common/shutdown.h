#ifndef FBSTREAM_COMMON_SHUTDOWN_H_
#define FBSTREAM_COMMON_SHUTDOWN_H_

namespace fbstream {

// Cooperative graceful-shutdown flag, the soft counterpart to the fault
// registry's kill mode. A SIGTERM (or SIGINT) flips one process-wide atomic
// from an async-signal-safe handler; long-running drivers poll it at safe
// points — the pipeline between node batches, benches between phases — and
// drain instead of dying mid-write: the ShardExecutor finishes its queued
// shard batch, LSM destructors seal the group commit and join the
// background thread, and the next start-up needs no torn-tail repair.
//
// This is deliberately NOT a cancellation token plumbed through every call:
// the unit of work that must not be torn is a shard's RunOnce (ending in a
// checkpoint), so the check sits above that granularity.

// True once a shutdown has been requested (signal or RequestShutdown).
bool ShutdownRequested();

// Programmatic trigger, equivalent to receiving SIGTERM. Async-signal-safe.
void RequestShutdown();

// Re-arms after a drain; tests and supervisors that reuse the process call
// this between runs.
void ResetShutdown();

// Installs SIGTERM + SIGINT handlers that call RequestShutdown. Idempotent.
// The previous handlers are replaced (the flag is the only delivery
// mechanism; drivers poll, nothing re-raises).
void InstallShutdownSignalHandlers();

}  // namespace fbstream

#endif  // FBSTREAM_COMMON_SHUTDOWN_H_
