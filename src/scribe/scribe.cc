#include "scribe/scribe.h"

#include <algorithm>

#include "common/fault.h"
#include "common/fs.h"
#include "common/metrics.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/serde.h"

namespace fbstream::scribe {

Bucket::Bucket(std::string dir, bool persist, bool fsync_appends)
    : dir_(std::move(dir)), persist_(persist), fsync_appends_(fsync_appends) {
  if (persist_) {
    const Status st = CreateDirs(dir_);
    if (!st.ok()) {
      FBSTREAM_LOG(Warning) << "scribe bucket dir: " << st;
      persist_ = false;
    }
  }
}

std::string Bucket::SegmentPath(uint64_t base_sequence) const {
  char buf[40];
  snprintf(buf, sizeof(buf), "/segment-%012llu.log",
           static_cast<unsigned long long>(base_sequence));
  return dir_ + buf;
}

uint64_t Bucket::Append(const std::string& payload, Micros now,
                        uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Message m;
  m.sequence = base_sequence_ + messages_.size();
  m.write_time = now;
  m.payload = payload;
  m.trace_id = trace_id;
  bytes_ += payload.size();
  if (persist_) PersistAppendLocked(m);
  messages_.push_back(std::move(m));
  return base_sequence_ + messages_.size() - 1;
}

void Bucket::PersistAppendLocked(const Message& m) {
  // Kill-mode crash point: the process can die mid-append, leaving a torn
  // record at the segment tail for RecoverFromDisk to truncate.
  const Status kill = FaultRegistry::Global()->Hit("scribe.segment.append");
  if (!kill.ok()) {
    FBSTREAM_LOG(Warning) << "scribe persist: " << kill;
    return;
  }
  // Roll the active segment when full (or on first append).
  if (segments_.empty() || segments_.back().messages >= kSegmentMessages) {
    segments_.push_back(
        SegmentMeta{m.sequence, SegmentPath(m.sequence), m.write_time, 0});
    // The new segment file is born durable: its directory entry is synced
    // once the first record lands (below, when fsync_appends_), or lazily
    // by the next WriteFileAtomic in the directory otherwise.
    if (fsync_appends_) SyncDir(dir_);
  }
  SegmentMeta& active = segments_.back();
  std::string record;
  PutVarint64(&record, m.sequence);
  PutVarint64(&record, static_cast<uint64_t>(m.write_time));
  PutLengthPrefixed(&record, m.payload);
  // Trace id rides after the payload. Pre-tracing segments simply lack the
  // trailing varint (recovery treats it as optional), so old segments stay
  // readable and the record checksum still covers the whole body.
  PutVarint64(&record, m.trace_id);
  // Framed as length + checksum + body (same contract as lsm/wal.h): a
  // torn or bit-flipped tail is detected on replay instead of decoding as
  // garbage messages.
  std::string framed;
  PutVarint64(&framed, record.size());
  PutFixed64(&framed, Fnv1a64(record));
  framed += record;
  // Batch-boundary durability: with fsync_appends the record is on disk
  // before the append is acknowledged to the producer.
  const Status st = AppendToFile(active.path, framed, fsync_appends_);
  if (!st.ok()) FBSTREAM_LOG(Warning) << "scribe persist: " << st;
  ++active.messages;
  active.newest_time = std::max(active.newest_time, m.write_time);
}

size_t Bucket::Read(uint64_t from_sequence, size_t max_messages, Micros now,
                    Micros delivery_latency, std::vector<Message>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t seq = std::max(from_sequence, base_sequence_);
  size_t count = 0;
  while (count < max_messages && seq < base_sequence_ + messages_.size()) {
    const Message& m = messages_[seq - base_sequence_];
    if (m.write_time + delivery_latency > now) break;  // Not yet delivered.
    out->push_back(m);
    ++seq;
    ++count;
  }
  return count;
}

void Bucket::TrimBefore(Micros horizon) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t drop = 0;
  while (drop < messages_.size() && messages_[drop].write_time < horizon) {
    bytes_ -= messages_[drop].payload.size();
    ++drop;
  }
  if (drop > 0) {
    messages_.erase(messages_.begin(),
                    messages_.begin() + static_cast<ptrdiff_t>(drop));
    base_sequence_ += drop;
  }
  // Delete fully expired *sealed* segments from disk (the active segment —
  // the last one — always survives).
  while (segments_.size() > 1 && segments_.front().newest_time < horizon) {
    const Status st = RemoveFile(segments_.front().path);
    if (!st.ok()) FBSTREAM_LOG(Warning) << "scribe segment gc: " << st;
    segments_.erase(segments_.begin());
  }
}

uint64_t Bucket::next_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_sequence_ + messages_.size();
}

uint64_t Bucket::oldest_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_sequence_;
}

uint64_t Bucket::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

size_t Bucket::NumSegmentFiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

Status Bucket::RecoverFromDisk() {
  if (!persist_) return Status::OK();
  auto listing = ListDir(dir_);
  if (!listing.ok()) return Status::OK();  // Fresh bucket.
  std::lock_guard<std::mutex> lock(mu_);
  messages_.clear();
  segments_.clear();
  bytes_ = 0;
  bool first = true;
  bool tail_truncated = false;
  // ListDir sorts lexicographically; the zero-padded base sequence in the
  // file name makes that the append order.
  for (const std::string& name : *listing) {
    if (name.compare(0, 8, "segment-") != 0) continue;
    const std::string path = dir_ + "/" + name;
    if (tail_truncated) {
      // Everything past a corrupt record is untrusted (and would break the
      // bucket's contiguous sequence numbering); drop later segments so the
      // on-disk log matches the recovered state.
      FBSTREAM_LOG(Warning) << "scribe recover: dropping post-corruption "
                            << "segment " << path;
      const Status st = RemoveFile(path);
      if (!st.ok()) FBSTREAM_LOG(Warning) << "scribe recover: " << st;
      continue;
    }
    FBSTREAM_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
    std::string_view view(data);
    SegmentMeta meta;
    meta.path = path;
    bool segment_first = true;
    while (!view.empty()) {
      // Offset of this record's frame, for truncation if it proves corrupt.
      const uint64_t record_start = data.size() - view.size();
      uint64_t len = 0;
      uint64_t checksum = 0;
      uint64_t seq = 0;
      uint64_t wt = 0;
      std::string_view payload;
      std::string_view body;
      bool ok = GetVarint64(&view, &len) && GetFixed64(&view, &checksum) &&
                view.size() >= len;
      if (ok) {
        body = view.substr(0, len);
        view.remove_prefix(len);
        ok = Fnv1a64(body) == checksum;
      }
      uint64_t trace_id = 0;
      if (ok) {
        std::string_view cursor = body;
        ok = GetVarint64(&cursor, &seq) && GetVarint64(&cursor, &wt) &&
             GetLengthPrefixed(&cursor, &payload);
        // Optional trailing trace id (absent in pre-tracing segments).
        if (ok && !cursor.empty()) GetVarint64(&cursor, &trace_id);
      }
      if (!ok) {
        // Torn or corrupt record (crash mid-append, bit rot): truncate the
        // segment back to its intact prefix and continue from there —
        // everything before the bad record is preserved, and the next
        // append lands on a clean record boundary instead of after garbage.
        FBSTREAM_LOG(Warning)
            << "scribe recover: corrupt record in " << path << " at offset "
            << record_start << "; truncating";
        const Status st = TruncateFile(path, record_start);
        if (!st.ok()) FBSTREAM_LOG(Warning) << "scribe recover: " << st;
        tail_truncated = true;
        break;
      }
      if (first) {
        base_sequence_ = seq;
        first = false;
      }
      if (segment_first) {
        meta.base_sequence = seq;
        segment_first = false;
      }
      Message m;
      m.sequence = seq;
      m.write_time = static_cast<Micros>(wt);
      m.payload = std::string(payload);
      m.trace_id = trace_id;
      bytes_ += m.payload.size();
      meta.newest_time = std::max(meta.newest_time, m.write_time);
      ++meta.messages;
      messages_.push_back(std::move(m));
    }
    if (meta.messages > 0) segments_.push_back(std::move(meta));
  }
  return Status::OK();
}

Category::Category(CategoryConfig config, std::string root_dir)
    : config_(std::move(config)),
      root_dir_(std::move(root_dir)),
      append_messages_(MetricsRegistry::Global()->GetCounter(
          "scribe.append.messages", config_.name)),
      append_bytes_(MetricsRegistry::Global()->GetCounter(
          "scribe.append.bytes", config_.name)),
      append_latency_(MetricsRegistry::Global()->GetHistogram(
          "scribe.append.latency_us", config_.name)),
      read_messages_(MetricsRegistry::Global()->GetCounter(
          "scribe.read.messages", config_.name)),
      read_batches_(MetricsRegistry::Global()->GetCounter(
          "scribe.read.batches", config_.name)),
      active_buckets_(config_.num_buckets) {
  for (int i = 0; i < config_.num_buckets; ++i) {
    buckets_.push_back(std::make_unique<Bucket>(
        root_dir_ + "/" + config_.name + "/bucket-" + std::to_string(i),
        config_.persist_to_disk, config_.fsync_appends));
  }
}

CategoryConfig Category::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

int Category::num_buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_buckets_;
}

Bucket* Category::bucket(int i) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i < 0 || static_cast<size_t>(i) >= buckets_.size()) return nullptr;
  return buckets_[i].get();
}

const Bucket* Category::bucket(int i) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (i < 0 || static_cast<size_t>(i) >= buckets_.size()) return nullptr;
  return buckets_[i].get();
}

Status Category::SetNumBuckets(int n) {
  if (n <= 0) return Status::InvalidArgument("num_buckets must be positive");
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<size_t>(n) > buckets_.size()) {
    const int i = static_cast<int>(buckets_.size());
    buckets_.push_back(std::make_unique<Bucket>(
        root_dir_ + "/" + config_.name + "/bucket-" + std::to_string(i),
        config_.persist_to_disk, config_.fsync_appends));
  }
  active_buckets_ = n;
  config_.num_buckets = n;
  return Status::OK();
}

namespace {
RetryOptions DefaultAppendRetry() {
  RetryOptions options;
  options.max_attempts = 3;
  options.initial_backoff_micros = 500;
  options.max_backoff_micros = 50'000;
  return options;
}
}  // namespace

Scribe::Scribe(Clock* clock, std::string root_dir)
    : clock_(clock),
      root_dir_(std::move(root_dir)),
      retry_(std::make_unique<RetryPolicy>(clock, DefaultAppendRetry())) {}

void Scribe::SetRetryOptions(const RetryOptions& options) {
  retry_ = std::make_unique<RetryPolicy>(clock_, options);
}

Status Scribe::CreateCategory(const CategoryConfig& config) {
  if (config.name.empty()) {
    return Status::InvalidArgument("category name must not be empty");
  }
  if (config.num_buckets <= 0) {
    return Status::InvalidArgument("num_buckets must be positive");
  }
  if (config.persist_to_disk && root_dir_.empty()) {
    return Status::InvalidArgument(
        "persist_to_disk requires a Scribe root directory");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (categories_.count(config.name) > 0) {
    return Status::AlreadyExists("category " + config.name);
  }
  auto category = std::make_unique<Category>(config, root_dir_);
  if (config.persist_to_disk) {
    for (int i = 0; i < config.num_buckets; ++i) {
      FBSTREAM_RETURN_IF_ERROR(category->bucket(i)->RecoverFromDisk());
    }
  }
  categories_.emplace(config.name, std::move(category));
  return Status::OK();
}

bool Scribe::HasCategory(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return categories_.count(name) > 0;
}

StatusOr<CategoryConfig> Scribe::GetConfig(const std::string& name) const {
  Category* c = Find(name);
  if (c == nullptr) return Status::NotFound("category " + name);
  return c->config();
}

Status Scribe::SetNumBuckets(const std::string& category, int n) {
  Category* c = Find(category);
  if (c == nullptr) return Status::NotFound("category " + category);
  return c->SetNumBuckets(n);
}

Category* Scribe::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = categories_.find(name);
  return it == categories_.end() ? nullptr : it->second.get();
}

Status Scribe::Write(const std::string& category, int bucket,
                     const std::string& payload) {
  Category* c = Find(category);
  if (c == nullptr) return Status::NotFound("category " + category);
  Bucket* b = c->bucket(bucket);
  if (b == nullptr || bucket >= c->num_buckets()) {
    return Status::OutOfRange("bucket " + std::to_string(bucket) + " of " +
                              category);
  }
  // Sampled appends mint a trace id here — the start of the event's journey
  // through the stack (§4.2.1).
  const uint64_t trace_id = Tracer::Global()->MaybeStartTrace();
  // Latency includes retry backoff: the histogram reports what a producer
  // actually experiences, not just the happy-path append.
  ScopedLatencyTimer timer(c->append_latency());
  // A transient transport fault fails the append *before* the message is
  // durable, so a retried attempt cannot duplicate it.
  const Status st = retry_->Run("scribe.append", [&] {
    FBSTREAM_RETURN_IF_ERROR(FaultRegistry::Global()->Hit("scribe.append"));
    b->Append(payload, clock_->NowMicros(), trace_id);
    return Status::OK();
  });
  if (st.ok()) {
    c->append_messages()->Add();
    c->append_bytes()->Add(payload.size());
  }
  return st;
}

Status Scribe::WriteSharded(const std::string& category,
                            const std::string& shard_key,
                            const std::string& payload) {
  Category* c = Find(category);
  if (c == nullptr) return Status::NotFound("category " + category);
  const int n = c->num_buckets();
  const int bucket = static_cast<int>(Fnv1a64(shard_key) % uint64_t(n));
  return Write(category, bucket, payload);
}

StatusOr<std::vector<Message>> Scribe::Read(const std::string& category,
                                            int bucket,
                                            uint64_t from_sequence,
                                            size_t max_messages) const {
  Category* c = Find(category);
  if (c == nullptr) return Status::NotFound("category " + category);
  const Bucket* b = c->bucket(bucket);
  if (b == nullptr) {
    return Status::OutOfRange("bucket " + std::to_string(bucket) + " of " +
                              category);
  }
  std::vector<Message> out;
  b->Read(from_sequence, max_messages, clock_->NowMicros(),
          c->config().delivery_latency_micros, &out);
  c->read_batches()->Add();
  c->read_messages()->Add(out.size());
  return out;
}

StatusOr<uint64_t> Scribe::NextSequence(const std::string& category,
                                        int bucket) const {
  Category* c = Find(category);
  if (c == nullptr) return Status::NotFound("category " + category);
  const Bucket* b = c->bucket(bucket);
  if (b == nullptr) {
    return Status::OutOfRange("bucket " + std::to_string(bucket) + " of " +
                              category);
  }
  return b->next_sequence();
}

void Scribe::TrimExpired() {
  std::vector<Category*> cats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : categories_) cats.push_back(c.get());
  }
  const Micros now = clock_->NowMicros();
  for (Category* c : cats) {
    const Micros horizon = now - c->config().retention_micros;
    for (int i = 0; i < c->num_buckets(); ++i) {
      Bucket* b = c->bucket(i);
      if (b != nullptr) b->TrimBefore(horizon);
    }
  }
}

StatusOr<uint64_t> Scribe::TotalBytes(const std::string& category) const {
  Category* c = Find(category);
  if (c == nullptr) return Status::NotFound("category " + category);
  uint64_t total = 0;
  for (int i = 0; i < c->num_buckets(); ++i) {
    const Bucket* b = c->bucket(i);
    if (b != nullptr) total += b->total_bytes();
  }
  return total;
}

int Scribe::NumBuckets(const std::string& category) const {
  Category* c = Find(category);
  return c == nullptr ? 0 : c->num_buckets();
}

Tailer::Tailer(Scribe* scribe, std::string category, int bucket,
               uint64_t start_sequence)
    : scribe_(scribe),
      category_(std::move(category)),
      bucket_(bucket),
      offset_(start_sequence) {}

std::vector<Message> Tailer::Poll(size_t max_messages) {
  auto result = scribe_->Read(category_, bucket_, offset(), max_messages);
  if (!result.ok()) return {};
  std::vector<Message> messages = std::move(result).value();
  if (!messages.empty()) {
    Seek(messages.back().sequence + 1);
  }
  return messages;
}

uint64_t Tailer::LagMessages() const {
  auto next = scribe_->NextSequence(category_, bucket_);
  if (!next.ok()) return 0;
  const uint64_t at = offset();
  return next.value() > at ? next.value() - at : 0;
}

}  // namespace fbstream::scribe
