#ifndef FBSTREAM_SCRIBE_REMOTE_H_
#define FBSTREAM_SCRIBE_REMOTE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/status.h"
#include "scribe/scribe.h"

// Socket transport for the Scribe bus (distributed mode). A `scribed`
// broker process owns the durable categories and runs a ScribeServer in
// front of its in-process Scribe; node processes hold a RemoteScribe — a
// drop-in `Scribe` subclass — and append/tail over localhost TCP.
//
// Wire protocol: every frame is
//
//     u32 LE body_length | u64 LE Fnv1a64(body) | body
//
// where body = u8 opcode + serde-encoded fields. Responses echo the request
// opcode followed by varint status code + length-prefixed status message +
// opcode-specific payload. Frames larger than kMaxFrameBytes or with a
// checksum mismatch are protocol violations: the connection is closed and
// the error surfaces as non-retryable Corruption. Transport-level failures
// (refused / reset / closed / timed out) surface as retryable Unavailable
// or DeadlineExceeded, and the client transparently reconnects with
// exponential backoff under its RetryPolicy.
//
// Appends are idempotent across retries: each Write/WriteSharded carries a
// (client guid, monotone token) pair; the broker remembers the last token
// applied per guid and acks duplicates without re-appending. The dedup
// check, the append, and recording the token happen under a per-guid lock,
// so a retry racing its own slow original (client timed out mid-apply,
// reconnected, resent) blocks until the original lands and is then acked
// as a duplicate. A retry after a lost ack therefore cannot double-append
// — the transport preserves the exactly-once contract the chaos harness
// asserts.
//
// Scope: the dedup table lives in broker memory. It spans connection loss
// and client reconnects — the failure modes the chaos harness injects —
// but not a broker process restart: a client whose append was applied but
// whose ack was lost across a broker restart will retry against a broker
// with no record of its guid and double-append. Broker restart is outside
// the transport's exactly-once contract (the harness kills workers and the
// supervisor, never the broker); extending it would mean journaling the
// per-guid high-water marks next to the durable category segments.
//
// Partitions: the server can sever or blackhole all connections whose
// client name (from the Hello frame) matches a prefix, for a bounded
// duration on the server's steady clock. Severed clients get their socket
// closed; blackholed clients get silence until their RPC times out. New
// connections from a partitioned name stay partitioned until the deadline.

namespace fbstream::scribe {

// Request opcodes. u8 on the wire.
enum class RemoteOp : uint8_t {
  kHello = 0,  // fields: client name. First frame on every connection.
  kCreateCategory = 1,
  kWrite = 2,
  kWriteSharded = 3,
  kRead = 4,
  kNextSequence = 5,
  kGetConfig = 6,
  kSetNumBuckets = 7,
  kNumBuckets = 8,
  kTotalBytes = 9,
  kHasCategory = 10,
  kTrimExpired = 11,
  kPing = 12,
  kPartition = 13,  // admin: inject a timed partition.
};

// Frames beyond this are a protocol violation (Corruption), not a large
// message: Scribe payloads are rows, and Read responses are chunked
// server-side by both message count and encoded byte size (see
// ScribeServerOptions::max_read_bytes) to stay below this bound.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

// Framing helpers, exposed so tests can hand-craft (and corrupt) frames.
std::string EncodeFrame(std::string_view body);
// Blocking single-frame read from `fd`. Classification contract
// (satellite: transient vs permanent):
//   - peer closed / ECONNRESET / EPIPE        -> Unavailable   (retryable)
//   - SO_RCVTIMEO expiry                      -> DeadlineExceeded (retryable)
//   - oversize length or checksum mismatch    -> Corruption    (permanent)
StatusOr<std::string> ReadFrameFromFd(int fd);
Status WriteFrameToFd(int fd, std::string_view body);

enum class PartitionMode : uint8_t {
  kSever = 0,      // Close the connection; further connects are refused.
  kBlackhole = 1,  // Swallow requests silently; the client times out.
};

struct ScribeServerOptions {
  // Loopback only: this is a single-machine scale-out simulation.
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; read the bound port back via port().
  // Per-connection socket read timeout (used to poll the stop flag, not a
  // client-visible deadline).
  Micros idle_poll_micros = 100'000;
  // Read responses are chunked to at most this many messages — and at most
  // max_read_bytes of encoded messages, always at least one — per RPC, so a
  // response frame never exceeds kMaxFrameBytes regardless of payload size.
  // The client resumes from the next sequence on its next poll.
  size_t max_read_messages = 8192;
  size_t max_read_bytes = 48u << 20;
  // Dedup memory: last-applied append token retained per client guid.
  size_t max_dedup_clients = 1024;
};

// Serves an in-process Scribe over TCP. One thread per connection (worker
// counts are small: one broker, a handful of node processes). Thread-safe.
class ScribeServer {
 public:
  ScribeServer(Scribe* scribe, ScribeServerOptions options = {});
  ~ScribeServer();

  Status Start();
  void Stop();

  int port() const { return port_; }

  // Injects a timed partition for every client whose Hello name starts
  // with `name_prefix` (empty = everyone). Also reachable remotely via the
  // kPartition RPC — the chaos driver uses that to cut a worker off from
  // the broker without reaching into the broker process.
  void Partition(const std::string& name_prefix, Micros duration,
                 PartitionMode mode);

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    std::string client_name;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  struct PartitionRule {
    std::string name_prefix;
    std::chrono::steady_clock::time_point until;
    PartitionMode mode;
  };

  void AcceptLoop();
  void ServeConnection(Conn* conn);
  // Returns the active partition rule for `name`, if any.
  bool PartitionFor(const std::string& name, PartitionMode* mode);
  std::string HandleRequest(const std::string& body, Conn* conn);

  Scribe* scribe_;
  ScribeServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  // Serializes Stop(): joining a thread from two callers concurrently is
  // UB, and a losing caller must not return before shutdown completes.
  std::mutex stop_mu_;

  std::mutex mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<PartitionRule> partitions_;
  // Per-guid append dedup. `mu` is held across the whole dedup-check +
  // append + record-token sequence so a duplicate racing its in-flight
  // original waits for it instead of re-applying; `applied` is guarded by
  // `mu`, `tick` by the server's mu_. The table is capped at
  // max_dedup_clients by evicting the least-recently-active guid — never
  // wholesale, since wiping an active client's entry would let its
  // in-flight retry double-land.
  struct GuidState {
    std::mutex mu;
    uint64_t applied = 0;
    uint64_t tick = 0;
  };
  std::map<uint64_t, std::shared_ptr<GuidState>> dedup_;
  uint64_t dedup_tick_ = 0;

  std::atomic<uint64_t> connections_accepted_{0};
  Counter* requests_total_;
  Counter* dedup_hits_;
  Counter* partition_drops_;
  Counter* protocol_errors_;
};

struct RemoteScribeOptions {
  Micros connect_timeout_micros = 1'000'000;
  // SO_RCVTIMEO/SO_SNDTIMEO per RPC. A blackholed connection surfaces as
  // DeadlineExceeded after this long.
  Micros rpc_timeout_micros = 2'000'000;
  // Reconnect-with-backoff budget for transient transport failures.
  RetryOptions retry = {
      .max_attempts = 6,
      .initial_backoff_micros = 2'000,
      .max_backoff_micros = 200'000,
  };
};

// Client half: a Scribe whose every operation is an RPC to a ScribeServer.
// Thread-safe; RPCs on the shared connection are serialized.
class RemoteScribe : public Scribe {
 public:
  // `client_name` identifies this process to the broker (partition rules
  // match on it). Convention: "worker.<name>", "supervisor", "driver".
  RemoteScribe(Clock* clock, std::string host, int port,
               std::string client_name, RemoteScribeOptions options = {});
  ~RemoteScribe() override;

  Status CreateCategory(const CategoryConfig& config) override;
  bool HasCategory(const std::string& name) const override;
  StatusOr<CategoryConfig> GetConfig(const std::string& name) const override;
  Status SetNumBuckets(const std::string& category, int n) override;
  Status Write(const std::string& category, int bucket,
               const std::string& payload) override;
  Status WriteSharded(const std::string& category,
                      const std::string& shard_key,
                      const std::string& payload) override;
  StatusOr<std::vector<Message>> Read(const std::string& category, int bucket,
                                      uint64_t from_sequence,
                                      size_t max_messages) const override;
  StatusOr<uint64_t> NextSequence(const std::string& category,
                                  int bucket) const override;
  void TrimExpired() override;
  StatusOr<uint64_t> TotalBytes(const std::string& category) const override;
  int NumBuckets(const std::string& category) const override;

  // Round-trip liveness probe.
  Status Ping();

  // Asks the broker to partition clients matching `name_prefix` (admin RPC;
  // the chaos driver severs workers without touching the broker process).
  Status InjectPartition(const std::string& name_prefix, Micros duration,
                         PartitionMode mode);

  // Times the transport reconnected after a transient failure.
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  RetryPolicy::StatsSnapshot transport_retry_stats() const {
    return rpc_retry_->stats();
  }
  const std::string& client_name() const { return client_name_; }

 private:
  // One RPC under the reconnect/retry policy. Returns the response payload
  // (bytes after the echoed opcode + status) on OK.
  StatusOr<std::string> Call(RemoteOp op, const std::string& body) const;
  // One attempt on the current connection; closes it on transport error.
  StatusOr<std::string> CallOnce(RemoteOp op, const std::string& body) const;
  Status EnsureConnectedLocked() const;
  void CloseLocked() const;

  std::string host_;
  int port_;
  std::string client_name_;
  RemoteScribeOptions options_;
  uint64_t guid_;
  // Guards token assignment *and* the append RPC together: the broker
  // dedups on a per-guid high-water mark, so tokens must reach it in
  // order. Held around Call() in Write/WriteSharded.
  mutable std::mutex append_mu_;
  uint64_t next_token_ = 1;
  std::unique_ptr<RetryPolicy> rpc_retry_;

  mutable std::mutex conn_mu_;
  mutable int fd_ = -1;
  mutable bool ever_connected_ = false;
  mutable std::atomic<uint64_t> reconnects_{0};

  Counter* rpcs_total_;
  Counter* rpc_failures_;
  Histogram* rpc_latency_;
};

}  // namespace fbstream::scribe

#endif  // FBSTREAM_SCRIBE_REMOTE_H_
