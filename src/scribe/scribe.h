#ifndef FBSTREAM_SCRIBE_SCRIBE_H_
#define FBSTREAM_SCRIBE_SCRIBE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/status.h"

namespace fbstream::scribe {

// Scribe (paper §2.1): a persistent, distributed messaging system for
// collecting, aggregating and delivering high volumes of log data with a few
// seconds of latency. Data is organized by *category* (a distinct stream);
// each category has multiple *buckets*, the unit of parallel consumption.
// Messages are durable (optionally persisted to disk segments, standing in
// for Scribe's HDFS storage) and can be replayed by the same or different
// readers for the retention period.
//
// This implementation keeps the properties the paper's design arguments rest
// on: append-only per-bucket logs with monotone sequence numbers, fully
// decoupled readers with independent offsets, replay from any retained
// offset, multiplexing (any number of readers per bucket), retention
// trimming, and re-bucketing via a config change.

// One message in a bucket. `sequence` is the bucket-local offset; a reader
// that has consumed message s resumes at s+1.
struct Message {
  uint64_t sequence = 0;
  Micros write_time = 0;  // When the writer appended it.
  std::string payload;
  // Nonzero for the sampled fraction of appends the Tracer picked (§4.2.1
  // latency analysis). Carried through the engine to storage sinks; persisted
  // with the message so replayed events keep their trace identity.
  uint64_t trace_id = 0;
};

struct CategoryConfig {
  std::string name;
  int num_buckets = 1;
  // Messages older than this are eligible for trimming ("up to a few days").
  Micros retention_micros = 3 * kMicrosPerDay;
  // Minimum delay before a written message becomes visible to readers;
  // models Scribe's aggregation/batching latency ("about a second per
  // stream"). Zero for latency-insensitive tests.
  Micros delivery_latency_micros = 0;
  // If true, every append is also written to a disk segment under the Scribe
  // root directory and survives process restart.
  bool persist_to_disk = false;
  // With persist_to_disk: fsync the segment after each persisted append (the
  // batch boundary — producers append whole batches through Write), so an
  // acked message survives not just process death but power loss. Off by
  // default: the buffered path matches Scribe's "few seconds of durability
  // lag" and is what most tests want.
  bool fsync_appends = false;
};

// A single append-only bucket log. Thread-safe.
//
// Persistence uses rotated segment files (`segment-<base_seq>.log`): the
// active segment rolls over every kSegmentMessages appends, and retention
// trimming deletes whole expired segments from disk — the unit of deletion
// in real log stores. Each on-disk record carries a checksum (as in
// lsm/wal.h); replay stops at the first torn or corrupt record and
// truncates the segment back to its intact prefix so later appends resume
// from a clean record boundary.
class Bucket {
 public:
  static constexpr size_t kSegmentMessages = 4096;

  Bucket(std::string dir, bool persist, bool fsync_appends = false);

  // Appends a payload; returns its sequence number. `trace_id` is nonzero
  // only for tracer-sampled messages.
  uint64_t Append(const std::string& payload, Micros now,
                  uint64_t trace_id = 0);

  // Reads up to `max_messages` messages with sequence >= from_sequence that
  // are visible at time `now` (write_time + delivery_latency <= now).
  // Returns the number of messages appended to `out`.
  size_t Read(uint64_t from_sequence, size_t max_messages, Micros now,
              Micros delivery_latency, std::vector<Message>* out) const;

  // Drops messages with write_time < horizon (and deletes fully expired
  // sealed segments from disk). Trailing readers whose offset points below
  // the trim point will resume at the oldest retained message.
  void TrimBefore(Micros horizon);

  uint64_t next_sequence() const;
  uint64_t oldest_sequence() const;
  uint64_t total_bytes() const;
  // Sealed + active segment files currently on disk (0 if not persisted).
  size_t NumSegmentFiles() const;

  // Rebuilds in-memory state from disk segments (startup recovery).
  Status RecoverFromDisk();

 private:
  struct SegmentMeta {
    uint64_t base_sequence = 0;
    std::string path;
    Micros newest_time = 0;
    size_t messages = 0;
  };

  std::string SegmentPath(uint64_t base_sequence) const;
  void PersistAppendLocked(const Message& m);

  mutable std::mutex mu_;
  std::string dir_;
  bool persist_;
  bool fsync_appends_;
  uint64_t base_sequence_ = 0;  // Sequence of messages_[0].
  std::vector<Message> messages_;
  uint64_t bytes_ = 0;
  std::vector<SegmentMeta> segments_;  // Ascending base_sequence; last is
                                       // the active segment.
};

class Category {
 public:
  explicit Category(CategoryConfig config, std::string root_dir);

  // Snapshot of the config. By value and mutex-guarded: SetNumBuckets
  // mutates num_buckets concurrently with readers (monitoring threads,
  // parallel pipeline workers).
  CategoryConfig config() const;
  int num_buckets() const;

  Bucket* bucket(int i);
  const Bucket* bucket(int i) const;

  // Reconfigures the number of buckets (§4.2.2 scalability: "changing the
  // number of buckets per Scribe category in a configuration file"). Growing
  // adds empty buckets; shrinking seals the tail buckets — writers stop
  // routing to them, readers can still drain retained data.
  Status SetNumBuckets(int n);

  // Per-category metric handles (node label = category name), looked up once
  // at construction so the append/read hot paths never touch the registry
  // mutex. Registry entries are immortal, so the pointers can't dangle.
  Counter* append_messages() const { return append_messages_; }
  Counter* append_bytes() const { return append_bytes_; }
  Histogram* append_latency() const { return append_latency_; }
  Counter* read_messages() const { return read_messages_; }
  Counter* read_batches() const { return read_batches_; }

 private:
  CategoryConfig config_;
  std::string root_dir_;
  Counter* append_messages_;
  Counter* append_bytes_;
  Histogram* append_latency_;
  Counter* read_messages_;
  Counter* read_batches_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Bucket>> buckets_;
  int active_buckets_;
};

// The bus. Owns all categories. Thread-safe.
//
// Appends run under a RetryPolicy: the "scribe.append" fault site can make
// an individual append fail transiently (a flaky aggregator hop), and the
// writer retries with backoff before surfacing the error. With no faults
// armed the policy never sleeps.
//
// The bus operations are virtual: consumers (Tailer, NodeShard, Pipeline,
// sinks, monitoring) hold a `Scribe*` and work unchanged whether it is this
// in-process bus or a `RemoteScribe` (scribe/remote.h) talking to a
// `scribed` broker process over a socket. Distributed mode is a transport
// swap, not a rewrite.
class Scribe {
 public:
  // `root_dir` hosts persisted segments for categories that opt in; it may
  // be empty if no category persists.
  explicit Scribe(Clock* clock, std::string root_dir = "");
  virtual ~Scribe() = default;

  Scribe(const Scribe&) = delete;
  Scribe& operator=(const Scribe&) = delete;

  virtual Status CreateCategory(const CategoryConfig& config);
  virtual bool HasCategory(const std::string& name) const;
  virtual StatusOr<CategoryConfig> GetConfig(const std::string& name) const;
  virtual Status SetNumBuckets(const std::string& category, int n);

  // Appends to an explicit bucket.
  virtual Status Write(const std::string& category, int bucket,
                       const std::string& payload);
  // Routes by hash of `shard_key` over the category's active buckets. This
  // is how processing nodes reshard their output (§3).
  virtual Status WriteSharded(const std::string& category,
                              const std::string& shard_key,
                              const std::string& payload);

  // Reads messages visible now. Used by Tailer; exposed for tests.
  virtual StatusOr<std::vector<Message>> Read(const std::string& category,
                                              int bucket,
                                              uint64_t from_sequence,
                                              size_t max_messages) const;

  virtual StatusOr<uint64_t> NextSequence(const std::string& category,
                                          int bucket) const;

  // Applies retention trimming across all categories.
  virtual void TrimExpired();

  // Total backlog (messages not yet trimmed) across a category, for
  // monitoring.
  virtual StatusOr<uint64_t> TotalBytes(const std::string& category) const;

  Clock* clock() const { return clock_; }

  virtual int NumBuckets(const std::string& category) const;

  // Append retry behavior (defaults: 3 attempts, 500us initial backoff).
  void SetRetryOptions(const RetryOptions& options);
  RetryPolicy::StatsSnapshot retry_stats() const { return retry_->stats(); }

 private:
  Category* Find(const std::string& name) const;

  Clock* clock_;
  std::string root_dir_;
  std::unique_ptr<RetryPolicy> retry_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Category>> categories_;
};

// A cursor over one bucket of one category. Each Tailer has an independent
// offset: readers are fully decoupled from writers and from each other.
//
// The offset is atomic: Poll/Seek belong to the single consumer thread that
// owns the cursor, but offset() and LagMessages() may be called concurrently
// by monitoring threads (§6.4 lag sampling races a running pipeline round).
class Tailer {
 public:
  Tailer(Scribe* scribe, std::string category, int bucket,
         uint64_t start_sequence = 0);

  Tailer(const Tailer& other)
      : scribe_(other.scribe_),
        category_(other.category_),
        bucket_(other.bucket_),
        offset_(other.offset_.load(std::memory_order_relaxed)) {}
  Tailer& operator=(const Tailer& other) {
    scribe_ = other.scribe_;
    category_ = other.category_;
    bucket_ = other.bucket_;
    offset_.store(other.offset_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    return *this;
  }

  // Returns up to `max_messages` new messages and advances the offset.
  std::vector<Message> Poll(size_t max_messages = 1024);

  // Next sequence this tailer will read. Persisted by consumers as their
  // checkpoint offset.
  uint64_t offset() const { return offset_.load(std::memory_order_acquire); }
  void Seek(uint64_t sequence) {
    offset_.store(sequence, std::memory_order_release);
  }

  const std::string& category() const { return category_; }
  int bucket() const { return bucket_; }

  // Processing lag in messages: how far the tailer trails the bucket head
  // (§6.4 monitoring).
  uint64_t LagMessages() const;

 private:
  Scribe* scribe_;
  std::string category_;
  int bucket_;
  std::atomic<uint64_t> offset_;
};

}  // namespace fbstream::scribe

#endif  // FBSTREAM_SCRIBE_SCRIBE_H_
