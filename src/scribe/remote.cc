#include "scribe/remote.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <random>

#include "common/fault.h"
#include "common/hash.h"
#include "common/serde.h"

namespace fbstream::scribe {

namespace {

// ---------------------------------------------------------------------------
// Socket plumbing. Every helper classifies errno per the satellite contract:
// transport-level failures are retryable (Unavailable / DeadlineExceeded),
// protocol violations are permanent (Corruption).

Status TransportError(const char* op, int err) {
  if (err == EAGAIN || err == EWOULDBLOCK || err == ETIMEDOUT ||
      err == EINPROGRESS) {
    return Status::DeadlineExceeded(std::string(op) + " timed out");
  }
  return Status::Unavailable(std::string(op) + " failed: " +
                             std::string(strerror(err)));
}

Status SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return TransportError("send", errno);
    }
    if (n == 0) return Status::Unavailable("send: connection closed by peer");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RecvAll(int fd, char* data, size_t len) {
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return TransportError("recv", errno);
    }
    if (n == 0) return Status::Unavailable("recv: connection closed by peer");
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

void SetRpcTimeouts(int fd, Micros timeout) {
  struct timeval tv;
  tv.tv_sec = timeout / 1'000'000;
  tv.tv_usec = timeout % 1'000'000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// ---------------------------------------------------------------------------
// Body encoding.

void PutOp(std::string* dst, RemoteOp op) {
  dst->push_back(static_cast<char>(op));
}

bool GetOp(std::string_view* src, RemoteOp* op) {
  if (src->empty()) return false;
  *op = static_cast<RemoteOp>(static_cast<uint8_t>((*src)[0]));
  src->remove_prefix(1);
  return true;
}

void PutStatus(std::string* dst, const Status& s) {
  PutVarint64(dst, static_cast<uint64_t>(s.code()));
  PutLengthPrefixed(dst, s.message());
}

bool GetStatus(std::string_view* src, Status* s) {
  uint64_t code = 0;
  std::string_view message;
  if (!GetVarint64(src, &code) || !GetLengthPrefixed(src, &message)) {
    return false;
  }
  if (code == 0) {
    *s = Status::OK();
  } else {
    *s = Status(static_cast<StatusCode>(code), std::string(message));
  }
  return true;
}

void PutCategoryConfig(std::string* dst, const CategoryConfig& c) {
  PutLengthPrefixed(dst, c.name);
  PutVarint64(dst, static_cast<uint64_t>(c.num_buckets));
  PutVarint64(dst, static_cast<uint64_t>(c.retention_micros));
  PutVarint64(dst, static_cast<uint64_t>(c.delivery_latency_micros));
  PutVarint64(dst, c.persist_to_disk ? 1 : 0);
  PutVarint64(dst, c.fsync_appends ? 1 : 0);
}

bool GetCategoryConfig(std::string_view* src, CategoryConfig* c) {
  std::string_view name;
  uint64_t buckets = 0, retention = 0, latency = 0, persist = 0, fsync = 0;
  if (!GetLengthPrefixed(src, &name) || !GetVarint64(src, &buckets) ||
      !GetVarint64(src, &retention) || !GetVarint64(src, &latency) ||
      !GetVarint64(src, &persist) || !GetVarint64(src, &fsync)) {
    return false;
  }
  c->name = std::string(name);
  c->num_buckets = static_cast<int>(buckets);
  c->retention_micros = static_cast<Micros>(retention);
  c->delivery_latency_micros = static_cast<Micros>(latency);
  c->persist_to_disk = persist != 0;
  c->fsync_appends = fsync != 0;
  return true;
}

Status ProtocolViolation(const std::string& what) {
  return Status::Corruption("scribe.remote protocol violation: " + what);
}

}  // namespace

// ---------------------------------------------------------------------------
// Framing.

std::string EncodeFrame(std::string_view body) {
  std::string frame;
  frame.reserve(12 + body.size());
  uint32_t len = static_cast<uint32_t>(body.size());
  frame.append(reinterpret_cast<const char*>(&len), 4);
  uint64_t checksum = Fnv1a64(body);
  frame.append(reinterpret_cast<const char*>(&checksum), 8);
  frame.append(body);
  return frame;
}

StatusOr<std::string> ReadFrameFromFd(int fd) {
  char header[12];
  FBSTREAM_RETURN_IF_ERROR(RecvAll(fd, header, sizeof(header)));
  uint32_t len;
  uint64_t checksum;
  memcpy(&len, header, 4);
  memcpy(&checksum, header + 4, 8);
  if (len > kMaxFrameBytes) {
    return ProtocolViolation("frame length " + std::to_string(len) +
                             " exceeds cap");
  }
  std::string body(len, '\0');
  FBSTREAM_RETURN_IF_ERROR(RecvAll(fd, body.data(), len));
  if (Fnv1a64(body) != checksum) {
    return ProtocolViolation("frame checksum mismatch");
  }
  return body;
}

Status WriteFrameToFd(int fd, std::string_view body) {
  if (body.size() > kMaxFrameBytes) {
    return ProtocolViolation("frame length " + std::to_string(body.size()) +
                             " exceeds cap");
  }
  std::string frame = EncodeFrame(body);
  return SendAll(fd, frame.data(), frame.size());
}

// ---------------------------------------------------------------------------
// Server.

ScribeServer::ScribeServer(Scribe* scribe, ScribeServerOptions options)
    : scribe_(scribe),
      options_(std::move(options)),
      requests_total_(MetricsRegistry::Global()->GetCounter(
          "scribe.remote.server.requests")),
      dedup_hits_(MetricsRegistry::Global()->GetCounter(
          "scribe.remote.server.dedup_hits")),
      partition_drops_(MetricsRegistry::Global()->GetCounter(
          "scribe.remote.server.partition_drops")),
      protocol_errors_(MetricsRegistry::Global()->GetCounter(
          "scribe.remote.server.protocol_errors")) {}

ScribeServer::~ScribeServer() { Stop(); }

Status ScribeServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return TransportError("socket", errno);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return TransportError("bind", errno);
  }
  if (::listen(listen_fd_, 64) != 0) return TransportError("listen", errno);
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    return TransportError("getsockname", errno);
  }
  port_ = ntohs(addr.sin_port);
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ScribeServer::Stop() {
  // stop_mu_ makes concurrent Stop() calls safe: exactly one caller runs
  // the shutdown sequence, and losers block here until it has finished
  // (returning early would let a caller proceed while connection threads
  // are still alive; joining the same thread from two callers is UB).
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

void ScribeServer::Partition(const std::string& name_prefix, Micros duration,
                             PartitionMode mode) {
  auto until = std::chrono::steady_clock::now() +
               std::chrono::microseconds(duration);
  std::vector<int> to_sever;
  {
    std::lock_guard<std::mutex> lock(mu_);
    partitions_.push_back(PartitionRule{name_prefix, until, mode});
    if (mode == PartitionMode::kSever) {
      for (auto& conn : conns_) {
        if (conn->fd >= 0 &&
            conn->client_name.rfind(name_prefix, 0) == 0) {
          to_sever.push_back(conn->fd);
        }
      }
    }
  }
  // Shut the sockets down outside the lock; the per-connection threads see
  // recv fail and exit on their own.
  for (int fd : to_sever) ::shutdown(fd, SHUT_RDWR);
}

bool ScribeServer::PartitionFor(const std::string& name,
                                PartitionMode* mode) {
  auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  bool hit = false;
  for (size_t i = 0; i < partitions_.size();) {
    if (partitions_[i].until <= now) {
      partitions_[i] = partitions_.back();
      partitions_.pop_back();
      continue;
    }
    if (!hit && name.rfind(partitions_[i].name_prefix, 0) == 0) {
      *mode = partitions_[i].mode;
      hit = true;
    }
    ++i;
  }
  return hit;
}

void ScribeServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    // Long I/O timeouts: idleness is detected by poll() in the serve loop,
    // the socket timeout only catches a peer stalling mid-frame.
    SetRpcTimeouts(fd, 5'000'000);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    // Reap connections whose serve thread already finished, so a chaos run
    // full of reconnects doesn't accumulate dead fds.
    for (size_t i = 0; i < conns_.size();) {
      if (conns_[i]->done.load(std::memory_order_acquire)) {
        if (conns_[i]->thread.joinable()) conns_[i]->thread.join();
        if (conns_[i]->fd >= 0) ::close(conns_[i]->fd);
        conns_[i] = std::move(conns_.back());
        conns_.pop_back();
      } else {
        ++i;
      }
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    conn->thread = std::thread([this, raw] { ServeConnection(raw); });
    conns_.push_back(std::move(conn));
  }
}

void ScribeServer::ServeConnection(Conn* conn) {
  while (!stopping_.load(std::memory_order_acquire)) {
    // Idle detection via poll so a quiet client never trips the socket
    // timeout mid-frame.
    struct pollfd pfd = {conn->fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1,
                       static_cast<int>(options_.idle_poll_micros / 1000));
    if (ready == 0) continue;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    StatusOr<std::string> body_or = ReadFrameFromFd(conn->fd);
    if (!body_or.ok()) {
      if (body_or.status().code() == StatusCode::kCorruption) {
        protocol_errors_->Add(1);
      }
      break;
    }
    const std::string& body = body_or.value();
    requests_total_->Add(1);

    // Partition check precedes everything: a blackholed client's requests
    // never reach the bus (the "packets dropped on the floor" model), a
    // severed client loses its socket.
    PartitionMode pmode;
    if (!conn->client_name.empty() && PartitionFor(conn->client_name, &pmode)) {
      partition_drops_->Add(1);
      if (pmode == PartitionMode::kSever) break;
      continue;  // Blackhole: swallow, never reply.
    }

    std::string response = HandleRequest(body, conn);
    if (response.empty()) break;  // Protocol violation: drop the connection.
    if (!WriteFrameToFd(conn->fd, response).ok()) break;
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

std::string ScribeServer::HandleRequest(const std::string& body, Conn* conn) {
  std::string_view src(body);
  RemoteOp op;
  if (!GetOp(&src, &op)) {
    protocol_errors_->Add(1);
    return "";
  }

  std::string response;
  PutOp(&response, op);
  auto respond_status = [&](const Status& s) {
    PutStatus(&response, s);
    return response;
  };
  auto malformed = [&]() {
    protocol_errors_->Add(1);
    return std::string();
  };

  switch (op) {
    case RemoteOp::kHello: {
      std::string_view name;
      if (!GetLengthPrefixed(&src, &name)) return malformed();
      {
        std::lock_guard<std::mutex> lock(mu_);
        conn->client_name = std::string(name);
      }
      // A partitioned name reconnecting stays partitioned: sever right at
      // the handshake so retry loops keep failing until the deadline.
      PartitionMode pmode;
      if (PartitionFor(conn->client_name, &pmode)) {
        partition_drops_->Add(1);
        return "";
      }
      return respond_status(Status::OK());
    }
    case RemoteOp::kCreateCategory: {
      CategoryConfig config;
      if (!GetCategoryConfig(&src, &config)) return malformed();
      return respond_status(scribe_->CreateCategory(config));
    }
    case RemoteOp::kWrite:
    case RemoteOp::kWriteSharded: {
      std::string_view category, route, payload;
      uint64_t guid = 0, token = 0;
      if (!GetLengthPrefixed(&src, &category) ||
          !GetLengthPrefixed(&src, &route) ||
          !GetLengthPrefixed(&src, &payload) || !GetFixed64(&src, &guid) ||
          !GetVarint64(&src, &token)) {
        return malformed();
      }
      std::shared_ptr<GuidState> guid_state;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = dedup_.find(guid);
        if (it == dedup_.end()) {
          if (dedup_.size() >= options_.max_dedup_clients) {
            // Evict the least-recently-active guid. A linear scan is fine
            // at this cap; what matters is never dropping a live client's
            // entry, which would let its next retry double-land.
            auto victim = dedup_.begin();
            for (auto jt = dedup_.begin(); jt != dedup_.end(); ++jt) {
              if (jt->second->tick < victim->second->tick) victim = jt;
            }
            dedup_.erase(victim);
          }
          it = dedup_.emplace(guid, std::make_shared<GuidState>()).first;
        }
        it->second->tick = ++dedup_tick_;
        guid_state = it->second;
      }
      // Idempotent producer, atomically: the per-guid lock spans the dedup
      // check, the append, and recording the token. A duplicate delivered
      // while its original is still applying — the client's RPC timed out
      // mid-append, it reconnected and resent — blocks here until the
      // original records its token, then acks as a dup instead of
      // re-appending. Tokens at or below the recorded high-water mark are
      // retries of appends whose ack got lost: ack again, don't re-append.
      std::lock_guard<std::mutex> apply_lock(guid_state->mu);
      if (token <= guid_state->applied) {
        dedup_hits_->Add(1);
        return respond_status(Status::OK());
      }
      Status s;
      if (op == RemoteOp::kWrite) {
        uint64_t bucket = 0;
        std::string_view r(route);
        if (!GetVarint64(&r, &bucket)) return malformed();
        s = scribe_->Write(std::string(category), static_cast<int>(bucket),
                           std::string(payload));
      } else {
        s = scribe_->WriteSharded(std::string(category), std::string(route),
                                  std::string(payload));
      }
      if (s.ok()) guid_state->applied = token;
      return respond_status(s);
    }
    case RemoteOp::kRead: {
      std::string_view category;
      uint64_t bucket = 0, from = 0, max = 0;
      if (!GetLengthPrefixed(&src, &category) || !GetVarint64(&src, &bucket) ||
          !GetVarint64(&src, &from) || !GetVarint64(&src, &max)) {
        return malformed();
      }
      size_t capped =
          std::min<size_t>(max, options_.max_read_messages);
      auto messages_or = scribe_->Read(std::string(category),
                                       static_cast<int>(bucket), from, capped);
      if (!messages_or.ok()) return respond_status(messages_or.status());
      respond_status(Status::OK());
      // Chunk by encoded bytes as well as message count so the response
      // frame stays under kMaxFrameBytes whatever the payload sizes.
      // Always at least one message, so the reader makes progress; the
      // client resumes from the next sequence on its next poll.
      std::string encoded;
      uint64_t count = 0;
      for (const Message& m : messages_or.value()) {
        std::string one;
        PutVarint64(&one, m.sequence);
        PutVarint64(&one, static_cast<uint64_t>(m.write_time));
        PutVarint64(&one, m.trace_id);
        PutLengthPrefixed(&one, m.payload);
        if (count > 0 &&
            encoded.size() + one.size() > options_.max_read_bytes) {
          break;
        }
        encoded.append(one);
        ++count;
      }
      PutVarint64(&response, count);
      response.append(encoded);
      return response;
    }
    case RemoteOp::kNextSequence: {
      std::string_view category;
      uint64_t bucket = 0;
      if (!GetLengthPrefixed(&src, &category) || !GetVarint64(&src, &bucket)) {
        return malformed();
      }
      auto seq_or =
          scribe_->NextSequence(std::string(category), static_cast<int>(bucket));
      if (!seq_or.ok()) return respond_status(seq_or.status());
      respond_status(Status::OK());
      PutVarint64(&response, seq_or.value());
      return response;
    }
    case RemoteOp::kGetConfig: {
      std::string_view category;
      if (!GetLengthPrefixed(&src, &category)) return malformed();
      auto config_or = scribe_->GetConfig(std::string(category));
      if (!config_or.ok()) return respond_status(config_or.status());
      respond_status(Status::OK());
      PutCategoryConfig(&response, config_or.value());
      return response;
    }
    case RemoteOp::kSetNumBuckets: {
      std::string_view category;
      uint64_t n = 0;
      if (!GetLengthPrefixed(&src, &category) || !GetVarint64(&src, &n)) {
        return malformed();
      }
      return respond_status(
          scribe_->SetNumBuckets(std::string(category), static_cast<int>(n)));
    }
    case RemoteOp::kNumBuckets: {
      std::string_view category;
      if (!GetLengthPrefixed(&src, &category)) return malformed();
      respond_status(Status::OK());
      PutVarint64(&response, static_cast<uint64_t>(
                                 scribe_->NumBuckets(std::string(category))));
      return response;
    }
    case RemoteOp::kTotalBytes: {
      std::string_view category;
      if (!GetLengthPrefixed(&src, &category)) return malformed();
      auto bytes_or = scribe_->TotalBytes(std::string(category));
      if (!bytes_or.ok()) return respond_status(bytes_or.status());
      respond_status(Status::OK());
      PutVarint64(&response, bytes_or.value());
      return response;
    }
    case RemoteOp::kHasCategory: {
      std::string_view category;
      if (!GetLengthPrefixed(&src, &category)) return malformed();
      respond_status(Status::OK());
      PutVarint64(&response,
                  scribe_->HasCategory(std::string(category)) ? 1 : 0);
      return response;
    }
    case RemoteOp::kTrimExpired: {
      scribe_->TrimExpired();
      return respond_status(Status::OK());
    }
    case RemoteOp::kPing:
      return respond_status(Status::OK());
    case RemoteOp::kPartition: {
      std::string_view prefix;
      uint64_t duration = 0, mode = 0;
      if (!GetLengthPrefixed(&src, &prefix) || !GetVarint64(&src, &duration) ||
          !GetVarint64(&src, &mode)) {
        return malformed();
      }
      Partition(std::string(prefix), static_cast<Micros>(duration),
                mode == 0 ? PartitionMode::kSever : PartitionMode::kBlackhole);
      return respond_status(Status::OK());
    }
  }
  return malformed();
}

// ---------------------------------------------------------------------------
// Client.

namespace {
uint64_t RandomGuid() {
  std::random_device rd;
  return (static_cast<uint64_t>(rd()) << 32) ^ rd() ^
         (static_cast<uint64_t>(::getpid()) << 17);
}
}  // namespace

RemoteScribe::RemoteScribe(Clock* clock, std::string host, int port,
                           std::string client_name, RemoteScribeOptions options)
    : Scribe(clock),
      host_(std::move(host)),
      port_(port),
      client_name_(std::move(client_name)),
      options_(options),
      guid_(RandomGuid()),
      rpc_retry_(std::make_unique<RetryPolicy>(clock, options.retry)),
      rpcs_total_(MetricsRegistry::Global()->GetCounter("scribe.remote.rpcs")),
      rpc_failures_(
          MetricsRegistry::Global()->GetCounter("scribe.remote.rpc_failures")),
      rpc_latency_(MetricsRegistry::Global()->GetHistogram(
          "scribe.remote.rpc_latency_us")) {}

RemoteScribe::~RemoteScribe() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  CloseLocked();
}

void RemoteScribe::CloseLocked() const {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status RemoteScribe::EnsureConnectedLocked() const {
  if (fd_ >= 0) return Status::OK();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return TransportError("socket", errno);
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad broker host: " + host_);
  }
  // Non-blocking connect with a bounded wait, then back to blocking I/O
  // with per-RPC timeouts.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    int err = errno;
    ::close(fd);
    return TransportError("connect", err);
  }
  if (rc != 0) {
    struct pollfd pfd = {fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1,
                       static_cast<int>(options_.connect_timeout_micros / 1000));
    if (ready <= 0) {
      ::close(fd);
      return Status::DeadlineExceeded("connect timed out");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      ::close(fd);
      return TransportError("connect", err);
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  SetRpcTimeouts(fd, options_.rpc_timeout_micros);

  // Handshake: identify ourselves so partition rules can find us.
  std::string hello;
  PutOp(&hello, RemoteOp::kHello);
  PutLengthPrefixed(&hello, client_name_);
  Status s = WriteFrameToFd(fd, hello);
  if (s.ok()) {
    auto reply_or = ReadFrameFromFd(fd);
    if (!reply_or.ok()) {
      s = reply_or.status();
    } else {
      std::string_view src(reply_or.value());
      RemoteOp op;
      Status remote;
      if (!GetOp(&src, &op) || op != RemoteOp::kHello ||
          !GetStatus(&src, &remote)) {
        s = ProtocolViolation("bad hello response");
      } else {
        s = remote;
      }
    }
  }
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  if (ever_connected_) reconnects_.fetch_add(1, std::memory_order_relaxed);
  ever_connected_ = true;
  fd_ = fd;
  return Status::OK();
}

StatusOr<std::string> RemoteScribe::CallOnce(RemoteOp op,
                                             const std::string& body) const {
  std::lock_guard<std::mutex> lock(conn_mu_);

  // Fault site: "the wire ate it". Models a transient partition (client
  // side): the connection is severed and the status is retryable, unless
  // the armed schedule says Corruption — then it must surface immediately.
  Status injected = FaultRegistry::Global()->Hit("scribe.remote.rpc");
  if (!injected.ok()) {
    if (injected.IsRetryable()) CloseLocked();
    return injected;
  }

  FBSTREAM_RETURN_IF_ERROR(EnsureConnectedLocked());
  Status s = WriteFrameToFd(fd_, body);
  if (!s.ok()) {
    CloseLocked();
    return s;
  }
  auto reply_or = ReadFrameFromFd(fd_);
  if (!reply_or.ok()) {
    // Both transient failures and protocol violations invalidate the
    // connection — a desynced stream can't be resumed — but only the
    // transient ones are retryable.
    CloseLocked();
    return reply_or.status();
  }
  std::string_view src(reply_or.value());
  RemoteOp echoed;
  Status remote;
  if (!GetOp(&src, &echoed) || echoed != op || !GetStatus(&src, &remote)) {
    CloseLocked();
    return ProtocolViolation("bad response header");
  }
  if (!remote.ok()) return remote;
  return std::string(src);
}

StatusOr<std::string> RemoteScribe::Call(RemoteOp op,
                                         const std::string& body) const {
  rpcs_total_->Add(1);
  int64_t start = SystemClock::Get()->NowMicros();
  std::string payload;
  Status s = rpc_retry_->Run("scribe.remote.rpc", [&]() {
    auto payload_or = CallOnce(op, body);
    if (!payload_or.ok()) return payload_or.status();
    payload = std::move(payload_or).value();
    return Status::OK();
  });
  rpc_latency_->Record(
      static_cast<uint64_t>(SystemClock::Get()->NowMicros() - start));
  if (!s.ok()) {
    rpc_failures_->Add(1);
    return s;
  }
  return payload;
}

Status RemoteScribe::CreateCategory(const CategoryConfig& config) {
  std::string body;
  PutOp(&body, RemoteOp::kCreateCategory);
  PutCategoryConfig(&body, config);
  return Call(RemoteOp::kCreateCategory, body).status();
}

bool RemoteScribe::HasCategory(const std::string& name) const {
  std::string body;
  PutOp(&body, RemoteOp::kHasCategory);
  PutLengthPrefixed(&body, name);
  auto payload_or = Call(RemoteOp::kHasCategory, body);
  if (!payload_or.ok()) return false;
  std::string_view src(payload_or.value());
  uint64_t has = 0;
  return GetVarint64(&src, &has) && has != 0;
}

StatusOr<CategoryConfig> RemoteScribe::GetConfig(
    const std::string& name) const {
  std::string body;
  PutOp(&body, RemoteOp::kGetConfig);
  PutLengthPrefixed(&body, name);
  FBSTREAM_ASSIGN_OR_RETURN(std::string payload,
                            Call(RemoteOp::kGetConfig, body));
  std::string_view src(payload);
  CategoryConfig config;
  if (!GetCategoryConfig(&src, &config)) {
    return ProtocolViolation("bad GetConfig payload");
  }
  return config;
}

Status RemoteScribe::SetNumBuckets(const std::string& category, int n) {
  std::string body;
  PutOp(&body, RemoteOp::kSetNumBuckets);
  PutLengthPrefixed(&body, category);
  PutVarint64(&body, static_cast<uint64_t>(n));
  return Call(RemoteOp::kSetNumBuckets, body).status();
}

Status RemoteScribe::Write(const std::string& category, int bucket,
                           const std::string& payload) {
  std::string route;
  PutVarint64(&route, static_cast<uint64_t>(bucket));
  std::lock_guard<std::mutex> lock(append_mu_);
  std::string body;
  PutOp(&body, RemoteOp::kWrite);
  PutLengthPrefixed(&body, category);
  PutLengthPrefixed(&body, route);
  PutLengthPrefixed(&body, payload);
  PutFixed64(&body, guid_);
  PutVarint64(&body, next_token_++);
  return Call(RemoteOp::kWrite, body).status();
}

Status RemoteScribe::WriteSharded(const std::string& category,
                                  const std::string& shard_key,
                                  const std::string& payload) {
  std::lock_guard<std::mutex> lock(append_mu_);
  std::string body;
  PutOp(&body, RemoteOp::kWriteSharded);
  PutLengthPrefixed(&body, category);
  PutLengthPrefixed(&body, shard_key);
  PutLengthPrefixed(&body, payload);
  PutFixed64(&body, guid_);
  PutVarint64(&body, next_token_++);
  return Call(RemoteOp::kWriteSharded, body).status();
}

StatusOr<std::vector<Message>> RemoteScribe::Read(const std::string& category,
                                                  int bucket,
                                                  uint64_t from_sequence,
                                                  size_t max_messages) const {
  std::string body;
  PutOp(&body, RemoteOp::kRead);
  PutLengthPrefixed(&body, category);
  PutVarint64(&body, static_cast<uint64_t>(bucket));
  PutVarint64(&body, from_sequence);
  PutVarint64(&body, max_messages);
  FBSTREAM_ASSIGN_OR_RETURN(std::string payload, Call(RemoteOp::kRead, body));
  std::string_view src(payload);
  uint64_t count = 0;
  if (!GetVarint64(&src, &count)) {
    return ProtocolViolation("bad Read payload");
  }
  std::vector<Message> messages;
  messages.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Message m;
    uint64_t write_time = 0;
    std::string_view p;
    if (!GetVarint64(&src, &m.sequence) || !GetVarint64(&src, &write_time) ||
        !GetVarint64(&src, &m.trace_id) || !GetLengthPrefixed(&src, &p)) {
      return ProtocolViolation("truncated Read payload");
    }
    m.write_time = static_cast<Micros>(write_time);
    m.payload = std::string(p);
    messages.push_back(std::move(m));
  }
  return messages;
}

StatusOr<uint64_t> RemoteScribe::NextSequence(const std::string& category,
                                              int bucket) const {
  std::string body;
  PutOp(&body, RemoteOp::kNextSequence);
  PutLengthPrefixed(&body, category);
  PutVarint64(&body, static_cast<uint64_t>(bucket));
  FBSTREAM_ASSIGN_OR_RETURN(std::string payload,
                            Call(RemoteOp::kNextSequence, body));
  std::string_view src(payload);
  uint64_t seq = 0;
  if (!GetVarint64(&src, &seq)) {
    return ProtocolViolation("bad NextSequence payload");
  }
  return seq;
}

void RemoteScribe::TrimExpired() {
  std::string body;
  PutOp(&body, RemoteOp::kTrimExpired);
  (void)Call(RemoteOp::kTrimExpired, body);
}

StatusOr<uint64_t> RemoteScribe::TotalBytes(const std::string& category) const {
  std::string body;
  PutOp(&body, RemoteOp::kTotalBytes);
  PutLengthPrefixed(&body, category);
  FBSTREAM_ASSIGN_OR_RETURN(std::string payload,
                            Call(RemoteOp::kTotalBytes, body));
  std::string_view src(payload);
  uint64_t bytes = 0;
  if (!GetVarint64(&src, &bytes)) {
    return ProtocolViolation("bad TotalBytes payload");
  }
  return bytes;
}

int RemoteScribe::NumBuckets(const std::string& category) const {
  std::string body;
  PutOp(&body, RemoteOp::kNumBuckets);
  PutLengthPrefixed(&body, category);
  auto payload_or = Call(RemoteOp::kNumBuckets, body);
  if (!payload_or.ok()) return 0;
  std::string_view src(payload_or.value());
  uint64_t n = 0;
  if (!GetVarint64(&src, &n)) return 0;
  return static_cast<int>(n);
}

Status RemoteScribe::Ping() {
  std::string body;
  PutOp(&body, RemoteOp::kPing);
  return Call(RemoteOp::kPing, body).status();
}

Status RemoteScribe::InjectPartition(const std::string& name_prefix,
                                     Micros duration, PartitionMode mode) {
  std::string body;
  PutOp(&body, RemoteOp::kPartition);
  PutLengthPrefixed(&body, name_prefix);
  PutVarint64(&body, static_cast<uint64_t>(duration));
  PutVarint64(&body, static_cast<uint64_t>(mode));
  return Call(RemoteOp::kPartition, body).status();
}

}  // namespace fbstream::scribe
