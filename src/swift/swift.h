#ifndef FBSTREAM_SWIFT_SWIFT_H_
#define FBSTREAM_SWIFT_SWIFT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "scribe/scribe.h"

namespace fbstream::swift {

// Swift (paper §2.3): "a basic stream processing engine which provides
// checkpointing functionalities for Scribe. It provides a very simple API:
// you can read from a Scribe stream with checkpoints every N strings or B
// bytes. If the app crashes, you can restart from the latest checkpoint;
// all data is thus read at least once from Scribe. Swift communicates with
// client apps through system-level pipes. Thus, the performance and fault
// tolerance of the system are up to the client."
//
// Execution model (relevant to Figure 9): Swift *buffers all input events
// between checkpoints*, then hands the whole buffer to the client over the
// pipe, then checkpoints. Nothing overlaps: while the buffer fills, the
// client idles; while the client processes, reading stops.

struct SwiftConfig {
  std::string name;
  std::string category;
  int bucket = 0;
  // Checkpoint triggers: whichever is reached first closes the interval.
  // At least one must be nonzero.
  size_t checkpoint_every_strings = 0;
  size_t checkpoint_every_bytes = 0;
  // Directory for the offset checkpoint file.
  std::string checkpoint_dir;
};

// A client app on the far side of the pipe. "Most Swift client apps are
// written in scripting languages like Python" — the interpreted-language
// cost shows up in the Figure 9 bench as a deserialization slowdown factor
// inside the client, not here.
class SwiftClient {
 public:
  virtual ~SwiftClient() = default;

  // Receives one checkpoint interval's worth of pipe data: newline-framed
  // messages, exactly as they would arrive over a system-level pipe.
  // Default implementation splits frames and calls HandleMessage.
  virtual void HandleBatch(const std::string& pipe_data);

  virtual void HandleMessage(const std::string& message) { (void)message; }

  // Called after the engine checkpoints the interval.
  virtual void OnCheckpoint(uint64_t next_offset) { (void)next_offset; }
};

class SwiftRunner {
 public:
  static StatusOr<std::unique_ptr<SwiftRunner>> Create(
      const SwiftConfig& config, scribe::Scribe* scribe, SwiftClient* client);

  // One buffer-deliver-checkpoint cycle. Returns messages delivered (0 if
  // not enough input is pending to trigger a checkpoint and `flush` is
  // false).
  StatusOr<size_t> RunOnce(bool flush_partial = false);

  // Crash/restart: in-flight buffered data is lost by the engine but NOT
  // acknowledged (offset unchanged), so it is re-read — at-least-once.
  void Crash();
  Status Recover();

  uint64_t offset() const { return tailer_.offset(); }
  uint64_t checkpoints() const { return checkpoints_; }

 private:
  SwiftRunner(const SwiftConfig& config, scribe::Scribe* scribe,
              SwiftClient* client);

  std::string CheckpointPath() const;
  Status LoadCheckpoint();
  Status SaveCheckpoint(uint64_t offset);

  SwiftConfig config_;
  scribe::Scribe* scribe_;
  SwiftClient* client_;
  scribe::Tailer tailer_;
  uint64_t checkpoints_ = 0;
};

}  // namespace fbstream::swift

#endif  // FBSTREAM_SWIFT_SWIFT_H_
