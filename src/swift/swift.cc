#include "swift/swift.h"

#include "common/fs.h"
#include "common/serde.h"

namespace fbstream::swift {

void SwiftClient::HandleBatch(const std::string& pipe_data) {
  size_t start = 0;
  for (size_t pos = 0; pos <= pipe_data.size(); ++pos) {
    if (pos == pipe_data.size() || pipe_data[pos] == '\n') {
      if (pos > start) {
        HandleMessage(pipe_data.substr(start, pos - start));
      }
      start = pos + 1;
    }
  }
}

SwiftRunner::SwiftRunner(const SwiftConfig& config, scribe::Scribe* scribe,
                         SwiftClient* client)
    : config_(config),
      scribe_(scribe),
      client_(client),
      tailer_(scribe, config.category, config.bucket) {}

StatusOr<std::unique_ptr<SwiftRunner>> SwiftRunner::Create(
    const SwiftConfig& config, scribe::Scribe* scribe, SwiftClient* client) {
  if (config.checkpoint_every_strings == 0 &&
      config.checkpoint_every_bytes == 0) {
    return Status::InvalidArgument(
        "swift needs a checkpoint trigger (N strings or B bytes)");
  }
  if (config.checkpoint_dir.empty()) {
    return Status::InvalidArgument("swift needs a checkpoint_dir");
  }
  if (!scribe->HasCategory(config.category)) {
    return Status::NotFound("category " + config.category);
  }
  FBSTREAM_RETURN_IF_ERROR(CreateDirs(config.checkpoint_dir));
  std::unique_ptr<SwiftRunner> runner(new SwiftRunner(config, scribe, client));
  FBSTREAM_RETURN_IF_ERROR(runner->LoadCheckpoint());
  return runner;
}

std::string SwiftRunner::CheckpointPath() const {
  return config_.checkpoint_dir + "/" + config_.name + ".bucket-" +
         std::to_string(config_.bucket) + ".ckpt";
}

Status SwiftRunner::LoadCheckpoint() {
  if (!FileExists(CheckpointPath())) {
    tailer_.Seek(0);
    return Status::OK();
  }
  FBSTREAM_ASSIGN_OR_RETURN(std::string data,
                            ReadFileToString(CheckpointPath()));
  std::string_view view(data);
  uint64_t offset = 0;
  if (!GetFixed64(&view, &offset)) {
    return Status::Corruption("swift checkpoint file");
  }
  tailer_.Seek(offset);
  return Status::OK();
}

Status SwiftRunner::SaveCheckpoint(uint64_t offset) {
  std::string data;
  PutFixed64(&data, offset);
  return WriteFileAtomic(CheckpointPath(), data);
}

StatusOr<size_t> SwiftRunner::RunOnce(bool flush_partial) {
  // Phase 1: buffer input until a checkpoint trigger fires. No client work
  // happens during this phase (the Figure 9 under-utilization).
  std::string pipe_buffer;
  size_t buffered = 0;
  const uint64_t start_offset = tailer_.offset();
  bool triggered = false;
  while (!triggered) {
    auto messages = tailer_.Poll(128);
    if (messages.empty()) break;  // Stream drained.
    for (size_t i = 0; i < messages.size(); ++i) {
      scribe::Message& m = messages[i];
      pipe_buffer += m.payload;
      pipe_buffer.push_back('\n');
      ++buffered;
      const bool strings_hit = config_.checkpoint_every_strings > 0 &&
                               buffered >= config_.checkpoint_every_strings;
      const bool bytes_hit =
          config_.checkpoint_every_bytes > 0 &&
          pipe_buffer.size() >= config_.checkpoint_every_bytes;
      if (strings_hit || bytes_hit) {
        triggered = true;
        if (i + 1 < messages.size()) {
          // Push the rest of the chunk back: intervals are exact.
          tailer_.Seek(messages[i + 1].sequence);
        }
        break;
      }
    }
  }
  if (!triggered && !flush_partial) {
    // Not enough data for a full interval: wait for more (nothing is
    // acknowledged, so this data will be re-read next time).
    tailer_.Seek(start_offset);
    return size_t{0};
  }
  if (buffered == 0) return size_t{0};

  // Phase 2: ship the whole interval down the pipe; the client deserializes
  // and processes it now, serially.
  client_->HandleBatch(pipe_buffer);

  // Phase 3: checkpoint the offset (at-least-once: a crash before this
  // point replays the interval).
  FBSTREAM_RETURN_IF_ERROR(SaveCheckpoint(tailer_.offset()));
  ++checkpoints_;
  client_->OnCheckpoint(tailer_.offset());
  return buffered;
}

void SwiftRunner::Crash() {
  // The engine holds no state beyond the tailer cursor; model the crash by
  // rewinding to whatever the durable checkpoint says on recovery.
}

Status SwiftRunner::Recover() { return LoadCheckpoint(); }

}  // namespace fbstream::swift
