#include "storage/hive/hive.h"

#include <algorithm>

#include "common/fs.h"
#include "common/hash.h"
#include "common/serde.h"

namespace fbstream::hive {

Hive::Hive(std::string root_dir) : root_(std::move(root_dir)) {}

Status Hive::CreateTable(const std::string& name, SchemaPtr schema) {
  if (name.empty()) return Status::InvalidArgument("empty table name");
  if (tables_.count(name) > 0) return Status::AlreadyExists(name);
  FBSTREAM_RETURN_IF_ERROR(CreateDirs(TableDir(name)));
  tables_.emplace(name, Table{std::move(schema)});
  return Status::OK();
}

bool Hive::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

StatusOr<SchemaPtr> Hive::GetSchema(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  return it->second.schema;
}

Status Hive::WritePartition(const std::string& name, const std::string& ds,
                            const std::vector<Row>& rows) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  TextRowCodec codec(it->second.schema);
  std::string data;
  for (const Row& row : rows) {
    data += codec.Encode(row);
    data.push_back('\n');
  }
  return AppendToFile(PartitionFile(name, ds), data);
}

Status Hive::LandPartition(const std::string& name, const std::string& ds) {
  if (tables_.count(name) == 0) return Status::NotFound("table " + name);
  if (!FileExists(PartitionFile(name, ds))) {
    // An empty day still lands; create the (empty) partition file.
    FBSTREAM_RETURN_IF_ERROR(WriteFile(PartitionFile(name, ds), ""));
  }
  return WriteFile(LandedMarker(name, ds), "");
}

bool Hive::IsPartitionLanded(const std::string& name,
                             const std::string& ds) const {
  return FileExists(LandedMarker(name, ds));
}

StatusOr<std::vector<Row>> Hive::ReadPartition(const std::string& name,
                                               const std::string& ds) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  if (!IsPartitionLanded(name, ds)) {
    return Status::FailedPrecondition("partition " + ds + " of " + name +
                                      " has not landed");
  }
  FBSTREAM_ASSIGN_OR_RETURN(std::string data,
                            ReadFileToString(PartitionFile(name, ds)));
  TextRowCodec codec(it->second.schema);
  std::vector<Row> rows;
  size_t start = 0;
  for (size_t pos = 0; pos <= data.size(); ++pos) {
    if (pos == data.size() || data[pos] == '\n') {
      if (pos > start) {
        FBSTREAM_ASSIGN_OR_RETURN(
            Row row,
            codec.Decode(std::string_view(data.data() + start, pos - start)));
        rows.push_back(std::move(row));
      }
      start = pos + 1;
    }
  }
  return rows;
}

StatusOr<std::vector<std::string>> Hive::ListPartitions(
    const std::string& name) const {
  if (tables_.count(name) == 0) return Status::NotFound("table " + name);
  FBSTREAM_ASSIGN_OR_RETURN(std::vector<std::string> files,
                            ListDir(TableDir(name)));
  std::vector<std::string> partitions;
  for (const std::string& f : files) {
    // Landed markers are "ds=YYYY-MM-DD.landed".
    if (f.size() > 10 && f.compare(0, 3, "ds=") == 0 &&
        f.size() > 7 + 3 && f.compare(f.size() - 7, 7, ".landed") == 0) {
      partitions.push_back(f.substr(3, f.size() - 3 - 7));
    }
  }
  std::sort(partitions.begin(), partitions.end());
  return partitions;
}

StatusOr<std::vector<Row>> RunMapReduce(const Hive& hive,
                                        const std::string& table,
                                        const std::vector<std::string>& dss,
                                        const MapReduceSpec& spec,
                                        MapReduceCounters* counters) {
  MapReduceCounters local;
  MapReduceCounters* c = counters != nullptr ? counters : &local;
  *c = MapReduceCounters{};

  const int num_reducers = std::max(1, spec.num_reducers);
  // Per-reducer shuffle spills: key -> records (combined if possible).
  std::vector<std::map<std::string, std::vector<std::string>>> shuffle(
      static_cast<size_t>(num_reducers));

  // Map phase, one partition at a time (each partition is a "split").
  for (const std::string& ds : dss) {
    FBSTREAM_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              hive.ReadPartition(table, ds));
    for (const Row& row : rows) {
      ++c->map_input_rows;
      for (auto& [key, record] : spec.map(row)) {
        ++c->map_output_records;
        auto& slot = shuffle[Fnv1a64(key) % static_cast<uint64_t>(
                                                num_reducers)][key];
        if (spec.combine != nullptr && !slot.empty()) {
          // Map-side combine: fold into the existing partial record.
          slot.back() = spec.combine(slot.back(), record);
        } else {
          slot.push_back(std::move(record));
        }
      }
    }
  }

  // Map-only job: concatenate shuffle contents as rows via reduce identity.
  std::vector<Row> output;
  for (auto& reducer_input : shuffle) {
    for (auto& [key, records] : reducer_input) {
      c->shuffle_records += records.size();
      ++c->reduce_groups;
      if (spec.reduce == nullptr) continue;
      for (Row& row : spec.reduce(key, records)) {
        output.push_back(std::move(row));
      }
    }
  }
  return output;
}

}  // namespace fbstream::hive
