#ifndef FBSTREAM_STORAGE_HIVE_HIVE_H_
#define FBSTREAM_STORAGE_HIVE_HIVE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace fbstream::hive {

// Hive (paper §2.7): the data warehouse. "Most event tables in Hive are
// partitioned by day: each partition becomes available after the day ends at
// midnight." Tables are day-partitioned directories of text-serialized rows
// on local disk; the MapReduce runner below executes the batch/backfill path
// (§4.5.2: "we use the standard MapReduce framework to read from Hive and
// run the stream processing applications in our batch environment").
class Hive {
 public:
  explicit Hive(std::string root_dir);

  Status CreateTable(const std::string& name, SchemaPtr schema);
  bool HasTable(const std::string& name) const;
  StatusOr<SchemaPtr> GetSchema(const std::string& name) const;

  // Appends rows to the `ds` (YYYY-MM-DD) partition of `name`.
  Status WritePartition(const std::string& name, const std::string& ds,
                        const std::vector<Row>& rows);
  // Marks a partition landed (readable). Partitions written but not landed
  // model in-flight days.
  Status LandPartition(const std::string& name, const std::string& ds);
  bool IsPartitionLanded(const std::string& name, const std::string& ds) const;

  StatusOr<std::vector<Row>> ReadPartition(const std::string& name,
                                           const std::string& ds) const;
  // Landed partitions in ascending ds order.
  StatusOr<std::vector<std::string>> ListPartitions(
      const std::string& name) const;

 private:
  struct Table {
    SchemaPtr schema;
  };

  std::string TableDir(const std::string& name) const {
    return root_ + "/" + name;
  }
  std::string PartitionFile(const std::string& name,
                            const std::string& ds) const {
    return TableDir(name) + "/ds=" + ds + ".rows";
  }
  std::string LandedMarker(const std::string& name,
                           const std::string& ds) const {
    return TableDir(name) + "/ds=" + ds + ".landed";
  }

  std::string root_;
  std::map<std::string, Table> tables_;
};

// ---------------------------------------------------------------------------
// MapReduce batch runner.

// Map emits (shuffle_key, record) pairs; Reduce folds all records of one key.
using KeyedRecord = std::pair<std::string, std::string>;
using MapFn = std::function<std::vector<KeyedRecord>(const Row&)>;
// Combines two encoded partial records; enables monoid map-side partial
// aggregation (§4.5.2: "The batch binary for monoid processors can be
// optimized to do partial aggregation in the map phase").
using CombineFn =
    std::function<std::string(const std::string&, const std::string&)>;
using ReduceFn = std::function<std::vector<Row>(
    const std::string& key, const std::vector<std::string>& records)>;

struct MapReduceSpec {
  MapFn map;
  ReduceFn reduce;     // Null = map-only job (identity shuffle, emit as-is).
  CombineFn combine;   // Optional map-side combiner.
  int num_reducers = 4;
  SchemaPtr output_schema;  // Schema of reduce-emitted rows.
};

struct MapReduceCounters {
  uint64_t map_input_rows = 0;
  uint64_t map_output_records = 0;
  uint64_t shuffle_records = 0;  // Post-combine records crossing the wire.
  uint64_t reduce_groups = 0;
};

// Runs the job over the given partitions of `table`, returning all output
// rows (and counters for tests/benches).
StatusOr<std::vector<Row>> RunMapReduce(const Hive& hive,
                                        const std::string& table,
                                        const std::vector<std::string>& dss,
                                        const MapReduceSpec& spec,
                                        MapReduceCounters* counters = nullptr);

}  // namespace fbstream::hive

#endif  // FBSTREAM_STORAGE_HIVE_HIVE_H_
