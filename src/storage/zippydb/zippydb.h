#ifndef FBSTREAM_STORAGE_ZIPPYDB_ZIPPYDB_H_
#define FBSTREAM_STORAGE_ZIPPYDB_ZIPPYDB_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/cost.h"
#include "common/retry.h"
#include "common/status.h"
#include "storage/lsm/db.h"
#include "storage/lsm/merge_operator.h"
#include "storage/lsm/write_batch.h"

namespace fbstream::zippydb {

// ZippyDB stand-in (paper §4.3.2: "Facebook's distributed key-value store
// with Paxos-style replication, built on top of RocksDB"). Also doubles as
// the HBase stand-in for Puma checkpoints.
//
// Each shard is a replica group of embedded lsm::Db instances coordinated
// through a per-shard replicated log: a write commits once a majority of
// replicas is up, is applied to every live replica, and lagging replicas
// catch up from the log when they come back — the observable behavior of a
// Paxos/Raft group, without the wire protocol. The network and quorum costs
// are a calibrated latency model charged per operation (see DESIGN.md
// substitutions): the paper's Figure 12 depends on remote *operation
// counts* and the read-vs-append cost asymmetry, both preserved here.
struct ClusterOptions {
  int num_shards = 3;
  int replication = 3;
  // Client -> shard round trip (charged once per op, plus size cost).
  double network_rtt_micros = 150;
  // Server-side service time for a point read (RocksDB read path, possibly
  // touching disk). Merge writes skip this entirely — they append to the
  // WAL/memtable without reading — which is the asymmetry behind the
  // Figure 12 append-only optimization.
  double read_service_micros = 0;
  // Paxos quorum commit charged per mutating op on top of the RTT.
  double quorum_commit_micros = 250;
  double per_kb_micros = 4;
  // Extra rounds for cross-shard two-phase commit (per participant shard).
  double txn_round_micros = 500;
  // Disable to make unit tests instant; benches keep it on.
  bool simulate_latency = true;
  std::shared_ptr<const lsm::MergeOperator> merge_operator;
  // Client-side retry for shard writes (transient quorum loss and injected
  // "zippydb.write" faults). max_attempts = 1 (the default) preserves the
  // fail-fast seed behavior. Backoff sleeps go through `clock` (null =
  // system clock); tests install a SimClock so a flapping shard's outage
  // can pass during a simulated backoff.
  RetryOptions retry{.max_attempts = 1};
  Clock* clock = nullptr;
  // Block cache shared by every replica Db in the cluster (one working set
  // across shards, as RocksDB instances share a cache within a process).
  // nullptr uses the process-wide lsm::BlockCache::Default().
  std::shared_ptr<lsm::BlockCache> block_cache;
};

class Cluster {
 public:
  // Shard replica data lives in `dir`/shard-<i>/replica-<r>.
  static StatusOr<std::unique_ptr<Cluster>> Open(const ClusterOptions& options,
                                                 const std::string& dir);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int replication() const { return options_.replication; }
  int ShardOf(std::string_view key) const;

  // Single-key client operations. Each charges one network RTT plus
  // replication cost (for writes) and tracks OpStats.
  StatusOr<std::string> Get(std::string_view key);
  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  // Append-only write: requires options.merge_operator.
  Status Merge(std::string_view key, std::string_view operand);

  // Batched reads: one RTT per *touched shard*, not per key.
  std::vector<StatusOr<std::string>> MultiGet(
      const std::vector<std::string>& keys);

  // Batched writes routed to shards; one RTT + one quorum commit per
  // touched shard. Atomic per shard, NOT across shards.
  Status WriteBatch(const lsm::WriteBatch& batch);

  // Cross-shard transaction: atomic across shards via (simulated) 2PC.
  // This is the expensive path the paper says most users avoid: "The state
  // must be saved to multiple shards, requiring a high-latency distributed
  // transaction."
  Status CommitTransaction(const lsm::WriteBatch& batch);

  // Failure injection. A shard stays writable while a majority of its
  // replicas is up and readable while at least one is up; a revived
  // replica catches up from the shard's log.
  void SetReplicaAvailable(int shard, int replica, bool available);
  // Convenience: flips every replica of the shard at once.
  void SetShardAvailable(int shard, bool available);
  int LiveReplicas(int shard) const;

  // Point-in-time scan of every key with the given prefix (merge-resolved).
  StatusOr<std::vector<std::pair<std::string, std::string>>> ScanPrefix(
      const std::string& prefix);

  OpStats& stats() { return stats_; }
  const ClusterOptions& options() const { return options_; }
  RetryPolicy::StatsSnapshot retry_stats() const { return retry_->stats(); }

  // Flushes every live replica's memtable (used by tests around restart).
  Status FlushAll();

 private:
  struct Shard {
    std::vector<std::unique_ptr<lsm::Db>> replicas;
    std::vector<bool> available;
    // Replicated log: committed batches not yet compacted away, plus the
    // index of the first entry still in `log`.
    std::vector<lsm::WriteBatch> log;
    size_t log_base = 0;
    std::vector<size_t> applied;  // Next log index to apply, per replica.
  };

  explicit Cluster(ClusterOptions options);

  void ChargeRead(size_t bytes);
  void ChargeWrite(size_t bytes);
  // Retryable unit for one shard write: consults the "zippydb.write" fault
  // site and commits under the cluster lock. Safe to retry — any failure
  // surfaced as retryable happens before the batch enters the shard log.
  Status WriteToShard(int shard_index, const lsm::WriteBatch& batch);
  // Replays pending log entries to every live replica; prunes the log
  // prefix all replicas have applied.
  Status CatchUpLocked(Shard* shard);
  // Commits a batch to the shard's log and applies it to live replicas.
  // Fails without a majority ("quorum lost").
  Status CommitToShardLocked(int shard_index, const lsm::WriteBatch& batch);
  // First live, caught-up replica for reads; null if none.
  StatusOr<lsm::Db*> ReadReplicaLocked(int shard_index);

  ClusterOptions options_;
  std::unique_ptr<RetryPolicy> retry_;
  std::vector<Shard> shards_;
  mutable std::mutex mu_;
  OpStats stats_;
};

}  // namespace fbstream::zippydb

#endif  // FBSTREAM_STORAGE_ZIPPYDB_ZIPPYDB_H_
