#include "storage/zippydb/zippydb.h"

#include <algorithm>
#include <set>

#include "common/fault.h"
#include "common/hash.h"

namespace fbstream::zippydb {

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)),
      retry_(std::make_unique<RetryPolicy>(options_.clock, options_.retry)) {}

StatusOr<std::unique_ptr<Cluster>> Cluster::Open(const ClusterOptions& options,
                                                 const std::string& dir) {
  if (options.num_shards <= 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (options.replication <= 0) {
    return Status::InvalidArgument("replication must be positive");
  }
  std::unique_ptr<Cluster> cluster(new Cluster(options));
  for (int i = 0; i < options.num_shards; ++i) {
    Shard shard;
    for (int r = 0; r < options.replication; ++r) {
      lsm::DbOptions db_options;
      db_options.merge_operator = options.merge_operator;
      db_options.block_cache = options.block_cache;
      FBSTREAM_ASSIGN_OR_RETURN(
          auto db,
          lsm::Db::Open(db_options, dir + "/shard-" + std::to_string(i) +
                                        "/replica-" + std::to_string(r)));
      shard.replicas.push_back(std::move(db));
      shard.available.push_back(true);
      shard.applied.push_back(0);
    }
    cluster->shards_.push_back(std::move(shard));
  }
  return cluster;
}

int Cluster::ShardOf(std::string_view key) const {
  return static_cast<int>(Fnv1a64(key) %
                          static_cast<uint64_t>(shards_.size()));
}

void Cluster::ChargeRead(size_t bytes) {
  stats_.reads.fetch_add(1);
  stats_.bytes.fetch_add(bytes);
  if (options_.simulate_latency) {
    SpinWaitMicros(options_.network_rtt_micros + options_.read_service_micros +
                   options_.per_kb_micros * static_cast<double>(bytes) / 1024.0);
  }
}

void Cluster::ChargeWrite(size_t bytes) {
  stats_.writes.fetch_add(1);
  stats_.bytes.fetch_add(bytes);
  if (options_.simulate_latency) {
    SpinWaitMicros(options_.network_rtt_micros + options_.quorum_commit_micros +
                   options_.per_kb_micros * static_cast<double>(bytes) / 1024.0);
  }
}

Status Cluster::CatchUpLocked(Shard* shard) {
  for (size_t r = 0; r < shard->replicas.size(); ++r) {
    if (!shard->available[r]) continue;
    while (shard->applied[r] < shard->log_base + shard->log.size()) {
      const lsm::WriteBatch& batch =
          shard->log[shard->applied[r] - shard->log_base];
      FBSTREAM_RETURN_IF_ERROR(shard->replicas[r]->Write(batch));
      ++shard->applied[r];
    }
  }
  // Compact the log prefix that every replica (live or not) has applied;
  // dead replicas pin the log so they can catch up on revival.
  size_t min_applied = shard->log_base + shard->log.size();
  for (const size_t a : shard->applied) min_applied = std::min(min_applied, a);
  while (shard->log_base < min_applied && !shard->log.empty()) {
    shard->log.erase(shard->log.begin());
    ++shard->log_base;
  }
  return Status::OK();
}

Status Cluster::CommitToShardLocked(int shard_index,
                                    const lsm::WriteBatch& batch) {
  Shard& shard = shards_[static_cast<size_t>(shard_index)];
  int live = 0;
  for (const bool a : shard.available) live += a ? 1 : 0;
  if (live * 2 <= static_cast<int>(shard.replicas.size())) {
    return Status::Unavailable("shard " + std::to_string(shard_index) +
                               ": quorum lost (" + std::to_string(live) +
                               "/" + std::to_string(shard.replicas.size()) +
                               " replicas up)");
  }
  shard.log.push_back(batch);
  const Status st = CatchUpLocked(&shard);
  if (!st.ok() && st.IsRetryable()) {
    // The batch is already committed to the shard log; a replica that
    // failed to apply it catches up on a later pass. Surfacing a retryable
    // code here would let a client retry re-append the batch (double-
    // applying merges), so demote it.
    return Status::Internal("replica apply failed: " + st.message());
  }
  return st;
}

Status Cluster::WriteToShard(int shard_index, const lsm::WriteBatch& batch) {
  return retry_->Run("zippydb.write", [&] {
    std::lock_guard<std::mutex> lock(mu_);
    FBSTREAM_RETURN_IF_ERROR(FaultRegistry::Global()->Hit("zippydb.write"));
    return CommitToShardLocked(shard_index, batch);
  });
}

StatusOr<lsm::Db*> Cluster::ReadReplicaLocked(int shard_index) {
  Shard& shard = shards_[static_cast<size_t>(shard_index)];
  FBSTREAM_RETURN_IF_ERROR(CatchUpLocked(&shard));
  for (size_t r = 0; r < shard.replicas.size(); ++r) {
    if (shard.available[r]) return shard.replicas[r].get();
  }
  return Status::Unavailable("shard " + std::to_string(shard_index) +
                             ": all replicas down");
}

StatusOr<std::string> Cluster::Get(std::string_view key) {
  StatusOr<std::string> result = Status::Unavailable("unreached");
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto db = ReadReplicaLocked(ShardOf(key));
    if (!db.ok()) return db.status();  // No replica even answered.
    result = (*db)->Get(key);
  }
  // A miss is still a remote read (NotFound travels back over the wire).
  ChargeRead(key.size() + (result.ok() ? result->size() : 0));
  return result;
}

Status Cluster::Put(std::string_view key, std::string_view value) {
  lsm::WriteBatch batch;
  batch.Put(key, value);
  FBSTREAM_RETURN_IF_ERROR(WriteToShard(ShardOf(key), batch));
  ChargeWrite(key.size() + value.size());
  return Status::OK();
}

Status Cluster::Delete(std::string_view key) {
  lsm::WriteBatch batch;
  batch.Delete(key);
  FBSTREAM_RETURN_IF_ERROR(WriteToShard(ShardOf(key), batch));
  ChargeWrite(key.size());
  return Status::OK();
}

Status Cluster::Merge(std::string_view key, std::string_view operand) {
  if (options_.merge_operator == nullptr) {
    return Status::FailedPrecondition("cluster has no merge operator");
  }
  lsm::WriteBatch batch;
  batch.Merge(key, operand);
  FBSTREAM_RETURN_IF_ERROR(WriteToShard(ShardOf(key), batch));
  stats_.merges.fetch_add(1);
  stats_.bytes.fetch_add(key.size() + operand.size());
  if (options_.simulate_latency) {
    SpinWaitMicros(options_.network_rtt_micros + options_.quorum_commit_micros +
                   options_.per_kb_micros *
                       static_cast<double>(key.size() + operand.size()) /
                       1024.0);
  }
  return Status::OK();
}

std::vector<StatusOr<std::string>> Cluster::MultiGet(
    const std::vector<std::string>& keys) {
  std::vector<StatusOr<std::string>> results;
  results.reserve(keys.size());
  std::set<int> touched;
  size_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& key : keys) {
      const int shard = ShardOf(key);
      auto db = ReadReplicaLocked(shard);
      if (!db.ok()) {
        results.push_back(db.status());
        continue;
      }
      touched.insert(shard);
      auto result = (*db)->Get(key);
      bytes += key.size() + (result.ok() ? result->size() : 0);
      results.push_back(std::move(result));
    }
  }
  stats_.reads.fetch_add(touched.size());
  stats_.bytes.fetch_add(bytes);
  if (options_.simulate_latency && !touched.empty()) {
    // Shard fan-out happens in parallel; charge the per-shard RTT once and
    // the byte cost serially (client NIC bound).
    SpinWaitMicros(options_.network_rtt_micros +
                   options_.per_kb_micros * static_cast<double>(bytes) /
                       1024.0);
  }
  return results;
}

Status Cluster::WriteBatch(const lsm::WriteBatch& batch) {
  std::vector<lsm::WriteBatch> per_shard(shards_.size());
  size_t bytes = 0;
  for (const lsm::WriteBatch::Op& op : batch.ops()) {
    auto& b = per_shard[static_cast<size_t>(ShardOf(op.key))];
    switch (op.type) {
      case lsm::EntryType::kPut:
        b.Put(op.key, op.value);
        break;
      case lsm::EntryType::kDelete:
        b.Delete(op.key);
        break;
      case lsm::EntryType::kMerge:
        if (options_.merge_operator == nullptr) {
          return Status::FailedPrecondition("cluster has no merge operator");
        }
        b.Merge(op.key, op.value);
        break;
    }
    bytes += op.key.size() + op.value.size();
  }
  // Per-shard commits retry independently: a shard that already committed
  // is never re-sent when a later shard's attempt has to back off.
  int touched = 0;
  for (size_t i = 0; i < per_shard.size(); ++i) {
    if (per_shard[i].empty()) continue;
    ++touched;
    FBSTREAM_RETURN_IF_ERROR(
        WriteToShard(static_cast<int>(i), per_shard[i]));
  }
  stats_.writes.fetch_add(static_cast<uint64_t>(touched));
  stats_.bytes.fetch_add(bytes);
  if (options_.simulate_latency && touched > 0) {
    SpinWaitMicros(options_.network_rtt_micros + options_.quorum_commit_micros +
                   options_.per_kb_micros * static_cast<double>(bytes) /
                       1024.0);
  }
  return Status::OK();
}

Status Cluster::CommitTransaction(const lsm::WriteBatch& batch) {
  // Figure out the participant set first (2PC prepare).
  std::set<int> participants;
  size_t bytes = 0;
  std::vector<lsm::WriteBatch> per_shard(shards_.size());
  for (const lsm::WriteBatch::Op& op : batch.ops()) {
    const int shard = ShardOf(op.key);
    participants.insert(shard);
    auto& b = per_shard[static_cast<size_t>(shard)];
    switch (op.type) {
      case lsm::EntryType::kPut:
        b.Put(op.key, op.value);
        break;
      case lsm::EntryType::kDelete:
        b.Delete(op.key);
        break;
      case lsm::EntryType::kMerge:
        b.Merge(op.key, op.value);
        break;
    }
    bytes += op.key.size() + op.value.size();
  }
  // Prepare failures commit nothing, so the whole transaction is safe to
  // retry; commit-phase failures surface as non-retryable (the batches are
  // in the shard logs already).
  FBSTREAM_RETURN_IF_ERROR(retry_->Run("zippydb.txn", [&] {
    std::lock_guard<std::mutex> lock(mu_);
    FBSTREAM_RETURN_IF_ERROR(FaultRegistry::Global()->Hit("zippydb.write"));
    // Prepare: every participant must have a write quorum, checked before
    // anything is applied (atomicity on failure).
    for (const int shard_index : participants) {
      const Shard& shard = shards_[static_cast<size_t>(shard_index)];
      int live = 0;
      for (const bool a : shard.available) live += a ? 1 : 0;
      if (live * 2 <= static_cast<int>(shard.replicas.size())) {
        return Status::Unavailable("txn prepare: shard " +
                                   std::to_string(shard_index) +
                                   " lost quorum");
      }
    }
    // Commit point: apply all participant batches under the lock.
    for (size_t i = 0; i < per_shard.size(); ++i) {
      if (per_shard[i].empty()) continue;
      FBSTREAM_RETURN_IF_ERROR(
          CommitToShardLocked(static_cast<int>(i), per_shard[i]));
    }
    return Status::OK();
  }));
  if (options_.simulate_latency) {
    // Prepare + commit rounds, serialized across participants (the
    // "high-latency distributed transaction" of §4.3.2).
    SpinWaitMicros(static_cast<double>(participants.size()) * 2.0 *
                       options_.txn_round_micros +
                   options_.per_kb_micros * static_cast<double>(bytes) /
                       1024.0);
  }
  stats_.writes.fetch_add(participants.size());
  stats_.bytes.fetch_add(bytes);
  return Status::OK();
}

void Cluster::SetReplicaAvailable(int shard, int replica, bool available) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard < 0 || static_cast<size_t>(shard) >= shards_.size()) return;
  Shard& s = shards_[static_cast<size_t>(shard)];
  if (replica < 0 || static_cast<size_t>(replica) >= s.available.size()) {
    return;
  }
  s.available[static_cast<size_t>(replica)] = available;
}

void Cluster::SetShardAvailable(int shard, bool available) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard < 0 || static_cast<size_t>(shard) >= shards_.size()) return;
  Shard& s = shards_[static_cast<size_t>(shard)];
  for (size_t r = 0; r < s.available.size(); ++r) s.available[r] = available;
}

int Cluster::LiveReplicas(int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard < 0 || static_cast<size_t>(shard) >= shards_.size()) return 0;
  const Shard& s = shards_[static_cast<size_t>(shard)];
  int live = 0;
  for (const bool a : s.available) live += a ? 1 : 0;
  return live;
}

StatusOr<std::vector<std::pair<std::string, std::string>>>
Cluster::ScanPrefix(const std::string& prefix) {
  std::vector<std::pair<std::string, std::string>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < shards_.size(); ++i) {
      FBSTREAM_ASSIGN_OR_RETURN(lsm::Db * db,
                                ReadReplicaLocked(static_cast<int>(i)));
      auto it = db->NewIterator();
      it.Seek(prefix);
      for (; it.Valid(); it.Next()) {
        if (it.key().compare(0, prefix.size(), prefix) != 0) break;
        out.emplace_back(it.key(), it.value());
      }
    }
  }
  std::sort(out.begin(), out.end());
  ChargeRead(0);
  return out;
}

Status Cluster::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Shard& shard : shards_) {
    for (size_t r = 0; r < shard.replicas.size(); ++r) {
      if (!shard.available[r]) continue;
      FBSTREAM_RETURN_IF_ERROR(shard.replicas[r]->Flush());
    }
  }
  return Status::OK();
}

}  // namespace fbstream::zippydb
