#include "storage/lsm/merge_operator.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace fbstream::lsm {

namespace {

int64_t ParseInt64(std::string_view s) {
  return strtoll(std::string(s).c_str(), nullptr, 10);
}

class Int64AddOperator : public MergeOperator {
 public:
  const char* Name() const override { return "int64_add"; }

  bool FullMerge(std::string_view /*key*/, const std::string* existing,
                 const std::vector<std::string>& operands,
                 std::string* result) const override {
    int64_t sum = existing != nullptr ? ParseInt64(*existing) : 0;
    for (const std::string& op : operands) sum += ParseInt64(op);
    *result = std::to_string(sum);
    return true;
  }

  bool PartialMerge(std::string_view /*key*/, std::string_view left,
                    std::string_view right,
                    std::string* result) const override {
    *result = std::to_string(ParseInt64(left) + ParseInt64(right));
    return true;
  }
};

class StringAppendOperator : public MergeOperator {
 public:
  explicit StringAppendOperator(char sep) : sep_(sep) {}

  const char* Name() const override { return "string_append"; }

  bool FullMerge(std::string_view /*key*/, const std::string* existing,
                 const std::vector<std::string>& operands,
                 std::string* result) const override {
    result->clear();
    if (existing != nullptr) *result = *existing;
    for (const std::string& op : operands) {
      if (!result->empty()) result->push_back(sep_);
      result->append(op);
    }
    return true;
  }

  bool PartialMerge(std::string_view /*key*/, std::string_view left,
                    std::string_view right,
                    std::string* result) const override {
    result->assign(left);
    if (!result->empty() && !right.empty()) result->push_back(sep_);
    result->append(right);
    return true;
  }

 private:
  char sep_;
};

class Int64MaxOperator : public MergeOperator {
 public:
  const char* Name() const override { return "int64_max"; }

  bool FullMerge(std::string_view /*key*/, const std::string* existing,
                 const std::vector<std::string>& operands,
                 std::string* result) const override {
    int64_t best = existing != nullptr ? ParseInt64(*existing)
                                       : std::numeric_limits<int64_t>::min();
    for (const std::string& op : operands) {
      best = std::max(best, ParseInt64(op));
    }
    *result = std::to_string(best);
    return true;
  }

  bool PartialMerge(std::string_view /*key*/, std::string_view left,
                    std::string_view right,
                    std::string* result) const override {
    *result = std::to_string(std::max(ParseInt64(left), ParseInt64(right)));
    return true;
  }
};

}  // namespace

std::unique_ptr<MergeOperator> MakeInt64AddOperator() {
  return std::make_unique<Int64AddOperator>();
}

std::unique_ptr<MergeOperator> MakeStringAppendOperator(char separator) {
  return std::make_unique<StringAppendOperator>(separator);
}

std::unique_ptr<MergeOperator> MakeInt64MaxOperator() {
  return std::make_unique<Int64MaxOperator>();
}

}  // namespace fbstream::lsm
