#include "storage/lsm/db.h"

#include <algorithm>

#include "common/fs.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/serde.h"

namespace fbstream::lsm {

namespace {
constexpr char kManifestFile[] = "MANIFEST";
constexpr char kWalFile[] = "wal.log";

std::string ManifestEncode(SequenceNumber last_sequence,
                           uint64_t next_file_number,
                           const std::vector<uint64_t>& l0,
                           const std::vector<uint64_t>& l1) {
  std::string out;
  PutVarint64(&out, last_sequence);
  PutVarint64(&out, next_file_number);
  PutVarint64(&out, l0.size());
  for (const uint64_t n : l0) PutVarint64(&out, n);
  PutVarint64(&out, l1.size());
  for (const uint64_t n : l1) PutVarint64(&out, n);
  return out;
}

Status ManifestDecode(std::string_view data, SequenceNumber* last_sequence,
                      uint64_t* next_file_number, std::vector<uint64_t>* l0,
                      std::vector<uint64_t>* l1) {
  uint64_t n0 = 0;
  uint64_t n1 = 0;
  if (!GetVarint64(&data, last_sequence) ||
      !GetVarint64(&data, next_file_number) || !GetVarint64(&data, &n0)) {
    return Status::Corruption("manifest header");
  }
  for (uint64_t i = 0; i < n0; ++i) {
    uint64_t f = 0;
    if (!GetVarint64(&data, &f)) return Status::Corruption("manifest l0");
    l0->push_back(f);
  }
  if (!GetVarint64(&data, &n1)) return Status::Corruption("manifest l1");
  for (uint64_t i = 0; i < n1; ++i) {
    uint64_t f = 0;
    if (!GetVarint64(&data, &f)) return Status::Corruption("manifest l1");
    l1->push_back(f);
  }
  return Status::OK();
}
}  // namespace

Db::Db(DbOptions options, std::string dir)
    : options_(std::move(options)), dir_(std::move(dir)) {}

Db::~Db() { wal_.Close(); }

StatusOr<std::unique_ptr<Db>> Db::Open(const DbOptions& options,
                                       const std::string& dir) {
  FBSTREAM_RETURN_IF_ERROR(CreateDirs(dir));
  std::unique_ptr<Db> db(new Db(options, dir));
  std::lock_guard<std::mutex> lock(db->mu_);
  FBSTREAM_RETURN_IF_ERROR(db->RecoverLocked());
  return db;
}

std::string Db::SstPath(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "/%06llu.sst",
           static_cast<unsigned long long>(number));
  return dir_ + buf;
}

Status Db::RecoverLocked() {
  const std::string manifest_path = dir_ + "/" + kManifestFile;
  if (FileExists(manifest_path)) {
    FBSTREAM_ASSIGN_OR_RETURN(std::string data,
                              ReadFileToString(manifest_path));
    std::vector<uint64_t> l0;
    std::vector<uint64_t> l1;
    FBSTREAM_RETURN_IF_ERROR(
        ManifestDecode(data, &last_sequence_, &next_file_number_, &l0, &l1));
    for (const uint64_t n : l0) {
      FBSTREAM_ASSIGN_OR_RETURN(auto reader, SstReader::Open(SstPath(n)));
      level0_.push_back(FileMeta{n, std::move(reader)});
    }
    for (const uint64_t n : l1) {
      FBSTREAM_ASSIGN_OR_RETURN(auto reader, SstReader::Open(SstPath(n)));
      level1_.push_back(FileMeta{n, std::move(reader)});
    }
  }
  // Replay the WAL into the memtable: these are writes that were
  // acknowledged but not yet flushed when the process stopped.
  const std::string wal_path = dir_ + "/" + kWalFile;
  FBSTREAM_RETURN_IF_ERROR(ReplayWal(
      wal_path, [this](SequenceNumber first, const WriteBatch& batch) {
        SequenceNumber seq = first;
        for (const WriteBatch::Op& op : batch.ops()) {
          memtable_.Add(seq, op.type, op.key, op.value);
          last_sequence_ = std::max(last_sequence_, seq);
          ++seq;
        }
      }));
  return wal_.Open(wal_path);
}

Status Db::Put(std::string_view key, std::string_view value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(batch);
}

Status Db::Delete(std::string_view key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(batch);
}

Status Db::Merge(std::string_view key, std::string_view operand) {
  if (options_.merge_operator == nullptr) {
    return Status::FailedPrecondition("no merge operator configured");
  }
  WriteBatch batch;
  batch.Merge(key, operand);
  return Write(batch);
}

Status Db::Write(const WriteBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  return WriteLocked(batch);
}

Status Db::WriteLocked(const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  // LSM metrics are process-global (a node may own many shard-local Dbs;
  // the interesting signal is aggregate flush/compaction pressure).
  static Counter* wal_appends =
      MetricsRegistry::Global()->GetCounter("lsm.wal.appends");
  static Counter* wal_bytes =
      MetricsRegistry::Global()->GetCounter("lsm.wal.bytes");
  const SequenceNumber first = last_sequence_ + 1;
  FBSTREAM_RETURN_IF_ERROR(wal_.AddRecord(first, batch));
  SequenceNumber seq = first;
  uint64_t bytes = 0;
  for (const WriteBatch::Op& op : batch.ops()) {
    memtable_.Add(seq, op.type, op.key, op.value);
    bytes += op.key.size() + op.value.size();
    ++seq;
  }
  wal_appends->Add();
  wal_bytes->Add(bytes);
  last_sequence_ = seq - 1;
  if (memtable_.ApproximateBytes() >= options_.memtable_bytes) {
    return FlushLocked();
  }
  return Status::OK();
}

StatusOr<std::string> Db::Get(std::string_view key) const {
  return Get(key, nullptr);
}

StatusOr<std::string> Db::Get(std::string_view key,
                              const DbSnapshot* snapshot) const {
  std::lock_guard<std::mutex> lock(mu_);
  const SequenceNumber read_seq =
      snapshot != nullptr ? snapshot->sequence() : last_sequence_;
  return GetLocked(key, read_seq);
}

StatusOr<std::string> Db::GetLocked(std::string_view key,
                                    SequenceNumber read_seq) const {
  LookupState state;
  memtable_.Get(key, read_seq, &state);
  if (!state.found_base) {
    // L0 files can overlap; newest file (appended last) wins.
    for (auto it = level0_.rbegin(); it != level0_.rend(); ++it) {
      it->reader->Get(key, read_seq, &state);
      if (state.found_base) break;
    }
  }
  if (!state.found_base && !level1_.empty()) {
    // L1 ranges are disjoint: binary search the file covering `key`.
    auto it = std::lower_bound(level1_.begin(), level1_.end(), key,
                               [](const FileMeta& f, std::string_view k) {
                                 return f.reader->largest() < k;
                               });
    if (it != level1_.end() && it->reader->smallest() <= std::string(key)) {
      it->reader->Get(key, read_seq, &state);
    }
  }
  return ResolveLookup(key, state);
}

StatusOr<std::string> Db::ResolveLookup(std::string_view key,
                                        const LookupState& state) const {
  if (state.operands.empty()) {
    if (!state.found_base || state.base_is_delete) {
      return Status::NotFound(std::string(key));
    }
    return state.base_value;
  }
  if (options_.merge_operator == nullptr) {
    return Status::Corruption("merge operands but no merge operator");
  }
  const std::string* existing =
      state.found_base && !state.base_is_delete ? &state.base_value : nullptr;
  std::string result;
  if (!options_.merge_operator->FullMerge(key, existing, state.operands,
                                          &result)) {
    return Status::Corruption("merge failed for key " + std::string(key));
  }
  return result;
}

Status Db::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status Db::FlushLocked() {
  if (memtable_.empty()) return Status::OK();
  static Counter* flush_count =
      MetricsRegistry::Global()->GetCounter("lsm.flush.count");
  static Histogram* flush_latency =
      MetricsRegistry::Global()->GetHistogram("lsm.flush.latency_us");
  {
    // Scoped so a flush-triggered compaction below is not billed as flush
    // time (it has its own histogram).
    ScopedLatencyTimer timer(flush_latency);
    const uint64_t number = next_file_number_++;
    SstWriter writer;
    for (const Entry& e : memtable_.Snapshot()) writer.Add(e);
    FBSTREAM_RETURN_IF_ERROR(writer.Finish(SstPath(number)));
    FBSTREAM_ASSIGN_OR_RETURN(auto reader, SstReader::Open(SstPath(number)));
    level0_.push_back(FileMeta{number, std::move(reader)});
    FBSTREAM_RETURN_IF_ERROR(PersistManifestLocked());
    memtable_.Clear();
    // The WAL's contents are now durable in the SST; start a fresh log.
    wal_.Close();
    FBSTREAM_RETURN_IF_ERROR(RemoveFile(dir_ + "/" + kWalFile));
    FBSTREAM_RETURN_IF_ERROR(wal_.Open(dir_ + "/" + kWalFile));
    ++flushes_;
    flush_count->Add();
  }
  if (static_cast<int>(level0_.size()) >= options_.l0_compaction_trigger) {
    return CompactLocked();
  }
  return Status::OK();
}

Status Db::CompactAll() {
  std::lock_guard<std::mutex> lock(mu_);
  FBSTREAM_RETURN_IF_ERROR(FlushLocked());
  return CompactLocked();
}

SequenceNumber Db::OldestLiveSnapshotLocked() const {
  return live_snapshots_.empty() ? kMaxSequence : *live_snapshots_.begin();
}

Status Db::CompactLocked() {
  if (level0_.empty() && level1_.size() <= 1) return Status::OK();
  static Counter* compaction_count =
      MetricsRegistry::Global()->GetCounter("lsm.compaction.count");
  static Histogram* compaction_latency =
      MetricsRegistry::Global()->GetHistogram("lsm.compaction.latency_us");
  ScopedLatencyTimer timer(compaction_latency);

  // Merge every L0 and L1 file (a full compaction into the bottom level;
  // our two-level scheme keeps range bookkeeping trivial at this scale).
  struct Source {
    SstReader::Iterator it;
    // Tie-break: newer files (higher number) win on equal internal keys.
    uint64_t number;
  };
  std::vector<Source> sources;
  std::vector<uint64_t> obsolete;
  for (const FileMeta& f : level0_) {
    sources.push_back(Source{f.reader->NewIterator(), f.number});
    obsolete.push_back(f.number);
  }
  for (const FileMeta& f : level1_) {
    sources.push_back(Source{f.reader->NewIterator(), f.number});
    obsolete.push_back(f.number);
  }
  for (Source& s : sources) s.it.SeekToFirst();

  const bool snapshots_live = !live_snapshots_.empty();
  const MergeOperator* merge_op = options_.merge_operator.get();

  std::vector<FileMeta> new_level1;
  SstWriter writer;
  auto maybe_roll = [&]() -> Status {
    if (writer.ApproximateBytes() < options_.target_sst_bytes) {
      return Status::OK();
    }
    const uint64_t number = next_file_number_++;
    FBSTREAM_RETURN_IF_ERROR(writer.Finish(SstPath(number)));
    FBSTREAM_ASSIGN_OR_RETURN(auto reader, SstReader::Open(SstPath(number)));
    new_level1.push_back(FileMeta{number, std::move(reader)});
    writer = SstWriter();
    return Status::OK();
  };

  auto pop_smallest = [&]() -> const Entry* {
    int best = -1;
    for (size_t i = 0; i < sources.size(); ++i) {
      if (!sources[i].it.Valid()) continue;
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      const int c = sources[i].it.entry().key.Compare(
          sources[best].it.entry().key);
      if (c < 0 || (c == 0 && sources[i].number > sources[best].number)) {
        best = static_cast<int>(i);
      }
    }
    return best < 0 ? nullptr
                    : &sources[static_cast<size_t>(best)].it.entry();
  };
  auto advance_smallest = [&](const Entry* e) {
    for (Source& s : sources) {
      if (s.it.Valid() && &s.it.entry() == e) {
        s.it.Next();
        return;
      }
    }
  };

  // Process one user key at a time.
  while (true) {
    const Entry* first = pop_smallest();
    if (first == nullptr) break;
    const std::string user_key = first->key.user_key;

    // Collect the full chain for this key, newest first. Exact-duplicate
    // internal keys (same sequence, from a file that was both in L0 and
    // rewritten) keep only the newest file's copy.
    std::vector<Entry> chain;
    while (true) {
      const Entry* e = pop_smallest();
      if (e == nullptr || e->key.user_key != user_key) break;
      if (chain.empty() || chain.back().key.sequence != e->key.sequence) {
        chain.push_back(*e);
      }
      advance_smallest(e);
    }

    if (snapshots_live) {
      // Conservative: with live snapshots every version stays visible to
      // someone; rewrite the chain untouched.
      for (const Entry& e : chain) {
        writer.Add(e);
        FBSTREAM_RETURN_IF_ERROR(maybe_roll());
      }
      continue;
    }

    // No snapshots: resolve the chain to at most one entry. This is the
    // bottom level, so tombstones and shadowed versions can be elided and
    // merge chains fully applied.
    std::vector<std::string> operands_newest_first;
    bool found_base = false;
    bool base_is_delete = false;
    std::string base_value;
    SequenceNumber newest_seq = chain.empty() ? 0 : chain[0].key.sequence;
    for (const Entry& e : chain) {
      if (e.key.type == EntryType::kMerge) {
        operands_newest_first.push_back(e.value);
        continue;
      }
      found_base = true;
      base_is_delete = e.key.type == EntryType::kDelete;
      if (!base_is_delete) base_value = e.value;
      break;
    }
    if (operands_newest_first.empty()) {
      if (found_base && !base_is_delete) {
        writer.Add(Entry{InternalKey{user_key, newest_seq, EntryType::kPut},
                         base_value});
        FBSTREAM_RETURN_IF_ERROR(maybe_roll());
      }
      // Deletes and absent keys vanish at the bottom level.
      continue;
    }
    std::vector<std::string> operands(operands_newest_first.rbegin(),
                                      operands_newest_first.rend());
    std::string resolved;
    if (merge_op != nullptr &&
        merge_op->FullMerge(
            user_key,
            found_base && !base_is_delete ? &base_value : nullptr, operands,
            &resolved)) {
      writer.Add(Entry{InternalKey{user_key, newest_seq, EntryType::kPut},
                       resolved});
      FBSTREAM_RETURN_IF_ERROR(maybe_roll());
    } else {
      // Cannot resolve (no operator): keep the chain as-is.
      for (const Entry& e : chain) {
        writer.Add(e);
        FBSTREAM_RETURN_IF_ERROR(maybe_roll());
      }
    }
  }

  if (writer.num_entries() > 0) {
    const uint64_t number = next_file_number_++;
    FBSTREAM_RETURN_IF_ERROR(writer.Finish(SstPath(number)));
    FBSTREAM_ASSIGN_OR_RETURN(auto reader, SstReader::Open(SstPath(number)));
    new_level1.push_back(FileMeta{number, std::move(reader)});
  }

  level0_.clear();
  level1_ = std::move(new_level1);
  FBSTREAM_RETURN_IF_ERROR(PersistManifestLocked());
  for (const uint64_t n : obsolete) {
    const Status st = RemoveFile(SstPath(n));
    if (!st.ok()) FBSTREAM_LOG(Warning) << "gc " << SstPath(n) << ": " << st;
  }
  ++compactions_;
  compaction_count->Add();
  return Status::OK();
}

Status Db::PersistManifestLocked() {
  std::vector<uint64_t> l0;
  std::vector<uint64_t> l1;
  for (const FileMeta& f : level0_) l0.push_back(f.number);
  for (const FileMeta& f : level1_) l1.push_back(f.number);
  return WriteFileAtomic(
      dir_ + "/" + kManifestFile,
      ManifestEncode(last_sequence_, next_file_number_, l0, l1));
}

const DbSnapshot* Db::GetSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  live_snapshots_.insert(last_sequence_);
  return new DbSnapshot(last_sequence_);
}

void Db::ReleaseSnapshot(const DbSnapshot* snapshot) {
  if (snapshot == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_snapshots_.find(snapshot->sequence());
  if (it != live_snapshots_.end()) live_snapshots_.erase(it);
  delete snapshot;
}

SequenceNumber Db::LatestSequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_sequence_;
}

Db::Iterator Db::NewIterator(const DbSnapshot* snapshot) const {
  std::lock_guard<std::mutex> lock(mu_);
  const SequenceNumber read_seq =
      snapshot != nullptr ? snapshot->sequence() : last_sequence_;
  std::vector<Iterator::Source> sources;
  {
    Iterator::Source s;
    s.entries = memtable_.Snapshot();
    sources.push_back(std::move(s));
  }
  auto add_file = [&sources](const FileMeta& f) {
    Iterator::Source s;
    s.entries.reserve(f.reader->num_entries());
    for (auto it = f.reader->NewIterator(); it.Valid(); it.Next()) {
      s.entries.push_back(it.entry());
    }
    sources.push_back(std::move(s));
  };
  for (const FileMeta& f : level0_) add_file(f);
  for (const FileMeta& f : level1_) add_file(f);
  return Iterator(std::move(sources), read_seq,
                  options_.merge_operator.get());
}

Db::Iterator::Iterator(std::vector<Source> sources, SequenceNumber read_seq,
                       const MergeOperator* merge_op)
    : sources_(std::move(sources)), read_seq_(read_seq), merge_op_(merge_op) {
  ResolveNext();
}

const Entry* Db::Iterator::PeekSmallest(int* source_index) const {
  int best = -1;
  for (size_t i = 0; i < sources_.size(); ++i) {
    const Source& s = sources_[i];
    if (s.pos >= s.entries.size()) continue;
    if (best < 0 ||
        s.entries[s.pos].key.Compare(
            sources_[static_cast<size_t>(best)]
                .entries[sources_[static_cast<size_t>(best)].pos]
                .key) < 0) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return nullptr;
  *source_index = best;
  return &sources_[static_cast<size_t>(best)]
              .entries[sources_[static_cast<size_t>(best)].pos];
}

void Db::Iterator::ResolveNext() {
  valid_ = false;
  while (true) {
    int idx = -1;
    const Entry* first = PeekSmallest(&idx);
    if (first == nullptr) return;
    const std::string user_key = first->key.user_key;

    std::vector<std::string> operands_newest_first;
    bool found_base = false;
    bool base_is_delete = false;
    std::string base_value;
    bool chain_done = false;
    SequenceNumber last_seen_seq = kMaxSequence;
    while (true) {
      int i = -1;
      const Entry* e = PeekSmallest(&i);
      if (e == nullptr || e->key.user_key != user_key) break;
      const Entry entry = *e;
      sources_[static_cast<size_t>(i)].pos++;  // Consume.
      if (entry.key.sequence > read_seq_) continue;  // Invisible version.
      if (chain_done) continue;  // Shadowed by a newer base.
      if (entry.key.sequence == last_seen_seq) continue;  // Duplicate.
      last_seen_seq = entry.key.sequence;
      if (entry.key.type == EntryType::kMerge) {
        operands_newest_first.push_back(entry.value);
        continue;
      }
      found_base = true;
      base_is_delete = entry.key.type == EntryType::kDelete;
      if (!base_is_delete) base_value = entry.value;
      chain_done = true;
    }

    if (operands_newest_first.empty()) {
      if (!found_base || base_is_delete) continue;  // Not visible.
      key_ = user_key;
      value_ = base_value;
      valid_ = true;
      return;
    }
    if (merge_op_ == nullptr) continue;  // Unresolvable; skip.
    std::vector<std::string> operands(operands_newest_first.rbegin(),
                                      operands_newest_first.rend());
    std::string resolved;
    if (!merge_op_->FullMerge(
            user_key, found_base && !base_is_delete ? &base_value : nullptr,
            operands, &resolved)) {
      continue;
    }
    key_ = user_key;
    value_ = resolved;
    valid_ = true;
    return;
  }
}

void Db::Iterator::Next() {
  if (!valid_) return;
  ResolveNext();
}

void Db::Iterator::Seek(std::string_view target) {
  for (Source& s : sources_) {
    auto it = std::lower_bound(s.entries.begin(), s.entries.end(), target,
                               [](const Entry& e, std::string_view k) {
                                 return e.key.user_key < k;
                               });
    s.pos = static_cast<size_t>(it - s.entries.begin());
  }
  ResolveNext();
}

void Db::Iterator::SeekToFirst() {
  for (Source& s : sources_) s.pos = 0;
  ResolveNext();
}

Status Db::CreateBackup(
    const std::function<Status(const std::string& name,
                               const std::string& contents)>& sink) {
  std::lock_guard<std::mutex> lock(mu_);
  FBSTREAM_RETURN_IF_ERROR(FlushLocked());
  // An empty database may never have flushed; make sure the MANIFEST exists
  // so the backup is openable.
  FBSTREAM_RETURN_IF_ERROR(PersistManifestLocked());
  std::vector<std::string> names;
  for (const FileMeta& f : level0_) {
    names.push_back(SstPath(f.number).substr(dir_.size() + 1));
  }
  for (const FileMeta& f : level1_) {
    names.push_back(SstPath(f.number).substr(dir_.size() + 1));
  }
  names.push_back(kManifestFile);
  for (const std::string& name : names) {
    FBSTREAM_ASSIGN_OR_RETURN(std::string data,
                              ReadFileToString(dir_ + "/" + name));
    FBSTREAM_RETURN_IF_ERROR(sink(name, data));
  }
  return Status::OK();
}

Status Db::RestoreBackup(
    const std::function<StatusOr<std::vector<std::string>>()>& list,
    const std::function<StatusOr<std::string>(const std::string&)>& read,
    const std::string& dir) {
  if (FileExists(dir + "/" + kManifestFile)) {
    return Status::AlreadyExists("database exists in " + dir);
  }
  FBSTREAM_RETURN_IF_ERROR(CreateDirs(dir));
  FBSTREAM_ASSIGN_OR_RETURN(std::vector<std::string> names, list());
  for (const std::string& name : names) {
    FBSTREAM_ASSIGN_OR_RETURN(std::string data, read(name));
    FBSTREAM_RETURN_IF_ERROR(WriteFileAtomic(dir + "/" + name, data));
  }
  return Status::OK();
}

Status Db::CreateBackupToDir(const std::string& backup_dir) {
  FBSTREAM_RETURN_IF_ERROR(CreateDirs(backup_dir));
  return CreateBackup(
      [&backup_dir](const std::string& name, const std::string& data) {
        return WriteFileAtomic(backup_dir + "/" + name, data);
      });
}

Status Db::RestoreBackupFromDir(const std::string& backup_dir,
                                const std::string& dir) {
  return RestoreBackup(
      [&backup_dir]() { return ListDir(backup_dir); },
      [&backup_dir](const std::string& name) {
        return ReadFileToString(backup_dir + "/" + name);
      },
      dir);
}

Db::Stats Db::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.memtable_bytes = memtable_.ApproximateBytes();
  stats.memtable_entries = memtable_.num_entries();
  stats.l0_files = static_cast<int>(level0_.size());
  stats.l1_files = static_cast<int>(level1_.size());
  stats.flushes = flushes_;
  stats.compactions = compactions_;
  return stats;
}

}  // namespace fbstream::lsm
