#include "storage/lsm/db.h"

#include <algorithm>
#include <set>

#include "common/fault.h"
#include "common/fs.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/serde.h"

namespace fbstream::lsm {

namespace {
constexpr char kManifestFile[] = "MANIFEST";
// Writer groups are capped so one giant batch cannot starve followers of
// latency behind a single enormous fwrite.
constexpr size_t kMaxGroupBytes = 1u << 20;

std::string ManifestEncode(SequenceNumber last_sequence,
                           uint64_t next_file_number,
                           const std::vector<uint64_t>& l0,
                           const std::vector<uint64_t>& l1) {
  std::string out;
  PutVarint64(&out, last_sequence);
  PutVarint64(&out, next_file_number);
  PutVarint64(&out, l0.size());
  for (const uint64_t n : l0) PutVarint64(&out, n);
  PutVarint64(&out, l1.size());
  for (const uint64_t n : l1) PutVarint64(&out, n);
  return out;
}

Status ManifestDecode(std::string_view data, SequenceNumber* last_sequence,
                      uint64_t* next_file_number, std::vector<uint64_t>* l0,
                      std::vector<uint64_t>* l1) {
  uint64_t n0 = 0;
  uint64_t n1 = 0;
  if (!GetVarint64(&data, last_sequence) ||
      !GetVarint64(&data, next_file_number) || !GetVarint64(&data, &n0)) {
    return Status::Corruption("manifest header");
  }
  for (uint64_t i = 0; i < n0; ++i) {
    uint64_t f = 0;
    if (!GetVarint64(&data, &f)) return Status::Corruption("manifest l0");
    l0->push_back(f);
  }
  if (!GetVarint64(&data, &n1)) return Status::Corruption("manifest l1");
  for (uint64_t i = 0; i < n1; ++i) {
    uint64_t f = 0;
    if (!GetVarint64(&data, &f)) return Status::Corruption("manifest l1");
    l1->push_back(f);
  }
  return Status::OK();
}

// All-digits check for recovery-time filename parsing.
bool ParseNumber(std::string_view digits, uint64_t* out) {
  if (digits.empty()) return false;
  uint64_t n = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    n = n * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = n;
  return true;
}
}  // namespace

Db::Db(DbOptions options, std::string dir)
    : options_(std::move(options)),
      dir_(std::move(dir)),
      cache_(options_.block_cache != nullptr ? options_.block_cache
                                             : BlockCache::Default()) {}

Db::~Db() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  if (bg_thread_.joinable()) bg_thread_.join();
  // An unflushed memtable (and any abandoned imm_) is recovered from its
  // retained WAL files on the next Open.
}

StatusOr<std::unique_ptr<Db>> Db::Open(const DbOptions& options,
                                       const std::string& dir) {
  FBSTREAM_RETURN_IF_ERROR(CreateDirs(dir));
  std::unique_ptr<Db> db(new Db(options, dir));
  {
    std::lock_guard<std::mutex> lock(db->mu_);
    FBSTREAM_RETURN_IF_ERROR(db->RecoverLocked());
  }
  db->bg_thread_ = std::thread(&Db::BackgroundThread, db.get());
  return db;
}

std::string Db::SstPath(uint64_t number) const {
  char buf[32];
  snprintf(buf, sizeof(buf), "/%06llu.sst",
           static_cast<unsigned long long>(number));
  return dir_ + buf;
}

std::string Db::WalPath(uint64_t number) const {
  // Number 0 is the legacy single-log name from before per-memtable WALs.
  if (number == 0) return dir_ + "/wal.log";
  char buf[32];
  snprintf(buf, sizeof(buf), "/wal-%06llu.log",
           static_cast<unsigned long long>(number));
  return dir_ + buf;
}

Status Db::RecoverLocked() {
  const std::string manifest_path = dir_ + "/" + kManifestFile;
  if (FileExists(manifest_path)) {
    FBSTREAM_ASSIGN_OR_RETURN(std::string data,
                              ReadFileToString(manifest_path));
    std::vector<uint64_t> l0;
    std::vector<uint64_t> l1;
    FBSTREAM_RETURN_IF_ERROR(
        ManifestDecode(data, &last_allocated_, &next_file_number_, &l0, &l1));
    for (const uint64_t n : l0) {
      FBSTREAM_ASSIGN_OR_RETURN(auto reader,
                                SstReader::Open(SstPath(n), cache_));
      level0_.push_back(FileMeta{n, std::move(reader)});
    }
    for (const uint64_t n : l1) {
      FBSTREAM_ASSIGN_OR_RETURN(auto reader,
                                SstReader::Open(SstPath(n), cache_));
      level1_.push_back(FileMeta{n, std::move(reader)});
    }
  }

  FBSTREAM_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir_));
  std::vector<uint64_t> wal_numbers;
  for (const std::string& name : names) {
    if (name == "wal.log") {
      wal_numbers.push_back(0);
      continue;
    }
    uint64_t n = 0;
    if (name.size() > 8 && name.rfind("wal-", 0) == 0 &&
        name.compare(name.size() - 4, 4, ".log") == 0 &&
        ParseNumber(std::string_view(name).substr(4, name.size() - 8), &n)) {
      wal_numbers.push_back(n);
    }
  }
  std::sort(wal_numbers.begin(), wal_numbers.end());

  // Replay every WAL in write order into a fresh memtable: these are writes
  // that were acknowledged but not yet flushed when the process stopped.
  mem_ = std::make_shared<MemTable>();
  for (const uint64_t n : wal_numbers) {
    FBSTREAM_RETURN_IF_ERROR(ReplayWal(
        WalPath(n), [this](SequenceNumber first, const WriteBatch& batch) {
          SequenceNumber seq = first;
          for (const WriteBatch::Op& op : batch.ops()) {
            mem_->Add(seq, op.type, op.key, op.value);
            last_allocated_ = std::max(last_allocated_, seq);
            ++seq;
          }
        }));
  }
  if (!wal_numbers.empty()) {
    next_file_number_ = std::max(next_file_number_, wal_numbers.back() + 1);
  }

  // Remove SSTs orphaned by an interrupted flush or compaction (written to
  // disk but never committed to the MANIFEST; their data is still covered
  // by the retained WALs or the input files).
  std::set<uint64_t> live;
  for (const FileMeta& f : level0_) live.insert(f.number);
  for (const FileMeta& f : level1_) live.insert(f.number);
  for (const std::string& name : names) {
    uint64_t n = 0;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".sst") == 0 &&
        ParseNumber(std::string_view(name).substr(0, name.size() - 4), &n) &&
        live.count(n) == 0) {
      const Status st = RemoveFile(dir_ + "/" + name);
      if (!st.ok()) FBSTREAM_LOG(Warning) << "orphan gc " << name << ": " << st;
    }
  }

  // Fresh active WAL. The replayed memtable stays covered by the old WAL
  // files until its first flush retires them.
  const uint64_t wal_number = next_file_number_++;
  wal_ = std::make_unique<WalWriter>();
  FBSTREAM_RETURN_IF_ERROR(wal_->Open(WalPath(wal_number)));
  mem_wals_.clear();
  if (mem_->empty()) {
    for (const uint64_t n : wal_numbers) {
      const Status st = RemoveFile(WalPath(n));
      if (!st.ok()) {
        FBSTREAM_LOG(Warning) << "wal gc " << WalPath(n) << ": " << st;
      }
    }
  } else {
    mem_wals_ = wal_numbers;
  }
  mem_wals_.push_back(wal_number);

  visible_sequence_.store(last_allocated_, std::memory_order_release);
  PublishVersionLocked();
  return Status::OK();
}

void Db::PublishVersionLocked() {
  auto v = std::make_shared<Version>();
  v->mem = mem_;
  v->imm = imm_;
  v->level0 = level0_;
  v->level1 = level1_;
  std::unique_lock<std::shared_mutex> lock(version_mu_);
  current_ = std::move(v);
}

std::shared_ptr<const Version> Db::CurrentVersion() const {
  std::shared_lock<std::shared_mutex> lock(version_mu_);
  return current_;
}

Status Db::Put(std::string_view key, std::string_view value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(batch);
}

Status Db::Delete(std::string_view key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(batch);
}

Status Db::Merge(std::string_view key, std::string_view operand) {
  if (options_.merge_operator == nullptr) {
    return Status::FailedPrecondition("no merge operator configured");
  }
  WriteBatch batch;
  batch.Merge(key, operand);
  return Write(batch);
}

Status Db::Write(const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  return WriteImpl(&batch);
}

Status Db::WriteImpl(const WriteBatch* batch) {
  // LSM metrics are process-global (a node may own many shard-local Dbs;
  // the interesting signal is aggregate flush/compaction pressure).
  static Counter* wal_appends =
      MetricsRegistry::Global()->GetCounter("lsm.wal.appends");
  static Counter* wal_bytes =
      MetricsRegistry::Global()->GetCounter("lsm.wal.bytes");

  Writer w(batch);
  std::unique_lock<std::mutex> lk(mu_);
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) w.cv.wait(lk);
  if (w.done) return w.status;  // A previous leader committed us.

  // This writer leads: make room, then commit a group of queued batches
  // with one WAL append (group commit).
  Status st = MakeRoomForWriteLocked(lk, /*force=*/batch == nullptr);

  std::vector<Writer*> group;
  group.push_back(&w);
  size_t total_ops = 0;
  uint64_t group_bytes = 0;
  if (batch != nullptr) {
    total_ops = batch->ops().size();
    for (const WriteBatch::Op& op : batch->ops()) {
      group_bytes += op.key.size() + op.value.size();
    }
    for (auto it = writers_.begin() + 1; it != writers_.end(); ++it) {
      Writer* cand = *it;
      // Memtable-seal requests and oversized groups end the batch window.
      if (cand->batch == nullptr || group_bytes >= kMaxGroupBytes) break;
      group.push_back(cand);
      total_ops += cand->batch->ops().size();
      for (const WriteBatch::Op& op : cand->batch->ops()) {
        group_bytes += op.key.size() + op.value.size();
      }
    }
  }

  if (st.ok() && total_ops > 0) {
    const SequenceNumber first = last_allocated_ + 1;
    last_allocated_ += total_ops;
    // Safe to touch unlocked: only the queue leader (us) appends to the
    // active WAL or memtable, and only the leader can switch them.
    MemTable* mem = mem_.get();
    WalWriter* wal = wal_.get();
    lk.unlock();

    std::vector<WalRecord> records;
    records.reserve(group.size());
    SequenceNumber seq = first;
    for (Writer* g : group) {
      records.push_back(WalRecord{seq, g->batch});
      seq += g->batch->ops().size();
    }
    st = wal->AddRecords(records);
    if (st.ok()) {
      seq = first;
      for (Writer* g : group) {
        for (const WriteBatch::Op& op : g->batch->ops()) {
          mem->Add(seq, op.type, op.key, op.value);
          ++seq;
        }
      }
      // Publish after every entry of the group is inserted: readers loading
      // this sequence see all of it (atomicity of each batch, and of the
      // group, from the reader's perspective).
      visible_sequence_.store(first + total_ops - 1,
                              std::memory_order_release);
      wal_appends->Add(static_cast<uint64_t>(records.size()));
      wal_bytes->Add(group_bytes);
    }

    lk.lock();
    if (!st.ok()) {
      // WAL append failed before anything was applied; release the
      // sequences (no newer allocation can exist — we were the leader).
      last_allocated_ = first - 1;
    }
  }

  for (Writer* g : group) {
    writers_.pop_front();
    if (g != &w) {
      g->status = st;
      g->done = true;
      g->cv.notify_one();
    }
  }
  if (!writers_.empty()) writers_.front()->cv.notify_one();
  return st;
}

Status Db::MakeRoomForWriteLocked(std::unique_lock<std::mutex>& lk,
                                  bool force) {
  static Counter* stall_count =
      MetricsRegistry::Global()->GetCounter("lsm.write.stalls");
  while (true) {
    if (!bg_error_.ok()) return bg_error_;
    if (!force && mem_->ApproximateBytes() < options_.memtable_bytes) {
      return Status::OK();
    }
    if (force && mem_->empty()) return Status::OK();  // Nothing to seal.
    if (imm_ != nullptr) {
      // Flush is behind; apply backpressure instead of queueing unbounded
      // immutable memtables.
      ++write_stalls_;
      stall_count->Add();
      done_cv_.wait(lk);
      continue;
    }
    if (static_cast<int>(level0_.size()) >= options_.l0_stall_files &&
        CompactionPendingLocked()) {
      ++write_stalls_;
      stall_count->Add();
      done_cv_.wait(lk);
      continue;
    }
    FBSTREAM_RETURN_IF_ERROR(SwitchMemtableLocked());
    force = false;  // The fresh memtable satisfies the next loop check.
  }
}

Status Db::SwitchMemtableLocked() {
  const uint64_t wal_number = next_file_number_++;
  auto new_wal = std::make_unique<WalWriter>();
  FBSTREAM_RETURN_IF_ERROR(new_wal->Open(WalPath(wal_number)));
  wal_ = std::move(new_wal);
  imm_ = mem_;
  imm_wals_ = std::move(mem_wals_);
  mem_ = std::make_shared<MemTable>();
  mem_wals_ = {wal_number};
  PublishVersionLocked();
  work_cv_.notify_one();
  return Status::OK();
}

bool Db::CompactionPendingLocked() const {
  return static_cast<int>(level0_.size()) >= options_.l0_compaction_trigger;
}

bool Db::MaintenanceIdleLocked() const {
  return imm_ == nullptr && !bg_active_ && !force_compact_ &&
         !CompactionPendingLocked();
}

void Db::BackgroundThread() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    work_cv_.wait(lk, [this] {
      return shutdown_ ||
             (bg_error_.ok() && (imm_ != nullptr || force_compact_ ||
                                 CompactionPendingLocked()));
    });
    if (shutdown_) break;
    if (imm_ != nullptr) {
      BackgroundFlushLocked(lk);
    } else {
      BackgroundCompactLocked(lk);
    }
    done_cv_.notify_all();
  }
}

void Db::BackgroundFlushLocked(std::unique_lock<std::mutex>& lk) {
  static Counter* flush_count =
      MetricsRegistry::Global()->GetCounter("lsm.flush.count");
  static Histogram* flush_latency =
      MetricsRegistry::Global()->GetHistogram("lsm.flush.latency_us");

  const std::shared_ptr<const MemTable> imm = imm_;
  const std::vector<uint64_t> retired_wals = imm_wals_;
  const uint64_t number = next_file_number_++;
  bg_active_ = true;
  lk.unlock();

  // Injected failures here model a full disk mid-flush; the error is sticky
  // and the immutable memtable is retained (its WALs recover it on reopen).
  Status st = FaultRegistry::Global()->Hit("lsm.flush");
  std::shared_ptr<SstReader> reader;
  {
    ScopedLatencyTimer timer(flush_latency);
    if (st.ok()) {
      SstWriter writer(options_.block_bytes);
      for (const Entry& e : imm->Snapshot()) writer.Add(e);
      st = writer.Finish(SstPath(number));
    }
    if (st.ok()) {
      auto reader_or = SstReader::Open(SstPath(number), cache_);
      if (reader_or.ok()) {
        reader = std::move(reader_or).value();
      } else {
        st = reader_or.status();
      }
    }
  }

  lk.lock();
  bg_active_ = false;
  if (!st.ok()) {
    FBSTREAM_LOG(Error) << "lsm flush failed: " << st;
    bg_error_ = st;
    return;
  }
  level0_.push_back(FileMeta{number, std::move(reader)});
  imm_.reset();
  imm_wals_.clear();
  ++flushes_;
  flush_count->Add();
  PublishVersionLocked();
  const Status mst = PersistManifestLocked();
  if (!mst.ok()) {
    // WALs are retained, so the flushed data is still recoverable; the SST
    // becomes an orphan cleaned up on reopen.
    FBSTREAM_LOG(Error) << "lsm manifest persist failed: " << mst;
    bg_error_ = mst;
    return;
  }
  // The flushed data is durable in the SST + MANIFEST; retire its WALs.
  for (const uint64_t n : retired_wals) {
    const Status rst = RemoveFile(WalPath(n));
    if (!rst.ok()) {
      FBSTREAM_LOG(Warning) << "wal gc " << WalPath(n) << ": " << rst;
    }
  }
}

uint64_t Db::AllocFileNumber() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_file_number_++;
}

void Db::BackgroundCompactLocked(std::unique_lock<std::mutex>& lk) {
  if (level0_.empty() && level1_.size() <= 1) {
    force_compact_ = false;  // Nothing to merge.
    return;
  }
  static Counter* compaction_count =
      MetricsRegistry::Global()->GetCounter("lsm.compaction.count");
  static Histogram* compaction_latency =
      MetricsRegistry::Global()->GetHistogram("lsm.compaction.latency_us");

  // Inputs are pinned by shared_ptr; flushes may append new L0 files while
  // the merge runs and those are reconciled at publish below.
  const std::vector<FileMeta> inputs0 = level0_;
  const std::vector<FileMeta> inputs1 = level1_;
  const bool snapshots_live = !live_snapshots_.empty();
  bg_active_ = true;
  lk.unlock();

  Status st = FaultRegistry::Global()->Hit("lsm.compaction");
  std::vector<FileMeta> new_level1;
  {
    ScopedLatencyTimer timer(compaction_latency);
    if (st.ok()) {
      st = MergeToL1(inputs0, inputs1, snapshots_live, &new_level1);
    }
  }

  lk.lock();
  bg_active_ = false;
  force_compact_ = false;
  if (!st.ok()) {
    // Partial outputs become orphans cleaned up on reopen; inputs are
    // untouched so no data is lost.
    FBSTREAM_LOG(Error) << "lsm compaction failed: " << st;
    bg_error_ = st;
    return;
  }
  // Drop exactly the input files from L0 (newer flushes appended behind
  // them and survive).
  std::set<uint64_t> merged;
  for (const FileMeta& f : inputs0) merged.insert(f.number);
  std::vector<FileMeta> remaining;
  for (const FileMeta& f : level0_) {
    if (merged.count(f.number) == 0) remaining.push_back(f);
  }
  level0_ = std::move(remaining);
  level1_ = std::move(new_level1);
  ++compactions_;
  compaction_count->Add();
  PublishVersionLocked();
  const Status mst = PersistManifestLocked();
  if (!mst.ok()) {
    FBSTREAM_LOG(Error) << "lsm manifest persist failed: " << mst;
    bg_error_ = mst;
    return;
  }
  // Unlink inputs; readers holding an older Version keep them alive via
  // open file descriptors until they drop the reference.
  for (const FileMeta& f : inputs0) {
    const Status rst = RemoveFile(SstPath(f.number));
    if (!rst.ok()) {
      FBSTREAM_LOG(Warning) << "gc " << SstPath(f.number) << ": " << rst;
    }
  }
  for (const FileMeta& f : inputs1) {
    const Status rst = RemoveFile(SstPath(f.number));
    if (!rst.ok()) {
      FBSTREAM_LOG(Warning) << "gc " << SstPath(f.number) << ": " << rst;
    }
  }
}

Status Db::MergeToL1(const std::vector<FileMeta>& inputs0,
                     const std::vector<FileMeta>& inputs1, bool snapshots_live,
                     std::vector<FileMeta>* new_level1) {
  // Merge every input file (a full compaction into the bottom level; our
  // two-level scheme keeps range bookkeeping trivial at this scale).
  struct Source {
    SstReader::Iterator it;
    // Tie-break: newer files (higher number) win on equal internal keys.
    uint64_t number;
  };
  std::vector<Source> sources;
  for (const FileMeta& f : inputs0) {
    sources.push_back(Source{f.reader->NewIterator(), f.number});
  }
  for (const FileMeta& f : inputs1) {
    sources.push_back(Source{f.reader->NewIterator(), f.number});
  }
  for (Source& s : sources) s.it.SeekToFirst();

  const MergeOperator* merge_op = options_.merge_operator.get();

  SstWriter writer(options_.block_bytes);
  auto maybe_roll = [&]() -> Status {
    if (writer.ApproximateBytes() < options_.target_sst_bytes) {
      return Status::OK();
    }
    const uint64_t number = AllocFileNumber();
    FBSTREAM_RETURN_IF_ERROR(writer.Finish(SstPath(number)));
    FBSTREAM_ASSIGN_OR_RETURN(auto reader,
                              SstReader::Open(SstPath(number), cache_));
    new_level1->push_back(FileMeta{number, std::move(reader)});
    writer = SstWriter(options_.block_bytes);
    return Status::OK();
  };

  auto pop_smallest = [&]() -> const Entry* {
    int best = -1;
    for (size_t i = 0; i < sources.size(); ++i) {
      if (!sources[i].it.Valid()) continue;
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      const int c = sources[i].it.entry().key.Compare(
          sources[static_cast<size_t>(best)].it.entry().key);
      if (c < 0 ||
          (c == 0 &&
           sources[i].number > sources[static_cast<size_t>(best)].number)) {
        best = static_cast<int>(i);
      }
    }
    return best < 0 ? nullptr
                    : &sources[static_cast<size_t>(best)].it.entry();
  };
  auto advance_smallest = [&](const Entry* e) {
    for (Source& s : sources) {
      if (s.it.Valid() && &s.it.entry() == e) {
        s.it.Next();
        return;
      }
    }
  };

  // Process one user key at a time.
  while (true) {
    const Entry* first = pop_smallest();
    if (first == nullptr) break;
    const std::string user_key = first->key.user_key;

    // Collect the full chain for this key, newest first. Exact-duplicate
    // internal keys (same sequence, from a file that was both in L0 and
    // rewritten) keep only the newest file's copy.
    std::vector<Entry> chain;
    while (true) {
      const Entry* e = pop_smallest();
      if (e == nullptr || e->key.user_key != user_key) break;
      if (chain.empty() || chain.back().key.sequence != e->key.sequence) {
        chain.push_back(*e);
      }
      advance_smallest(e);
    }

    if (snapshots_live) {
      // Conservative: with live snapshots every version stays visible to
      // someone; rewrite the chain untouched.
      for (const Entry& e : chain) {
        writer.Add(e);
        FBSTREAM_RETURN_IF_ERROR(maybe_roll());
      }
      continue;
    }

    // No snapshots: resolve the chain to at most one entry. This is the
    // bottom level, so tombstones and shadowed versions can be elided and
    // merge chains fully applied.
    std::vector<std::string> operands_newest_first;
    bool found_base = false;
    bool base_is_delete = false;
    std::string base_value;
    SequenceNumber newest_seq = chain.empty() ? 0 : chain[0].key.sequence;
    for (const Entry& e : chain) {
      if (e.key.type == EntryType::kMerge) {
        operands_newest_first.push_back(e.value);
        continue;
      }
      found_base = true;
      base_is_delete = e.key.type == EntryType::kDelete;
      if (!base_is_delete) base_value = e.value;
      break;
    }
    if (operands_newest_first.empty()) {
      if (found_base && !base_is_delete) {
        writer.Add(Entry{InternalKey{user_key, newest_seq, EntryType::kPut},
                         base_value});
        FBSTREAM_RETURN_IF_ERROR(maybe_roll());
      }
      // Deletes and absent keys vanish at the bottom level.
      continue;
    }
    std::vector<std::string> operands(operands_newest_first.rbegin(),
                                      operands_newest_first.rend());
    std::string resolved;
    if (merge_op != nullptr &&
        merge_op->FullMerge(
            user_key,
            found_base && !base_is_delete ? &base_value : nullptr, operands,
            &resolved)) {
      writer.Add(Entry{InternalKey{user_key, newest_seq, EntryType::kPut},
                       resolved});
      FBSTREAM_RETURN_IF_ERROR(maybe_roll());
    } else {
      // Cannot resolve (no operator): keep the chain as-is.
      for (const Entry& e : chain) {
        writer.Add(e);
        FBSTREAM_RETURN_IF_ERROR(maybe_roll());
      }
    }
  }

  // A lazily loading source that hit an I/O error looks merely exhausted;
  // check explicitly so a truncated merge never silently drops data.
  for (Source& s : sources) {
    FBSTREAM_RETURN_IF_ERROR(s.it.status());
  }

  if (writer.num_entries() > 0) {
    const uint64_t number = AllocFileNumber();
    FBSTREAM_RETURN_IF_ERROR(writer.Finish(SstPath(number)));
    FBSTREAM_ASSIGN_OR_RETURN(auto reader,
                              SstReader::Open(SstPath(number), cache_));
    new_level1->push_back(FileMeta{number, std::move(reader)});
  }
  return Status::OK();
}

StatusOr<std::string> Db::Get(std::string_view key) const {
  return Get(key, nullptr);
}

StatusOr<std::string> Db::Get(std::string_view key,
                              const DbSnapshot* snapshot) const {
  // Sequence FIRST, then version: the version published before this
  // sequence became visible is covered by any version loaded after it.
  const SequenceNumber read_seq =
      snapshot != nullptr ? snapshot->sequence()
                          : visible_sequence_.load(std::memory_order_acquire);
  const std::shared_ptr<const Version> v = CurrentVersion();
  LookupState state;
  v->Get(key, read_seq, &state);
  return ResolveLookup(key, state);
}

Status Db::GetInto(std::string_view key, std::string* value) const {
  // Same protocol as Get(): sequence first (acquire), then version.
  const SequenceNumber read_seq =
      visible_sequence_.load(std::memory_order_acquire);
  const std::shared_ptr<const Version> v = CurrentVersion();
  // The scratch's strings keep their capacity across calls, so a warm read
  // loop stops allocating. clear() never shrinks.
  thread_local LookupState state;
  state.found_base = false;
  state.base_is_delete = false;
  state.base_value.clear();
  state.operands.clear();
  v->Get(key, read_seq, &state);
  if (state.operands.empty()) {
    if (!state.found_base || state.base_is_delete) {
      return Status::NotFound(std::string(key));
    }
    value->assign(state.base_value);
    return Status::OK();
  }
  if (options_.merge_operator == nullptr) {
    return Status::Corruption("merge operands but no merge operator");
  }
  const std::string* existing =
      state.found_base && !state.base_is_delete ? &state.base_value : nullptr;
  value->clear();
  if (!options_.merge_operator->FullMerge(key, existing, state.operands,
                                          value)) {
    return Status::Corruption("merge failed for key " + std::string(key));
  }
  return Status::OK();
}

StatusOr<std::string> Db::ResolveLookup(std::string_view key,
                                        const LookupState& state) const {
  if (state.operands.empty()) {
    if (!state.found_base || state.base_is_delete) {
      return Status::NotFound(std::string(key));
    }
    return state.base_value;
  }
  if (options_.merge_operator == nullptr) {
    return Status::Corruption("merge operands but no merge operator");
  }
  const std::string* existing =
      state.found_base && !state.base_is_delete ? &state.base_value : nullptr;
  std::string result;
  if (!options_.merge_operator->FullMerge(key, existing, state.operands,
                                          &result)) {
    return Status::Corruption("merge failed for key " + std::string(key));
  }
  return result;
}

Status Db::Flush() {
  // Seal the memtable through the writer queue (only the queue leader may
  // switch memtables), then wait for maintenance to drain.
  FBSTREAM_RETURN_IF_ERROR(WriteImpl(nullptr));
  std::unique_lock<std::mutex> lk(mu_);
  while (bg_error_.ok() && !MaintenanceIdleLocked()) done_cv_.wait(lk);
  return bg_error_;
}

Status Db::CompactAll() {
  FBSTREAM_RETURN_IF_ERROR(WriteImpl(nullptr));
  std::unique_lock<std::mutex> lk(mu_);
  if (!bg_error_.ok()) return bg_error_;
  force_compact_ = true;
  work_cv_.notify_one();
  while (bg_error_.ok() && !MaintenanceIdleLocked()) done_cv_.wait(lk);
  return bg_error_;
}

Status Db::PersistManifestLocked() {
  std::vector<uint64_t> l0;
  std::vector<uint64_t> l1;
  for (const FileMeta& f : level0_) l0.push_back(f.number);
  for (const FileMeta& f : level1_) l1.push_back(f.number);
  return WriteFileAtomic(
      dir_ + "/" + kManifestFile,
      ManifestEncode(visible_sequence_.load(std::memory_order_acquire),
                     next_file_number_, l0, l1));
}

const DbSnapshot* Db::GetSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  const SequenceNumber seq =
      visible_sequence_.load(std::memory_order_acquire);
  live_snapshots_.insert(seq);
  return new DbSnapshot(seq);
}

void Db::ReleaseSnapshot(const DbSnapshot* snapshot) {
  if (snapshot == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_snapshots_.find(snapshot->sequence());
  if (it != live_snapshots_.end()) live_snapshots_.erase(it);
  delete snapshot;
}

SequenceNumber Db::LatestSequence() const {
  return visible_sequence_.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// Iterator

// Polymorphic cursor over one layer of a pinned Version. Lazily streams
// from its underlying table; nothing is materialized upfront.
struct Db::Iterator::Source {
  virtual ~Source() = default;
  virtual bool Valid() const = 0;
  virtual const Entry& entry() const = 0;
  virtual void Next() = 0;
  virtual void Seek(std::string_view target) = 0;
  virtual void SeekToFirst() = 0;
};

namespace {
struct MemSource final : Db::Iterator::Source {
  explicit MemSource(const MemTable* mem) : it(mem->NewIterator()) {}
  bool Valid() const override { return it.Valid(); }
  const Entry& entry() const override { return it.entry(); }
  void Next() override { it.Next(); }
  void Seek(std::string_view target) override { it.Seek(target); }
  void SeekToFirst() override { it.SeekToFirst(); }
  MemTable::Iterator it;
};

struct SstSource final : Db::Iterator::Source {
  explicit SstSource(const SstReader* reader) : it(reader->NewIterator()) {}
  bool Valid() const override { return it.Valid(); }
  const Entry& entry() const override { return it.entry(); }
  void Next() override { it.Next(); }
  void Seek(std::string_view target) override { it.Seek(target); }
  void SeekToFirst() override { it.SeekToFirst(); }
  SstReader::Iterator it;
};

const Entry* PeekSmallest(
    const std::vector<std::unique_ptr<Db::Iterator::Source>>& sources,
    int* source_index) {
  int best = -1;
  for (size_t i = 0; i < sources.size(); ++i) {
    if (!sources[i]->Valid()) continue;
    if (best < 0 ||
        sources[i]->entry().key.Compare(
            sources[static_cast<size_t>(best)]->entry().key) < 0) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return nullptr;
  *source_index = best;
  return &sources[static_cast<size_t>(best)]->entry();
}
}  // namespace

Db::Iterator Db::NewIterator(const DbSnapshot* snapshot) const {
  const SequenceNumber read_seq =
      snapshot != nullptr ? snapshot->sequence()
                          : visible_sequence_.load(std::memory_order_acquire);
  std::shared_ptr<const Version> v = CurrentVersion();
  return Iterator(std::move(v), read_seq, options_.merge_operator.get());
}

Db::Iterator::Iterator(std::shared_ptr<const Version> version,
                       SequenceNumber read_seq, const MergeOperator* merge_op)
    : version_(std::move(version)), read_seq_(read_seq), merge_op_(merge_op) {
  sources_.push_back(std::make_unique<MemSource>(version_->mem.get()));
  if (version_->imm != nullptr) {
    sources_.push_back(std::make_unique<MemSource>(version_->imm.get()));
  }
  for (const FileMeta& f : version_->level0) {
    sources_.push_back(std::make_unique<SstSource>(f.reader.get()));
  }
  for (const FileMeta& f : version_->level1) {
    sources_.push_back(std::make_unique<SstSource>(f.reader.get()));
  }
  SeekToFirst();
}

Db::Iterator::~Iterator() = default;
Db::Iterator::Iterator(Iterator&&) noexcept = default;
Db::Iterator& Db::Iterator::operator=(Iterator&&) noexcept = default;

void Db::Iterator::ResolveNext() {
  valid_ = false;
  while (true) {
    int idx = -1;
    const Entry* first = PeekSmallest(sources_, &idx);
    if (first == nullptr) return;
    const std::string user_key = first->key.user_key;

    std::vector<std::string> operands_newest_first;
    bool found_base = false;
    bool base_is_delete = false;
    std::string base_value;
    bool chain_done = false;
    SequenceNumber last_seen_seq = kMaxSequence;
    while (true) {
      int i = -1;
      const Entry* e = PeekSmallest(sources_, &i);
      if (e == nullptr || e->key.user_key != user_key) break;
      const Entry entry = *e;
      sources_[static_cast<size_t>(i)]->Next();  // Consume.
      if (entry.key.sequence > read_seq_) continue;  // Invisible version.
      if (chain_done) continue;  // Shadowed by a newer base.
      if (entry.key.sequence == last_seen_seq) continue;  // Duplicate.
      last_seen_seq = entry.key.sequence;
      if (entry.key.type == EntryType::kMerge) {
        operands_newest_first.push_back(entry.value);
        continue;
      }
      found_base = true;
      base_is_delete = entry.key.type == EntryType::kDelete;
      if (!base_is_delete) base_value = entry.value;
      chain_done = true;
    }

    if (operands_newest_first.empty()) {
      if (!found_base || base_is_delete) continue;  // Not visible.
      key_ = user_key;
      value_ = base_value;
      valid_ = true;
      return;
    }
    if (merge_op_ == nullptr) continue;  // Unresolvable; skip.
    std::vector<std::string> operands(operands_newest_first.rbegin(),
                                      operands_newest_first.rend());
    std::string resolved;
    if (!merge_op_->FullMerge(
            user_key, found_base && !base_is_delete ? &base_value : nullptr,
            operands, &resolved)) {
      continue;
    }
    key_ = user_key;
    value_ = resolved;
    valid_ = true;
    return;
  }
}

void Db::Iterator::Next() {
  if (!valid_) return;
  ResolveNext();
}

void Db::Iterator::Seek(std::string_view target) {
  for (auto& s : sources_) s->Seek(target);
  ResolveNext();
}

void Db::Iterator::SeekToFirst() {
  for (auto& s : sources_) s->SeekToFirst();
  ResolveNext();
}

// ---------------------------------------------------------------------------
// Backup

Status Db::CreateBackup(
    const std::function<Status(const std::string& name,
                               const std::string& contents)>& sink) {
  FBSTREAM_RETURN_IF_ERROR(Flush());
  // Holding mu_ freezes the file set: the background thread deletes
  // obsolete files only under mu_, so everything listed stays readable.
  std::lock_guard<std::mutex> lock(mu_);
  // An empty database may never have flushed; make sure the MANIFEST exists
  // so the backup is openable.
  FBSTREAM_RETURN_IF_ERROR(PersistManifestLocked());
  std::vector<std::string> names;
  for (const FileMeta& f : level0_) {
    names.push_back(SstPath(f.number).substr(dir_.size() + 1));
  }
  for (const FileMeta& f : level1_) {
    names.push_back(SstPath(f.number).substr(dir_.size() + 1));
  }
  names.push_back(kManifestFile);
  for (const std::string& name : names) {
    FBSTREAM_ASSIGN_OR_RETURN(std::string data,
                              ReadFileToString(dir_ + "/" + name));
    FBSTREAM_RETURN_IF_ERROR(sink(name, data));
  }
  return Status::OK();
}

Status Db::RestoreBackup(
    const std::function<StatusOr<std::vector<std::string>>()>& list,
    const std::function<StatusOr<std::string>(const std::string&)>& read,
    const std::string& dir) {
  if (FileExists(dir + "/" + kManifestFile)) {
    return Status::AlreadyExists("database exists in " + dir);
  }
  FBSTREAM_RETURN_IF_ERROR(CreateDirs(dir));
  FBSTREAM_ASSIGN_OR_RETURN(std::vector<std::string> names, list());
  for (const std::string& name : names) {
    FBSTREAM_ASSIGN_OR_RETURN(std::string data, read(name));
    FBSTREAM_RETURN_IF_ERROR(WriteFileAtomic(dir + "/" + name, data));
  }
  return Status::OK();
}

Status Db::CreateBackupToDir(const std::string& backup_dir) {
  FBSTREAM_RETURN_IF_ERROR(CreateDirs(backup_dir));
  return CreateBackup(
      [&backup_dir](const std::string& name, const std::string& data) {
        return WriteFileAtomic(backup_dir + "/" + name, data);
      });
}

Status Db::RestoreBackupFromDir(const std::string& backup_dir,
                                const std::string& dir) {
  return RestoreBackup(
      [&backup_dir]() { return ListDir(backup_dir); },
      [&backup_dir](const std::string& name) {
        return ReadFileToString(backup_dir + "/" + name);
      },
      dir);
}

Db::Stats Db::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.memtable_bytes = mem_->ApproximateBytes();
  stats.memtable_entries = mem_->num_entries();
  stats.l0_files = static_cast<int>(level0_.size());
  stats.l1_files = static_cast<int>(level1_.size());
  stats.flushes = flushes_;
  stats.compactions = compactions_;
  stats.write_stalls = write_stalls_;
  return stats;
}

}  // namespace fbstream::lsm
