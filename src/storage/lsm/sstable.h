#ifndef FBSTREAM_STORAGE_LSM_SSTABLE_H_
#define FBSTREAM_STORAGE_LSM_SSTABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/lsm/bloom.h"
#include "storage/lsm/internal_key.h"

namespace fbstream::lsm {

// Immutable sorted table file. Layout:
//   data:   entries in internal-key order
//           (user_key, sequence, type, value; all length/varint coded)
//   index:  sparse (every kIndexInterval entries) user_key -> data offset
//   meta:   smallest/largest user key, max sequence, entry count, and a
//           bloom filter over user keys (point lookups skip tables whose
//           filter excludes the key)
//   footer: index offset, meta offset, magic
class SstWriter {
 public:
  // Entries must be appended in strict internal-key order.
  void Add(const Entry& entry);

  size_t num_entries() const { return num_entries_; }
  size_t ApproximateBytes() const { return data_.size(); }

  // Writes the finished table atomically to `path`.
  Status Finish(const std::string& path);

 private:
  static constexpr size_t kIndexInterval = 16;

  std::string data_;
  std::vector<std::string> user_keys_;  // Distinct keys for the bloom filter.
  std::string smallest_;
  std::string largest_;
  SequenceNumber max_sequence_ = 0;
  size_t num_entries_ = 0;
  std::vector<std::pair<std::string, uint64_t>> index_;
};

// Reader. Loads the file once; all lookups are served from memory (the
// process-wide equivalent of a fully cached table).
class SstReader {
 public:
  static StatusOr<std::shared_ptr<SstReader>> Open(const std::string& path);

  // Same contract as MemTable::Get: prepends merge operands / fills the base
  // into `state`; returns true if the key appeared visibly in this table.
  bool Get(std::string_view user_key, SequenceNumber read_seq,
           LookupState* state) const;

  // Sequential scan over all entries in internal order.
  class Iterator {
   public:
    explicit Iterator(const SstReader* reader) : reader_(reader) {}
    bool Valid() const { return pos_ < reader_->entries_.size(); }
    const Entry& entry() const { return reader_->entries_[pos_]; }
    void Next() { ++pos_; }
    // Positions at the first entry with user_key >= target.
    void Seek(std::string_view target);
    void SeekToFirst() { pos_ = 0; }

   private:
    const SstReader* reader_;
    size_t pos_ = 0;
  };

  Iterator NewIterator() const { return Iterator(this); }

  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }
  SequenceNumber max_sequence() const { return max_sequence_; }
  size_t num_entries() const { return entries_.size(); }
  const std::string& path() const { return path_; }
  const BloomFilter& bloom() const { return bloom_; }

 private:
  friend class Iterator;

  std::string path_;
  BloomFilter bloom_ = BloomFilter::Deserialize("");
  std::string smallest_;
  std::string largest_;
  SequenceNumber max_sequence_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace fbstream::lsm

#endif  // FBSTREAM_STORAGE_LSM_SSTABLE_H_
