#ifndef FBSTREAM_STORAGE_LSM_SSTABLE_H_
#define FBSTREAM_STORAGE_LSM_SSTABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/lsm/block_cache.h"
#include "storage/lsm/bloom.h"
#include "storage/lsm/internal_key.h"

namespace fbstream::lsm {

// Immutable sorted table file, v2 (block-based) layout:
//   data:   ~block_bytes-sized blocks of entries in internal-key order
//           (user_key, sequence, type, value; all length/varint coded).
//           Blocks are cut only at user-key boundaries, so one key's whole
//           version chain lives in a single block.
//   index:  one entry per block: first user_key, offset, size
//   meta:   smallest/largest user key, max sequence, entry count, and a
//           bloom filter over user keys (point lookups skip tables whose
//           filter excludes the key)
//   footer: index offset, meta offset, magic
//
// The v1 format (flat entry array, eagerly decoded on open) bumped the
// footer magic; v1 files are rejected with Status::Corruption rather than
// silently misread. See DESIGN.md "LSM concurrency model".
class SstWriter {
 public:
  explicit SstWriter(size_t block_bytes = 4096) : block_bytes_(block_bytes) {}

  // Entries must be appended in strict internal-key order.
  void Add(const Entry& entry);

  size_t num_entries() const { return num_entries_; }
  size_t ApproximateBytes() const { return data_.size(); }

  // Writes the finished table atomically to `path`.
  Status Finish(const std::string& path);

 private:
  void CutBlock();

  size_t block_bytes_;  // Non-const so a drained writer can be reassigned.

  std::string data_;
  std::vector<std::string> user_keys_;  // Distinct keys for the bloom filter.
  std::string smallest_;
  std::string largest_;
  SequenceNumber max_sequence_ = 0;
  size_t num_entries_ = 0;

  struct IndexEntry {
    std::string first_key;
    uint64_t offset = 0;
    uint64_t size = 0;
  };
  std::vector<IndexEntry> index_;
  uint64_t block_start_ = 0;       // data_ offset of the open block.
  std::string block_first_key_;    // First user key of the open block.
  bool block_open_ = false;
};

// Reader. Opens the footer, index, meta, and bloom eagerly (a few KiB); data
// blocks are read with pread(2) and decoded lazily on first touch, through a
// shared LRU BlockCache, so open cost and resident memory track the working
// set instead of total data. Thread-safe: lookups and iterators may run
// concurrently from any number of threads.
class SstReader {
 public:
  // `cache` == nullptr uses the process-wide BlockCache::Default().
  static StatusOr<std::shared_ptr<SstReader>> Open(
      const std::string& path, std::shared_ptr<BlockCache> cache = nullptr);

  ~SstReader();
  SstReader(const SstReader&) = delete;
  SstReader& operator=(const SstReader&) = delete;

  // Same contract as MemTable::Get: prepends merge operands / fills the base
  // into `state`; returns true if the key appeared visibly in this table.
  bool Get(std::string_view user_key, SequenceNumber read_seq,
           LookupState* state) const;

  // Sequential scan over all entries in internal order. Pins one decoded
  // block at a time; entry() references stay valid until the next
  // Next()/Seek() call.
  class Iterator {
   public:
    explicit Iterator(const SstReader* reader) : reader_(reader) {}
    bool Valid() const { return block_ != nullptr && pos_ < block_->entries.size(); }
    const Entry& entry() const { return block_->entries[pos_]; }
    void Next();
    // Positions at the first entry with user_key >= target.
    void Seek(std::string_view target);
    void SeekToFirst();
    // I/O or decode errors invalidate the iterator; callers that must not
    // silently truncate (compaction) check this after the scan.
    const Status& status() const { return status_; }

   private:
    void LoadBlock(size_t block_index);

    const SstReader* reader_;
    size_t block_index_ = 0;
    size_t pos_ = 0;
    std::shared_ptr<const SstBlock> block_;
    Status status_;
  };

  Iterator NewIterator() const { return Iterator(this); }

  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }
  SequenceNumber max_sequence() const { return max_sequence_; }
  size_t num_entries() const { return num_entries_; }
  size_t num_blocks() const { return index_.size(); }
  const std::string& path() const { return path_; }
  const BloomFilter& bloom() const { return bloom_; }

 private:
  friend class Iterator;

  struct IndexEntry {
    std::string first_key;
    uint64_t offset = 0;
    uint64_t size = 0;
  };

  SstReader() = default;

  // Index of the only block that can contain `user_key`, or npos.
  size_t FindBlock(std::string_view user_key) const;
  StatusOr<std::shared_ptr<const SstBlock>> ReadBlock(size_t block_index) const;

  std::string path_;
  int fd_ = -1;
  uint64_t cache_file_id_ = 0;
  std::shared_ptr<BlockCache> cache_;
  BloomFilter bloom_ = BloomFilter::Deserialize("");
  std::string smallest_;
  std::string largest_;
  SequenceNumber max_sequence_ = 0;
  size_t num_entries_ = 0;
  std::vector<IndexEntry> index_;
};

}  // namespace fbstream::lsm

#endif  // FBSTREAM_STORAGE_LSM_SSTABLE_H_
