#ifndef FBSTREAM_STORAGE_LSM_DB_H_
#define FBSTREAM_STORAGE_LSM_DB_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "storage/lsm/block_cache.h"
#include "storage/lsm/internal_key.h"
#include "storage/lsm/memtable.h"
#include "storage/lsm/merge_operator.h"
#include "storage/lsm/sstable.h"
#include "storage/lsm/version.h"
#include "storage/lsm/wal.h"
#include "storage/lsm/write_batch.h"

namespace fbstream::lsm {

// Embedded LSM key-value store — the RocksDB stand-in the paper's systems
// build on (§2.5 Laser "built on top of RocksDB", §4.4.2 local state
// saving, ZippyDB "built on top of RocksDB"). Features implemented:
// write-ahead logging with crash recovery and group commit, a lock-free
// skiplist memtable flushed to block-based on-disk SSTs through a shared
// LRU block cache, background flush and two-level leveled compaction on a
// maintenance thread, sequence-number snapshots, merging iterators, custom
// merge operators (the Figure 12 append-only optimization), and a backup
// engine (the Figure 10 HDFS remote backup).
//
// Concurrency model (see DESIGN.md "LSM concurrency model"): reads are
// lock-free against an atomically swapped immutable Version; writes batch
// through a leader-elected writer group; flush/compaction run on one
// background thread with write-stall backpressure.
struct DbOptions {
  // Flush the memtable to an L0 SST when it exceeds this size.
  size_t memtable_bytes = 4u << 20;
  // Compact L0 into L1 once L0 holds this many files.
  int l0_compaction_trigger = 4;
  // Stall writers while L0 holds this many files (compaction is behind).
  int l0_stall_files = 12;
  // Split L1 output files at roughly this size.
  size_t target_sst_bytes = 8u << 20;
  // Target uncompressed size of SST data blocks.
  size_t block_bytes = 4096;
  // Shared cache for decoded SST blocks; nullptr uses the process-wide
  // BlockCache::Default(). Multiple Dbs (shards) may share one cache.
  std::shared_ptr<BlockCache> block_cache;
  // Optional merge operator enabling Db::Merge().
  std::shared_ptr<const MergeOperator> merge_operator;
};

// A consistent read view pinned at a sequence number. Obtained from
// Db::GetSnapshot(); must be released.
class DbSnapshot {
 public:
  SequenceNumber sequence() const { return sequence_; }

 private:
  friend class Db;
  explicit DbSnapshot(SequenceNumber s) : sequence_(s) {}
  SequenceNumber sequence_;
};

class Db {
 public:
  // Opens (creating or recovering) a database in `dir`. Recovery loads the
  // MANIFEST, opens live SSTs, replays all WALs into the memtable, and
  // removes orphaned files from interrupted flushes/compactions.
  static StatusOr<std::unique_ptr<Db>> Open(const DbOptions& options,
                                            const std::string& dir);

  ~Db();
  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  Status Merge(std::string_view key, std::string_view operand);
  // Applies the batch atomically (one WAL record, consecutive sequences).
  // Thread-safe; concurrent writers are grouped into a single WAL append
  // (group commit) by a leader writer.
  Status Write(const WriteBatch& batch);

  // Lock-free: reads the current Version without touching the DB mutex.
  StatusOr<std::string> Get(std::string_view key) const;
  StatusOr<std::string> Get(std::string_view key,
                            const DbSnapshot* snapshot) const;

  // Same versioned lock-free read protocol as Get(), but resolves into
  // `*value` (reusing its capacity) through a thread-local lookup scratch,
  // so a hot read loop does no per-call allocation once buffers are warm.
  // This is the Laser serving path (§2.5 "high query throughput, low
  // (millisecond) latency"). `*value` is unspecified on non-OK.
  Status GetInto(std::string_view key, std::string* value) const;

  // Resolved forward iteration over live (key, value) pairs: version
  // selection, merge resolution, and tombstone skipping already applied.
  // Lock-free: pins the Version current at creation time and streams
  // lazily through the block cache (no upfront materialization).
  class Iterator {
   public:
    struct Source;  // Opaque polymorphic cursor over a memtable or SST.

    ~Iterator();
    Iterator(Iterator&&) noexcept;
    Iterator& operator=(Iterator&&) noexcept;

    bool Valid() const { return valid_; }
    const std::string& key() const { return key_; }
    const std::string& value() const { return value_; }
    void Next();
    void Seek(std::string_view target);
    void SeekToFirst();

   private:
    friend class Db;
    Iterator(std::shared_ptr<const Version> version, SequenceNumber read_seq,
             const MergeOperator* merge_op);
    // Positions on the next resolved visible key at or after the current
    // source cursors.
    void ResolveNext();

    std::shared_ptr<const Version> version_;  // Keeps sources alive.
    std::vector<std::unique_ptr<Source>> sources_;
    SequenceNumber read_seq_ = 0;
    const MergeOperator* merge_op_ = nullptr;
    bool valid_ = false;
    std::string key_;
    std::string value_;
  };

  Iterator NewIterator(const DbSnapshot* snapshot = nullptr) const;

  // Persists the memtable as an L0 SST and retires its WAL. Synchronous:
  // returns after the background thread finishes the flush (and any
  // compaction it triggered).
  Status Flush();
  // Flushes, then merges all L0 files (plus L1) into L1. Synchronous.
  Status CompactAll();

  const DbSnapshot* GetSnapshot();
  void ReleaseSnapshot(const DbSnapshot* snapshot);

  SequenceNumber LatestSequence() const;

  // Backup engine (paper Fig 10: "The local database is then copied
  // asynchronously to HDFS ... using RocksDB's backup engine"). Flushes,
  // then streams every live file through `sink(name, contents)`.
  Status CreateBackup(
      const std::function<Status(const std::string& name,
                                 const std::string& contents)>& sink);
  // Restores a backup into `dir` (which must not already hold a database):
  // `list()` names the files, `read(name)` returns contents.
  static Status RestoreBackup(
      const std::function<StatusOr<std::vector<std::string>>()>& list,
      const std::function<StatusOr<std::string>(const std::string&)>& read,
      const std::string& dir);

  // Convenience local-directory backup/restore used by tests.
  Status CreateBackupToDir(const std::string& backup_dir);
  static Status RestoreBackupFromDir(const std::string& backup_dir,
                                     const std::string& dir);

  struct Stats {
    size_t memtable_bytes = 0;
    size_t memtable_entries = 0;
    int l0_files = 0;
    int l1_files = 0;
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t write_stalls = 0;
  };
  Stats GetStats() const;

  const std::string& dir() const { return dir_; }

 private:
  // One queued writer; the front of the queue is the group leader.
  struct Writer {
    explicit Writer(const WriteBatch* b) : batch(b) {}
    const WriteBatch* batch;
    Status status;
    bool done = false;
    std::condition_variable cv;
  };

  Db(DbOptions options, std::string dir);

  Status RecoverLocked();
  // Rebuilds the immutable Version from current state and publishes it.
  void PublishVersionLocked();
  // The writer-queue protocol behind Write/Flush/CompactAll. A null batch is
  // a "seal the memtable" request that carries no data.
  Status WriteImpl(const WriteBatch* batch);
  // Blocks (releasing mu_) until the active memtable has room, switching
  // memtables and scheduling a flush as needed. With `force`, seals a
  // non-empty memtable regardless of size. Returns sticky bg errors.
  Status MakeRoomForWriteLocked(std::unique_lock<std::mutex>& lk, bool force);
  // Seals the active memtable as immutable, opens a fresh WAL, and wakes
  // the maintenance thread. Requires imm_ == nullptr.
  Status SwitchMemtableLocked();
  bool CompactionPendingLocked() const;
  bool MaintenanceIdleLocked() const;

  void BackgroundThread();
  void BackgroundFlushLocked(std::unique_lock<std::mutex>& lk);
  void BackgroundCompactLocked(std::unique_lock<std::mutex>& lk);
  // The merge itself; runs without mu_ (takes it briefly per output file to
  // allocate numbers).
  Status MergeToL1(const std::vector<FileMeta>& inputs0,
                   const std::vector<FileMeta>& inputs1, bool snapshots_live,
                   std::vector<FileMeta>* new_level1);
  uint64_t AllocFileNumber();

  Status PersistManifestLocked();
  std::string SstPath(uint64_t number) const;
  std::string WalPath(uint64_t number) const;
  StatusOr<std::string> ResolveLookup(std::string_view key,
                                      const LookupState& state) const;

  DbOptions options_;
  std::string dir_;
  std::shared_ptr<BlockCache> cache_;

  // --- Read plane (no mu_) -------------------------------------------------
  // Highest sequence whose write is fully applied (WAL + memtable). Readers
  // load this FIRST (acquire), then the current version: every published
  // version contains all data up to the sequence published before it.
  std::atomic<SequenceNumber> visible_sequence_{0};
  // The published superstructure. Readers only ever take the shared side of
  // version_mu_, and only for the pointer copy — never mu_, so they can't
  // block behind writers or maintenance. (std::atomic<std::shared_ptr>
  // would drop even that, but libstdc++'s _Sp_atomic guards its pointer
  // with a spinlock whose load-side unlock is relaxed, which TSan cannot
  // see a happens-before through; a reader-writer lock is exactly as
  // contended here — publishes happen per memtable switch, not per write.)
  std::shared_ptr<const Version> CurrentVersion() const;
  mutable std::shared_mutex version_mu_;
  std::shared_ptr<const Version> current_;

  // --- Control plane (mu_) ------------------------------------------------
  mutable std::mutex mu_;
  std::deque<Writer*> writers_;       // Front is the group leader.
  std::shared_ptr<MemTable> mem_;     // Active memtable.
  std::shared_ptr<const MemTable> imm_;  // Sealed, awaiting flush.
  std::vector<uint64_t> mem_wals_;    // WAL files covering mem_.
  std::vector<uint64_t> imm_wals_;    // WAL files covering imm_.
  std::unique_ptr<WalWriter> wal_;    // Active log (last of mem_wals_).
  SequenceNumber last_allocated_ = 0;  // Sequence allocation cursor.
  uint64_t next_file_number_ = 1;
  std::vector<FileMeta> level0_;  // Newest file last.
  std::vector<FileMeta> level1_;  // Sorted by smallest key, disjoint ranges.
  std::multiset<SequenceNumber> live_snapshots_;
  uint64_t flushes_ = 0;
  uint64_t compactions_ = 0;
  uint64_t write_stalls_ = 0;

  // --- Maintenance thread -------------------------------------------------
  std::thread bg_thread_;
  std::condition_variable work_cv_;  // Signals the bg thread: work arrived.
  std::condition_variable done_cv_;  // Signals waiters: bg state changed.
  bool bg_active_ = false;           // A flush/compaction job is running.
  bool force_compact_ = false;       // CompactAll requested.
  bool shutdown_ = false;
  Status bg_error_;  // Sticky: a failed flush/compaction halts maintenance.
};

}  // namespace fbstream::lsm

#endif  // FBSTREAM_STORAGE_LSM_DB_H_
