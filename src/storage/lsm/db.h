#ifndef FBSTREAM_STORAGE_LSM_DB_H_
#define FBSTREAM_STORAGE_LSM_DB_H_

#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/lsm/internal_key.h"
#include "storage/lsm/memtable.h"
#include "storage/lsm/merge_operator.h"
#include "storage/lsm/sstable.h"
#include "storage/lsm/wal.h"
#include "storage/lsm/write_batch.h"

namespace fbstream::lsm {

// Embedded LSM key-value store — the RocksDB stand-in the paper's systems
// build on (§2.5 Laser "built on top of RocksDB", §4.4.2 local state
// saving, ZippyDB "built on top of RocksDB"). Features implemented:
// write-ahead logging with crash recovery, a sorted memtable flushed to
// on-disk SSTs, two-level leveled compaction, sequence-number snapshots,
// merging iterators, custom merge operators (the Figure 12 append-only
// optimization), and a backup engine (the Figure 10 HDFS remote backup).
struct DbOptions {
  // Flush the memtable to an L0 SST when it exceeds this size.
  size_t memtable_bytes = 4u << 20;
  // Compact L0 into L1 once L0 holds this many files.
  int l0_compaction_trigger = 4;
  // Split L1 output files at roughly this size.
  size_t target_sst_bytes = 8u << 20;
  // Optional merge operator enabling Db::Merge().
  std::shared_ptr<const MergeOperator> merge_operator;
};

// A consistent read view pinned at a sequence number. Obtained from
// Db::GetSnapshot(); must be released.
class DbSnapshot {
 public:
  SequenceNumber sequence() const { return sequence_; }

 private:
  friend class Db;
  explicit DbSnapshot(SequenceNumber s) : sequence_(s) {}
  SequenceNumber sequence_;
};

class Db {
 public:
  // Opens (creating or recovering) a database in `dir`. Recovery loads the
  // MANIFEST, opens live SSTs, and replays the WAL into the memtable.
  static StatusOr<std::unique_ptr<Db>> Open(const DbOptions& options,
                                            const std::string& dir);

  ~Db();
  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);
  Status Merge(std::string_view key, std::string_view operand);
  // Applies the batch atomically (one WAL record, consecutive sequences).
  Status Write(const WriteBatch& batch);

  StatusOr<std::string> Get(std::string_view key) const;
  StatusOr<std::string> Get(std::string_view key,
                            const DbSnapshot* snapshot) const;

  // Resolved forward iteration over live (key, value) pairs: version
  // selection, merge resolution, and tombstone skipping already applied.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    const std::string& key() const { return key_; }
    const std::string& value() const { return value_; }
    void Next();
    void Seek(std::string_view target);
    void SeekToFirst();

   private:
    friend class Db;
    struct Source {
      std::vector<Entry> entries;
      size_t pos = 0;
    };
    Iterator(std::vector<Source> sources, SequenceNumber read_seq,
             const MergeOperator* merge_op);
    // Positions on the next resolved visible key at or after the current
    // source cursors.
    void ResolveNext();
    const Entry* PeekSmallest(int* source_index) const;

    std::vector<Source> sources_;
    SequenceNumber read_seq_;
    const MergeOperator* merge_op_;
    bool valid_ = false;
    std::string key_;
    std::string value_;
  };

  Iterator NewIterator(const DbSnapshot* snapshot = nullptr) const;

  // Persists the memtable as an L0 SST and resets the WAL. May trigger
  // compaction.
  Status Flush();
  // Merges all L0 files (plus overlapping L1 files) into L1.
  Status CompactAll();

  const DbSnapshot* GetSnapshot();
  void ReleaseSnapshot(const DbSnapshot* snapshot);

  SequenceNumber LatestSequence() const;

  // Backup engine (paper Fig 10: "The local database is then copied
  // asynchronously to HDFS ... using RocksDB's backup engine"). Flushes,
  // then streams every live file through `sink(name, contents)`.
  Status CreateBackup(
      const std::function<Status(const std::string& name,
                                 const std::string& contents)>& sink);
  // Restores a backup into `dir` (which must not already hold a database):
  // `list()` names the files, `read(name)` returns contents.
  static Status RestoreBackup(
      const std::function<StatusOr<std::vector<std::string>>()>& list,
      const std::function<StatusOr<std::string>(const std::string&)>& read,
      const std::string& dir);

  // Convenience local-directory backup/restore used by tests.
  Status CreateBackupToDir(const std::string& backup_dir);
  static Status RestoreBackupFromDir(const std::string& backup_dir,
                                     const std::string& dir);

  struct Stats {
    size_t memtable_bytes = 0;
    size_t memtable_entries = 0;
    int l0_files = 0;
    int l1_files = 0;
    uint64_t flushes = 0;
    uint64_t compactions = 0;
  };
  Stats GetStats() const;

  const std::string& dir() const { return dir_; }

 private:
  struct FileMeta {
    uint64_t number = 0;
    std::shared_ptr<SstReader> reader;
  };

  Db(DbOptions options, std::string dir);

  Status RecoverLocked();
  Status WriteLocked(const WriteBatch& batch);
  Status FlushLocked();
  Status CompactLocked();
  Status PersistManifestLocked();
  StatusOr<std::string> GetLocked(std::string_view key,
                                  SequenceNumber read_seq) const;
  std::string SstPath(uint64_t number) const;
  SequenceNumber OldestLiveSnapshotLocked() const;
  StatusOr<std::string> ResolveLookup(std::string_view key,
                                      const LookupState& state) const;

  DbOptions options_;
  std::string dir_;

  mutable std::mutex mu_;
  MemTable memtable_;
  WalWriter wal_;
  SequenceNumber last_sequence_ = 0;
  uint64_t next_file_number_ = 1;
  std::vector<FileMeta> level0_;  // Newest file last.
  std::vector<FileMeta> level1_;  // Sorted by smallest key, disjoint ranges.
  std::multiset<SequenceNumber> live_snapshots_;
  uint64_t flushes_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace fbstream::lsm

#endif  // FBSTREAM_STORAGE_LSM_DB_H_
