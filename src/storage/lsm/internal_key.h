#ifndef FBSTREAM_STORAGE_LSM_INTERNAL_KEY_H_
#define FBSTREAM_STORAGE_LSM_INTERNAL_KEY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fbstream::lsm {

// Sequence numbers order all writes; kMaxSequence reads see everything.
using SequenceNumber = uint64_t;
constexpr SequenceNumber kMaxSequence = ~SequenceNumber{0} >> 8;

enum class EntryType : uint8_t {
  kPut = 1,
  kDelete = 2,
  kMerge = 3,
};

// An internal entry key: (user_key, sequence, type). Internal ordering is
// user_key ascending, then sequence *descending*, so the newest version of a
// key sorts first — the same scheme LevelDB/RocksDB use.
struct InternalKey {
  std::string user_key;
  SequenceNumber sequence = 0;
  EntryType type = EntryType::kPut;

  // Returns <0, 0, >0 per internal ordering.
  int Compare(const InternalKey& other) const {
    const int c = user_key.compare(other.user_key);
    if (c != 0) return c;
    if (sequence != other.sequence) {
      return sequence > other.sequence ? -1 : 1;  // Higher seq sorts first.
    }
    return 0;
  }

  bool operator<(const InternalKey& other) const { return Compare(other) < 0; }
};

// One key-value entry flowing through memtables, SSTs, and iterators.
struct Entry {
  InternalKey key;
  std::string value;  // Empty for deletes.
};

// Accumulator for a layered point lookup. The DB probes layers newest to
// oldest (active memtable, immutable memtable, L0 newest-first, L1...);
// each layer *prepends* its merge operands (they are older than everything
// collected so far) and stops the search once a Put/Delete base is found.
struct LookupState {
  bool found_base = false;
  bool base_is_delete = false;
  std::string base_value;
  std::vector<std::string> operands;  // Oldest first.
};

}  // namespace fbstream::lsm

#endif  // FBSTREAM_STORAGE_LSM_INTERNAL_KEY_H_
