#ifndef FBSTREAM_STORAGE_LSM_BLOCK_CACHE_H_
#define FBSTREAM_STORAGE_LSM_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/lsm/internal_key.h"

namespace fbstream::lsm {

// One decoded SST data block, shared between the cache and any readers or
// iterators currently pinning it. Immutable once built.
struct SstBlock {
  std::vector<Entry> entries;  // Internal-key order.
  size_t charge = 0;           // Approximate decoded footprint in bytes.
};

// Process-wide LRU cache of decoded SST blocks, keyed by (reader id, block
// offset). Readers get a process-unique id at open time rather than reusing
// the per-DB file number, which collides across Db instances (every DB
// numbers its files from 1). Capacity-bounded by decoded bytes; eviction
// drops the cache's reference, but pinned blocks stay alive until the last
// iterator releases them.
//
// Thread-safe. Hit/miss/evict counters and the resident-bytes gauge are
// published through the global MetricsRegistry as lsm.block_cache.*.
class BlockCache {
 public:
  explicit BlockCache(size_t capacity_bytes);

  // Shared default instance (64 MiB) used when DbOptions doesn't supply one;
  // this is what makes the cache capacity a process-level budget across all
  // shard-local Dbs on a node.
  static const std::shared_ptr<BlockCache>& Default();

  // Allocates a process-unique reader id for cache keying.
  static uint64_t NextFileId();

  std::shared_ptr<const SstBlock> Lookup(uint64_t file_id, uint64_t offset);
  void Insert(uint64_t file_id, uint64_t offset,
              std::shared_ptr<const SstBlock> block);
  // Drops every cached block belonging to `file_id` (reader teardown).
  void EraseFile(uint64_t file_id);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t bytes = 0;
    size_t blocks = 0;
  };
  Stats GetStats() const;

  size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Key {
    uint64_t file_id = 0;
    uint64_t offset = 0;
    bool operator==(const Key& o) const {
      return file_id == o.file_id && offset == o.offset;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Offsets are block-aligned-ish and file ids small; spread both.
      return static_cast<size_t>(k.file_id * 0x9e3779b97f4a7c15ULL ^
                                 k.offset * 0xc2b2ae3d27d4eb4fULL);
    }
  };
  struct Slot {
    Key key;
    std::shared_ptr<const SstBlock> block;
  };

  void EvictIfOverLocked();

  const size_t capacity_bytes_;

  mutable std::mutex mu_;
  std::list<Slot> lru_;  // Front = most recently used.
  std::unordered_map<Key, std::list<Slot>::iterator, KeyHash> map_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace fbstream::lsm

#endif  // FBSTREAM_STORAGE_LSM_BLOCK_CACHE_H_
