#ifndef FBSTREAM_STORAGE_LSM_WAL_H_
#define FBSTREAM_STORAGE_LSM_WAL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/lsm/internal_key.h"
#include "storage/lsm/write_batch.h"

namespace fbstream::lsm {

// One WAL record awaiting append: a WriteBatch and the sequence assigned to
// its first operation.
struct WalRecord {
  SequenceNumber first_sequence = 0;
  const WriteBatch* batch = nullptr;
};

// Write-ahead log. Each record is a (starting-sequence, WriteBatch) pair,
// framed with a length prefix and a checksum so replay stops cleanly at a
// torn tail after a crash.
class WalWriter {
 public:
  ~WalWriter();

  WalWriter() = default;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  Status Open(const std::string& path);
  Status AddRecord(SequenceNumber first_sequence, const WriteBatch& batch);
  // Group commit: frames every record identically to AddRecord (replay sees
  // no difference) but pays one buffer build, one fwrite, and one fflush for
  // the whole group. All records land or — on a torn write — replay stops at
  // the first incomplete one, preserving prefix-ordering.
  Status AddRecords(const std::vector<WalRecord>& records);
  // Bytes framed and appended so far (for metrics); reset by Open.
  uint64_t appended_bytes() const { return appended_bytes_; }
  Status Sync();
  void Close();

  bool is_open() const { return file_ != nullptr; }

 private:
  FILE* file_ = nullptr;
  uint64_t appended_bytes_ = 0;
};

// Replays every intact record in order. Corrupt or torn trailing data ends
// replay without error (matching the crash-recovery contract).
Status ReplayWal(
    const std::string& path,
    const std::function<void(SequenceNumber, const WriteBatch&)>& apply);

}  // namespace fbstream::lsm

#endif  // FBSTREAM_STORAGE_LSM_WAL_H_
