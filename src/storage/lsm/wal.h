#ifndef FBSTREAM_STORAGE_LSM_WAL_H_
#define FBSTREAM_STORAGE_LSM_WAL_H_

#include <cstdio>
#include <functional>
#include <string>

#include "common/status.h"
#include "storage/lsm/internal_key.h"
#include "storage/lsm/write_batch.h"

namespace fbstream::lsm {

// Write-ahead log. Each record is a (starting-sequence, WriteBatch) pair,
// framed with a length prefix and a checksum so replay stops cleanly at a
// torn tail after a crash.
class WalWriter {
 public:
  ~WalWriter();

  WalWriter() = default;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  Status Open(const std::string& path);
  Status AddRecord(SequenceNumber first_sequence, const WriteBatch& batch);
  Status Sync();
  void Close();

  bool is_open() const { return file_ != nullptr; }

 private:
  FILE* file_ = nullptr;
};

// Replays every intact record in order. Corrupt or torn trailing data ends
// replay without error (matching the crash-recovery contract).
Status ReplayWal(
    const std::string& path,
    const std::function<void(SequenceNumber, const WriteBatch&)>& apply);

}  // namespace fbstream::lsm

#endif  // FBSTREAM_STORAGE_LSM_WAL_H_
