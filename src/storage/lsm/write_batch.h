#ifndef FBSTREAM_STORAGE_LSM_WRITE_BATCH_H_
#define FBSTREAM_STORAGE_LSM_WRITE_BATCH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/lsm/internal_key.h"

namespace fbstream::lsm {

// An atomic group of updates. The whole batch gets consecutive sequence
// numbers and reaches the WAL as one record, so recovery applies all of it
// or none — this is the primitive Stylus exactly-once semantics build on.
class WriteBatch {
 public:
  struct Op {
    EntryType type;
    std::string key;
    std::string value;  // Empty for deletes.
  };

  void Put(std::string_view key, std::string_view value);
  void Delete(std::string_view key);
  void Merge(std::string_view key, std::string_view operand);
  void Clear() { ops_.clear(); }

  const std::vector<Op>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  // Wire format for the WAL.
  std::string Serialize() const;
  static StatusOr<WriteBatch> Deserialize(std::string_view data);

 private:
  std::vector<Op> ops_;
};

}  // namespace fbstream::lsm

#endif  // FBSTREAM_STORAGE_LSM_WRITE_BATCH_H_
