#include "storage/lsm/bloom.h"

#include <algorithm>

#include "common/hash.h"

namespace fbstream::lsm {

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  size_t bits = std::max<size_t>(64, expected_keys * bits_per_key);
  bits_ = std::vector<uint8_t>((bits + 7) / 8, 0);
  // k ~= bits_per_key * ln(2), clamped to a sane range.
  num_probes_ = std::clamp(static_cast<int>(bits_per_key * 0.69), 1, 30);
}

BloomFilter BloomFilter::Deserialize(std::string_view data) {
  BloomFilter filter;
  if (data.empty()) return filter;
  filter.num_probes_ = std::clamp<int>(data[0], 1, 30);
  data.remove_prefix(1);
  filter.bits_.assign(data.begin(), data.end());
  return filter;
}

void BloomFilter::Add(std::string_view key) {
  if (bits_.empty()) return;
  const uint64_t h = Fnv1a64(key);
  uint64_t a = MixHash64(h);
  const uint64_t delta = MixHash64(h ^ 0x9e3779b97f4a7c15ULL) | 1;
  const uint64_t nbits = bits_.size() * 8;
  for (int i = 0; i < num_probes_; ++i) {
    const uint64_t bit = a % nbits;
    bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    a += delta;
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  if (bits_.empty()) return true;  // No filter = cannot exclude.
  const uint64_t h = Fnv1a64(key);
  uint64_t a = MixHash64(h);
  const uint64_t delta = MixHash64(h ^ 0x9e3779b97f4a7c15ULL) | 1;
  const uint64_t nbits = bits_.size() * 8;
  for (int i = 0; i < num_probes_; ++i) {
    const uint64_t bit = a % nbits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
    a += delta;
  }
  return true;
}

std::string BloomFilter::Serialize() const {
  std::string out;
  out.push_back(static_cast<char>(num_probes_));
  out.append(reinterpret_cast<const char*>(bits_.data()), bits_.size());
  return out;
}

}  // namespace fbstream::lsm
