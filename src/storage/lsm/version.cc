#include "storage/lsm/version.h"

#include <algorithm>

namespace fbstream::lsm {

void Version::Get(std::string_view user_key, SequenceNumber read_seq,
                  LookupState* state) const {
  // Newest layer first; stop as soon as a layer yields a Put/Delete base.
  // Merge operands keep accumulating across layers until a base is found.
  if (mem != nullptr) mem->Get(user_key, read_seq, state);
  if (state->found_base) return;
  if (imm != nullptr) imm->Get(user_key, read_seq, state);
  if (state->found_base) return;
  // L0 files overlap; probe newest (appended last) to oldest.
  for (auto it = level0.rbegin(); it != level0.rend(); ++it) {
    it->reader->Get(user_key, read_seq, state);
    if (state->found_base) return;
  }
  // L1 ranges are disjoint and sorted: at most one file can hold the key.
  auto it = std::lower_bound(level1.begin(), level1.end(), user_key,
                             [](const FileMeta& f, std::string_view k) {
                               return f.reader->largest() < k;
                             });
  if (it != level1.end() && it->reader->smallest() <= user_key) {
    it->reader->Get(user_key, read_seq, state);
  }
}

}  // namespace fbstream::lsm
