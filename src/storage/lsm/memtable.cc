#include "storage/lsm/memtable.h"

#include <algorithm>

namespace fbstream::lsm {

struct MemTable::Node {
  Entry entry;
  int height = 1;
  // Fixed-size tower keeps the code simple; the ~100B overhead per node is
  // negligible against a typical entry and memtables cap at a few MB.
  std::array<std::atomic<Node*>, kMaxHeight> next{};
};

namespace {
// "node key" < "probe key" under internal ordering (user key ascending,
// sequence descending). Takes the probe as raw parts so lookups don't
// allocate a probe string.
inline bool NodeBefore(const InternalKey& node, std::string_view user_key,
                       SequenceNumber seq) {
  const int c = std::string_view(node.user_key).compare(user_key);
  if (c != 0) return c < 0;
  return node.sequence > seq;  // Higher sequence sorts first.
}
}  // namespace

MemTable::MemTable() { head_ = new Node(); }

MemTable::~MemTable() {
  Node* n = head_->next[0].load(std::memory_order_relaxed);
  delete head_;
  while (n != nullptr) {
    Node* next = n->next[0].load(std::memory_order_relaxed);
    delete n;
    n = next;
  }
}

int MemTable::RandomHeight() {
  // Xorshift64; deterministic per-table, which keeps test runs reproducible.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  int height = 1;
  // P(bump) = 1/4 per level, as in LevelDB.
  uint64_t bits = rng_state_;
  while (height < kMaxHeight && (bits & 3) == 0) {
    ++height;
    bits >>= 2;
  }
  return height;
}

MemTable::Node* MemTable::FindGreaterOrEqual(std::string_view user_key,
                                             SequenceNumber seq,
                                             Node** prev) const {
  Node* x = head_;
  int level = max_height_.load(std::memory_order_relaxed) - 1;
  while (true) {
    // Acquire pairs with the release publish in Add: a node reached here is
    // fully constructed.
    Node* next = x->next[static_cast<size_t>(level)].load(
        std::memory_order_acquire);
    if (next != nullptr && NodeBefore(next->entry.key, user_key, seq)) {
      x = next;
      continue;
    }
    if (prev != nullptr) prev[level] = x;
    if (level == 0) return next;
    --level;
  }
}

void MemTable::Add(SequenceNumber sequence, EntryType type,
                   std::string_view key, std::string_view value) {
  Node* prev[kMaxHeight];
  FindGreaterOrEqual(key, sequence, prev);
  const int height = RandomHeight();
  if (height > max_height_.load(std::memory_order_relaxed)) {
    for (int i = max_height_.load(std::memory_order_relaxed); i < height; ++i) {
      prev[i] = head_;
    }
    // Readers racing with this see either the old or new height; with the
    // old height they just skip the taller levels, which is benign.
    max_height_.store(height, std::memory_order_relaxed);
  }
  Node* node = new Node();
  node->entry.key.user_key = std::string(key);
  node->entry.key.sequence = sequence;
  node->entry.key.type = type;
  node->entry.value = std::string(value);
  node->height = height;
  for (int i = 0; i < height; ++i) {
    node->next[static_cast<size_t>(i)].store(
        prev[i]->next[static_cast<size_t>(i)].load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    // Publish bottom-up so any level a reader finds the node at already has
    // its lower levels linked.
    prev[i]->next[static_cast<size_t>(i)].store(node,
                                                std::memory_order_release);
  }
  bytes_.fetch_add(key.size() + value.size() + 16, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

bool MemTable::Get(std::string_view user_key, SequenceNumber read_seq,
                   LookupState* state) const {
  // Lands on the newest entry for the key with sequence <= read_seq (probe
  // sequence sorts before lower sequences of the same key).
  Node* n = FindGreaterOrEqual(user_key, read_seq, nullptr);
  bool any = false;
  std::vector<std::string> operands_newest_first;
  for (; n != nullptr && n->entry.key.user_key == user_key;
       n = n->next[0].load(std::memory_order_acquire)) {
    if (n->entry.key.sequence > read_seq) continue;  // Too new for reader.
    any = true;
    if (n->entry.key.type == EntryType::kMerge) {
      operands_newest_first.push_back(n->entry.value);
      continue;
    }
    state->found_base = true;
    state->base_is_delete = n->entry.key.type == EntryType::kDelete;
    if (!state->base_is_delete) state->base_value = n->entry.value;
    break;
  }
  // This layer's operands are older than anything collected so far.
  state->operands.insert(state->operands.begin(),
                         operands_newest_first.rbegin(),
                         operands_newest_first.rend());
  return any;
}

std::vector<Entry> MemTable::Snapshot() const {
  std::vector<Entry> out;
  out.reserve(num_entries());
  for (Node* n = head_->next[0].load(std::memory_order_acquire); n != nullptr;
       n = n->next[0].load(std::memory_order_acquire)) {
    out.push_back(n->entry);
  }
  return out;
}

const Entry& MemTable::Iterator::entry() const {
  return static_cast<const Node*>(node_)->entry;
}

void MemTable::Iterator::Next() {
  if (node_ == nullptr) return;
  node_ = static_cast<const Node*>(node_)->next[0].load(
      std::memory_order_acquire);
}

void MemTable::Iterator::Seek(std::string_view target) {
  // (target, kMaxSequence) is the smallest internal key with that user key.
  node_ = mem_->FindGreaterOrEqual(target, kMaxSequence, nullptr);
}

void MemTable::Iterator::SeekToFirst() {
  node_ = mem_->head_->next[0].load(std::memory_order_acquire);
}

}  // namespace fbstream::lsm
