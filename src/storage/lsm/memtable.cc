#include "storage/lsm/memtable.h"

#include <algorithm>

namespace fbstream::lsm {

void MemTable::Add(SequenceNumber sequence, EntryType type,
                   std::string_view key, std::string_view value) {
  InternalKey ikey{std::string(key), sequence, type};
  bytes_ += key.size() + value.size() + 16;
  entries_.emplace(std::move(ikey), std::string(value));
}

bool MemTable::Get(std::string_view user_key, SequenceNumber read_seq,
                   LookupState* state) const {
  // Seek to the newest visible entry: internal keys sort sequence-descending,
  // so lower_bound on (key, read_seq, any-type) lands on the newest entry
  // with sequence <= read_seq.
  InternalKey probe{std::string(user_key), read_seq, EntryType::kPut};
  auto it = entries_.lower_bound(probe);
  bool any = false;
  std::vector<std::string> operands_newest_first;
  for (; it != entries_.end() && it->first.user_key == user_key; ++it) {
    if (it->first.sequence > read_seq) continue;  // Too new for this reader.
    any = true;
    if (it->first.type == EntryType::kMerge) {
      operands_newest_first.push_back(it->second);
      continue;
    }
    state->found_base = true;
    state->base_is_delete = it->first.type == EntryType::kDelete;
    if (!state->base_is_delete) state->base_value = it->second;
    break;
  }
  // This layer's operands are older than anything collected so far.
  state->operands.insert(state->operands.begin(),
                         operands_newest_first.rbegin(),
                         operands_newest_first.rend());
  return any;
}

std::vector<Entry> MemTable::Snapshot() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [key, value] : entries_) {
    out.push_back(Entry{key, value});
  }
  return out;
}

void MemTable::Clear() {
  entries_.clear();
  bytes_ = 0;
}

}  // namespace fbstream::lsm
