#ifndef FBSTREAM_STORAGE_LSM_MEMTABLE_H_
#define FBSTREAM_STORAGE_LSM_MEMTABLE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/lsm/internal_key.h"

namespace fbstream::lsm {

// In-memory sorted write buffer. Entries are ordered by internal key
// (user key ascending, sequence descending). Not internally synchronized;
// the DB serializes access under its own mutex.
class MemTable {
 public:
  void Add(SequenceNumber sequence, EntryType type, std::string_view key,
           std::string_view value);

  // Collects the version chain for `user_key` visible at `read_seq`:
  // prepends merge operands to `state->operands` and fills the base if a
  // Put/Delete terminates the chain in this layer. Returns true if this
  // memtable held anything visible for the key.
  bool Get(std::string_view user_key, SequenceNumber read_seq,
           LookupState* state) const;

  // All entries in internal-key order; used for flush and iterators.
  std::vector<Entry> Snapshot() const;

  size_t ApproximateBytes() const { return bytes_; }
  size_t num_entries() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void Clear();

 private:
  struct KeyLess {
    bool operator()(const InternalKey& a, const InternalKey& b) const {
      return a.Compare(b) < 0;
    }
  };

  std::map<InternalKey, std::string, KeyLess> entries_;
  size_t bytes_ = 0;
};

}  // namespace fbstream::lsm

#endif  // FBSTREAM_STORAGE_LSM_MEMTABLE_H_
