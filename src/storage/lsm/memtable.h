#ifndef FBSTREAM_STORAGE_LSM_MEMTABLE_H_
#define FBSTREAM_STORAGE_LSM_MEMTABLE_H_

#include <array>
#include <atomic>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/lsm/internal_key.h"

namespace fbstream::lsm {

// In-memory sorted write buffer backed by a skiplist. Entries are ordered by
// internal key (user key ascending, sequence descending).
//
// Concurrency contract (the LevelDB memtable protocol): at most one thread
// calls Add() at a time — the DB's writer-group leader — while any number of
// threads call Get() or iterate concurrently with no locking. New nodes are
// fully initialized before being published with release stores; readers
// traverse with acquire loads and never see a partially linked node. Nodes
// are never removed while the memtable is alive, so readers hold no locks
// and chase no freed pointers; the whole table is retired at once when the
// last shared_ptr owner (Version or flush job) drops it.
class MemTable {
 public:
  MemTable();
  ~MemTable();
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  // Single writer at a time (see class comment).
  void Add(SequenceNumber sequence, EntryType type, std::string_view key,
           std::string_view value);

  // Collects the version chain for `user_key` visible at `read_seq`:
  // prepends merge operands to `state->operands` and fills the base if a
  // Put/Delete terminates the chain in this layer. Returns true if this
  // memtable held anything visible for the key. Safe concurrently with Add.
  bool Get(std::string_view user_key, SequenceNumber read_seq,
           LookupState* state) const;

  // All entries in internal-key order; used for flush (the table is
  // immutable by then).
  std::vector<Entry> Snapshot() const;

  // Live scan in internal-key order, safe concurrently with Add: entries
  // published after the iterator passes a position are simply not seen,
  // which is harmless because reads are sequence-filtered anyway.
  class Iterator {
   public:
    explicit Iterator(const MemTable* mem) : mem_(mem) {}
    bool Valid() const { return node_ != nullptr; }
    const Entry& entry() const;
    void Next();
    // Positions at the first entry with user_key >= target.
    void Seek(std::string_view target);
    void SeekToFirst();

   private:
    const MemTable* mem_;
    const void* node_ = nullptr;
  };
  Iterator NewIterator() const { return Iterator(this); }

  size_t ApproximateBytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  size_t num_entries() const { return count_.load(std::memory_order_relaxed); }
  bool empty() const { return num_entries() == 0; }

 private:
  friend class Iterator;

  static constexpr int kMaxHeight = 12;

  struct Node;

  // First node with internal key >= (user_key, seq), filling prev[] per
  // level when non-null (insert path).
  Node* FindGreaterOrEqual(std::string_view user_key, SequenceNumber seq,
                           Node** prev) const;
  int RandomHeight();

  Node* head_ = nullptr;  // Sentinel; never holds an entry.
  std::atomic<int> max_height_{1};
  uint64_t rng_state_ = 0x9d2c5680dbeefULL;

  std::atomic<size_t> bytes_{0};
  std::atomic<size_t> count_{0};
};

}  // namespace fbstream::lsm

#endif  // FBSTREAM_STORAGE_LSM_MEMTABLE_H_
