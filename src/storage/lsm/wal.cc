#include "storage/lsm/wal.h"

#include <unistd.h>

#include "common/fault.h"
#include "common/fs.h"
#include "common/hash.h"
#include "common/serde.h"

namespace fbstream::lsm {

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path) {
  Close();
  file_ = fopen(path.c_str(), "ab");
  if (file_ == nullptr) return Status::IoError("wal open: " + path);
  // A freshly created log file's directory entry must itself be durable,
  // or a power cut after acked writes loses the whole file.
  SyncParentDir(path);
  appended_bytes_ = 0;
  return Status::OK();
}

namespace {
void FrameRecord(SequenceNumber first_sequence, const WriteBatch& batch,
                 std::string* out) {
  std::string body;
  PutVarint64(&body, first_sequence);
  const std::string payload = batch.Serialize();
  PutLengthPrefixed(&body, payload);

  PutVarint64(out, body.size());
  PutFixed64(out, Fnv1a64(body));
  *out += body;
}
}  // namespace

Status WalWriter::AddRecord(SequenceNumber first_sequence,
                            const WriteBatch& batch) {
  return AddRecords({{first_sequence, &batch}});
}

Status WalWriter::AddRecords(const std::vector<WalRecord>& records) {
  if (file_ == nullptr) return Status::FailedPrecondition("wal not open");
  if (records.empty()) return Status::OK();
  // Before any bytes reach the file: an injected failure here models a full
  // disk or an I/O stall, leaving the log exactly as it was (callers may
  // retry the whole group).
  FBSTREAM_RETURN_IF_ERROR(FaultRegistry::Global()->Hit("lsm.wal.append"));
  std::string buffer;
  for (const WalRecord& r : records) {
    FrameRecord(r.first_sequence, *r.batch, &buffer);
  }
  if (fwrite(buffer.data(), 1, buffer.size(), file_) != buffer.size()) {
    return Status::IoError("wal write");
  }
  if (fflush(file_) != 0) return Status::IoError("wal flush");
  appended_bytes_ += buffer.size();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::OK();
  FBSTREAM_RETURN_IF_ERROR(FaultRegistry::Global()->Hit("lsm.wal.sync"));
  if (fflush(file_) != 0) return Status::IoError("wal flush");
  // fflush only moves bytes into the page cache; an fsync is what makes the
  // group commit power-loss durable.
  if (::fsync(fileno(file_)) != 0) return Status::IoError("wal fsync");
  return Status::OK();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    fclose(file_);
    file_ = nullptr;
  }
}

Status ReplayWal(
    const std::string& path,
    const std::function<void(SequenceNumber, const WriteBatch&)>& apply) {
  if (!FileExists(path)) return Status::OK();
  FBSTREAM_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  std::string_view view(data);
  while (!view.empty()) {
    uint64_t len = 0;
    uint64_t checksum = 0;
    if (!GetVarint64(&view, &len) || !GetFixed64(&view, &checksum) ||
        view.size() < len) {
      break;  // Torn tail.
    }
    const std::string_view body = view.substr(0, len);
    view.remove_prefix(len);
    if (Fnv1a64(body) != checksum) break;  // Corrupt tail.

    std::string_view cursor = body;
    uint64_t first_sequence = 0;
    std::string_view payload;
    if (!GetVarint64(&cursor, &first_sequence) ||
        !GetLengthPrefixed(&cursor, &payload)) {
      break;
    }
    auto batch = WriteBatch::Deserialize(payload);
    if (!batch.ok()) break;
    apply(first_sequence, batch.value());
  }
  return Status::OK();
}

}  // namespace fbstream::lsm
