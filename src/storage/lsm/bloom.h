#ifndef FBSTREAM_STORAGE_LSM_BLOOM_H_
#define FBSTREAM_STORAGE_LSM_BLOOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fbstream::lsm {

// Per-SST bloom filter over user keys (the standard LSM point-lookup
// optimization: a negative probe skips the table entirely). Double hashing
// over a 64-bit base hash; ~10 bits/key and 6 probes give a ~1% false
// positive rate. No false negatives, ever.
class BloomFilter {
 public:
  // Builder: size the filter for an expected key count.
  explicit BloomFilter(size_t expected_keys, int bits_per_key = 10);
  // Reader: wrap serialized bits (from BloomFilter::Serialize).
  static BloomFilter Deserialize(std::string_view data);

  void Add(std::string_view key);
  // False means definitely absent; true means probably present.
  bool MayContain(std::string_view key) const;

  std::string Serialize() const;
  size_t num_bits() const { return bits_.size() * 8; }
  bool empty() const { return bits_.empty(); }

 private:
  BloomFilter() = default;

  int num_probes_ = 6;
  std::vector<uint8_t> bits_;
};

}  // namespace fbstream::lsm

#endif  // FBSTREAM_STORAGE_LSM_BLOOM_H_
