#include "storage/lsm/sstable.h"

#include <algorithm>

#include "common/fs.h"
#include "common/serde.h"

namespace fbstream::lsm {

namespace {
constexpr uint64_t kSstMagic = 0xfb57ab1e00c0ffeeULL;

void EncodeEntry(const Entry& e, std::string* out) {
  PutLengthPrefixed(out, e.key.user_key);
  PutVarint64(out, e.key.sequence);
  out->push_back(static_cast<char>(e.key.type));
  PutLengthPrefixed(out, e.value);
}

bool DecodeEntry(std::string_view* in, Entry* e) {
  std::string_view key;
  uint64_t seq = 0;
  std::string_view value;
  if (!GetLengthPrefixed(in, &key)) return false;
  if (!GetVarint64(in, &seq)) return false;
  if (in->empty()) return false;
  const auto type = static_cast<EntryType>(in->front());
  in->remove_prefix(1);
  if (!GetLengthPrefixed(in, &value)) return false;
  e->key.user_key = std::string(key);
  e->key.sequence = seq;
  e->key.type = type;
  e->value = std::string(value);
  return true;
}
}  // namespace

void SstWriter::Add(const Entry& entry) {
  if (num_entries_ == 0) smallest_ = entry.key.user_key;
  if (user_keys_.empty() || user_keys_.back() != entry.key.user_key) {
    user_keys_.push_back(entry.key.user_key);  // Input is sorted by key.
  }
  largest_ = entry.key.user_key;
  max_sequence_ = std::max(max_sequence_, entry.key.sequence);
  if (num_entries_ % kIndexInterval == 0) {
    index_.emplace_back(entry.key.user_key, data_.size());
  }
  EncodeEntry(entry, &data_);
  ++num_entries_;
}

Status SstWriter::Finish(const std::string& path) {
  std::string file = data_;
  const uint64_t index_offset = file.size();
  PutVarint64(&file, index_.size());
  for (const auto& [key, offset] : index_) {
    PutLengthPrefixed(&file, key);
    PutFixed64(&file, offset);
  }
  const uint64_t meta_offset = file.size();
  PutLengthPrefixed(&file, smallest_);
  PutLengthPrefixed(&file, largest_);
  PutVarint64(&file, max_sequence_);
  PutVarint64(&file, num_entries_);
  BloomFilter bloom(user_keys_.size());
  for (const std::string& key : user_keys_) bloom.Add(key);
  PutLengthPrefixed(&file, bloom.Serialize());
  // Fixed-size footer.
  PutFixed64(&file, index_offset);
  PutFixed64(&file, meta_offset);
  PutFixed64(&file, kSstMagic);
  return WriteFileAtomic(path, file);
}

StatusOr<std::shared_ptr<SstReader>> SstReader::Open(const std::string& path) {
  FBSTREAM_ASSIGN_OR_RETURN(std::string file, ReadFileToString(path));
  if (file.size() < 24) return Status::Corruption("sst too small: " + path);
  std::string_view footer(file.data() + file.size() - 24, 24);
  uint64_t index_offset = 0;
  uint64_t meta_offset = 0;
  uint64_t magic = 0;
  GetFixed64(&footer, &index_offset);
  GetFixed64(&footer, &meta_offset);
  GetFixed64(&footer, &magic);
  if (magic != kSstMagic) return Status::Corruption("sst bad magic: " + path);
  if (index_offset > file.size() || meta_offset > file.size() ||
      index_offset > meta_offset) {
    return Status::Corruption("sst bad offsets: " + path);
  }

  auto reader = std::make_shared<SstReader>();
  reader->path_ = path;

  std::string_view meta(file.data() + meta_offset,
                        file.size() - 24 - meta_offset);
  std::string_view smallest;
  std::string_view largest;
  uint64_t max_seq = 0;
  uint64_t count = 0;
  if (!GetLengthPrefixed(&meta, &smallest) ||
      !GetLengthPrefixed(&meta, &largest) || !GetVarint64(&meta, &max_seq) ||
      !GetVarint64(&meta, &count)) {
    return Status::Corruption("sst bad meta: " + path);
  }
  reader->smallest_ = std::string(smallest);
  reader->largest_ = std::string(largest);
  reader->max_sequence_ = max_seq;
  // Bloom filter (appended field; absent in older files).
  std::string_view bloom_bits;
  if (GetLengthPrefixed(&meta, &bloom_bits)) {
    reader->bloom_ = BloomFilter::Deserialize(bloom_bits);
  }

  std::string_view data(file.data(), index_offset);
  // Each entry occupies at least 4 bytes on disk; a larger count is corrupt
  // and must not drive the reserve below.
  if (count > data.size() / 4 + 1) {
    return Status::Corruption("sst bad entry count: " + path);
  }
  reader->entries_.reserve(count);
  while (!data.empty()) {
    Entry e;
    if (!DecodeEntry(&data, &e)) {
      return Status::Corruption("sst bad entry: " + path);
    }
    reader->entries_.push_back(std::move(e));
  }
  if (reader->entries_.size() != count) {
    return Status::Corruption("sst entry count mismatch: " + path);
  }
  return reader;
}

bool SstReader::Get(std::string_view user_key, SequenceNumber read_seq,
                    LookupState* state) const {
  if (!bloom_.MayContain(user_key)) return false;  // Definitely absent.
  // First entry with user_key >= target; within a key, sequences descend.
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), user_key,
      [](const Entry& e, std::string_view k) { return e.key.user_key < k; });
  bool any = false;
  std::vector<std::string> operands_newest_first;
  for (; it != entries_.end() && it->key.user_key == user_key; ++it) {
    if (it->key.sequence > read_seq) continue;
    any = true;
    if (it->key.type == EntryType::kMerge) {
      operands_newest_first.push_back(it->value);
      continue;
    }
    state->found_base = true;
    state->base_is_delete = it->key.type == EntryType::kDelete;
    if (!state->base_is_delete) state->base_value = it->value;
    break;
  }
  // This table's operands are older than anything collected so far.
  state->operands.insert(state->operands.begin(),
                         operands_newest_first.rbegin(),
                         operands_newest_first.rend());
  return any;
}

void SstReader::Iterator::Seek(std::string_view target) {
  auto it = std::lower_bound(
      reader_->entries_.begin(), reader_->entries_.end(), target,
      [](const Entry& e, std::string_view k) { return e.key.user_key < k; });
  pos_ = static_cast<size_t>(it - reader_->entries_.begin());
}

}  // namespace fbstream::lsm
