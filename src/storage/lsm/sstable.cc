#include "storage/lsm/sstable.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>

#include "common/fs.h"
#include "common/serde.h"

namespace fbstream::lsm {

namespace {
// v1 wrote a flat entry array the reader decoded whole; v2 is block-based.
// Both magics are kept so a v1 file is rejected with a clear message instead
// of being misparsed.
constexpr uint64_t kSstMagicV1 = 0xfb57ab1e00c0ffeeULL;
constexpr uint64_t kSstMagicV2 = 0xfb57b10c00c0ffeeULL;
constexpr size_t kFooterBytes = 24;
constexpr size_t kNoBlock = ~size_t{0};

void EncodeEntry(const Entry& e, std::string* out) {
  PutLengthPrefixed(out, e.key.user_key);
  PutVarint64(out, e.key.sequence);
  out->push_back(static_cast<char>(e.key.type));
  PutLengthPrefixed(out, e.value);
}

bool DecodeEntry(std::string_view* in, Entry* e) {
  std::string_view key;
  uint64_t seq = 0;
  std::string_view value;
  if (!GetLengthPrefixed(in, &key)) return false;
  if (!GetVarint64(in, &seq)) return false;
  if (in->empty()) return false;
  const auto type = static_cast<EntryType>(in->front());
  in->remove_prefix(1);
  if (!GetLengthPrefixed(in, &value)) return false;
  e->key.user_key = std::string(key);
  e->key.sequence = seq;
  e->key.type = type;
  e->value = std::string(value);
  return true;
}
}  // namespace

void SstWriter::Add(const Entry& entry) {
  if (num_entries_ == 0) smallest_ = entry.key.user_key;
  const bool new_user_key =
      user_keys_.empty() || user_keys_.back() != entry.key.user_key;
  if (new_user_key) {
    user_keys_.push_back(entry.key.user_key);  // Input is sorted by key.
  }
  // Cut only between distinct user keys so a key's whole version chain stays
  // in one block (point lookups touch exactly one block).
  if (block_open_ && new_user_key &&
      data_.size() - block_start_ >= block_bytes_) {
    CutBlock();
  }
  if (!block_open_) {
    block_open_ = true;
    block_start_ = data_.size();
    block_first_key_ = entry.key.user_key;
  }
  largest_ = entry.key.user_key;
  max_sequence_ = std::max(max_sequence_, entry.key.sequence);
  EncodeEntry(entry, &data_);
  ++num_entries_;
}

void SstWriter::CutBlock() {
  index_.push_back(
      IndexEntry{block_first_key_, block_start_, data_.size() - block_start_});
  block_open_ = false;
}

Status SstWriter::Finish(const std::string& path) {
  if (block_open_) CutBlock();
  // Index, meta, and footer are appended onto the data buffer in place; the
  // buffer is handed to the filesystem without duplicating the data section.
  const uint64_t index_offset = data_.size();
  PutVarint64(&data_, index_.size());
  for (const IndexEntry& e : index_) {
    PutLengthPrefixed(&data_, e.first_key);
    PutFixed64(&data_, e.offset);
    PutFixed64(&data_, e.size);
  }
  const uint64_t meta_offset = data_.size();
  PutLengthPrefixed(&data_, smallest_);
  PutLengthPrefixed(&data_, largest_);
  PutVarint64(&data_, max_sequence_);
  PutVarint64(&data_, num_entries_);
  BloomFilter bloom(user_keys_.size());
  for (const std::string& key : user_keys_) bloom.Add(key);
  PutLengthPrefixed(&data_, bloom.Serialize());
  // Fixed-size footer.
  PutFixed64(&data_, index_offset);
  PutFixed64(&data_, meta_offset);
  PutFixed64(&data_, kSstMagicV2);
  return WriteFileAtomic(path, data_);
}

SstReader::~SstReader() {
  if (fd_ >= 0) close(fd_);
  if (cache_ != nullptr) cache_->EraseFile(cache_file_id_);
}

StatusOr<std::shared_ptr<SstReader>> SstReader::Open(
    const std::string& path, std::shared_ptr<BlockCache> cache) {
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("sst open: " + path);
  std::shared_ptr<SstReader> reader(new SstReader());
  reader->fd_ = fd;  // Owned from here; closed by the destructor on error.
  reader->path_ = path;
  reader->cache_ = cache != nullptr ? std::move(cache) : BlockCache::Default();
  reader->cache_file_id_ = BlockCache::NextFileId();

  const off_t file_size = lseek(fd, 0, SEEK_END);
  if (file_size < static_cast<off_t>(kFooterBytes)) {
    return Status::Corruption("sst too small: " + path);
  }
  char footer_buf[kFooterBytes];
  if (pread(fd, footer_buf, kFooterBytes, file_size - kFooterBytes) !=
      static_cast<ssize_t>(kFooterBytes)) {
    return Status::IoError("sst footer read: " + path);
  }
  std::string_view footer(footer_buf, kFooterBytes);
  uint64_t index_offset = 0;
  uint64_t meta_offset = 0;
  uint64_t magic = 0;
  GetFixed64(&footer, &index_offset);
  GetFixed64(&footer, &meta_offset);
  GetFixed64(&footer, &magic);
  if (magic == kSstMagicV1) {
    return Status::Corruption(
        "sst v1 (pre-block) format is no longer supported, rewrite via "
        "backup/restore from the old build: " +
        path);
  }
  if (magic != kSstMagicV2) return Status::Corruption("sst bad magic: " + path);
  const auto size = static_cast<uint64_t>(file_size);
  if (index_offset > size || meta_offset > size || index_offset > meta_offset) {
    return Status::Corruption("sst bad offsets: " + path);
  }

  // Index + meta tail (a few KiB even for large tables) is read eagerly.
  std::string tail(size - kFooterBytes - index_offset, '\0');
  if (pread(fd, tail.data(), tail.size(), static_cast<off_t>(index_offset)) !=
      static_cast<ssize_t>(tail.size())) {
    return Status::IoError("sst index read: " + path);
  }
  std::string_view index(tail.data(), meta_offset - index_offset);
  uint64_t num_blocks = 0;
  if (!GetVarint64(&index, &num_blocks) ||
      num_blocks > size / 4 + 1) {
    return Status::Corruption("sst bad index: " + path);
  }
  reader->index_.reserve(num_blocks);
  for (uint64_t i = 0; i < num_blocks; ++i) {
    std::string_view first_key;
    uint64_t offset = 0;
    uint64_t block_size = 0;
    if (!GetLengthPrefixed(&index, &first_key) ||
        !GetFixed64(&index, &offset) || !GetFixed64(&index, &block_size) ||
        offset + block_size > index_offset) {
      return Status::Corruption("sst bad index entry: " + path);
    }
    reader->index_.push_back(
        IndexEntry{std::string(first_key), offset, block_size});
  }

  std::string_view meta(tail.data() + (meta_offset - index_offset),
                        tail.size() - (meta_offset - index_offset));
  std::string_view smallest;
  std::string_view largest;
  uint64_t max_seq = 0;
  uint64_t count = 0;
  std::string_view bloom_bits;
  if (!GetLengthPrefixed(&meta, &smallest) ||
      !GetLengthPrefixed(&meta, &largest) || !GetVarint64(&meta, &max_seq) ||
      !GetVarint64(&meta, &count) || !GetLengthPrefixed(&meta, &bloom_bits)) {
    return Status::Corruption("sst bad meta: " + path);
  }
  reader->smallest_ = std::string(smallest);
  reader->largest_ = std::string(largest);
  reader->max_sequence_ = max_seq;
  reader->num_entries_ = count;
  reader->bloom_ = BloomFilter::Deserialize(bloom_bits);
  return reader;
}

size_t SstReader::FindBlock(std::string_view user_key) const {
  // Last block whose first key is <= user_key; earlier blocks end before it,
  // later blocks start after it.
  auto it = std::upper_bound(
      index_.begin(), index_.end(), user_key,
      [](std::string_view k, const IndexEntry& e) { return k < e.first_key; });
  if (it == index_.begin()) return kNoBlock;  // Below the table's first key.
  return static_cast<size_t>(it - index_.begin()) - 1;
}

StatusOr<std::shared_ptr<const SstBlock>> SstReader::ReadBlock(
    size_t block_index) const {
  const IndexEntry& entry = index_[block_index];
  if (auto cached = cache_->Lookup(cache_file_id_, entry.offset)) {
    return cached;
  }
  std::string raw(entry.size, '\0');
  if (pread(fd_, raw.data(), raw.size(), static_cast<off_t>(entry.offset)) !=
      static_cast<ssize_t>(raw.size())) {
    return Status::IoError("sst block read: " + path_);
  }
  auto block = std::make_shared<SstBlock>();
  std::string_view data(raw);
  while (!data.empty()) {
    Entry e;
    if (!DecodeEntry(&data, &e)) {
      return Status::Corruption("sst bad entry: " + path_);
    }
    block->charge += e.key.user_key.size() + e.value.size() + 48;
    block->entries.push_back(std::move(e));
  }
  cache_->Insert(cache_file_id_, entry.offset, block);
  return std::shared_ptr<const SstBlock>(std::move(block));
}

bool SstReader::Get(std::string_view user_key, SequenceNumber read_seq,
                    LookupState* state) const {
  if (!bloom_.MayContain(user_key)) return false;  // Definitely absent.
  const size_t block_index = FindBlock(user_key);
  if (block_index == kNoBlock) return false;
  auto block_or = ReadBlock(block_index);
  if (!block_or.ok()) return false;  // Unreadable table excludes nothing.
  const SstBlock& block = **block_or;
  // First entry with user_key >= target; within a key, sequences descend.
  auto it = std::lower_bound(
      block.entries.begin(), block.entries.end(), user_key,
      [](const Entry& e, std::string_view k) { return e.key.user_key < k; });
  bool any = false;
  std::vector<std::string> operands_newest_first;
  for (; it != block.entries.end() && it->key.user_key == user_key; ++it) {
    if (it->key.sequence > read_seq) continue;
    any = true;
    if (it->key.type == EntryType::kMerge) {
      operands_newest_first.push_back(it->value);
      continue;
    }
    state->found_base = true;
    state->base_is_delete = it->key.type == EntryType::kDelete;
    if (!state->base_is_delete) state->base_value = it->value;
    break;
  }
  // This table's operands are older than anything collected so far.
  state->operands.insert(state->operands.begin(),
                         operands_newest_first.rbegin(),
                         operands_newest_first.rend());
  return any;
}

void SstReader::Iterator::LoadBlock(size_t block_index) {
  block_index_ = block_index;
  pos_ = 0;
  if (block_index >= reader_->index_.size()) {
    block_ = nullptr;
    return;
  }
  auto block_or = reader_->ReadBlock(block_index);
  if (!block_or.ok()) {
    block_ = nullptr;
    status_ = block_or.status();
    return;
  }
  block_ = std::move(block_or).value();
}

void SstReader::Iterator::Next() {
  if (!Valid()) return;
  if (++pos_ >= block_->entries.size()) LoadBlock(block_index_ + 1);
}

void SstReader::Iterator::SeekToFirst() { LoadBlock(0); }

void SstReader::Iterator::Seek(std::string_view target) {
  size_t block_index = reader_->FindBlock(target);
  if (block_index == kNoBlock) block_index = 0;  // Target below first key.
  LoadBlock(block_index);
  if (block_ == nullptr) return;
  auto it = std::lower_bound(
      block_->entries.begin(), block_->entries.end(), target,
      [](const Entry& e, std::string_view k) { return e.key.user_key < k; });
  pos_ = static_cast<size_t>(it - block_->entries.begin());
  // Target past this block's last key: the next block (if any) starts at the
  // first key >= target.
  if (pos_ >= block_->entries.size()) LoadBlock(block_index + 1);
}

}  // namespace fbstream::lsm
