#ifndef FBSTREAM_STORAGE_LSM_VERSION_H_
#define FBSTREAM_STORAGE_LSM_VERSION_H_

#include <memory>
#include <vector>

#include "storage/lsm/internal_key.h"
#include "storage/lsm/memtable.h"
#include "storage/lsm/sstable.h"

namespace fbstream::lsm {

// One live SST and its number in the MANIFEST.
struct FileMeta {
  uint64_t number = 0;
  std::shared_ptr<SstReader> reader;
};

// An immutable, refcounted snapshot of the DB's entire read superstructure:
// active memtable, immutable (flushing) memtable, and both levels. Writers
// build a fresh Version for every structural change (memtable switch, flush
// completion, compaction) and swap it into the DB's atomic current-version
// pointer; readers grab a shared_ptr and run entirely lock-free, keeping
// every table they can see alive for as long as they hold it.
//
// Read protocol: load the DB's visible sequence FIRST (acquire), then the
// version (acquire). Every version contains all data up to the sequence
// published before it, so the version loaded second always covers the
// sequence loaded first — reads are consistent and never miss acknowledged
// writes. (The active memtable keeps receiving concurrent appends; they are
// newer than the loaded sequence and filtered out.)
struct Version {
  std::shared_ptr<const MemTable> mem;  // Active; still receiving writes.
  std::shared_ptr<const MemTable> imm;  // Flushing; null when none.
  std::vector<FileMeta> level0;         // Overlapping ranges, newest last.
  std::vector<FileMeta> level1;         // Sorted by smallest key, disjoint.

  // Layered point lookup, newest layer first, stopping at the first
  // Put/Delete base (merge operands keep accumulating across layers).
  void Get(std::string_view user_key, SequenceNumber read_seq,
           LookupState* state) const;
};

}  // namespace fbstream::lsm

#endif  // FBSTREAM_STORAGE_LSM_VERSION_H_
