#include "storage/lsm/block_cache.h"

#include <atomic>

#include "common/metrics.h"

namespace fbstream::lsm {

namespace {
// Cache metrics are process-global, like the rest of the lsm.* family: the
// interesting signal is the node-wide hit rate across all shard-local Dbs.
struct CacheMetrics {
  Counter* hits = MetricsRegistry::Global()->GetCounter("lsm.block_cache.hit");
  Counter* misses =
      MetricsRegistry::Global()->GetCounter("lsm.block_cache.miss");
  Counter* evictions =
      MetricsRegistry::Global()->GetCounter("lsm.block_cache.evict");
  Gauge* bytes = MetricsRegistry::Global()->GetGauge("lsm.block_cache.bytes");
};

CacheMetrics* Metrics() {
  static CacheMetrics* m = new CacheMetrics();
  return m;
}
}  // namespace

BlockCache::BlockCache(size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

const std::shared_ptr<BlockCache>& BlockCache::Default() {
  static const auto* cache =
      new std::shared_ptr<BlockCache>(std::make_shared<BlockCache>(64u << 20));
  return *cache;
}

uint64_t BlockCache::NextFileId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const SstBlock> BlockCache::Lookup(uint64_t file_id,
                                                   uint64_t offset) {
  const Key key{file_id, offset};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    Metrics()->misses->Add();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // Mark most recently used.
  ++hits_;
  Metrics()->hits->Add();
  return it->second->block;
}

void BlockCache::Insert(uint64_t file_id, uint64_t offset,
                        std::shared_ptr<const SstBlock> block) {
  if (block == nullptr) return;
  const Key key{file_id, offset};
  const size_t charge = block->charge;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Racing loaders decoded the same block; keep the resident copy.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Slot{key, std::move(block)});
  map_.emplace(key, lru_.begin());
  bytes_ += charge;
  EvictIfOverLocked();
  Metrics()->bytes->Set(static_cast<int64_t>(bytes_));
}

void BlockCache::EvictIfOverLocked() {
  while (bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Slot& victim = lru_.back();
    bytes_ -= victim.block->charge;
    map_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    Metrics()->evictions->Add();
  }
}

void BlockCache::EraseFile(uint64_t file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.file_id == file_id) {
      bytes_ -= it->block->charge;
      map_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  Metrics()->bytes->Set(static_cast<int64_t>(bytes_));
}

BlockCache::Stats BlockCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.bytes = bytes_;
  stats.blocks = lru_.size();
  return stats;
}

}  // namespace fbstream::lsm
