#ifndef FBSTREAM_STORAGE_LSM_MERGE_OPERATOR_H_
#define FBSTREAM_STORAGE_LSM_MERGE_OPERATOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fbstream::lsm {

// Custom merge operator, the RocksDB feature the paper's Figure 12
// experiment depends on: "When the remote database supports a custom merge
// operator ... the read-modify-write pattern is optimized to an append-only
// pattern, resulting in performance gains" (§4.4.2).
//
// A Merge(key, operand) write appends an operand; reads and compactions
// combine the operand stack with the base value via FullMerge. PartialMerge
// optionally combines adjacent operands without a base value so compaction
// can shrink operand chains.
class MergeOperator {
 public:
  virtual ~MergeOperator() = default;

  virtual const char* Name() const = 0;

  // Combines `existing` (nullptr if the key has no base value) with
  // `operands`, oldest first. Returns false on malformed input, in which
  // case the read fails with Corruption.
  virtual bool FullMerge(std::string_view key, const std::string* existing,
                         const std::vector<std::string>& operands,
                         std::string* result) const = 0;

  // Combines two adjacent operands (older `left`, newer `right`). Returns
  // false if these operands cannot be combined without the base value.
  virtual bool PartialMerge(std::string_view key, std::string_view left,
                            std::string_view right,
                            std::string* result) const {
    (void)key;
    (void)left;
    (void)right;
    (void)result;
    return false;
  }
};

// value/operand = decimal int64; merge = addition. The classic counter.
std::unique_ptr<MergeOperator> MakeInt64AddOperator();

// value/operand = arbitrary bytes; merge = concatenation with a separator.
std::unique_ptr<MergeOperator> MakeStringAppendOperator(char separator = ',');

// value/operand = decimal int64; merge = max.
std::unique_ptr<MergeOperator> MakeInt64MaxOperator();

}  // namespace fbstream::lsm

#endif  // FBSTREAM_STORAGE_LSM_MERGE_OPERATOR_H_
