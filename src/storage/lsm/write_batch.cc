#include "storage/lsm/write_batch.h"

#include "common/serde.h"

namespace fbstream::lsm {

void WriteBatch::Put(std::string_view key, std::string_view value) {
  ops_.push_back(Op{EntryType::kPut, std::string(key), std::string(value)});
}

void WriteBatch::Delete(std::string_view key) {
  ops_.push_back(Op{EntryType::kDelete, std::string(key), ""});
}

void WriteBatch::Merge(std::string_view key, std::string_view operand) {
  ops_.push_back(
      Op{EntryType::kMerge, std::string(key), std::string(operand)});
}

std::string WriteBatch::Serialize() const {
  std::string out;
  PutVarint64(&out, ops_.size());
  for (const Op& op : ops_) {
    out.push_back(static_cast<char>(op.type));
    PutLengthPrefixed(&out, op.key);
    if (op.type != EntryType::kDelete) PutLengthPrefixed(&out, op.value);
  }
  return out;
}

StatusOr<WriteBatch> WriteBatch::Deserialize(std::string_view data) {
  WriteBatch batch;
  uint64_t n = 0;
  if (!GetVarint64(&data, &n)) {
    return Status::Corruption("write batch: bad count");
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (data.empty()) return Status::Corruption("write batch: truncated");
    const auto type = static_cast<EntryType>(data.front());
    data.remove_prefix(1);
    std::string_view key;
    if (!GetLengthPrefixed(&data, &key)) {
      return Status::Corruption("write batch: bad key");
    }
    std::string_view value;
    if (type != EntryType::kDelete && !GetLengthPrefixed(&data, &value)) {
      return Status::Corruption("write batch: bad value");
    }
    switch (type) {
      case EntryType::kPut:
        batch.Put(key, value);
        break;
      case EntryType::kDelete:
        batch.Delete(key);
        break;
      case EntryType::kMerge:
        batch.Merge(key, value);
        break;
      default:
        return Status::Corruption("write batch: unknown op type");
    }
  }
  return batch;
}

}  // namespace fbstream::lsm
