#ifndef FBSTREAM_STORAGE_HDFS_HDFS_H_
#define FBSTREAM_STORAGE_HDFS_HDFS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace fbstream::hdfs {

// Simulated HDFS cluster (paper §2.1: Scribe stores data in HDFS; §4.4.2:
// Stylus local state is backed up to HDFS).
//
// Substitution note (see DESIGN.md): the real system is a distributed block
// store; the behaviors the paper depends on are (a) a file namespace with
// whole-file write/read, (b) block-based replicated storage, and (c) the
// possibility of being *unavailable* — "HDFS is designed for batch workloads
// and is not intended to be an always-available system. If HDFS is not
// available for writes, processing continues without remote backup copies."
// We implement a namenode-style namespace over fixed-size blocks on local
// disk and expose availability injection so that failure-handling paths can
// be exercised deterministically.
struct HdfsOptions {
  size_t block_bytes = 1u << 20;
  int replication = 3;  // Accounted, not physically duplicated.
};

class HdfsCluster {
 public:
  explicit HdfsCluster(std::string root_dir, HdfsOptions options = {});

  // Availability injection. While unavailable, every operation returns
  // Status::Unavailable.
  void SetAvailable(bool available);
  bool available() const;

  Status WriteFile(const std::string& path, const std::string& data);
  StatusOr<std::string> ReadFile(const std::string& path) const;
  Status DeleteFile(const std::string& path);
  bool Exists(const std::string& path) const;
  // Lists immediate children (files whose path starts with `dir` + "/").
  StatusOr<std::vector<std::string>> ListFiles(const std::string& dir) const;

  struct FileInfo {
    uint64_t length = 0;
    int num_blocks = 0;
  };
  StatusOr<FileInfo> Stat(const std::string& path) const;

  // Total bytes stored (pre-replication), for capacity monitoring.
  uint64_t UsedBytes() const;

 private:
  struct INode {
    std::vector<uint64_t> block_ids;
    uint64_t length = 0;
  };

  std::string BlockPath(uint64_t id) const;
  Status PersistNamespaceLocked() const;
  Status RecoverNamespace();

  std::string root_;
  HdfsOptions options_;
  mutable std::mutex mu_;
  bool available_ = true;
  uint64_t next_block_id_ = 1;
  std::map<std::string, INode> namespace_;
};

}  // namespace fbstream::hdfs

#endif  // FBSTREAM_STORAGE_HDFS_HDFS_H_
