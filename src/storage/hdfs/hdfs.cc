#include "storage/hdfs/hdfs.h"

#include "common/fault.h"
#include "common/fs.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/serde.h"

namespace fbstream::hdfs {

namespace {
constexpr char kNamespaceImage[] = "fsimage";
}  // namespace

HdfsCluster::HdfsCluster(std::string root_dir, HdfsOptions options)
    : root_(std::move(root_dir)), options_(options) {
  const Status st = CreateDirs(root_ + "/blocks");
  if (!st.ok()) FBSTREAM_LOG(Warning) << "hdfs root: " << st;
  const Status rec = RecoverNamespace();
  if (!rec.ok()) FBSTREAM_LOG(Warning) << "hdfs recover: " << rec;
}

void HdfsCluster::SetAvailable(bool available) {
  std::lock_guard<std::mutex> lock(mu_);
  available_ = available;
}

bool HdfsCluster::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return available_;
}

std::string HdfsCluster::BlockPath(uint64_t id) const {
  return root_ + "/blocks/blk_" + std::to_string(id);
}

Status HdfsCluster::WriteFile(const std::string& path,
                              const std::string& data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!available_) return Status::Unavailable("hdfs down");
  FBSTREAM_RETURN_IF_ERROR(FaultRegistry::Global()->Hit("hdfs.write"));
  INode inode;
  inode.length = data.size();
  size_t offset = 0;
  do {
    const size_t n = std::min(options_.block_bytes, data.size() - offset);
    const uint64_t id = next_block_id_++;
    // Kill-mode crash point: a block can be half-written when the process
    // dies. Because the fsimage (the commit point) is only persisted after
    // every block, recovery never references the torn block.
    FBSTREAM_RETURN_IF_ERROR(
        FaultRegistry::Global()->Hit("hdfs.block.write"));
    // Blocks must be durable before the fsimage referencing them is: a
    // buffered write could be reordered after the atomic image rename.
    FBSTREAM_RETURN_IF_ERROR(
        WriteFileDurable(BlockPath(id), data.substr(offset, n)));
    inode.block_ids.push_back(id);
    offset += n;
  } while (offset < data.size());
  SyncDir(root_ + "/blocks");
  // Replace any previous version; old blocks are garbage collected.
  auto it = namespace_.find(path);
  std::vector<uint64_t> old_blocks;
  if (it != namespace_.end()) old_blocks = it->second.block_ids;
  namespace_[path] = std::move(inode);
  FBSTREAM_RETURN_IF_ERROR(PersistNamespaceLocked());
  for (const uint64_t id : old_blocks) {
    const Status st = RemoveFile(BlockPath(id));
    if (!st.ok()) FBSTREAM_LOG(Warning) << "hdfs gc: " << st;
  }
  static Counter* write_files =
      MetricsRegistry::Global()->GetCounter("hdfs.write.files");
  static Counter* write_bytes =
      MetricsRegistry::Global()->GetCounter("hdfs.write.bytes");
  write_files->Add();
  write_bytes->Add(data.size());
  return Status::OK();
}

StatusOr<std::string> HdfsCluster::ReadFile(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!available_) return Status::Unavailable("hdfs down");
  FBSTREAM_RETURN_IF_ERROR(FaultRegistry::Global()->Hit("hdfs.read"));
  auto it = namespace_.find(path);
  if (it == namespace_.end()) return Status::NotFound(path);
  std::string data;
  data.reserve(it->second.length);
  for (const uint64_t id : it->second.block_ids) {
    FBSTREAM_ASSIGN_OR_RETURN(std::string block,
                              ReadFileToString(BlockPath(id)));
    data += block;
  }
  static Counter* read_files =
      MetricsRegistry::Global()->GetCounter("hdfs.read.files");
  read_files->Add();
  return data;
}

Status HdfsCluster::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!available_) return Status::Unavailable("hdfs down");
  auto it = namespace_.find(path);
  if (it == namespace_.end()) return Status::NotFound(path);
  const std::vector<uint64_t> blocks = it->second.block_ids;
  namespace_.erase(it);
  FBSTREAM_RETURN_IF_ERROR(PersistNamespaceLocked());
  for (const uint64_t id : blocks) {
    const Status st = RemoveFile(BlockPath(id));
    if (!st.ok()) FBSTREAM_LOG(Warning) << "hdfs gc: " << st;
  }
  return Status::OK();
}

bool HdfsCluster::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return available_ && namespace_.count(path) > 0;
}

StatusOr<std::vector<std::string>> HdfsCluster::ListFiles(
    const std::string& dir) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!available_) return Status::Unavailable("hdfs down");
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  std::vector<std::string> names;
  for (const auto& [path, inode] : namespace_) {
    if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0) {
      names.push_back(path.substr(prefix.size()));
    }
  }
  return names;
}

StatusOr<HdfsCluster::FileInfo> HdfsCluster::Stat(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!available_) return Status::Unavailable("hdfs down");
  auto it = namespace_.find(path);
  if (it == namespace_.end()) return Status::NotFound(path);
  FileInfo info;
  info.length = it->second.length;
  info.num_blocks = static_cast<int>(it->second.block_ids.size());
  return info;
}

uint64_t HdfsCluster::UsedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [path, inode] : namespace_) total += inode.length;
  return total;
}

Status HdfsCluster::PersistNamespaceLocked() const {
  // Kill-mode crash point: dying here (or inside the atomic write below)
  // leaves the previous fsimage intact — the new file version was never
  // committed, its blocks are orphans.
  FBSTREAM_RETURN_IF_ERROR(FaultRegistry::Global()->Hit("hdfs.fsimage.write"));
  std::string image;
  PutVarint64(&image, next_block_id_);
  PutVarint64(&image, namespace_.size());
  for (const auto& [path, inode] : namespace_) {
    PutLengthPrefixed(&image, path);
    PutVarint64(&image, inode.length);
    PutVarint64(&image, inode.block_ids.size());
    for (const uint64_t id : inode.block_ids) PutVarint64(&image, id);
  }
  return WriteFileAtomic(root_ + "/" + kNamespaceImage, image);
}

Status HdfsCluster::RecoverNamespace() {
  const std::string path = root_ + "/" + kNamespaceImage;
  // A crash between the temp write and the rename leaves `fsimage.tmp`
  // behind; it is at best a duplicate of the real image and at worst torn,
  // so it must never be consulted. Drop it.
  if (FileExists(path + ".tmp")) {
    const Status st = RemoveFile(path + ".tmp");
    if (!st.ok()) FBSTREAM_LOG(Warning) << "hdfs stale fsimage.tmp: " << st;
  }
  if (!FileExists(path)) return Status::OK();
  FBSTREAM_ASSIGN_OR_RETURN(std::string image, ReadFileToString(path));
  std::string_view view(image);
  uint64_t count = 0;
  if (!GetVarint64(&view, &next_block_id_) || !GetVarint64(&view, &count)) {
    return Status::Corruption("hdfs fsimage header");
  }
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view p;
    INode inode;
    uint64_t nblocks = 0;
    if (!GetLengthPrefixed(&view, &p) ||
        !GetVarint64(&view, &inode.length) ||
        !GetVarint64(&view, &nblocks)) {
      return Status::Corruption("hdfs fsimage inode");
    }
    for (uint64_t b = 0; b < nblocks; ++b) {
      uint64_t id = 0;
      if (!GetVarint64(&view, &id)) {
        return Status::Corruption("hdfs fsimage block");
      }
      inode.block_ids.push_back(id);
    }
    namespace_.emplace(std::string(p), std::move(inode));
  }
  return Status::OK();
}

}  // namespace fbstream::hdfs
