#include "storage/laser/laser.h"

#include "common/fs.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/serde.h"
#include "storage/hive/hive.h"

namespace fbstream::laser {

namespace {
constexpr char kKeySeparator = '\x01';
}  // namespace

LaserApp::LaserApp(LaserAppConfig config, Clock* clock)
    : config_(std::move(config)),
      clock_(clock),
      value_codec_(nullptr),
      reads_(MetricsRegistry::Global()->GetCounter("laser.read.queries",
                                                   config_.name)),
      read_misses_(MetricsRegistry::Global()->GetCounter("laser.read.misses",
                                                         config_.name)) {
  std::vector<Column> value_columns;
  for (const std::string& name : config_.value_columns) {
    const int i = config_.input_schema->IndexOf(name);
    value_columns.push_back(config_.input_schema->column(
        static_cast<size_t>(i < 0 ? 0 : i)));
  }
  value_schema_ = Schema::Make(std::move(value_columns));
  value_codec_ = BinaryRowCodec(value_schema_);
}

StatusOr<std::unique_ptr<LaserApp>> LaserApp::Create(
    const LaserAppConfig& config, scribe::Scribe* scribe, Clock* clock,
    const std::string& dir) {
  if (config.input_schema == nullptr) {
    return Status::InvalidArgument("laser app needs an input schema");
  }
  if (config.key_columns.empty()) {
    return Status::InvalidArgument("laser app needs key columns");
  }
  for (const std::string& col : config.key_columns) {
    if (!config.input_schema->Has(col)) {
      return Status::InvalidArgument("unknown key column " + col);
    }
  }
  for (const std::string& col : config.value_columns) {
    if (!config.input_schema->Has(col)) {
      return Status::InvalidArgument("unknown value column " + col);
    }
  }
  std::unique_ptr<LaserApp> app(new LaserApp(config, clock));
  FBSTREAM_ASSIGN_OR_RETURN(app->db_, lsm::Db::Open(config.db_options, dir));
  if (!config.scribe_category.empty()) {
    if (scribe == nullptr || !scribe->HasCategory(config.scribe_category)) {
      return Status::InvalidArgument("unknown scribe category " +
                                     config.scribe_category);
    }
    const int buckets = scribe->NumBuckets(config.scribe_category);
    for (int b = 0; b < buckets; ++b) {
      app->tailers_.emplace_back(scribe, config.scribe_category, b);
    }
  }
  return app;
}

std::string LaserApp::EncodeKey(const std::vector<Value>& key) const {
  std::string out;
  EncodeKeyInto(key, &out);
  return out;
}

void LaserApp::EncodeKeyInto(const std::vector<Value>& key,
                             std::string* out) {
  for (size_t i = 0; i < key.size(); ++i) {
    if (i > 0) out->push_back(kKeySeparator);
    *out += key[i].ToString();
  }
}

Status LaserApp::ApplyRow(const Row& row) {
  std::vector<Value> key;
  key.reserve(config_.key_columns.size());
  for (const std::string& col : config_.key_columns) {
    key.push_back(row.Get(col));
  }
  Row value_row(value_schema_);
  for (size_t i = 0; i < config_.value_columns.size(); ++i) {
    value_row.Set(i, row.Get(config_.value_columns[i]));
  }
  // Stored value = expiry timestamp + encoded value row.
  std::string stored;
  const Micros expire_at =
      config_.ttl_micros > 0 ? clock_->NowMicros() + config_.ttl_micros : 0;
  PutVarint64(&stored, static_cast<uint64_t>(expire_at));
  BinaryRowCodec codec(value_schema_);
  stored += codec.Encode(value_row);
  ++rows_ingested_;
  return db_->Put(EncodeKey(key), stored);
}

StatusOr<size_t> LaserApp::PollOnce() {
  TextRowCodec codec(config_.input_schema);
  size_t applied = 0;
  for (scribe::Tailer& tailer : tailers_) {
    while (true) {
      auto messages = tailer.Poll();
      if (messages.empty()) break;
      for (const scribe::Message& m : messages) {
        auto row = codec.Decode(m.payload);
        if (!row.ok()) {
          FBSTREAM_LOG(Warning) << "laser " << config_.name
                                << ": bad row: " << row.status();
          continue;
        }
        FBSTREAM_RETURN_IF_ERROR(ApplyRow(*row));
        ++applied;
      }
    }
  }
  return applied;
}

StatusOr<Row> LaserApp::Get(const std::vector<Value>& key) const {
  num_queries_.fetch_add(1, std::memory_order_relaxed);
  reads_->Add(1);
  // Warm thread-local buffers: after the first call on a thread, encoding
  // the key and fetching the stored value allocate nothing.
  thread_local std::string key_buf;
  thread_local std::string value_buf;
  key_buf.clear();
  EncodeKeyInto(key, &key_buf);
  const Status st = db_->GetInto(key_buf, &value_buf);
  if (!st.ok()) {
    if (st.IsNotFound()) read_misses_->Add(1);
    return st;
  }
  std::string_view view(value_buf);
  uint64_t expire_at = 0;
  if (!GetVarint64(&view, &expire_at)) {
    return Status::Corruption("laser value header");
  }
  if (expire_at != 0 &&
      static_cast<Micros>(expire_at) <= clock_->NowMicros()) {
    read_misses_->Add(1);
    return Status::NotFound("expired");
  }
  return value_codec_.Decode(view);
}

StatusOr<Row> LaserApp::Get(const Value& key) const {
  return Get(std::vector<Value>{key});
}

std::vector<StatusOr<Row>> LaserApp::MultiGet(
    const std::vector<std::vector<Value>>& keys) const {
  std::vector<StatusOr<Row>> out;
  out.reserve(keys.size());
  for (const auto& key : keys) out.push_back(Get(key));
  return out;
}

Status LaserApp::LoadFromHive(const hive::Hive& hive, const std::string& table,
                              const std::string& ds) {
  FBSTREAM_ASSIGN_OR_RETURN(std::vector<Row> rows,
                            hive.ReadPartition(table, ds));
  for (const Row& row : rows) {
    FBSTREAM_RETURN_IF_ERROR(ApplyRow(row));
  }
  return Status::OK();
}

Status LaserApp::LoadRows(const std::vector<Row>& rows) {
  for (const Row& row : rows) {
    FBSTREAM_RETURN_IF_ERROR(ApplyRow(row));
  }
  return Status::OK();
}

Laser::Laser(scribe::Scribe* scribe, Clock* clock, std::string root_dir)
    : scribe_(scribe), clock_(clock), root_(std::move(root_dir)) {}

Status Laser::DeployApp(const LaserAppConfig& config) {
  if (apps_.count(config.name) > 0) {
    return Status::AlreadyExists("laser app " + config.name);
  }
  FBSTREAM_ASSIGN_OR_RETURN(
      auto app,
      LaserApp::Create(config, scribe_, clock_, root_ + "/" + config.name));
  apps_.emplace(config.name, std::move(app));
  return Status::OK();
}

Status Laser::DeleteApp(const std::string& name) {
  auto it = apps_.find(name);
  if (it == apps_.end()) return Status::NotFound("laser app " + name);
  apps_.erase(it);
  return RemoveAll(root_ + "/" + name);
}

LaserApp* Laser::GetApp(const std::string& name) const {
  auto it = apps_.find(name);
  return it == apps_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Laser::ListApps() const {
  std::vector<std::string> names;
  for (const auto& [name, app] : apps_) names.push_back(name);
  return names;
}

void Laser::PollAll() {
  for (auto& [name, app] : apps_) {
    const auto result = app->PollOnce();
    if (!result.ok()) {
      FBSTREAM_LOG(Warning) << "laser poll " << name << ": "
                            << result.status();
    }
  }
}

}  // namespace fbstream::laser
