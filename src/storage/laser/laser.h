#ifndef FBSTREAM_STORAGE_LASER_LASER_H_
#define FBSTREAM_STORAGE_LASER_LASER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/value.h"
#include "scribe/scribe.h"
#include "storage/lsm/db.h"

namespace fbstream::hive {
class Hive;
}  // namespace fbstream::hive

namespace fbstream::laser {

// Laser (paper §2.5): "a high query throughput, low (millisecond) latency,
// key-value storage service built on top of RocksDB. Laser can read from any
// Scribe category in realtime or from any Hive table once a day. The key and
// value can each be any combination of columns in the (serialized) input
// stream."
//
// Deployment follows §6.3: "Laser apps are extremely easy to setup, deploy,
// and delete. There is a UI to configure the app: just choose an ordered set
// of columns from the input Scribe stream for each of the key and value, a
// lifetime for each key-value pair, and a set of data centers."
struct LaserAppConfig {
  std::string name;
  // Realtime source. Empty if the app is fed only by Hive loads.
  std::string scribe_category;
  // Schema of the serialized input stream (text rows).
  SchemaPtr input_schema;
  // Ordered column subsets forming the key and the value.
  std::vector<std::string> key_columns;
  std::vector<std::string> value_columns;
  // Lifetime for each key-value pair; 0 = no expiry.
  Micros ttl_micros = 0;
  // Redundant serving tiers (§4.2.2 "we can run multiple ... Laser tiers");
  // accounted for capacity, all served from the same store here.
  int num_datacenters = 1;
  // Storage tuning for the app's embedded lsm::Db. Apps on one node share
  // the default process-wide block cache unless db_options.block_cache is
  // set; merge_operator here would be overwritten per-app internals, so
  // callers only set storage knobs (memtable size, cache, block size).
  lsm::DbOptions db_options;
};

// One deployed Laser app: a KV view over a stream.
class LaserApp {
 public:
  static StatusOr<std::unique_ptr<LaserApp>> Create(
      const LaserAppConfig& config, scribe::Scribe* scribe, Clock* clock,
      const std::string& dir);

  const LaserAppConfig& config() const { return config_; }

  // Ingests all pending messages from the Scribe category (all buckets).
  // Returns the number of rows applied.
  StatusOr<size_t> PollOnce();

  // Point read by key column values. Returns the value row (value columns
  // only). Expired and absent keys are NotFound.
  //
  // Serving path (§2.5 "high query throughput, low (millisecond) latency"):
  // goes straight through the LSM's lock-free versioned read protocol via
  // Db::GetInto — no DB mutex, and key/value scratch buffers are
  // thread-local so a hot read loop does no per-call allocation. Safe to
  // call from many threads concurrently with ingestion.
  StatusOr<Row> Get(const std::vector<Value>& key) const;
  // Convenience for single-column keys.
  StatusOr<Row> Get(const Value& key) const;

  std::vector<StatusOr<Row>> MultiGet(
      const std::vector<std::vector<Value>>& keys) const;

  // Bulk-loads a day's partition of a Hive table (§2.5 "from any Hive table
  // once a day"), replacing matching keys.
  Status LoadFromHive(const hive::Hive& hive, const std::string& table,
                      const std::string& ds);

  // Bulk-loads rows directly (e.g., a Presto query result sent to Laser,
  // §2.7). Rows must carry the key/value columns by name.
  Status LoadRows(const std::vector<Row>& rows);

  uint64_t num_queries() const {
    return num_queries_.load(std::memory_order_relaxed);
  }
  uint64_t rows_ingested() const { return rows_ingested_; }

 private:
  LaserApp(LaserAppConfig config, Clock* clock);

  std::string EncodeKey(const std::vector<Value>& key) const;
  // Appends the encoded key to `*out` (which the caller has cleared) —
  // the Get path reuses a thread-local buffer instead of allocating.
  static void EncodeKeyInto(const std::vector<Value>& key, std::string* out);
  Status ApplyRow(const Row& row);

  LaserAppConfig config_;
  Clock* clock_;
  SchemaPtr value_schema_;
  BinaryRowCodec value_codec_;  // Stateless; shared by all reader threads.
  std::unique_ptr<lsm::Db> db_;
  std::vector<scribe::Tailer> tailers_;
  uint64_t rows_ingested_ = 0;
  // Reads are concurrent (the serving path takes no lock); plain counters
  // would race.
  mutable std::atomic<uint64_t> num_queries_{0};
  Counter* reads_;        // laser.read.queries
  Counter* read_misses_;  // laser.read.misses
};

// The Laser service: a registry of deployed apps with one-command deploy /
// delete (§6.3).
class Laser {
 public:
  Laser(scribe::Scribe* scribe, Clock* clock, std::string root_dir);

  Status DeployApp(const LaserAppConfig& config);
  Status DeleteApp(const std::string& name);
  LaserApp* GetApp(const std::string& name) const;
  std::vector<std::string> ListApps() const;

  // Drives realtime ingestion for every app.
  void PollAll();

 private:
  scribe::Scribe* scribe_;
  Clock* clock_;
  std::string root_;
  std::map<std::string, std::unique_ptr<LaserApp>> apps_;
};

}  // namespace fbstream::laser

#endif  // FBSTREAM_STORAGE_LASER_LASER_H_
