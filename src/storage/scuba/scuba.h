#ifndef FBSTREAM_STORAGE_SCUBA_SCUBA_H_
#define FBSTREAM_STORAGE_SCUBA_SCUBA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/value.h"
#include "scribe/scribe.h"

namespace fbstream::scuba {

// Scuba (paper §2.6): "Facebook's fast slice-and-dice analysis data store...
// Scuba ingests millions of new rows per second... Scuba provides ad hoc
// queries with most response times under 1 second." Scuba aggregates at
// *query time* by reading all of the raw event data (§5.2) — the property
// the dashboard-migration experiment measures. Rows may be sampled on
// ingest ("Most data sent to Scuba is sampled", §4.3.2) and query results
// are best-effort.

enum class AggKind {
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kPercentile,  // Exact, by sorting the group's values.
  kUniques,     // HyperLogLog approximate distinct count.
};

struct Aggregate {
  AggKind kind = AggKind::kCount;
  std::string column;       // Ignored for kCount.
  double percentile = 0.5;  // For kPercentile.
};

enum class FilterOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

struct Filter {
  std::string column;
  FilterOp op = FilterOp::kEq;
  Value operand;
};

// A slice-and-dice query: filter -> optional time bucketing -> group by ->
// aggregate -> keep the top `limit` series. Dashboards visualize at most ~7
// lines (§5.2: "Most Scuba queries have a limit of 7").
struct Query {
  std::vector<Filter> filters;
  std::vector<std::string> group_by;
  std::vector<Aggregate> aggregates;
  // Time-series bucketing; empty time_column disables it.
  std::string time_column;
  Micros bucket_micros = 0;
  // Optional closed-open time range on time_column (0,0 = unbounded).
  Micros min_time = 0;
  Micros max_time = 0;
  size_t limit = 7;
};

struct ResultRow {
  Micros bucket = 0;  // Bucket start when time bucketing is on.
  std::vector<Value> group;
  std::vector<double> aggregates;
};

struct QueryResult {
  std::vector<ResultRow> rows;
  // CPU-work proxy: raw rows visited to answer this query. The §5.2 bench
  // compares this against Puma's write-time aggregation cost.
  uint64_t rows_scanned = 0;
};

class ScubaTable {
 public:
  ScubaTable(std::string name, SchemaPtr schema, double sample_rate = 1.0,
             uint64_t sample_seed = 42);

  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }

  // Adds a row, subject to ingest-time sampling. Returns true if kept.
  bool AddRow(Row row);
  // Parses a text-serialized row and adds it.
  Status IngestPayload(std::string_view payload);

  StatusOr<QueryResult> Run(const Query& query) const;

  // Retention: drops raw rows whose `time_column` value is below `horizon`
  // (Scuba keeps a bounded window of recent raw data). Returns rows dropped.
  size_t ExpireBefore(const std::string& time_column, Micros horizon);

  size_t num_rows() const { return rows_.size(); }
  uint64_t total_rows_scanned() const { return total_rows_scanned_; }
  double sample_rate() const { return sample_rate_; }

 private:
  std::string name_;
  SchemaPtr schema_;
  double sample_rate_;
  Rng rng_;
  std::vector<Row> rows_;
  mutable uint64_t total_rows_scanned_ = 0;
};

// The Scuba service: tables plus realtime Scribe ingestion.
class Scuba {
 public:
  explicit Scuba(scribe::Scribe* scribe) : scribe_(scribe) {}

  Status CreateTable(const std::string& name, SchemaPtr schema,
                     double sample_rate = 1.0);
  ScubaTable* GetTable(const std::string& name) const;

  // Streams a Scribe category into a table ("Scuba can also ingest the
  // output of any Puma, Stylus, or Swift app").
  Status AttachCategory(const std::string& table,
                        const std::string& category);
  // Drains all attached categories. Returns rows ingested.
  size_t PollAll();

  // Global CPU-work proxy across all tables.
  uint64_t total_rows_scanned() const;

 private:
  struct Attachment {
    std::string table;
    std::vector<scribe::Tailer> tailers;
  };

  scribe::Scribe* scribe_;
  std::map<std::string, std::unique_ptr<ScubaTable>> tables_;
  std::vector<Attachment> attachments_;
};

}  // namespace fbstream::scuba

#endif  // FBSTREAM_STORAGE_SCUBA_SCUBA_H_
