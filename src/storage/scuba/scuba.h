#ifndef FBSTREAM_STORAGE_SCUBA_SCUBA_H_
#define FBSTREAM_STORAGE_SCUBA_SCUBA_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/shard_executor.h"
#include "common/status.h"
#include "common/value.h"
#include "scribe/scribe.h"

namespace fbstream::scuba {

// Scuba (paper §2.6): "Facebook's fast slice-and-dice analysis data store...
// Scuba ingests millions of new rows per second... Scuba provides ad hoc
// queries with most response times under 1 second." Scuba aggregates at
// *query time* by reading all of the raw event data (§5.2) — the property
// the dashboard-migration experiment measures. Rows may be sampled on
// ingest ("Most data sent to Scuba is sampled", §4.3.2) and query results
// are best-effort.
//
// Storage layout: rows live in immutable fixed-capacity blocks, stored
// column-major (Scuba is a column store): the values of one column sit in
// one contiguous array, so a scan streams through exactly the columns the
// query touches instead of pointer-chasing a per-row heap vector. Ingest
// scatters each row into the newest block's column arrays and publishes it
// with a release store of the block's row count; queries snapshot the block
// list (shared_ptrs) and scan without ever blocking ingest. Query execution
// fans the blocks of one query across a shared ShardExecutor pool — each
// worker folds its slice of blocks into partial (bucket, group) aggregates,
// merged at the end. All aggregation states are monoid (count/sum/min/max
// merge trivially, percentile concatenates samples before the final sort,
// uniques merges HyperLogLog registers), so the parallel result is
// byte-identical to the serial scan. See DESIGN.md "Query execution".

enum class AggKind {
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kPercentile,  // Exact, by sorting the group's values.
  kUniques,     // HyperLogLog approximate distinct count.
};

struct Aggregate {
  AggKind kind = AggKind::kCount;
  std::string column;       // Ignored for kCount.
  double percentile = 0.5;  // For kPercentile; must be in [0, 1].
};

enum class FilterOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

struct Filter {
  std::string column;
  FilterOp op = FilterOp::kEq;
  Value operand;
};

// A slice-and-dice query: filter -> optional time bucketing -> group by ->
// aggregate -> keep the top `limit` series. Dashboards visualize at most ~7
// lines (§5.2: "Most Scuba queries have a limit of 7").
struct Query {
  std::vector<Filter> filters;
  std::vector<std::string> group_by;
  std::vector<Aggregate> aggregates;
  // Time-series bucketing; empty time_column disables it.
  std::string time_column;
  Micros bucket_micros = 0;
  // Optional closed-open time range on time_column (0,0 = unbounded).
  Micros min_time = 0;
  Micros max_time = 0;
  size_t limit = 7;
};

struct ResultRow {
  Micros bucket = 0;  // Bucket start when time bucketing is on.
  std::vector<Value> group;
  std::vector<double> aggregates;
};

struct QueryResult {
  std::vector<ResultRow> rows;
  // CPU-work proxy: raw rows visited to answer this query. The §5.2 bench
  // compares this against Puma's write-time aggregation cost.
  uint64_t rows_scanned = 0;
};

// A fixed-capacity append-only run of rows, stored column-major: value r of
// column c lives at `column(c)[r]`, contiguous in r. Rows are normalized to
// the table schema before they reach a block (see ScubaTable::AddRow), so a
// block needs no per-row schema. The writer scatters a row's values and
// publishes them with a release store of `size_`; readers acquire-load
// `size()` and only touch rows below it, so a block never needs a lock and
// never reallocates under a reader.
//
// Declared-string columns are additionally dictionary-encoded at ingest:
// equal strings within one block share a small dense code, which lets a
// group-by scan resolve its (bucket, group) cell with an array index
// instead of a hash probe. A non-string value landing in a string column
// disables the column's dictionary for the whole block (scans fall back to
// the generic keyed path; results are unchanged either way).
class RowBlock {
 public:
  RowBlock(size_t capacity, const SchemaPtr& schema)
      : capacity_(capacity),
        columns_(schema->num_columns()),
        dicts_(schema->num_columns()) {
    for (auto& col : columns_) col.reset(new Value[capacity]);
    for (size_t c = 0; c < dicts_.size(); ++c) {
      if (schema->column(c).type == ValueType::kString) {
        dicts_[c] = std::make_unique<DictColumn>(capacity);
      }
    }
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return size_.load(std::memory_order_acquire); }
  size_t num_columns() const { return columns_.size(); }
  // The contiguous values of column c; entries below size() are published.
  const Value* column(size_t c) const { return columns_[c].get(); }
  // The contiguous dictionary codes of column c, or nullptr when the column
  // is not dictionary-encoded in this block. Codes below size() are
  // published along with their values.
  const uint32_t* codes(size_t c) const {
    const DictColumn* dict = dicts_[c].get();
    if (dict == nullptr || !dict->valid.load(std::memory_order_relaxed)) {
      return nullptr;
    }
    return dict->codes.data();
  }

  // Writer-only (serialized by the table's ingest mutex). `values` must be
  // in table-schema column order, one per column.
  bool full() const { return count_ == capacity_; }
  void Append(std::vector<Value> values) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (dicts_[c] != nullptr) Encode(*dicts_[c], values[c]);
      columns_[c][count_] = std::move(values[c]);
    }
    size_.store(count_ + 1, std::memory_order_release);
    ++count_;
  }

 private:
  struct DictColumn {
    explicit DictColumn(size_t capacity) : codes(capacity, 0) {}
    std::vector<uint32_t> codes;
    // Writer-only interning state.
    std::map<std::string, uint32_t> intern;
    uint32_t next = 0;
    // Cleared (before the row is published) if a non-string value lands in
    // the column; readers then ignore `codes` for this block.
    std::atomic<bool> valid{true};
  };

  void Encode(DictColumn& dict, const Value& v) {
    if (v.type() != ValueType::kString) {
      dict.valid.store(false, std::memory_order_relaxed);
      return;
    }
    auto [it, inserted] = dict.intern.try_emplace(v.AsString(), dict.next);
    if (inserted) ++dict.next;
    dict.codes[count_] = it->second;
  }

  const size_t capacity_;
  std::vector<std::unique_ptr<Value[]>> columns_;
  std::vector<std::unique_ptr<DictColumn>> dicts_;
  size_t count_ = 0;              // Writer's cursor.
  std::atomic<size_t> size_{0};   // Published row count.
};

class ScubaTable {
 public:
  // Rows per block: big enough to amortize task dispatch, small enough that
  // a handful of blocks saturates a 4-thread pool.
  static constexpr size_t kBlockRows = 4096;

  ScubaTable(std::string name, SchemaPtr schema, double sample_rate = 1.0,
             uint64_t sample_seed = 42);

  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }

  // Fans this table's queries across `pool` (one scan task per slice of
  // blocks). Null pool = serial scan on the caller's thread. The pool is
  // shared between tables and between concurrent queries; the owner (the
  // Scuba service or a bench) must outlive the table's queries.
  void set_query_pool(ShardExecutor* pool) { query_pool_ = pool; }

  // Adds a row, subject to ingest-time sampling. Returns true if kept.
  // Thread-safe against concurrent Run() calls (queries see a prefix of the
  // published rows); concurrent AddRow callers serialize on a mutex.
  bool AddRow(Row row);
  // Parses a text-serialized row and adds it.
  Status IngestPayload(std::string_view payload);

  StatusOr<QueryResult> Run(const Query& query) const;

  // Retention: drops raw rows whose `time_column` value is below `horizon`
  // (Scuba keeps a bounded window of recent raw data). Returns rows dropped.
  // In-flight queries keep scanning the blocks they snapshotted.
  size_t ExpireBefore(const std::string& time_column, Micros horizon);

  size_t num_rows() const;
  uint64_t total_rows_scanned() const {
    return total_rows_scanned_.load(std::memory_order_relaxed);
  }
  double sample_rate() const { return sample_rate_; }

 private:
  using BlockList = std::vector<std::shared_ptr<RowBlock>>;

  // Copies the current block list under the shared lock (cheap: pointer
  // copies only).
  BlockList SnapshotBlocks() const;

  std::string name_;
  SchemaPtr schema_;
  double sample_rate_;
  Rng rng_;                       // Guarded by ingest_mu_.
  mutable std::mutex ingest_mu_;  // Serializes AddRow/ExpireBefore.
  mutable std::shared_mutex blocks_mu_;  // Guards the block *list*.
  BlockList blocks_;                     // Newest (append target) last.
  ShardExecutor* query_pool_ = nullptr;
  mutable std::atomic<uint64_t> total_rows_scanned_{0};
  Counter* query_count_;        // scuba.query.count
  Counter* scanned_counter_;    // scuba.query.rows_scanned
  Histogram* query_latency_;    // scuba.query.latency_us
};

// The Scuba service: tables plus realtime Scribe ingestion.
class Scuba {
 public:
  // `query_threads` > 1 builds a shared worker pool that all tables' query
  // scans fan across (a dashboard storm of concurrent queries shares the
  // pool instead of serializing); <= 1 keeps the serial scan path.
  explicit Scuba(scribe::Scribe* scribe, int query_threads = 1);

  Status CreateTable(const std::string& name, SchemaPtr schema,
                     double sample_rate = 1.0);
  ScubaTable* GetTable(const std::string& name) const;

  // Streams a Scribe category into a table ("Scuba can also ingest the
  // output of any Puma, Stylus, or Swift app").
  Status AttachCategory(const std::string& table,
                        const std::string& category);
  // Drains all attached categories. Returns rows ingested.
  size_t PollAll();

  // Global CPU-work proxy across all tables.
  uint64_t total_rows_scanned() const;

  ShardExecutor* query_pool() const { return query_pool_.get(); }

 private:
  struct Attachment {
    std::string table;
    std::vector<scribe::Tailer> tailers;
  };

  scribe::Scribe* scribe_;
  std::unique_ptr<ShardExecutor> query_pool_;  // Null in serial mode.
  std::map<std::string, std::unique_ptr<ScubaTable>> tables_;
  std::vector<Attachment> attachments_;
};

}  // namespace fbstream::scuba

#endif  // FBSTREAM_STORAGE_SCUBA_SCUBA_H_
