#include "storage/scuba/scuba.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/hll.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/serde.h"

namespace fbstream::scuba {

namespace {

// A column reference resolved once per query against the table schema.
// Blocks store rows normalized to that schema, so index -1 (a column the
// schema doesn't have) simply reads as null for every row.
struct ColRef {
  std::string name;
  int index = -1;
};

const Value kNullValue;

// The contiguous value array backing `col` in `block`, or nullptr when the
// column is absent from the schema.
const Value* ColArray(const RowBlock& block, const ColRef& col) {
  return col.index >= 0 ? block.column(static_cast<size_t>(col.index))
                        : nullptr;
}

// Per-query immutable scan plan, shared by all scan tasks of the query.
struct ScanPlan {
  const Query* query = nullptr;
  bool time_series = false;
  ColRef time_col;
  std::vector<ColRef> filter_cols;  // Parallel to query->filters.
  std::vector<ColRef> group_cols;   // Parallel to query->group_by.
  std::vector<ColRef> agg_cols;     // Parallel to query->aggregates.
};

bool EvalFilter(const Filter& filter, const Value& v) {
  switch (filter.op) {
    case FilterOp::kEq:
      return v.Compare(filter.operand) == 0;
    case FilterOp::kNe:
      return v.Compare(filter.operand) != 0;
    case FilterOp::kLt:
      return v.Compare(filter.operand) < 0;
    case FilterOp::kLe:
      return v.Compare(filter.operand) <= 0;
    case FilterOp::kGt:
      return v.Compare(filter.operand) > 0;
    case FilterOp::kGe:
      return v.Compare(filter.operand) >= 0;
    case FilterOp::kContains:
      return v.type() == ValueType::kString &&
             v.AsString().find(filter.operand.CoerceString()) !=
                 std::string::npos;
  }
  return false;
}

// Streaming state for one (bucket, group) cell. A monoid: Merge() is the
// associative combine that makes per-task partial aggregation legal.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  bool has_minmax = false;
  std::vector<double> samples;       // For percentile.
  std::unique_ptr<HyperLogLog> hll;  // For uniques.

  void Merge(AggState&& other) {
    count += other.count;
    sum += other.sum;
    if (other.has_minmax) {
      if (!has_minmax) {
        min = other.min;
        max = other.max;
        has_minmax = true;
      } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
      }
    }
    if (samples.empty()) {
      samples = std::move(other.samples);
    } else {
      samples.insert(samples.end(), other.samples.begin(),
                     other.samples.end());
    }
    if (other.hll != nullptr) {
      if (hll == nullptr) {
        hll = std::move(other.hll);
      } else {
        hll->Merge(*other.hll);
      }
    }
  }
};

// One (bucket, group) cell. The hash map keys cells by an encoded byte
// string (raw bucket bytes + length-prefixed group values, so distinct
// groups can never collide); the decoded bucket and group live here so
// result assembly never re-parses a key.
struct Cell {
  Micros bucket = 0;
  std::vector<std::string> group;
  std::vector<AggState> states;
};

// Transparent hashing lets the hot loop probe with a string_view over the
// reused scratch key; a std::string is materialized only on first insert.
struct CellKeyHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};
using CellMap =
    std::unordered_map<std::string, Cell, CellKeyHash, std::equal_to<>>;

// One scan task's partial result.
struct ScanPartial {
  CellMap cells;
  uint64_t rows_scanned = 0;
};

// Folds the published rows of blocks [lo, hi) into `out`. Runs on a pool
// worker (or inline); touches only the immutable plan, the block snapshot,
// and its own partial.
// Renders v exactly as Value::ToString() would, appending to *out (which
// the caller cleared) — the string case copies bytes without allocating.
void AppendValueTo(const Value& v, std::string* out) {
  if (v.type() == ValueType::kString) {
    out->append(v.AsString());
  } else {
    out->append(v.ToString());
  }
}

void ScanBlocks(const ScanPlan& plan,
                const std::vector<std::shared_ptr<RowBlock>>& blocks,
                size_t lo, size_t hi, ScanPartial* out) {
  const Query& query = *plan.query;
  // Scratch cell key reused across rows: the buffer keeps its capacity, so
  // after warmup a scanned row allocates nothing unless it opens a
  // brand-new (bucket, group) cell.
  std::string key;
  // Rows arrive roughly in time order, so consecutive rows usually land in
  // the same bucket; caching the bucket's half-open range skips the two
  // 64-bit divisions on every row after the first of a bucket.
  Micros cached_bucket = 0;
  Micros cached_end = 0;
  bool have_cached_bucket = false;
  const size_t num_filters = plan.filter_cols.size();
  const size_t num_groups = plan.group_cols.size();
  const size_t num_aggs = plan.agg_cols.size();
  // Per-block column pointers: the scan streams through the contiguous
  // value arrays of just the columns the query touches.
  std::vector<const Value*> filter_vals(num_filters);
  std::vector<const Value*> group_vals(num_groups);
  std::vector<const Value*> agg_vals(num_aggs);
  // Cell cache for the dictionary fast path: by_code[code] remembers the
  // cell resolved for (bucket, code), so a repeated group value costs an
  // array index instead of a key build plus hash probe. Entries are
  // validated against the current bucket; out-of-order timestamps just fall
  // back to the hash lookup. Cell pointers stay valid because unordered_map
  // never moves its nodes.
  std::vector<std::pair<Micros, Cell*>> by_code;
  for (size_t b = lo; b < hi; ++b) {
    const RowBlock& block = *blocks[b];
    const size_t n = block.size();  // Acquire: rows below n are published.
    out->rows_scanned += n;  // Read-time aggregation cost: every raw row.
    if (n == 0) continue;
    const Value* time_vals =
        plan.time_series ? ColArray(block, plan.time_col) : nullptr;
    for (size_t f = 0; f < num_filters; ++f) {
      filter_vals[f] = ColArray(block, plan.filter_cols[f]);
    }
    for (size_t g = 0; g < num_groups; ++g) {
      group_vals[g] = ColArray(block, plan.group_cols[g]);
    }
    for (size_t i = 0; i < num_aggs; ++i) {
      agg_vals[i] = ColArray(block, plan.agg_cols[i]);
    }
    // Codes are per-block, so the cache resets at each block boundary.
    const uint32_t* codes =
        num_groups == 1 && plan.group_cols[0].index >= 0
            ? block.codes(static_cast<size_t>(plan.group_cols[0].index))
            : nullptr;
    by_code.clear();
    for (size_t r = 0; r < n; ++r) {
      bool pass = true;
      for (size_t f = 0; f < num_filters; ++f) {
        const Value& fv =
            filter_vals[f] != nullptr ? filter_vals[f][r] : kNullValue;
        if (!EvalFilter(query.filters[f], fv)) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;

      Micros bucket = 0;
      if (plan.time_series) {
        const Micros t =
            (time_vals != nullptr ? time_vals[r] : kNullValue).CoerceInt64();
        if (query.max_time > query.min_time &&
            (t < query.min_time || t >= query.max_time)) {
          continue;
        }
        if (have_cached_bucket && t >= cached_bucket && t < cached_end) {
          bucket = cached_bucket;
        } else {
          bucket = t - (t % query.bucket_micros);
          if (t < 0 && t % query.bucket_micros != 0) {
            bucket -= query.bucket_micros;
          }
          cached_bucket = bucket;
          cached_end = bucket + query.bucket_micros;
          have_cached_bucket = true;
        }
      }

      Cell* cell = nullptr;
      uint32_t code = 0;
      if (codes != nullptr) {
        code = codes[r];
        if (code < by_code.size()) {
          const auto& entry = by_code[code];
          if (entry.second != nullptr && entry.first == bucket) {
            cell = entry.second;
          }
        } else {
          by_code.resize(code + 1, {0, nullptr});
        }
      }
      if (cell == nullptr) {
        key.clear();
        key.append(reinterpret_cast<const char*>(&bucket), sizeof(bucket));
        for (size_t g = 0; g < num_groups; ++g) {
          const Value& gv =
              group_vals[g] != nullptr ? group_vals[g][r] : kNullValue;
          const size_t at = key.size();
          key.append(sizeof(uint32_t), '\0');
          AppendValueTo(gv, &key);
          const uint32_t len =
              static_cast<uint32_t>(key.size() - at - sizeof(uint32_t));
          std::memcpy(key.data() + at, &len, sizeof(len));
        }

        auto it = out->cells.find(std::string_view(key));
        if (it == out->cells.end()) {
          Cell fresh;
          fresh.bucket = bucket;
          fresh.group.reserve(num_groups);
          for (size_t g = 0; g < num_groups; ++g) {
            const Value& gv =
                group_vals[g] != nullptr ? group_vals[g][r] : kNullValue;
            fresh.group.push_back(gv.ToString());
          }
          fresh.states.resize(query.aggregates.size());
          it = out->cells.emplace(key, std::move(fresh)).first;
        }
        cell = &it->second;
        if (codes != nullptr) by_code[code] = {bucket, cell};
      }
      std::vector<AggState>& states = cell->states;
      for (size_t i = 0; i < num_aggs; ++i) {
        AggState& s = states[i];
        ++s.count;
        const Value& av = agg_vals[i] != nullptr ? agg_vals[i][r] : kNullValue;
        // Each kind touches only the state its result reads; the shared
        // count above keeps kCount and kAvg exact.
        switch (query.aggregates[i].kind) {
          case AggKind::kCount:
            break;
          case AggKind::kSum:
          case AggKind::kAvg:
            s.sum += av.CoerceDouble();
            break;
          case AggKind::kMin:
          case AggKind::kMax: {
            const double x = av.CoerceDouble();
            if (!s.has_minmax) {
              s.min = s.max = x;
              s.has_minmax = true;
            } else {
              s.min = std::min(s.min, x);
              s.max = std::max(s.max, x);
            }
            break;
          }
          case AggKind::kPercentile:
            s.samples.push_back(av.CoerceDouble());
            break;
          case AggKind::kUniques: {
            if (s.hll == nullptr) s.hll = std::make_unique<HyperLogLog>(12);
            s.hll->Add(av.ToString());
            break;
          }
        }
      }
    }
  }
}

}  // namespace

ScubaTable::ScubaTable(std::string name, SchemaPtr schema, double sample_rate,
                       uint64_t sample_seed)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      sample_rate_(sample_rate),
      rng_(sample_seed),
      // Registered once per table; the registry keeps them immortal.
      query_count_(
          MetricsRegistry::Global()->GetCounter("scuba.query.count", name_)),
      scanned_counter_(MetricsRegistry::Global()->GetCounter(
          "scuba.query.rows_scanned", name_)),
      query_latency_(MetricsRegistry::Global()->GetHistogram(
          "scuba.query.latency_us", name_)) {}

bool ScubaTable::AddRow(Row row) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  if (sample_rate_ < 1.0 && !rng_.Bernoulli(sample_rate_)) return false;
  // Normalize to table-schema column order before the row is scattered into
  // the block's column arrays. A row built against a different schema maps
  // by column name: absent columns become null, unknown ones are dropped.
  std::vector<Value> values;
  if (row.schema().get() == schema_.get()) {
    values = row.TakeValues();
    values.resize(schema_->num_columns());
  } else {
    values.reserve(schema_->num_columns());
    for (const Column& col : schema_->columns()) {
      values.push_back(row.Get(col.name));
    }
  }
  if (blocks_.empty() || blocks_.back()->full()) {
    auto block = std::make_shared<RowBlock>(kBlockRows, schema_);
    std::unique_lock<std::shared_mutex> list_lock(blocks_mu_);
    blocks_.push_back(std::move(block));
  }
  // Safe outside blocks_mu_: only ingest (serialized by ingest_mu_) writes a
  // block, and readers see the row only after the release store of its size.
  blocks_.back()->Append(std::move(values));
  return true;
}

Status ScubaTable::IngestPayload(std::string_view payload) {
  TextRowCodec codec(schema_);
  FBSTREAM_ASSIGN_OR_RETURN(Row row, codec.Decode(payload));
  AddRow(std::move(row));
  return Status::OK();
}

ScubaTable::BlockList ScubaTable::SnapshotBlocks() const {
  std::shared_lock<std::shared_mutex> lock(blocks_mu_);
  return blocks_;
}

StatusOr<QueryResult> ScubaTable::Run(const Query& query) const {
  if (query.aggregates.empty()) {
    return Status::InvalidArgument("query needs at least one aggregate");
  }
  const bool time_series = !query.time_column.empty();
  if (time_series && query.bucket_micros <= 0) {
    return Status::InvalidArgument("time series query needs bucket_micros");
  }
  for (const Aggregate& agg : query.aggregates) {
    if (agg.kind == AggKind::kPercentile &&
        !(agg.percentile >= 0.0 && agg.percentile <= 1.0)) {
      return Status::InvalidArgument(
          "percentile must be in [0, 1], got " +
          std::to_string(agg.percentile));
    }
  }

  ScopedLatencyTimer timer(query_latency_);

  ScanPlan plan;
  plan.query = &query;
  plan.time_series = time_series;
  plan.time_col = {query.time_column, schema_->IndexOf(query.time_column)};
  plan.filter_cols.reserve(query.filters.size());
  for (const Filter& f : query.filters) {
    plan.filter_cols.push_back({f.column, schema_->IndexOf(f.column)});
  }
  plan.group_cols.reserve(query.group_by.size());
  for (const std::string& col : query.group_by) {
    plan.group_cols.push_back({col, schema_->IndexOf(col)});
  }
  plan.agg_cols.reserve(query.aggregates.size());
  for (const Aggregate& agg : query.aggregates) {
    plan.agg_cols.push_back({agg.column, schema_->IndexOf(agg.column)});
  }

  const BlockList blocks = SnapshotBlocks();

  // Fan contiguous block ranges across the pool; merging the partials in
  // task order keeps the fold order identical run to run, so a parallel
  // query is deterministic (and exact-equal to the serial scan whenever the
  // summed values are exactly representable — see DESIGN.md).
  size_t num_tasks = 1;
  if (query_pool_ != nullptr && query_pool_->num_threads() > 1) {
    num_tasks = std::min(blocks.size(),
                         static_cast<size_t>(query_pool_->num_threads()));
    if (num_tasks == 0) num_tasks = 1;
  }

  std::vector<ScanPartial> partials(num_tasks);
  if (num_tasks == 1) {
    ScanBlocks(plan, blocks, 0, blocks.size(), &partials[0]);
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_tasks);
    for (size_t t = 0; t < num_tasks; ++t) {
      const size_t lo = blocks.size() * t / num_tasks;
      const size_t hi = blocks.size() * (t + 1) / num_tasks;
      ScanPartial* out = &partials[t];
      tasks.push_back(
          [&plan, &blocks, lo, hi, out] { ScanBlocks(plan, blocks, lo, hi, out); });
    }
    query_pool_->RunBatch(std::move(tasks));
  }

  QueryResult result;
  CellMap cells = std::move(partials[0].cells);
  result.rows_scanned = partials[0].rows_scanned;
  for (size_t t = 1; t < num_tasks; ++t) {
    result.rows_scanned += partials[t].rows_scanned;
    for (auto& [key, cell] : partials[t].cells) {
      auto [it, inserted] = cells.try_emplace(key, std::move(cell));
      if (!inserted) {
        for (size_t i = 0; i < it->second.states.size(); ++i) {
          it->second.states[i].Merge(std::move(cell.states[i]));
        }
      }
    }
  }
  total_rows_scanned_.fetch_add(result.rows_scanned,
                                std::memory_order_relaxed);
  query_count_->Add(1);
  scanned_counter_->Add(result.rows_scanned);

  // The hash map has no iteration order; sort cells back into the
  // (bucket, group) order the old ordered map produced, so result rows stay
  // deterministic and parallel runs match serial ones byte for byte.
  std::vector<Cell*> ordered;
  ordered.reserve(cells.size());
  for (auto& [key, cell] : cells) ordered.push_back(&cell);
  std::sort(ordered.begin(), ordered.end(), [](const Cell* a, const Cell* b) {
    if (a->bucket != b->bucket) return a->bucket < b->bucket;
    return a->group < b->group;
  });

  for (Cell* cell : ordered) {
    ResultRow out;
    out.bucket = cell->bucket;
    for (const std::string& g : cell->group) out.group.emplace_back(g);
    for (size_t i = 0; i < query.aggregates.size(); ++i) {
      const Aggregate& agg = query.aggregates[i];
      AggState& s = cell->states[i];
      switch (agg.kind) {
        case AggKind::kCount:
          out.aggregates.push_back(static_cast<double>(s.count));
          break;
        case AggKind::kSum:
          out.aggregates.push_back(s.sum);
          break;
        case AggKind::kAvg:
          out.aggregates.push_back(s.count > 0 ? s.sum / double(s.count) : 0);
          break;
        case AggKind::kMin:
          out.aggregates.push_back(s.min);
          break;
        case AggKind::kMax:
          out.aggregates.push_back(s.max);
          break;
        case AggKind::kPercentile: {
          if (s.samples.empty()) {
            out.aggregates.push_back(0);
            break;
          }
          std::sort(s.samples.begin(), s.samples.end());
          const double rank =
              agg.percentile * static_cast<double>(s.samples.size() - 1);
          const size_t lo = static_cast<size_t>(std::floor(rank));
          const size_t hi = std::min(lo + 1, s.samples.size() - 1);
          const double frac = rank - std::floor(rank);
          out.aggregates.push_back(s.samples[lo] * (1 - frac) +
                                   s.samples[hi] * frac);
          break;
        }
        case AggKind::kUniques:
          out.aggregates.push_back(s.hll != nullptr ? s.hll->Estimate() : 0);
          break;
      }
    }
    result.rows.push_back(std::move(out));
  }

  // Keep only the top `limit` groups, ranked by the first aggregate. For
  // time series, rank groups by their total across buckets so whole series
  // survive the cut.
  if (query.limit > 0 && !query.group_by.empty()) {
    std::map<std::vector<std::string>, double> group_totals;
    for (const ResultRow& r : result.rows) {
      std::vector<std::string> g;
      for (const Value& v : r.group) g.push_back(v.ToString());
      group_totals[g] += r.aggregates.empty() ? 0 : r.aggregates[0];
    }
    if (group_totals.size() > query.limit) {
      std::vector<std::pair<double, std::vector<std::string>>> ranked;
      for (const auto& [g, total] : group_totals) {
        ranked.emplace_back(total, g);
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      ranked.resize(query.limit);
      std::set<std::vector<std::string>> keep;
      for (const auto& [total, g] : ranked) keep.insert(g);
      std::vector<ResultRow> filtered;
      for (ResultRow& r : result.rows) {
        std::vector<std::string> g;
        for (const Value& v : r.group) g.push_back(v.ToString());
        if (keep.count(g) > 0) filtered.push_back(std::move(r));
      }
      result.rows = std::move(filtered);
    }
  }
  return result;
}

size_t ScubaTable::ExpireBefore(const std::string& time_column,
                                Micros horizon) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  const BlockList old_blocks = SnapshotBlocks();
  const int time_index = schema_->IndexOf(time_column);
  const size_t ncols = schema_->num_columns();

  size_t before = 0;
  BlockList rebuilt;
  std::shared_ptr<RowBlock> current;
  for (const auto& block : old_blocks) {
    const size_t n = block->size();
    before += n;
    const Value* time_vals =
        time_index >= 0 ? block->column(static_cast<size_t>(time_index))
                        : nullptr;
    for (size_t r = 0; r < n; ++r) {
      const Micros t =
          (time_vals != nullptr ? time_vals[r] : kNullValue).CoerceInt64();
      if (t < horizon) continue;
      if (current == nullptr || current->full()) {
        current = std::make_shared<RowBlock>(kBlockRows, schema_);
        rebuilt.push_back(current);
      }
      // Copies: the old block stays visible to in-flight readers.
      std::vector<Value> values;
      values.reserve(ncols);
      for (size_t c = 0; c < ncols; ++c) values.push_back(block->column(c)[r]);
      current->Append(std::move(values));
    }
  }
  size_t after = 0;
  for (const auto& block : rebuilt) after += block->size();

  std::unique_lock<std::shared_mutex> list_lock(blocks_mu_);
  blocks_ = std::move(rebuilt);
  return before - after;
}

size_t ScubaTable::num_rows() const {
  const BlockList blocks = SnapshotBlocks();
  size_t n = 0;
  for (const auto& block : blocks) n += block->size();
  return n;
}

Scuba::Scuba(scribe::Scribe* scribe, int query_threads) : scribe_(scribe) {
  if (query_threads > 1) {
    query_pool_ = std::make_unique<ShardExecutor>(query_threads);
  }
}

Status Scuba::CreateTable(const std::string& name, SchemaPtr schema,
                          double sample_rate) {
  if (tables_.count(name) > 0) return Status::AlreadyExists(name);
  auto table =
      std::make_unique<ScubaTable>(name, std::move(schema), sample_rate);
  table->set_query_pool(query_pool_.get());
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

ScubaTable* Scuba::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Scuba::AttachCategory(const std::string& table,
                             const std::string& category) {
  if (tables_.count(table) == 0) return Status::NotFound("table " + table);
  if (scribe_ == nullptr || !scribe_->HasCategory(category)) {
    return Status::NotFound("category " + category);
  }
  Attachment att;
  att.table = table;
  const int buckets = scribe_->NumBuckets(category);
  for (int b = 0; b < buckets; ++b) {
    att.tailers.emplace_back(scribe_, category, b);
  }
  attachments_.push_back(std::move(att));
  return Status::OK();
}

size_t Scuba::PollAll() {
  size_t ingested = 0;
  for (Attachment& att : attachments_) {
    ScubaTable* table = GetTable(att.table);
    if (table == nullptr) continue;
    // Once per attachment per poll, not per row — off the row hot loop.
    Counter* rows_ingested =
        MetricsRegistry::Global()->GetCounter("scuba.rows.ingested", att.table);
    size_t table_rows = 0;
    for (scribe::Tailer& tailer : att.tailers) {
      while (true) {
        auto messages = tailer.Poll();
        if (messages.empty()) break;
        for (const scribe::Message& m : messages) {
          const Status st = table->IngestPayload(m.payload);
          if (st.ok()) {
            ++table_rows;
          } else {
            FBSTREAM_LOG(Warning) << "scuba ingest: " << st;
          }
        }
      }
    }
    rows_ingested->Add(table_rows);
    ingested += table_rows;
  }
  return ingested;
}

uint64_t Scuba::total_rows_scanned() const {
  uint64_t total = 0;
  for (const auto& [name, table] : tables_) {
    total += table->total_rows_scanned();
  }
  return total;
}

}  // namespace fbstream::scuba
