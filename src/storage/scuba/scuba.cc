#include "storage/scuba/scuba.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/hll.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/serde.h"

namespace fbstream::scuba {

namespace {

bool EvalFilter(const Filter& filter, const Row& row) {
  const Value& v = row.Get(filter.column);
  switch (filter.op) {
    case FilterOp::kEq:
      return v.Compare(filter.operand) == 0;
    case FilterOp::kNe:
      return v.Compare(filter.operand) != 0;
    case FilterOp::kLt:
      return v.Compare(filter.operand) < 0;
    case FilterOp::kLe:
      return v.Compare(filter.operand) <= 0;
    case FilterOp::kGt:
      return v.Compare(filter.operand) > 0;
    case FilterOp::kGe:
      return v.Compare(filter.operand) >= 0;
    case FilterOp::kContains:
      return v.type() == ValueType::kString &&
             v.AsString().find(filter.operand.CoerceString()) !=
                 std::string::npos;
  }
  return false;
}

// Streaming state for one (bucket, group) cell.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  bool has_minmax = false;
  std::vector<double> samples;       // For percentile.
  std::unique_ptr<HyperLogLog> hll;  // For uniques.
};

}  // namespace

ScubaTable::ScubaTable(std::string name, SchemaPtr schema, double sample_rate,
                       uint64_t sample_seed)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      sample_rate_(sample_rate),
      rng_(sample_seed) {}

bool ScubaTable::AddRow(Row row) {
  if (sample_rate_ < 1.0 && !rng_.Bernoulli(sample_rate_)) return false;
  rows_.push_back(std::move(row));
  return true;
}

Status ScubaTable::IngestPayload(std::string_view payload) {
  TextRowCodec codec(schema_);
  FBSTREAM_ASSIGN_OR_RETURN(Row row, codec.Decode(payload));
  AddRow(std::move(row));
  return Status::OK();
}

StatusOr<QueryResult> ScubaTable::Run(const Query& query) const {
  if (query.aggregates.empty()) {
    return Status::InvalidArgument("query needs at least one aggregate");
  }
  const bool time_series = !query.time_column.empty();
  if (time_series && query.bucket_micros <= 0) {
    return Status::InvalidArgument("time series query needs bucket_micros");
  }

  // Key = (bucket, group values as strings).
  std::map<std::pair<Micros, std::vector<std::string>>,
           std::vector<AggState>>
      cells;

  QueryResult result;
  for (const Row& row : rows_) {
    ++result.rows_scanned;  // Read-time aggregation cost: every raw row.
    bool pass = true;
    for (const Filter& f : query.filters) {
      if (!EvalFilter(f, row)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;

    Micros bucket = 0;
    if (time_series) {
      const Micros t = row.Get(query.time_column).CoerceInt64();
      if (query.max_time > query.min_time &&
          (t < query.min_time || t >= query.max_time)) {
        continue;
      }
      bucket = t - (t % query.bucket_micros);
      if (t < 0 && t % query.bucket_micros != 0) bucket -= query.bucket_micros;
    }

    std::vector<std::string> group;
    group.reserve(query.group_by.size());
    for (const std::string& col : query.group_by) {
      group.push_back(row.Get(col).ToString());
    }

    auto& states = cells[{bucket, std::move(group)}];
    if (states.empty()) states.resize(query.aggregates.size());
    for (size_t i = 0; i < query.aggregates.size(); ++i) {
      const Aggregate& agg = query.aggregates[i];
      AggState& s = states[i];
      ++s.count;
      if (agg.kind == AggKind::kCount) continue;
      const Value& v = row.Get(agg.column);
      if (agg.kind == AggKind::kUniques) {
        if (s.hll == nullptr) s.hll = std::make_unique<HyperLogLog>(12);
        s.hll->Add(v.ToString());
        continue;
      }
      const double x = v.CoerceDouble();
      s.sum += x;
      if (!s.has_minmax) {
        s.min = s.max = x;
        s.has_minmax = true;
      } else {
        s.min = std::min(s.min, x);
        s.max = std::max(s.max, x);
      }
      if (agg.kind == AggKind::kPercentile) s.samples.push_back(x);
    }
  }
  total_rows_scanned_ += result.rows_scanned;

  for (auto& [key, states] : cells) {
    ResultRow out;
    out.bucket = key.first;
    for (const std::string& g : key.second) out.group.emplace_back(g);
    for (size_t i = 0; i < query.aggregates.size(); ++i) {
      const Aggregate& agg = query.aggregates[i];
      AggState& s = states[i];
      switch (agg.kind) {
        case AggKind::kCount:
          out.aggregates.push_back(static_cast<double>(s.count));
          break;
        case AggKind::kSum:
          out.aggregates.push_back(s.sum);
          break;
        case AggKind::kAvg:
          out.aggregates.push_back(s.count > 0 ? s.sum / double(s.count) : 0);
          break;
        case AggKind::kMin:
          out.aggregates.push_back(s.min);
          break;
        case AggKind::kMax:
          out.aggregates.push_back(s.max);
          break;
        case AggKind::kPercentile: {
          if (s.samples.empty()) {
            out.aggregates.push_back(0);
            break;
          }
          std::sort(s.samples.begin(), s.samples.end());
          const double rank =
              agg.percentile * static_cast<double>(s.samples.size() - 1);
          const size_t lo = static_cast<size_t>(std::floor(rank));
          const size_t hi = std::min(lo + 1, s.samples.size() - 1);
          const double frac = rank - std::floor(rank);
          out.aggregates.push_back(s.samples[lo] * (1 - frac) +
                                   s.samples[hi] * frac);
          break;
        }
        case AggKind::kUniques:
          out.aggregates.push_back(s.hll != nullptr ? s.hll->Estimate() : 0);
          break;
      }
    }
    result.rows.push_back(std::move(out));
  }

  // Keep only the top `limit` groups, ranked by the first aggregate. For
  // time series, rank groups by their total across buckets so whole series
  // survive the cut.
  if (query.limit > 0 && !query.group_by.empty()) {
    std::map<std::vector<std::string>, double> group_totals;
    for (const ResultRow& r : result.rows) {
      std::vector<std::string> g;
      for (const Value& v : r.group) g.push_back(v.ToString());
      group_totals[g] += r.aggregates.empty() ? 0 : r.aggregates[0];
    }
    if (group_totals.size() > query.limit) {
      std::vector<std::pair<double, std::vector<std::string>>> ranked;
      for (const auto& [g, total] : group_totals) {
        ranked.emplace_back(total, g);
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      ranked.resize(query.limit);
      std::set<std::vector<std::string>> keep;
      for (const auto& [total, g] : ranked) keep.insert(g);
      std::vector<ResultRow> filtered;
      for (ResultRow& r : result.rows) {
        std::vector<std::string> g;
        for (const Value& v : r.group) g.push_back(v.ToString());
        if (keep.count(g) > 0) filtered.push_back(std::move(r));
      }
      result.rows = std::move(filtered);
    }
  }
  return result;
}

size_t ScubaTable::ExpireBefore(const std::string& time_column,
                                Micros horizon) {
  const size_t before = rows_.size();
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(),
                             [&time_column, horizon](const Row& row) {
                               return row.Get(time_column).CoerceInt64() <
                                      horizon;
                             }),
              rows_.end());
  return before - rows_.size();
}

Status Scuba::CreateTable(const std::string& name, SchemaPtr schema,
                          double sample_rate) {
  if (tables_.count(name) > 0) return Status::AlreadyExists(name);
  tables_.emplace(name, std::make_unique<ScubaTable>(name, std::move(schema),
                                                     sample_rate));
  return Status::OK();
}

ScubaTable* Scuba::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Scuba::AttachCategory(const std::string& table,
                             const std::string& category) {
  if (tables_.count(table) == 0) return Status::NotFound("table " + table);
  if (scribe_ == nullptr || !scribe_->HasCategory(category)) {
    return Status::NotFound("category " + category);
  }
  Attachment att;
  att.table = table;
  const int buckets = scribe_->NumBuckets(category);
  for (int b = 0; b < buckets; ++b) {
    att.tailers.emplace_back(scribe_, category, b);
  }
  attachments_.push_back(std::move(att));
  return Status::OK();
}

size_t Scuba::PollAll() {
  size_t ingested = 0;
  for (Attachment& att : attachments_) {
    ScubaTable* table = GetTable(att.table);
    if (table == nullptr) continue;
    // Once per attachment per poll, not per row — off the row hot loop.
    Counter* rows_ingested =
        MetricsRegistry::Global()->GetCounter("scuba.rows.ingested", att.table);
    size_t table_rows = 0;
    for (scribe::Tailer& tailer : att.tailers) {
      while (true) {
        auto messages = tailer.Poll();
        if (messages.empty()) break;
        for (const scribe::Message& m : messages) {
          const Status st = table->IngestPayload(m.payload);
          if (st.ok()) {
            ++table_rows;
          } else {
            FBSTREAM_LOG(Warning) << "scuba ingest: " << st;
          }
        }
      }
    }
    rows_ingested->Add(table_rows);
    ingested += table_rows;
  }
  return ingested;
}

uint64_t Scuba::total_rows_scanned() const {
  uint64_t total = 0;
  for (const auto& [name, table] : tables_) {
    total += table->total_rows_scanned();
  }
  return total;
}

}  // namespace fbstream::scuba
