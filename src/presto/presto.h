#ifndef FBSTREAM_PRESTO_PRESTO_H_
#define FBSTREAM_PRESTO_PRESTO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/hive/hive.h"
#include "storage/laser/laser.h"

namespace fbstream::presto {

// Presto stand-in (paper §2.7): "Presto provides full ANSI SQL queries over
// data stored in Hive. Query results change only once a day, after new data
// is loaded. They can then be sent to Laser for access by products and
// realtime stream processors."
//
// Supported statement shape (a practical subset of the dialect shared with
// Puma — same lexer, expressions, scalar functions/UDFs, and aggregate
// machinery):
//
//   SELECT <exprs and aggregates> FROM <hive_table>
//     [WHERE <expr>] [GROUP BY col, ...]
//     [ORDER BY output_col [DESC]] [LIMIT n];
//
// Queries run over the table's *landed* partitions (all of them by default,
// or an explicit subset) — batch data, refreshed once a day, exactly as the
// paper describes.
struct PrestoResult {
  SchemaPtr schema;  // Output columns, named by select-item aliases.
  std::vector<Row> rows;
  uint64_t rows_scanned = 0;
  uint64_t partitions_scanned = 0;
};

class Presto {
 public:
  explicit Presto(const hive::Hive* hive) : hive_(hive) {}

  // Runs over every landed partition of the FROM table.
  StatusOr<PrestoResult> Execute(const std::string& sql) const;
  // Runs over an explicit partition subset.
  StatusOr<PrestoResult> ExecuteOnPartitions(
      const std::string& sql, const std::vector<std::string>& partitions)
      const;

  // "They can then be sent to Laser": loads a result into a Laser app whose
  // input schema matches the result columns by name.
  static Status SendToLaser(const PrestoResult& result,
                            laser::LaserApp* app);

 private:
  const hive::Hive* hive_;
};

}  // namespace fbstream::presto

#endif  // FBSTREAM_PRESTO_PRESTO_H_
