#include "presto/presto.h"

#include <algorithm>
#include <map>

#include "puma/agg.h"
#include "puma/expr.h"
#include "puma/expr_parser.h"
#include "puma/lexer.h"
#include "puma/parser.h"

namespace fbstream::presto {

namespace {

using puma::AggCell;
using puma::EvalExpr;
using puma::EvalPredicate;
using puma::Expr;
using puma::ExprKind;
using puma::ExprPtr;
using puma::SelectItem;
using puma::TokenCursor;

struct SelectStmt {
  std::vector<SelectItem> items;
  std::string from;
  ExprPtr where;
  std::vector<std::string> group_by;
  std::string order_by;  // Output column alias; empty = no ordering.
  bool order_desc = false;
  int64_t limit = -1;  // -1 = unlimited.
  bool has_aggregates = false;
};

Status CheckColumns(const Expr& expr, const Schema& schema, bool allow_agg) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return Status::OK();
    case ExprKind::kColumn:
      if (!schema.Has(expr.column)) {
        return Status::InvalidArgument("unknown column " + expr.column);
      }
      return Status::OK();
    case ExprKind::kUnaryNot:
      return CheckColumns(*expr.left, schema, allow_agg);
    case ExprKind::kBinary:
      FBSTREAM_RETURN_IF_ERROR(CheckColumns(*expr.left, schema, allow_agg));
      return CheckColumns(*expr.right, schema, allow_agg);
    case ExprKind::kCall: {
      if (!allow_agg && puma::IsAggregateFunctionName(expr.function)) {
        return Status::InvalidArgument("nested aggregate " + expr.function);
      }
      for (const ExprPtr& arg : expr.args) {
        FBSTREAM_RETURN_IF_ERROR(CheckColumns(*arg, schema, false));
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

StatusOr<SelectStmt> ParseSelect(const std::string& sql,
                                 const Schema& input_schema) {
  FBSTREAM_ASSIGN_OR_RETURN(auto tokens, puma::Tokenize(sql));
  TokenCursor cursor(std::move(tokens));
  SelectStmt stmt;
  FBSTREAM_RETURN_IF_ERROR(cursor.ExpectKeyword("SELECT"));
  FBSTREAM_RETURN_IF_ERROR(puma::ParseSelectList(&cursor, &stmt.items));
  FBSTREAM_RETURN_IF_ERROR(cursor.ExpectKeyword("FROM"));
  FBSTREAM_ASSIGN_OR_RETURN(stmt.from, cursor.ExpectIdentifier());
  if (cursor.AcceptKeyword("WHERE")) {
    FBSTREAM_ASSIGN_OR_RETURN(stmt.where, puma::ParseExpression(&cursor));
    FBSTREAM_RETURN_IF_ERROR(
        CheckColumns(*stmt.where, input_schema, /*allow_agg=*/false));
  }
  if (cursor.AcceptKeyword("GROUP")) {
    FBSTREAM_RETURN_IF_ERROR(cursor.ExpectKeyword("BY"));
    while (true) {
      FBSTREAM_ASSIGN_OR_RETURN(std::string col, cursor.ExpectIdentifier());
      stmt.group_by.push_back(std::move(col));
      if (!cursor.AcceptSymbol(",")) break;
    }
  }
  if (cursor.AcceptKeyword("ORDER")) {
    FBSTREAM_RETURN_IF_ERROR(cursor.ExpectKeyword("BY"));
    FBSTREAM_ASSIGN_OR_RETURN(stmt.order_by, cursor.ExpectIdentifier());
    if (cursor.AcceptKeyword("DESC")) {
      stmt.order_desc = true;
    } else {
      (void)cursor.AcceptKeyword("ASC");
    }
  }
  if (cursor.AcceptKeyword("LIMIT")) {
    if (cursor.Peek().type != puma::TokenType::kInteger) {
      return cursor.Error("expected LIMIT count");
    }
    stmt.limit = cursor.Advance().int_value;
  }
  (void)cursor.AcceptSymbol(";");
  if (!cursor.AtEnd()) return cursor.Error("trailing input");

  // Classify and validate select items.
  for (SelectItem& item : stmt.items) {
    if (item.expr->kind == ExprKind::kCall &&
        puma::IsAggregateFunctionName(item.expr->function)) {
      item.is_aggregate = true;
      stmt.has_aggregates = true;
      FBSTREAM_RETURN_IF_ERROR(puma::ClassifyAggregate(&item));
      if (item.agg_arg != nullptr) {
        FBSTREAM_RETURN_IF_ERROR(
            CheckColumns(*item.agg_arg, input_schema, false));
      }
    } else {
      FBSTREAM_RETURN_IF_ERROR(
          CheckColumns(*item.expr, input_schema, false));
    }
  }
  // Implicit group key: non-aggregate items of an aggregating query.
  if (stmt.has_aggregates && stmt.group_by.empty()) {
    for (const SelectItem& item : stmt.items) {
      if (!item.is_aggregate) stmt.group_by.push_back(item.alias);
    }
  }
  return stmt;
}

}  // namespace

StatusOr<PrestoResult> Presto::Execute(const std::string& sql) const {
  // Peek at the FROM table to enumerate its landed partitions.
  FBSTREAM_ASSIGN_OR_RETURN(auto tokens, puma::Tokenize(sql));
  TokenCursor cursor(std::move(tokens));
  std::string from;
  while (!cursor.AtEnd()) {
    if (cursor.AcceptKeyword("FROM")) {
      FBSTREAM_ASSIGN_OR_RETURN(from, cursor.ExpectIdentifier());
      break;
    }
    cursor.Advance();
  }
  if (from.empty()) return Status::InvalidArgument("missing FROM table");
  FBSTREAM_ASSIGN_OR_RETURN(std::vector<std::string> partitions,
                            hive_->ListPartitions(from));
  return ExecuteOnPartitions(sql, partitions);
}

StatusOr<PrestoResult> Presto::ExecuteOnPartitions(
    const std::string& sql, const std::vector<std::string>& partitions)
    const {
  // First pass: we need the table schema before full parse/validation. Find
  // FROM, fetch schema, then parse against it.
  FBSTREAM_ASSIGN_OR_RETURN(auto tokens, puma::Tokenize(sql));
  TokenCursor scan(std::move(tokens));
  std::string from;
  while (!scan.AtEnd()) {
    if (scan.AcceptKeyword("FROM")) {
      FBSTREAM_ASSIGN_OR_RETURN(from, scan.ExpectIdentifier());
      break;
    }
    scan.Advance();
  }
  if (from.empty()) return Status::InvalidArgument("missing FROM table");
  FBSTREAM_ASSIGN_OR_RETURN(SchemaPtr input_schema, hive_->GetSchema(from));
  FBSTREAM_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql, *input_schema));

  // Output schema: aliases; plain column items keep their input type.
  std::vector<Column> out_columns;
  for (const SelectItem& item : stmt.items) {
    Column c;
    c.name = item.alias;
    c.type = ValueType::kString;
    if (!item.is_aggregate && item.expr->kind == ExprKind::kColumn) {
      const int i = input_schema->IndexOf(item.expr->column);
      if (i >= 0) c.type = input_schema->column(static_cast<size_t>(i)).type;
    } else if (item.is_aggregate) {
      c.type = ValueType::kDouble;
    }
    out_columns.push_back(std::move(c));
  }
  PrestoResult result;
  result.schema = Schema::Make(std::move(out_columns));

  // Group-by expressions: aliases of non-agg items, else bare columns.
  std::vector<ExprPtr> group_exprs;
  for (const std::string& name : stmt.group_by) {
    ExprPtr expr;
    for (const SelectItem& item : stmt.items) {
      if (!item.is_aggregate && item.alias == name) {
        expr = item.expr;
        break;
      }
    }
    if (expr == nullptr) {
      expr = std::make_shared<Expr>();
      expr->kind = ExprKind::kColumn;
      expr->column = name;
    }
    group_exprs.push_back(std::move(expr));
  }

  using GroupKey = std::vector<std::string>;
  std::map<GroupKey, std::vector<AggCell>> cells;

  for (const std::string& ds : partitions) {
    FBSTREAM_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              hive_->ReadPartition(from, ds));
    ++result.partitions_scanned;
    for (const Row& row : rows) {
      ++result.rows_scanned;
      if (stmt.where != nullptr && !EvalPredicate(*stmt.where, row)) continue;
      if (!stmt.has_aggregates) {
        Row out(result.schema);
        for (size_t i = 0; i < stmt.items.size(); ++i) {
          out.Set(i, EvalExpr(*stmt.items[i].expr, row));
        }
        result.rows.push_back(std::move(out));
        continue;
      }
      GroupKey key;
      key.reserve(group_exprs.size());
      for (const ExprPtr& expr : group_exprs) {
        key.push_back(EvalExpr(*expr, row).ToString());
      }
      auto& group_cells = cells[key];
      if (group_cells.empty()) {
        for (const SelectItem& item : stmt.items) {
          if (item.is_aggregate) group_cells.emplace_back(item.agg);
        }
      }
      size_t a = 0;
      for (const SelectItem& item : stmt.items) {
        if (!item.is_aggregate) continue;
        if (item.agg == puma::AggFunction::kCount &&
            item.agg_arg == nullptr) {
          group_cells[a].UpdateCount();
        } else if (item.agg_arg != nullptr) {
          group_cells[a].Update(EvalExpr(*item.agg_arg, row));
        } else {
          group_cells[a].UpdateCount();
        }
        ++a;
      }
    }
  }

  if (stmt.has_aggregates) {
    for (const auto& [key, group_cells] : cells) {
      Row out(result.schema);
      size_t g = 0;
      size_t a = 0;
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        if (stmt.items[i].is_aggregate) {
          out.Set(i, group_cells[a].Result(stmt.items[i]));
          ++a;
        } else {
          // Non-aggregate items are the group key, in declaration order.
          if (g < key.size()) out.Set(i, Value(key[g]));
          ++g;
        }
      }
      result.rows.push_back(std::move(out));
    }
  }

  if (!stmt.order_by.empty()) {
    const int idx = result.schema->IndexOf(stmt.order_by);
    if (idx < 0) {
      return Status::InvalidArgument("ORDER BY unknown output column " +
                                     stmt.order_by);
    }
    const bool desc = stmt.order_desc;
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [idx, desc](const Row& a, const Row& b) {
                       const int c = a.Get(static_cast<size_t>(idx))
                                         .Compare(b.Get(
                                             static_cast<size_t>(idx)));
                       return desc ? c > 0 : c < 0;
                     });
  }
  if (stmt.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(stmt.limit)) {
    result.rows.resize(static_cast<size_t>(stmt.limit));
  }
  return result;
}

Status Presto::SendToLaser(const PrestoResult& result, laser::LaserApp* app) {
  if (app == nullptr) return Status::InvalidArgument("null laser app");
  return app->LoadRows(result.rows);
}

}  // namespace fbstream::presto
