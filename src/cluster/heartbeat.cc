#include "cluster/heartbeat.h"

#include "common/serde.h"

namespace fbstream::cluster {

std::string EncodeHeartbeat(const Heartbeat& hb) {
  std::string out;
  PutLengthPrefixed(&out, hb.worker);
  PutVarint64(&out, static_cast<uint64_t>(hb.pid));
  PutVarint64(&out, hb.seq);
  PutVarint64(&out, static_cast<uint64_t>(hb.sent_micros));
  PutVarint64(&out, hb.events_processed);
  PutVarint64(&out, hb.total_lag);
  PutVarint64(&out, static_cast<uint64_t>(hb.state));
  return out;
}

StatusOr<Heartbeat> DecodeHeartbeat(std::string_view data) {
  Heartbeat hb;
  std::string_view worker;
  uint64_t pid = 0;
  uint64_t sent = 0;
  uint64_t state = 0;
  if (!GetLengthPrefixed(&data, &worker) || !GetVarint64(&data, &pid) ||
      !GetVarint64(&data, &hb.seq) || !GetVarint64(&data, &sent) ||
      !GetVarint64(&data, &hb.events_processed) ||
      !GetVarint64(&data, &hb.total_lag) || !GetVarint64(&data, &state) ||
      state > static_cast<uint64_t>(WorkerState::kDraining) || !data.empty()) {
    return Status::Corruption("heartbeat: bad record");
  }
  hb.worker = std::string(worker);
  hb.pid = static_cast<int64_t>(pid);
  hb.sent_micros = static_cast<Micros>(sent);
  hb.state = static_cast<WorkerState>(state);
  return hb;
}

Status EnsureHeartbeatCategory(scribe::Scribe* bus) {
  if (bus->HasCategory(kHeartbeatCategory)) return Status::OK();
  scribe::CategoryConfig config;
  config.name = kHeartbeatCategory;
  config.num_buckets = 1;
  // Short retention keeps the broker's heartbeat backlog bounded; the
  // supervisor tails near the head anyway.
  config.retention_micros = kMicrosPerMinute;
  config.persist_to_disk = false;
  const Status created = bus->CreateCategory(config);
  // Every process that touches the bus calls this; losing the creation race
  // is success.
  if (created.code() == StatusCode::kAlreadyExists) return Status::OK();
  return created;
}

Status AppendHeartbeat(scribe::Scribe* bus, const Heartbeat& hb) {
  return bus->Write(kHeartbeatCategory, 0, EncodeHeartbeat(hb));
}

}  // namespace fbstream::cluster
