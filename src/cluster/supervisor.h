#ifndef FBSTREAM_CLUSTER_SUPERVISOR_H_
#define FBSTREAM_CLUSTER_SUPERVISOR_H_

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/workload.h"
#include "common/clock.h"
#include "common/status.h"
#include "scribe/remote.h"

// Node supervisor: launches each worker (a slice of the manifest topology)
// as its own OS process, watches heartbeats flowing over the bus, and
// treats silence as death — SIGKILL-fence the pid, then respawn it and let
// Pipeline::Recover rebuild from the durable manifest, checkpoints, and
// HDFS backups. Crash-only supervision: there is no "ask the worker how it
// feels" channel, only beats or no beats, so a wedged process, a killed
// process, and a partitioned process all take the same path.
//
// Restart-rate backoff: a worker that keeps dying young (within the flap
// window) earns exponentially growing spawn delays, so a flap storm (bad
// binary, persistent partition) costs bounded respawns instead of a
// fork/exec hot loop; one incarnation surviving past the window resets the
// ladder.

namespace fbstream::cluster {

// One worker process and the manifest nodes it owns.
struct WorkerSpec {
  std::string name;
  std::vector<std::string> nodes;
};

struct SupervisorOptions {
  std::string broker_host = "127.0.0.1";
  int broker_port = 0;
  std::string manifest_dir;
  std::string status_dir;  // Hosts the CLUSTER status file.
  std::string root;        // Workload root, passed through to workers.
  WorkloadMode mode = WorkloadMode::kExactlyOnce;
  std::string worker_binary;  // Path to the noded executable.
  // Appended verbatim to every worker's argv (test hooks).
  std::vector<std::string> extra_worker_args;
  // Workers in heartbeat-only mode (supervision tests without a workload).
  bool heartbeat_only_workers = false;

  Micros heartbeat_interval_micros = 30'000;
  // No beat for this long (outside the startup grace) = dead.
  Micros heartbeat_timeout_micros = 500'000;
  // A fresh spawn gets this long to deliver its first beat (recovery may
  // be replaying WALs or restoring from HDFS).
  Micros startup_grace_micros = 10'000'000;
  Micros restart_backoff_initial_micros = 40'000;
  Micros restart_backoff_max_micros = 2'000'000;
  // An incarnation dying younger than this is a flap (backoff doubles);
  // surviving past it resets the ladder.
  Micros flap_window_micros = 3'000'000;
  Micros poll_interval_micros = 10'000;
};

class Supervisor {
 public:
  // One row of the CLUSTER status file (also the GetStatus snapshot).
  struct WorkerStatus {
    std::string name;
    int64_t pid = -1;
    bool alive = false;
    uint64_t restarts = 0;  // Respawns after death (exit or timeout).
    uint64_t timeouts = 0;  // Deaths declared by heartbeat silence.
    uint64_t seq = 0;       // Last heartbeat seq accepted.
    uint64_t events = 0;    // events_processed from that heartbeat.
    uint64_t lag = 0;       // total_lag from that heartbeat.
    int state = 0;          // WorkerState from that heartbeat.
  };

  Supervisor(std::vector<WorkerSpec> specs, SupervisorOptions options);
  ~Supervisor();

  // Connects to the broker, fences any stale worker pids recorded by a
  // previous supervisor incarnation (the supervisor itself may have been
  // SIGKILLed and re-executed), spawns every worker, and starts the
  // monitor thread.
  Status Start();

  // Graceful stop: SIGTERM every worker, wait for clean exits (workers
  // drain their pipelines), SIGKILL stragglers. Idempotent.
  void Stop();

  // Stops supervising WITHOUT touching the workers — models this
  // supervisor being SIGKILLed (its in-memory state vanishes; whatever it
  // last wrote to the status file is all a successor gets). Tests use it
  // to stage the stale-pid fencing path in-process.
  void Abandon();

  std::vector<WorkerStatus> GetStatus() const;
  uint64_t TotalRestarts() const;
  uint64_t TotalTimeouts() const;

  static constexpr char kStatusFileName[] = "CLUSTER";
  // Parses the text written to the status file; tolerant of a missing or
  // foreign file (returns what it can). The chaos driver reads pids and
  // progress through this, and a re-executed supervisor reads it to fence
  // stale pids.
  static std::vector<WorkerStatus> ParseStatusFile(const std::string& text);

 private:
  struct Worker {
    WorkerSpec spec;
    pid_t pid = -1;
    bool running = false;
    uint64_t restarts = 0;
    uint64_t timeouts = 0;
    uint64_t last_seq = 0;
    uint64_t events = 0;
    uint64_t lag = 0;
    int state = 0;
    std::chrono::steady_clock::time_point spawned_at{};
    std::chrono::steady_clock::time_point last_seen{};
    Micros backoff_micros = 0;  // Current rung of the restart ladder.
    std::chrono::steady_clock::time_point next_spawn{};  // Earliest respawn.
  };

  void MonitorLoop();
  void SpawnLocked(Worker* w);
  // SIGKILL + reap; safe on an already-dead pid.
  void FenceLocked(Worker* w, const char* why);
  // Death bookkeeping shared by exits and timeouts: backoff, counters.
  void MarkDeadLocked(Worker* w);
  void PollHeartbeatsLocked();
  void WriteStatusFileLocked();
  void FenceStalePids();
  std::vector<std::string> WorkerArgv(const Worker& w) const;

  std::vector<WorkerSpec> specs_;
  SupervisorOptions options_;
  std::unique_ptr<scribe::RemoteScribe> bus_;
  uint64_t heartbeat_offset_ = 0;
  // Last instant a heartbeat read from the broker succeeded. Timeout
  // verdicts require this to be fresh: when the supervisor itself cannot
  // reach the broker it is blind, not omniscient, and declaring every
  // worker dead at once would turn one broker hiccup into a restart storm.
  std::chrono::steady_clock::time_point last_broker_ok_{};

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread monitor_;
  pid_t self_pid_ = -1;

  Counter* restarts_metric_;
  Counter* timeouts_metric_;
  Counter* spawns_metric_;
};

}  // namespace fbstream::cluster

#endif  // FBSTREAM_CLUSTER_SUPERVISOR_H_
