#include "cluster/supervisor.h"

#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <utility>

#include "cluster/heartbeat.h"
#include "common/fs.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace fbstream::cluster {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::chrono::microseconds ToChrono(Micros micros) {
  return std::chrono::microseconds(micros);
}

// True while `pid` still exists (any state, including zombie).
bool PidExists(pid_t pid) { return ::kill(pid, 0) == 0; }

// Reads /proc/<pid>/cmdline (NUL-separated argv). Empty if unreadable.
std::string ProcCmdline(pid_t pid) {
  auto data =
      ReadFileToString("/proc/" + std::to_string(pid) + "/cmdline");
  return data.ok() ? *data : std::string();
}

}  // namespace

Supervisor::Supervisor(std::vector<WorkerSpec> specs, SupervisorOptions options)
    : specs_(std::move(specs)),
      options_(std::move(options)),
      restarts_metric_(
          MetricsRegistry::Global()->GetCounter("cluster.worker.restarts")),
      timeouts_metric_(
          MetricsRegistry::Global()->GetCounter("cluster.worker.timeouts")),
      spawns_metric_(
          MetricsRegistry::Global()->GetCounter("cluster.worker.spawns")) {}

Supervisor::~Supervisor() { Stop(); }

Status Supervisor::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("supervisor already running");
  }
  self_pid_ = ::getpid();

  // Fail-fast transport: the monitor loop is the retry, and a supervisor
  // blocked in a long RPC ladder is a supervisor not reaping children.
  scribe::RemoteScribeOptions bus_options;
  bus_options.connect_timeout_micros = 300'000;
  bus_options.rpc_timeout_micros = 200'000;
  bus_options.retry = {.max_attempts = 2, .initial_backoff_micros = 5'000};
  bus_ = std::make_unique<scribe::RemoteScribe>(
      SystemClock::Get(), options_.broker_host, options_.broker_port,
      "supervisor", bus_options);

  const SteadyClock::time_point deadline =
      SteadyClock::now() + std::chrono::seconds(10);
  while (!bus_->Ping().ok()) {
    if (SteadyClock::now() > deadline) {
      return Status::Unavailable("broker unreachable at " +
                                 options_.broker_host + ":" +
                                 std::to_string(options_.broker_port));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  FBSTREAM_RETURN_IF_ERROR(EnsureHeartbeatCategory(bus_.get()));
  // Tail from the current head: beats from before this supervisor's
  // incarnation describe pids it did not spawn.
  auto head = bus_->NextSequence(kHeartbeatCategory, 0);
  heartbeat_offset_ = head.ok() ? *head : 0;
  last_broker_ok_ = SteadyClock::now();

  if (!options_.status_dir.empty()) {
    FBSTREAM_RETURN_IF_ERROR(CreateDirs(options_.status_dir));
    FenceStalePids();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const WorkerSpec& spec : specs_) {
      auto w = std::make_unique<Worker>();
      w->spec = spec;
      workers_.push_back(std::move(w));
    }
    for (auto& w : workers_) SpawnLocked(w.get());
    WriteStatusFileLocked();
  }

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  monitor_ = std::thread([this] { MonitorLoop(); });
  return Status::OK();
}

void Supervisor::FenceStalePids() {
  const std::string path =
      options_.status_dir + "/" + std::string(kStatusFileName);
  auto data = ReadFileToString(path);
  if (!data.ok()) return;  // No previous incarnation.
  for (const WorkerStatus& row : ParseStatusFile(*data)) {
    if (!row.alive || row.pid <= 0 || row.pid == self_pid_) continue;
    const pid_t pid = static_cast<pid_t>(row.pid);
    // Only fence pids that still look like our worker binary: the old
    // supervisor is gone, the pid may have been recycled by an unrelated
    // process, and SIGKILLing a stranger is worse than a redundant worker.
    const std::string cmdline = ProcCmdline(pid);
    if (cmdline.find(options_.worker_binary) == std::string::npos) continue;
    FBSTREAM_LOG(Warning) << "supervisor: fencing stale worker " << row.name
                          << " (pid " << pid << ")";
    ::kill(pid, SIGKILL);
    // Not our child — poll for disappearance instead of waitpid.
    const SteadyClock::time_point gone_by =
        SteadyClock::now() + std::chrono::seconds(2);
    while (PidExists(pid) && SteadyClock::now() < gone_by) {
      // Usually not our child — but after an in-process Abandon it is, and
      // a zombie only disappears once reaped. Harmless (ECHILD) otherwise.
      int status = 0;
      ::waitpid(pid, &status, WNOHANG);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

std::vector<std::string> Supervisor::WorkerArgv(const Worker& w) const {
  std::vector<std::string> argv = {options_.worker_binary,
                                   "--name",
                                   w.spec.name,
                                   "--broker-host",
                                   options_.broker_host,
                                   "--broker-port",
                                   std::to_string(options_.broker_port),
                                   "--heartbeat-interval-micros",
                                   std::to_string(
                                       options_.heartbeat_interval_micros)};
  if (options_.heartbeat_only_workers) {
    argv.push_back("--heartbeat-only");
  } else {
    argv.insert(argv.end(), {"--manifest-dir", options_.manifest_dir,
                             "--root", options_.root, "--mode",
                             WorkloadModeName(options_.mode)});
    std::string nodes;
    for (const std::string& node : w.spec.nodes) {
      if (!nodes.empty()) nodes += ",";
      nodes += node;
    }
    argv.insert(argv.end(), {"--nodes", nodes});
  }
  argv.insert(argv.end(), options_.extra_worker_args.begin(),
              options_.extra_worker_args.end());
  return argv;
}

void Supervisor::SpawnLocked(Worker* w) {
  const std::vector<std::string> argv_strings = WorkerArgv(*w);
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (const std::string& arg : argv_strings) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t parent = ::getpid();
  const pid_t pid = ::fork();
  if (pid == 0) {
    // If the supervisor dies (SIGKILL included), the kernel kills this
    // worker too — a re-executed supervisor never inherits orphans it
    // cannot waitpid. The getppid check closes the race where the parent
    // died before prctl took effect.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (::getppid() != parent) ::_exit(97);
    ::execv(argv[0], argv.data());
    ::_exit(96);  // exec failed; the monitor sees a fast death.
  }
  const SteadyClock::time_point now = SteadyClock::now();
  if (pid < 0) {
    FBSTREAM_LOG(Error) << "supervisor: fork failed for " << w->spec.name;
    w->next_spawn = now + ToChrono(options_.restart_backoff_initial_micros);
    return;
  }
  w->pid = pid;
  w->running = true;
  w->spawned_at = now;
  w->last_seen = now;
  w->last_seq = 0;
  w->events = 0;
  w->lag = 0;
  w->state = static_cast<int>(WorkerState::kStarting);
  spawns_metric_->Add();
  FBSTREAM_LOG(Info) << "supervisor: spawned worker " << w->spec.name
                     << " (pid " << pid << ")";
}

void Supervisor::FenceLocked(Worker* w, const char* why) {
  if (w->pid <= 0) return;
  FBSTREAM_LOG(Warning) << "supervisor: fencing worker " << w->spec.name
                        << " (pid " << w->pid << "): " << why;
  ::kill(w->pid, SIGKILL);
  // Our child: reap synchronously. SIGKILL delivery is prompt, and the
  // respawn MUST NOT happen before the old pid is provably gone — two
  // incarnations sharing one shard directory is unrecoverable.
  int status = 0;
  ::waitpid(w->pid, &status, 0);
}

void Supervisor::MarkDeadLocked(Worker* w) {
  const SteadyClock::time_point now = SteadyClock::now();
  const bool flap = (now - w->spawned_at) < ToChrono(options_.flap_window_micros);
  if (flap) {
    w->backoff_micros =
        w->backoff_micros == 0
            ? options_.restart_backoff_initial_micros
            : std::min<Micros>(w->backoff_micros * 2,
                               options_.restart_backoff_max_micros);
  } else {
    w->backoff_micros = 0;  // A long healthy run resets the ladder.
  }
  w->running = false;
  w->next_spawn = now + ToChrono(w->backoff_micros);
  ++w->restarts;
  restarts_metric_->Add();
}

void Supervisor::PollHeartbeatsLocked() {
  auto messages = bus_->Read(kHeartbeatCategory, 0, heartbeat_offset_, 1024);
  if (!messages.ok()) return;  // Blind, not omniscient: last_broker_ok_ ages.
  const SteadyClock::time_point now = SteadyClock::now();
  last_broker_ok_ = now;
  for (const scribe::Message& m : *messages) {
    heartbeat_offset_ = m.sequence + 1;
    auto hb = DecodeHeartbeat(m.payload);
    if (!hb.ok()) continue;
    for (auto& w : workers_) {
      if (w->spec.name != hb->worker) continue;
      // Only the current incarnation counts: a beat from a pid we already
      // fenced (buffered pre-partition, delivered late) must not refresh
      // the successor's liveness.
      if (!w->running || hb->pid != static_cast<int64_t>(w->pid)) break;
      w->last_seq = hb->seq;
      w->events = hb->events_processed;
      w->lag = hb->total_lag;
      w->state = static_cast<int>(hb->state);
      w->last_seen = now;
      break;
    }
  }
}

void Supervisor::MonitorLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.poll_interval_micros));
    std::lock_guard<std::mutex> lock(mu_);

    // Reap exits (clean or not, a dead worker is a dead worker).
    for (auto& w : workers_) {
      if (!w->running) continue;
      int status = 0;
      const pid_t reaped = ::waitpid(w->pid, &status, WNOHANG);
      if (reaped != w->pid) continue;
      FBSTREAM_LOG(Warning)
          << "supervisor: worker " << w->spec.name << " (pid " << w->pid
          << ") died: "
          << (WIFEXITED(status)
                  ? "exit " + std::to_string(WEXITSTATUS(status))
                  : "signal " + std::to_string(WTERMSIG(status)));
      MarkDeadLocked(w.get());
    }

    PollHeartbeatsLocked();

    // Timeout verdicts, gated on our own view of the broker being fresh.
    const SteadyClock::time_point now = SteadyClock::now();
    const bool broker_fresh =
        (now - last_broker_ok_) < ToChrono(options_.heartbeat_timeout_micros / 2);
    for (auto& w : workers_) {
      if (!w->running || !broker_fresh) continue;
      if (w->state == static_cast<int>(WorkerState::kDraining)) continue;
      const Micros allowed = w->last_seq == 0
                                 ? options_.startup_grace_micros
                                 : options_.heartbeat_timeout_micros;
      if (now - w->last_seen > ToChrono(allowed)) {
        ++w->timeouts;
        timeouts_metric_->Add();
        FenceLocked(w.get(), "heartbeat timeout");
        MarkDeadLocked(w.get());
      }
    }

    // Respawns, honoring the backoff ladder.
    for (auto& w : workers_) {
      if (!w->running && now >= w->next_spawn) SpawnLocked(w.get());
    }

    WriteStatusFileLocked();
  }
}

void Supervisor::WriteStatusFileLocked() {
  if (options_.status_dir.empty()) return;
  std::ostringstream out;
  out << "supervisor pid " << self_pid_ << "\n";
  for (const auto& w : workers_) {
    out << "worker " << w->spec.name << " pid " << w->pid << " alive "
        << (w->running ? 1 : 0) << " restarts " << w->restarts << " timeouts "
        << w->timeouts << " seq " << w->last_seq << " events " << w->events
        << " lag " << w->lag << " state " << w->state << "\n";
  }
  const Status written = WriteFileAtomic(
      options_.status_dir + "/" + std::string(kStatusFileName), out.str());
  if (!written.ok()) {
    FBSTREAM_LOG(Warning) << "supervisor: status write failed: " << written;
  }
}

std::vector<Supervisor::WorkerStatus> Supervisor::ParseStatusFile(
    const std::string& text) {
  std::vector<WorkerStatus> rows;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag != "worker") continue;
    WorkerStatus row;
    std::string key;
    int alive = 0;
    fields >> row.name >> key >> row.pid >> key >> alive >> key >>
        row.restarts >> key >> row.timeouts >> key >> row.seq >> key >>
        row.events >> key >> row.lag >> key >> row.state;
    if (fields.fail()) continue;
    row.alive = alive != 0;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Supervisor::WorkerStatus> Supervisor::GetStatus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WorkerStatus> rows;
  rows.reserve(workers_.size());
  for (const auto& w : workers_) {
    WorkerStatus row;
    row.name = w->spec.name;
    row.pid = w->pid;
    row.alive = w->running;
    row.restarts = w->restarts;
    row.timeouts = w->timeouts;
    row.seq = w->last_seq;
    row.events = w->events;
    row.lag = w->lag;
    row.state = w->state;
    rows.push_back(std::move(row));
  }
  return rows;
}

uint64_t Supervisor::TotalRestarts() const {
  uint64_t total = 0;
  for (const WorkerStatus& row : GetStatus()) total += row.restarts;
  return total;
}

uint64_t Supervisor::TotalTimeouts() const {
  uint64_t total = 0;
  for (const WorkerStatus& row : GetStatus()) total += row.timeouts;
  return total;
}

void Supervisor::Abandon() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (monitor_.joinable()) monitor_.join();
  std::lock_guard<std::mutex> lock(mu_);
  // Forget the pids without signaling or reaping: the successor supervisor
  // finds them through the status file, exactly as after a real SIGKILL.
  workers_.clear();
}

void Supervisor::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (monitor_.joinable()) monitor_.join();

  std::lock_guard<std::mutex> lock(mu_);
  for (auto& w : workers_) {
    if (w->running && w->pid > 0) ::kill(w->pid, SIGTERM);
  }
  // Workers drain their pipelines on SIGTERM; give them time, then fence.
  const SteadyClock::time_point deadline =
      SteadyClock::now() + std::chrono::seconds(20);
  for (auto& w : workers_) {
    while (w->running) {
      int status = 0;
      if (::waitpid(w->pid, &status, WNOHANG) == w->pid) {
        w->running = false;
        break;
      }
      if (SteadyClock::now() > deadline) {
        FenceLocked(w.get(), "graceful stop timed out");
        w->running = false;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  WriteStatusFileLocked();
}

}  // namespace fbstream::cluster
