#ifndef FBSTREAM_CLUSTER_WORKLOAD_H_
#define FBSTREAM_CLUSTER_WORKLOAD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "core/recovery.h"
#include "scribe/scribe.h"

// The canonical distributed workload: a fixed two-node topology that every
// process in a cluster run (workers, the supervisor, the chaos driver, the
// golden replay) can rebuild from nothing but a mode string and a root
// directory. Code cannot ride in the manifest, so distributed recovery
// needs a catalog both sides agree on — this is that catalog.
//
// Modes (one per output-semantics regime the chaos harness asserts):
//
//   kExactlyOnce  "eo"   alpha, beta both consume "in"; each writes its
//                        output transactionally into its own local LSM
//                        (checkpoint + rows in one WriteBatch). The
//                        differential check is byte-identical state.
//   kAtLeastOnce  "alo"  chain: alpha consumes "in" and re-emits into
//                        "mid"; beta consumes "mid" and emits into "out".
//                        Output may duplicate across kills, never vanish.
//   kAtMostOnce   "amo"  same chain with at-most-once checkpointing:
//                        output may vanish across kills, never duplicate.
//
// Both nodes run the tally processor: count events in state, emit one row
// per input row. Per-event output is independent of where checkpoint
// boundaries land, so an exactly-once crash run is byte-identical to an
// uninterrupted golden run no matter when processes died.

namespace fbstream::cluster {

enum class WorkloadMode { kExactlyOnce, kAtLeastOnce, kAtMostOnce };

// "eo" / "alo" / "amo" (InvalidArgument otherwise).
StatusOr<WorkloadMode> ParseWorkloadMode(const std::string& text);
std::string WorkloadModeName(WorkloadMode mode);

// Every workload category has this many buckets; each node therefore runs
// this many shards.
inline constexpr int kWorkloadBuckets = 2;

SchemaPtr WorkloadEventSchema();

// Durable category config (persisted + fsynced: the bus must survive broker
// SIGKILL byte-for-byte for the differential checks to mean anything).
scribe::CategoryConfig WorkloadCategory(const std::string& name);

// The categories `mode` needs, in producer order ("in" first).
std::vector<std::string> WorkloadCategories(WorkloadMode mode);
// Creates them all on `bus` (idempotent; AlreadyExists is success).
Status EnsureWorkloadCategories(scribe::Scribe* bus, WorkloadMode mode);

// Node names in topological order: {"alpha", "beta"}.
std::vector<std::string> WorkloadNodeNames();

// The scalar half of the topology, ready for SaveManifest: what a deployer
// writes once so that worker processes can Pipeline::Recover their slices.
stylus::PipelineManifest BuildWorkloadManifest(WorkloadMode mode,
                                               const std::string& root);

// The code half: resolves a manifest record to a full NodeConfig (schema,
// processor factory, sink, HDFS cluster for backups). The returned resolver
// owns its HDFS handles (one per node, rooted under <root>/hdfs/<node>) and
// keeps them alive as long as any copy of the resolver lives — the
// NodeConfigs it returns point into them.
stylus::Pipeline::NodeConfigResolver MakeWorkloadResolver(
    WorkloadMode mode, scribe::Scribe* bus, const std::string& root);

// Appends input rows [from, to) to "in", bucket id % kWorkloadBuckets, with
// write_time taken from `bus`'s clock. The chaos driver is the only writer.
Status AppendWorkloadInput(scribe::Scribe* bus, int64_t from, int64_t to);

// Post-mortem inspection (no worker may be alive): dumps one node shard's
// LSM — "out/<id>" rows plus checkpoint keys — for the exactly-once
// byte-identical diff.
std::map<std::string, std::string> DumpWorkloadShardDb(const std::string& root,
                                                       const std::string& node,
                                                       int bucket);

// Reads the chain's terminal "out" category back: id -> emission count, for
// the at-least/at-most-once superset/subset checks.
StatusOr<std::map<int64_t, int>> ReadWorkloadOutput(scribe::Scribe* bus);

}  // namespace fbstream::cluster

#endif  // FBSTREAM_CLUSTER_WORKLOAD_H_
