// scribed: the broker process of distributed mode. Owns the durable Scribe
// categories (persisted segments under --root) and serves them over
// localhost TCP; workers, the supervisor, and the chaos driver all talk to
// this process through RemoteScribe. Writes the bound port to --port-file
// once listening, so callers binding an ephemeral port can find it.

#include <cstdlib>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/fault.h"
#include "common/fs.h"
#include "common/logging.h"
#include "common/shutdown.h"
#include "scribe/remote.h"
#include "scribe/scribe.h"

namespace {

int Run(int argc, char** argv) {
  using namespace fbstream;  // NOLINT

  std::string root;
  std::string port_file;
  int port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--root" && has_value) {
      root = argv[++i];
    } else if (arg == "--port-file" && has_value) {
      port_file = argv[++i];
    } else if (arg == "--port" && has_value) {
      port = std::atoi(argv[++i]);
    } else {
      FBSTREAM_LOG(Error) << "scribed: unknown flag " << arg;
      return 2;
    }
  }

  auto* faults = FaultRegistry::Global();
  faults->SetProcessName("scribed");
  faults->ArmKillFromEnvironment();
  InstallShutdownSignalHandlers();

  scribe::Scribe scribe(SystemClock::Get(), root);
  scribe::ScribeServerOptions server_options;
  server_options.port = port;
  scribe::ScribeServer server(&scribe, server_options);
  if (Status st = server.Start(); !st.ok()) {
    FBSTREAM_LOG(Error) << "scribed: " << st;
    return 1;
  }
  if (!port_file.empty()) {
    if (Status st =
            WriteFileAtomic(port_file, std::to_string(server.port()) + "\n");
        !st.ok()) {
      FBSTREAM_LOG(Error) << "scribed: port file: " << st;
      return 1;
    }
  }
  FBSTREAM_LOG(Info) << "scribed: listening on port " << server.port();

  Micros last_trim = SystemClock::Get()->NowMicros();
  while (!ShutdownRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const Micros now = SystemClock::Get()->NowMicros();
    if (now - last_trim > kMicrosPerSecond) {
      scribe.TrimExpired();
      last_trim = now;
    }
  }
  server.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
