#include "cluster/worker.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cluster/heartbeat.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/shutdown.h"
#include "core/pipeline.h"
#include "scribe/remote.h"

namespace fbstream::cluster {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::chrono::microseconds ToChrono(Micros micros) {
  return std::chrono::microseconds(micros);
}

// Sleep in small slices so shutdown and stop flags are honored promptly.
void SleepInterruptible(Micros micros, const std::atomic<bool>& stop) {
  const SteadyClock::time_point until = SteadyClock::now() + ToChrono(micros);
  while (SteadyClock::now() < until) {
    if (stop.load(std::memory_order_acquire) || ShutdownRequested()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

uint64_t TotalLag(stylus::Pipeline* pipeline) {
  uint64_t total = 0;
  for (const auto& report : pipeline->GetProcessingLag()) {
    total += report.lag_messages;
  }
  return total;
}

}  // namespace

int RunWorker(const WorkerOptions& options) {
  auto* faults = FaultRegistry::Global();
  faults->SetProcessName("worker." + options.name);
  faults->ArmKillFromEnvironment();
  InstallShutdownSignalHandlers();

  // Data path: generous RPC budget so shard batches ride out reconnect
  // storms. Heartbeat path: a second connection with fail-fast timeouts —
  // liveness reporting must not queue behind a stalled data RPC, and a
  // partition should surface as a missed beat within one interval, not
  // after a retry ladder.
  scribe::RemoteScribeOptions data_options;
  data_options.rpc_timeout_micros = 500'000;
  data_options.retry = {.max_attempts = 8,
                        .initial_backoff_micros = 2'000,
                        .max_backoff_micros = 100'000};
  scribe::RemoteScribe bus(SystemClock::Get(), options.broker_host,
                           options.broker_port, "worker." + options.name,
                           data_options);
  scribe::RemoteScribeOptions beat_options;
  beat_options.connect_timeout_micros = 200'000;
  beat_options.rpc_timeout_micros = 100'000;
  beat_options.retry = {.max_attempts = 1};
  scribe::RemoteScribe beat_bus(SystemClock::Get(), options.broker_host,
                                options.broker_port,
                                "worker." + options.name, beat_options);

  // The broker may still be coming up (a respawn can race its restart).
  const SteadyClock::time_point startup_deadline =
      SteadyClock::now() + ToChrono(options.startup_deadline_micros);
  while (!bus.Ping().ok()) {
    if (ShutdownRequested()) return 0;
    if (SteadyClock::now() > startup_deadline) {
      FBSTREAM_LOG(Error) << "worker " << options.name
                          << ": broker unreachable at " << options.broker_host
                          << ":" << options.broker_port;
      return 2;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (Status st = EnsureHeartbeatCategory(&bus); !st.ok()) {
    FBSTREAM_LOG(Error) << "worker " << options.name << ": " << st;
    return 2;
  }
  if (!options.heartbeat_only) {
    if (Status st = EnsureWorkloadCategories(&bus, options.mode); !st.ok()) {
      FBSTREAM_LOG(Error) << "worker " << options.name << ": " << st;
      return 2;
    }
  }

  stylus::Pipeline::Options pipeline_options;
  pipeline_options.overlap_commits = true;
  pipeline_options.commit_threads = 2;
  pipeline_options.idle_sleep_micros = 500;
  pipeline_options.snapshot_every_batches = 8;
  stylus::Pipeline pipeline(&bus, SystemClock::Get(), pipeline_options);

  std::atomic<int> state{static_cast<int>(WorkerState::kStarting)};
  std::atomic<bool> stop_heartbeat{false};

  // Started before Recover: the supervisor's startup grace is measured
  // against *some* beat arriving, and recovery (LSM replay, HDFS restore)
  // can take a while.
  std::thread heartbeat([&] {
    uint64_t seq = 1;
    bool failing = false;
    SteadyClock::time_point first_failure{};
    while (!stop_heartbeat.load(std::memory_order_acquire)) {
      Heartbeat hb;
      hb.worker = options.name;
      hb.pid = static_cast<int64_t>(::getpid());
      hb.seq = seq;
      hb.sent_micros = SystemClock::Get()->NowMicros();
      hb.events_processed = pipeline.events_processed();
      hb.total_lag = options.heartbeat_only ? 0 : TotalLag(&pipeline);
      hb.state = static_cast<WorkerState>(state.load(std::memory_order_acquire));
      if (AppendHeartbeat(&beat_bus, hb).ok()) {
        ++seq;
        failing = false;
      } else {
        const SteadyClock::time_point now = SteadyClock::now();
        if (!failing) {
          failing = true;
          first_failure = now;
        } else if (now - first_failure >
                   ToChrono(options.fence_timeout_micros)) {
          // Long enough that the supervisor has declared this worker dead
          // and may be starting a successor: die before two processes share
          // one shard directory. _exit — no destructors, same as SIGKILL.
          FBSTREAM_LOG(Warning)
              << "worker " << options.name
              << ": broker unreachable past fence timeout, self-fencing";
          ::_exit(kSelfFenceExitCode);
        }
      }
      SleepInterruptible(options.heartbeat_interval_micros, stop_heartbeat);
    }
  });

  int code = 0;
  if (options.heartbeat_only) {
    state.store(static_cast<int>(WorkerState::kRunning),
                std::memory_order_release);
    while (!ShutdownRequested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    state.store(static_cast<int>(WorkerState::kDraining),
                std::memory_order_release);
  } else {
    stylus::Pipeline::RecoverOptions recover_options;
    recover_options.node_filter = options.nodes;
    const auto resolver =
        MakeWorkloadResolver(options.mode, &bus, options.root);
    if (Status st = pipeline.Recover(options.manifest_dir, resolver,
                                     recover_options);
        !st.ok()) {
      // Leave the retry cadence to the supervisor's restart backoff: a
      // partial in-place retry would violate Recover's empty-pipeline
      // precondition anyway.
      FBSTREAM_LOG(Error) << "worker " << options.name
                          << ": recover failed: " << st;
      code = 3;
    } else if (Status st = pipeline.Start(); !st.ok()) {
      FBSTREAM_LOG(Error) << "worker " << options.name
                          << ": start failed: " << st;
      code = 3;
    } else {
      state.store(static_cast<int>(WorkerState::kRunning),
                  std::memory_order_release);
      SteadyClock::time_point last_recover = SteadyClock::now();
      while (!ShutdownRequested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        const SteadyClock::time_point now = SteadyClock::now();
        if (now - last_recover > ToChrono(options.recover_poll_micros)) {
          // Revive shards downed by injected crashes; loops for dead
          // shards idle, so this never races a running batch.
          (void)pipeline.RecoverAll();
          last_recover = now;
        }
      }
      state.store(static_cast<int>(WorkerState::kDraining),
                  std::memory_order_release);
      if (Status st = pipeline.Stop(); !st.ok()) {
        FBSTREAM_LOG(Error) << "worker " << options.name
                            << ": stop failed: " << st;
        code = 4;
      }
    }
  }

  stop_heartbeat.store(true, std::memory_order_release);
  heartbeat.join();
  return code;
}

}  // namespace fbstream::cluster
