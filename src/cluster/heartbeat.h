#ifndef FBSTREAM_CLUSTER_HEARTBEAT_H_
#define FBSTREAM_CLUSTER_HEARTBEAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/status.h"
#include "scribe/scribe.h"

// Worker liveness over the bus itself. Each node process appends a compact
// heartbeat record to a dedicated Scribe category on a fixed cadence; the
// supervisor tails that category and treats "no new heartbeat from (name,
// pid) for longer than the timeout" as worker death — which deliberately
// does not distinguish a crashed process from one partitioned away from the
// broker: a worker that cannot reach the bus cannot make progress either,
// so the failure detector's job is the same (fence it, start a successor).
//
// Routing liveness through Scribe instead of a side channel keeps the
// failure model honest: the heartbeat path exercises the same socket, the
// same retry policy, and the same partitions as the data path, so a chaos
// partition that starves a worker's appends also silences its heartbeats.

namespace fbstream::cluster {

// All heartbeats land in bucket 0 of this category. Not persisted: liveness
// is meaningful only to a live broker, and a restarted broker starting the
// category empty just means one heartbeat interval of blindness.
inline constexpr char kHeartbeatCategory[] = "_cluster.heartbeat";

enum class WorkerState : uint8_t {
  kStarting = 0,  // Process up, pipeline not yet recovered.
  kRunning = 1,   // Pipeline started.
  kDraining = 2,  // SIGTERM received, graceful stop in progress.
};

struct Heartbeat {
  std::string worker;          // Worker name from the supervisor's spec.
  int64_t pid = 0;             // The sender's OS pid (fences stale senders).
  uint64_t seq = 0;            // Per-incarnation monotone counter, from 1.
  Micros sent_micros = 0;      // Sender's clock at append time.
  uint64_t events_processed = 0;  // Pipeline::events_processed().
  uint64_t total_lag = 0;         // Sum of per-shard processing lag.
  WorkerState state = WorkerState::kStarting;
};

// Byte-level serde, exposed for tests.
std::string EncodeHeartbeat(const Heartbeat& hb);
StatusOr<Heartbeat> DecodeHeartbeat(std::string_view data);

// Creates the heartbeat category if missing (idempotent; safe from every
// process that touches the bus).
Status EnsureHeartbeatCategory(scribe::Scribe* bus);

// One append. Failure is the caller's signal that the broker is
// unreachable — workers count consecutive failures toward self-fencing.
Status AppendHeartbeat(scribe::Scribe* bus, const Heartbeat& hb);

}  // namespace fbstream::cluster

#endif  // FBSTREAM_CLUSTER_HEARTBEAT_H_
