// supervisord: the node supervisor process (cluster/supervisor.h). Spawns
// one noded per --workers entry, watches heartbeats, restarts the dead.
// The chaos harness SIGKILLs and re-execs this process to prove the
// supervision layer itself is crash-only.
//
// --workers syntax: "alpha=alpha,beta=beta" — comma-separated
// name=node+node entries ('+' separates a worker's manifest nodes).

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cluster/supervisor.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/shutdown.h"

namespace {

std::vector<fbstream::cluster::WorkerSpec> ParseWorkers(
    const std::string& text) {
  std::vector<fbstream::cluster::WorkerSpec> specs;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    const std::string entry = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!entry.empty()) {
      fbstream::cluster::WorkerSpec spec;
      const size_t eq = entry.find('=');
      spec.name = entry.substr(0, eq);
      if (eq != std::string::npos) {
        size_t node_start = eq + 1;
        while (node_start <= entry.size()) {
          const size_t plus = entry.find('+', node_start);
          const std::string node =
              entry.substr(node_start, plus == std::string::npos
                                           ? std::string::npos
                                           : plus - node_start);
          if (!node.empty()) spec.nodes.push_back(node);
          if (plus == std::string::npos) break;
          node_start = plus + 1;
        }
      }
      specs.push_back(std::move(spec));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return specs;
}

int Run(int argc, char** argv) {
  using namespace fbstream;  // NOLINT

  cluster::SupervisorOptions options;
  std::string workers;
  std::string mode = "eo";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--broker-host" && has_value) {
      options.broker_host = argv[++i];
    } else if (arg == "--broker-port" && has_value) {
      options.broker_port = std::atoi(argv[++i]);
    } else if (arg == "--manifest-dir" && has_value) {
      options.manifest_dir = argv[++i];
    } else if (arg == "--status-dir" && has_value) {
      options.status_dir = argv[++i];
    } else if (arg == "--root" && has_value) {
      options.root = argv[++i];
    } else if (arg == "--mode" && has_value) {
      mode = argv[++i];
    } else if (arg == "--worker-binary" && has_value) {
      options.worker_binary = argv[++i];
    } else if (arg == "--workers" && has_value) {
      workers = argv[++i];
    } else if (arg == "--heartbeat-interval-micros" && has_value) {
      options.heartbeat_interval_micros = std::atoll(argv[++i]);
    } else if (arg == "--heartbeat-timeout-micros" && has_value) {
      options.heartbeat_timeout_micros = std::atoll(argv[++i]);
    } else if (arg == "--heartbeat-only-workers") {
      options.heartbeat_only_workers = true;
    } else {
      FBSTREAM_LOG(Error) << "supervisord: unknown flag " << arg;
      return 2;
    }
  }

  auto* faults = FaultRegistry::Global();
  faults->SetProcessName("supervisor");
  faults->ArmKillFromEnvironment();
  InstallShutdownSignalHandlers();

  auto parsed = cluster::ParseWorkloadMode(mode);
  if (!parsed.ok()) {
    FBSTREAM_LOG(Error) << "supervisord: " << parsed.status();
    return 2;
  }
  options.mode = *parsed;
  const std::vector<cluster::WorkerSpec> specs = ParseWorkers(workers);
  if (specs.empty() || options.worker_binary.empty()) {
    FBSTREAM_LOG(Error)
        << "supervisord: --workers and --worker-binary are required";
    return 2;
  }

  cluster::Supervisor supervisor(specs, options);
  if (Status st = supervisor.Start(); !st.ok()) {
    FBSTREAM_LOG(Error) << "supervisord: " << st;
    return 1;
  }
  while (!ShutdownRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  supervisor.Stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
