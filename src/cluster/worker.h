#ifndef FBSTREAM_CLUSTER_WORKER_H_
#define FBSTREAM_CLUSTER_WORKER_H_

#include <string>
#include <vector>

#include "cluster/workload.h"
#include "common/clock.h"

// One node process ("noded"): recovers its slice of the manifest topology
// through a RemoteScribe, runs it in continuous mode, and heartbeats to the
// supervisor over the bus. The process is the unit of failure — the
// supervisor SIGKILLs and respawns whole workers, and Pipeline::Recover
// rebuilds everything from the durable manifest + checkpoints + HDFS
// backups, exactly as a single-process restart would.

namespace fbstream::cluster {

// A worker that cannot append heartbeats long enough for the supervisor to
// have declared it dead must assume a successor is being started and kill
// itself (self-fencing): two live processes replaying into one shard's LSM
// directory is the one failure recovery cannot absorb.
inline constexpr int kSelfFenceExitCode = 75;

struct WorkerOptions {
  std::string name;  // Matches the supervisor's WorkerSpec.
  std::string broker_host = "127.0.0.1";
  int broker_port = 0;
  std::string manifest_dir;
  std::string root;  // Workload root (state dirs, per-node HDFS roots).
  WorkloadMode mode = WorkloadMode::kExactlyOnce;
  // Node names this worker owns (Pipeline::RecoverOptions::node_filter).
  std::vector<std::string> nodes;

  Micros heartbeat_interval_micros = 30'000;
  // Self-fence after this long of consecutive heartbeat-append failures.
  // Must exceed the supervisor's heartbeat timeout: the supervisor fences
  // with SIGKILL before respawning, so the self-fence only matters when the
  // supervisor itself is gone — err toward staying alive.
  Micros fence_timeout_micros = 1'000'000;
  // Keep retrying the initial connect + recover this long before giving up
  // (a respawn can race the broker's own restart).
  Micros startup_deadline_micros = 10'000'000;
  // Revive injected-crash shards (RecoverAll) on this cadence.
  Micros recover_poll_micros = 200'000;

  // Heartbeat-only mode: no pipeline, no manifest — just connect and beat.
  // Supervisor unit tests use this to exercise failure detection without a
  // workload.
  bool heartbeat_only = false;
};

// Runs the worker until SIGTERM (graceful drain, returns 0) or a fatal
// startup error (nonzero). Never returns on self-fence or injected kill —
// those _exit.
int RunWorker(const WorkerOptions& options);

}  // namespace fbstream::cluster

#endif  // FBSTREAM_CLUSTER_WORKER_H_
