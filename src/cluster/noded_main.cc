// noded: one worker process of distributed mode. Recovers the manifest
// nodes named by --nodes through the scribed broker and runs them in
// continuous mode until SIGTERM (see cluster/worker.h).
//
// Test hooks (used by cluster_test and the chaos harness):
//   --exit-code N        exit immediately with code N (deterministic fast
//                        death, for restart-backoff tests).
//   --selftest-kill SITE arm FBSTREAM_KILL_SPEC post-exec, hit SITE 100
//                        times, exit 42 if still alive. Process identity
//                        for @process specs comes from FBSTREAM_PROCESS_NAME
//                        (the point of the test: arming must survive exec,
//                        where only the environment crosses over).

#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/worker.h"
#include "common/fault.h"
#include "common/logging.h"

namespace {

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    const std::string part = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!part.empty()) parts.push_back(part);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

int Run(int argc, char** argv) {
  using namespace fbstream;  // NOLINT

  cluster::WorkerOptions options;
  std::string mode = "eo";
  std::string selftest_site;
  int exit_code = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--name" && has_value) {
      options.name = argv[++i];
    } else if (arg == "--broker-host" && has_value) {
      options.broker_host = argv[++i];
    } else if (arg == "--broker-port" && has_value) {
      options.broker_port = std::atoi(argv[++i]);
    } else if (arg == "--manifest-dir" && has_value) {
      options.manifest_dir = argv[++i];
    } else if (arg == "--root" && has_value) {
      options.root = argv[++i];
    } else if (arg == "--mode" && has_value) {
      mode = argv[++i];
    } else if (arg == "--nodes" && has_value) {
      options.nodes = SplitCommas(argv[++i]);
    } else if (arg == "--heartbeat-interval-micros" && has_value) {
      options.heartbeat_interval_micros = std::atoll(argv[++i]);
    } else if (arg == "--fence-timeout-micros" && has_value) {
      options.fence_timeout_micros = std::atoll(argv[++i]);
    } else if (arg == "--heartbeat-only") {
      options.heartbeat_only = true;
    } else if (arg == "--exit-code" && has_value) {
      exit_code = std::atoi(argv[++i]);
    } else if (arg == "--selftest-kill" && has_value) {
      selftest_site = argv[++i];
    } else {
      FBSTREAM_LOG(Error) << "noded: unknown flag " << arg;
      return 2;
    }
  }

  if (exit_code >= 0) return exit_code;
  if (!selftest_site.empty()) {
    FaultRegistry::Global()->ArmKillFromEnvironment();
    for (int i = 0; i < 100; ++i) {
      (void)FaultRegistry::Global()->Hit(selftest_site);
    }
    return 42;  // Survived: either no spec matched or it was spent.
  }

  if (options.name.empty()) {
    FBSTREAM_LOG(Error) << "noded: --name is required";
    return 2;
  }
  auto parsed = cluster::ParseWorkloadMode(mode);
  if (!parsed.ok()) {
    FBSTREAM_LOG(Error) << "noded: " << parsed.status();
    return 2;
  }
  options.mode = *parsed;
  return cluster::RunWorker(options);
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
