#include "cluster/workload.h"

#include <cstdlib>
#include <memory>
#include <utility>

#include "common/serde.h"
#include "common/value.h"
#include "core/node.h"
#include "core/processor.h"
#include "core/sink.h"
#include "storage/hdfs/hdfs.h"
#include "storage/lsm/db.h"

namespace fbstream::cluster {

namespace {

using stylus::ManifestNodeRecord;
using stylus::NodeConfig;
using stylus::OutputSemantics;
using stylus::StateBackend;
using stylus::StateSemantics;

// Counts events in its state and emits one row per event. Identical in
// spirit to the crash-harness tally: per-event output is what the
// differential checks compare, so checkpoint placement can't perturb it.
class TallyProcessor : public stylus::StatefulProcessor {
 public:
  void Process(const stylus::Event& event, std::vector<Row>* out) override {
    ++count_;
    out->push_back(Row(WorkloadEventSchema(),
                       {Value(event.row.Get("event_time").CoerceInt64()),
                        Value(event.row.Get("id").CoerceInt64()),
                        Value(event.row.Get("topic").ToString())}));
  }
  void OnCheckpoint(Micros /*now*/, std::vector<Row>* /*out*/) override {}
  std::string SerializeState() const override {
    return std::to_string(count_);
  }
  Status RestoreState(std::string_view data) override {
    count_ = strtoll(std::string(data).c_str(), nullptr, 10);
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
};

// Transactional sink for exactly-once output into the shard's own LSM:
// "out/<id>" -> topic commits atomically with the checkpoint.
class LsmTallySink : public stylus::OutputSink {
 public:
  Status Emit(const Row& /*row*/) override {
    return Status::FailedPrecondition("transactional sink: use checkpoint");
  }
  bool SupportsTransactions() const override { return true; }
  Status AppendToTransaction(const std::vector<Row>& rows,
                             lsm::WriteBatch* batch) override {
    for (const Row& row : rows) {
      batch->Put("out/" + std::to_string(row.Get("id").CoerceInt64()),
                 row.Get("topic").ToString());
    }
    return Status::OK();
  }
};

StateSemantics StateFor(WorkloadMode mode) {
  switch (mode) {
    case WorkloadMode::kExactlyOnce:
      return StateSemantics::kExactlyOnce;
    case WorkloadMode::kAtLeastOnce:
      return StateSemantics::kAtLeastOnce;
    case WorkloadMode::kAtMostOnce:
      return StateSemantics::kAtMostOnce;
  }
  return StateSemantics::kAtLeastOnce;
}

OutputSemantics OutputFor(WorkloadMode mode) {
  switch (mode) {
    case WorkloadMode::kExactlyOnce:
      return OutputSemantics::kExactlyOnce;
    case WorkloadMode::kAtLeastOnce:
      return OutputSemantics::kAtLeastOnce;
    case WorkloadMode::kAtMostOnce:
      return OutputSemantics::kAtMostOnce;
  }
  return OutputSemantics::kAtLeastOnce;
}

std::string InputCategoryFor(WorkloadMode mode, const std::string& node) {
  // Exactly-once: both nodes fan out from "in" (independent consumers of
  // one stream). Chain modes: alpha re-shards "in" into "mid", beta drains
  // "mid" into "out" — a two-hop DAG so a kill between hops is exercised.
  if (mode == WorkloadMode::kExactlyOnce) return "in";
  return node == "alpha" ? "in" : "mid";
}

}  // namespace

StatusOr<WorkloadMode> ParseWorkloadMode(const std::string& text) {
  if (text == "eo") return WorkloadMode::kExactlyOnce;
  if (text == "alo") return WorkloadMode::kAtLeastOnce;
  if (text == "amo") return WorkloadMode::kAtMostOnce;
  return Status::InvalidArgument("unknown workload mode: " + text);
}

std::string WorkloadModeName(WorkloadMode mode) {
  switch (mode) {
    case WorkloadMode::kExactlyOnce:
      return "eo";
    case WorkloadMode::kAtLeastOnce:
      return "alo";
    case WorkloadMode::kAtMostOnce:
      return "amo";
  }
  return "?";
}

SchemaPtr WorkloadEventSchema() {
  static const SchemaPtr schema =
      Schema::Make({{"event_time", ValueType::kInt64},
                    {"id", ValueType::kInt64},
                    {"topic", ValueType::kString}});
  return schema;
}

scribe::CategoryConfig WorkloadCategory(const std::string& name) {
  scribe::CategoryConfig config;
  config.name = name;
  config.num_buckets = kWorkloadBuckets;
  config.persist_to_disk = true;
  config.fsync_appends = true;
  return config;
}

std::vector<std::string> WorkloadCategories(WorkloadMode mode) {
  if (mode == WorkloadMode::kExactlyOnce) return {"in"};
  return {"in", "mid", "out"};
}

Status EnsureWorkloadCategories(scribe::Scribe* bus, WorkloadMode mode) {
  for (const std::string& name : WorkloadCategories(mode)) {
    const Status created = bus->CreateCategory(WorkloadCategory(name));
    if (!created.ok() && created.code() != StatusCode::kAlreadyExists) {
      return created;
    }
  }
  return Status::OK();
}

std::vector<std::string> WorkloadNodeNames() { return {"alpha", "beta"}; }

stylus::PipelineManifest BuildWorkloadManifest(WorkloadMode mode,
                                               const std::string& root) {
  stylus::PipelineManifest manifest;
  manifest.epoch = 1;
  for (const std::string& node : WorkloadNodeNames()) {
    ManifestNodeRecord record;
    record.name = node;
    record.input_category = InputCategoryFor(mode, node);
    record.num_shards = kWorkloadBuckets;
    record.state_semantics = StateFor(mode);
    record.output_semantics = OutputFor(mode);
    record.backend = StateBackend::kLocal;
    record.state_dir = root + "/state";
    // Small checkpoints (7 events) land kills inside, between, and across
    // checkpoint intervals; HDFS backup every other checkpoint exercises
    // the Fig 10 restore when a shard directory is wiped.
    record.checkpoint_every_events = 7;
    record.checkpoint_every_bytes = 0;
    record.backup_every_checkpoints = 2;
    record.max_pending_backups = 8;
    manifest.nodes.push_back(std::move(record));
  }
  return manifest;
}

stylus::Pipeline::NodeConfigResolver MakeWorkloadResolver(
    WorkloadMode mode, scribe::Scribe* bus, const std::string& root) {
  // The resolver outlives this call and the NodeConfigs it returns carry
  // raw HdfsCluster pointers, so the clusters live in a shared_ptr captured
  // by the lambda (copied with it, freed with the last copy). One cluster
  // per node name: sibling worker processes each open their own node's
  // root, never a directory another live process is writing.
  auto clusters = std::make_shared<
      std::map<std::string, std::unique_ptr<hdfs::HdfsCluster>>>();
  return [mode, bus, root, clusters](const ManifestNodeRecord& record)
             -> StatusOr<NodeConfig> {
    bool known = false;
    for (const std::string& node : WorkloadNodeNames()) {
      known = known || node == record.name;
    }
    if (!known) {
      return Status::InvalidArgument("workload has no node named " +
                                     record.name);
    }
    auto it = clusters->find(record.name);
    if (it == clusters->end()) {
      it = clusters
               ->emplace(record.name, std::make_unique<hdfs::HdfsCluster>(
                                          root + "/hdfs/" + record.name))
               .first;
    }
    NodeConfig config;
    config.name = record.name;
    config.input_category = InputCategoryFor(mode, record.name);
    config.input_schema = WorkloadEventSchema();
    config.event_time_column = "event_time";
    config.stateful_factory = [] { return std::make_unique<TallyProcessor>(); };
    config.state_semantics = StateFor(mode);
    config.output_semantics = OutputFor(mode);
    config.checkpoint_every_events = record.checkpoint_every_events;
    config.backend = StateBackend::kLocal;
    config.state_dir = root + "/state";
    config.hdfs = it->second.get();
    config.backup_every_checkpoints = record.backup_every_checkpoints;
    config.max_pending_backups = record.max_pending_backups;
    if (mode == WorkloadMode::kExactlyOnce) {
      config.sink = std::make_shared<LsmTallySink>();
    } else {
      const std::string out_category =
          record.name == "alpha" ? "mid" : "out";
      config.sink = std::make_shared<stylus::ScribeSink>(
          bus, out_category, WorkloadEventSchema(),
          std::vector<std::string>{"id"});
    }
    return config;
  };
}

Status AppendWorkloadInput(scribe::Scribe* bus, int64_t from, int64_t to) {
  TextRowCodec codec(WorkloadEventSchema());
  for (int64_t i = from; i < to; ++i) {
    Row row(WorkloadEventSchema(),
            {Value(bus->clock()->NowMicros()), Value(i),
             Value("t" + std::to_string(i % 3))});
    FBSTREAM_RETURN_IF_ERROR(
        bus->Write("in", static_cast<int>(i % kWorkloadBuckets),
                   codec.Encode(row)));
  }
  return Status::OK();
}

std::map<std::string, std::string> DumpWorkloadShardDb(const std::string& root,
                                                       const std::string& node,
                                                       int bucket) {
  std::map<std::string, std::string> out;
  auto db = lsm::Db::Open(
      lsm::DbOptions{},
      root + "/state/" + node + "/shard-" + std::to_string(bucket));
  if (!db.ok()) return out;
  auto it = (*db)->NewIterator();
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    out[it.key()] = it.value();
  }
  return out;
}

StatusOr<std::map<int64_t, int>> ReadWorkloadOutput(scribe::Scribe* bus) {
  std::map<int64_t, int> counts;
  TextRowCodec codec(WorkloadEventSchema());
  const int buckets = bus->NumBuckets("out");
  for (int b = 0; b < buckets; ++b) {
    FBSTREAM_ASSIGN_OR_RETURN(const std::vector<scribe::Message> messages,
                              bus->Read("out", b, 0, 1u << 20));
    for (const scribe::Message& m : messages) {
      FBSTREAM_ASSIGN_OR_RETURN(const Row row, codec.Decode(m.payload));
      ++counts[row.Get("id").CoerceInt64()];
    }
  }
  return counts;
}

}  // namespace fbstream::cluster
