#include "puma/aggregation.h"

#include <algorithm>

#include "common/serde.h"

namespace fbstream::puma {

TableAggregation::TableAggregation(const CreateTableStmt* stmt,
                                   SchemaPtr input_schema,
                                   std::string time_column)
    : stmt_(stmt),
      input_schema_(std::move(input_schema)),
      time_column_(std::move(time_column)) {
  if (stmt_->where != nullptr) {
    where_ = CompiledExpr::Compile(*stmt_->where, input_schema_);
  }
  Expr time_expr;
  time_expr.kind = ExprKind::kColumn;
  time_expr.column = time_column_;
  time_expr_ = CompiledExpr::Compile(time_expr, input_schema_);
  // Resolve each group-by name: an alias of a non-aggregate select item, or
  // a bare input column.
  for (const std::string& name : stmt_->group_by) {
    ExprPtr expr;
    for (const SelectItem& item : stmt_->items) {
      if (!item.is_aggregate && item.alias == name) {
        expr = item.expr;
        break;
      }
    }
    if (expr == nullptr) {
      expr = std::make_shared<Expr>();
      expr->kind = ExprKind::kColumn;
      expr->column = name;
    }
    group_exprs_.push_back(CompiledExpr::Compile(*expr, input_schema_));
  }
  for (size_t i = 0; i < stmt_->items.size(); ++i) {
    const SelectItem& item = stmt_->items[i];
    if (item.is_aggregate) {
      agg_items_.push_back(static_cast<int>(i));
      agg_args_.push_back(item.agg_arg != nullptr
                              ? CompiledExpr::Compile(*item.agg_arg,
                                                      input_schema_)
                              : CompiledExpr());
    }
  }
}

void TableAggregation::ProcessRow(const Row& row) {
  if (stmt_->where != nullptr && !where_.EvalBool(row)) return;
  const Micros t = time_expr_.Eval(row).CoerceInt64();
  max_event_time_ = std::max(max_event_time_, t);
  Micros window = t - (t % stmt_->window_micros);
  if (t < 0 && t % stmt_->window_micros != 0) window -= stmt_->window_micros;

  GroupKey key;
  key.reserve(group_exprs_.size());
  for (const CompiledExpr& expr : group_exprs_) {
    key.push_back(expr.Eval(row).ToString());
  }

  Cells& cells = windows_[window][key];
  if (cells.empty()) {
    cells.reserve(agg_items_.size());
    for (const int i : agg_items_) {
      cells.emplace_back(stmt_->items[static_cast<size_t>(i)].agg);
    }
  }
  for (size_t a = 0; a < agg_items_.size(); ++a) {
    if (agg_args_[a].valid()) {
      cells[a].Update(agg_args_[a].Eval(row));
    } else {
      cells[a].UpdateCount();  // COUNT(*) and argument-less counts.
    }
  }
  ++rows_processed_;
}

std::vector<Value> TableAggregation::GroupValuesFor(const GroupKey& key) const {
  std::vector<Value> values;
  values.reserve(key.size());
  for (const std::string& k : key) values.emplace_back(k);
  return values;
}

std::vector<PumaResultRow> TableAggregation::QueryWindow(
    Micros window_start) const {
  std::vector<PumaResultRow> rows;
  auto it = windows_.find(window_start);
  if (it == windows_.end()) return rows;
  for (const auto& [key, cells] : it->second) {
    PumaResultRow row;
    row.window_start = window_start;
    row.group = GroupValuesFor(key);
    for (size_t a = 0; a < agg_items_.size(); ++a) {
      row.aggregates.push_back(cells[a].Result(
          stmt_->items[static_cast<size_t>(agg_items_[a])]));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<PumaResultRow> TableAggregation::QueryTopK(Micros window_start,
                                                       size_t k,
                                                       int rank_item) const {
  std::vector<PumaResultRow> rows = QueryWindow(window_start);
  // Pick the ranking aggregate: explicit, else the TopK item, else item 0.
  size_t rank = 0;
  if (rank_item >= 0 && static_cast<size_t>(rank_item) < agg_items_.size()) {
    rank = static_cast<size_t>(rank_item);
  } else {
    for (size_t a = 0; a < agg_items_.size(); ++a) {
      if (stmt_->items[static_cast<size_t>(agg_items_[a])].agg ==
          AggFunction::kTopK) {
        rank = a;
        break;
      }
    }
  }
  // Partition rows by the leading group column ("top K events for each
  // topic"); no group columns = one global partition.
  std::map<std::string, std::vector<PumaResultRow>> partitions;
  for (PumaResultRow& row : rows) {
    const std::string part =
        row.group.empty() ? "" : row.group[0].ToString();
    partitions[part].push_back(std::move(row));
  }
  std::vector<PumaResultRow> out;
  for (auto& [part, members] : partitions) {
    std::stable_sort(members.begin(), members.end(),
                     [rank](const PumaResultRow& a, const PumaResultRow& b) {
                       return b.aggregates[rank] < a.aggregates[rank];
                     });
    if (members.size() > k) members.resize(k);
    for (PumaResultRow& row : members) out.push_back(std::move(row));
  }
  return out;
}

std::vector<Micros> TableAggregation::Windows() const {
  std::vector<Micros> out;
  out.reserve(windows_.size());
  for (const auto& [w, groups] : windows_) out.push_back(w);
  return out;
}

bool TableAggregation::IsWindowFinal(Micros window_start, Micros grace) const {
  return max_event_time_ >= window_start + stmt_->window_micros + grace;
}

void TableAggregation::ExpireWindowsBefore(Micros horizon) {
  auto it = windows_.begin();
  while (it != windows_.end() && it->first < horizon) {
    it = windows_.erase(it);
  }
}

void TableAggregation::Serialize(std::string* out) const {
  PutVarint64(out, ZigzagEncode(max_event_time_));
  PutVarint64(out, rows_processed_);
  PutVarint64(out, windows_.size());
  for (const auto& [window, groups] : windows_) {
    PutVarint64(out, ZigzagEncode(window));
    PutVarint64(out, groups.size());
    for (const auto& [key, cells] : groups) {
      PutVarint64(out, key.size());
      for (const std::string& k : key) PutLengthPrefixed(out, k);
      PutVarint64(out, cells.size());
      for (const AggCell& cell : cells) cell.Serialize(out);
    }
  }
}

Status TableAggregation::Restore(std::string_view data) {
  windows_.clear();
  uint64_t raw = 0;
  if (!GetVarint64(&data, &raw)) return Status::Corruption("agg: time");
  max_event_time_ = ZigzagDecode(raw);
  if (!GetVarint64(&data, &rows_processed_)) {
    return Status::Corruption("agg: rows");
  }
  uint64_t num_windows = 0;
  if (!GetVarint64(&data, &num_windows)) {
    return Status::Corruption("agg: windows");
  }
  for (uint64_t w = 0; w < num_windows; ++w) {
    if (!GetVarint64(&data, &raw)) return Status::Corruption("agg: window");
    const Micros window = ZigzagDecode(raw);
    uint64_t num_groups = 0;
    if (!GetVarint64(&data, &num_groups)) {
      return Status::Corruption("agg: groups");
    }
    for (uint64_t g = 0; g < num_groups; ++g) {
      uint64_t key_size = 0;
      if (!GetVarint64(&data, &key_size)) {
        return Status::Corruption("agg: key size");
      }
      GroupKey key;
      for (uint64_t i = 0; i < key_size; ++i) {
        std::string_view part;
        if (!GetLengthPrefixed(&data, &part)) {
          return Status::Corruption("agg: key part");
        }
        key.emplace_back(part);
      }
      uint64_t num_cells = 0;
      if (!GetVarint64(&data, &num_cells)) {
        return Status::Corruption("agg: cells");
      }
      Cells cells;
      for (uint64_t c = 0; c < num_cells; ++c) {
        FBSTREAM_ASSIGN_OR_RETURN(AggCell cell, AggCell::Deserialize(&data));
        cells.push_back(std::move(cell));
      }
      windows_[window].emplace(std::move(key), std::move(cells));
    }
  }
  return Status::OK();
}

void TableAggregation::MergeFrom(const TableAggregation& other) {
  max_event_time_ = std::max(max_event_time_, other.max_event_time_);
  rows_processed_ += other.rows_processed_;
  for (const auto& [window, groups] : other.windows_) {
    for (const auto& [key, cells] : groups) {
      Cells& mine = windows_[window][key];
      if (mine.empty()) {
        mine = cells;
        continue;
      }
      for (size_t i = 0; i < mine.size() && i < cells.size(); ++i) {
        mine[i].Merge(cells[i]);
      }
    }
  }
}

}  // namespace fbstream::puma
