#ifndef FBSTREAM_PUMA_PARSER_H_
#define FBSTREAM_PUMA_PARSER_H_

#include <string>

#include "common/status.h"
#include "puma/ast.h"

namespace fbstream::puma {

// Parses one complete Puma application (the Figure 2 shape): a
// CREATE APPLICATION statement followed by CREATE INPUT TABLE /
// CREATE TABLE / CREATE STREAM statements, semicolon-separated.
// Performs semantic analysis: expressions are checked against the input
// schemas, aggregate items are classified, and implicit group keys are
// derived from non-aggregate select items.
StatusOr<AppSpec> ParseApp(const std::string& source);

}  // namespace fbstream::puma

#endif  // FBSTREAM_PUMA_PARSER_H_
