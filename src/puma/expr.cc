#include "puma/expr.h"

#include <cctype>
#include <cmath>

namespace fbstream::puma {

namespace {

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(toupper(c));
  return s;
}

bool Truthy(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt64:
      return v.AsInt64() != 0;
    case ValueType::kDouble:
      return v.AsDouble() != 0;
    case ValueType::kString:
      return !v.AsString().empty();
  }
  return false;
}

Value NumericBinary(BinaryOp op, const Value& a, const Value& b) {
  const bool both_int = a.type() == ValueType::kInt64 &&
                        b.type() == ValueType::kInt64;
  if (both_int && op != BinaryOp::kDiv) {
    const int64_t x = a.AsInt64();
    const int64_t y = b.AsInt64();
    switch (op) {
      case BinaryOp::kAdd:
        return Value(x + y);
      case BinaryOp::kSub:
        return Value(x - y);
      case BinaryOp::kMul:
        return Value(x * y);
      case BinaryOp::kMod:
        return Value(y == 0 ? int64_t{0} : x % y);
      default:
        break;
    }
  }
  const double x = a.CoerceDouble();
  const double y = b.CoerceDouble();
  switch (op) {
    case BinaryOp::kAdd:
      return Value(x + y);
    case BinaryOp::kSub:
      return Value(x - y);
    case BinaryOp::kMul:
      return Value(x * y);
    case BinaryOp::kDiv:
      return Value(y == 0 ? 0.0 : x / y);
    case BinaryOp::kMod:
      return Value(y == 0 ? 0.0 : std::fmod(x, y));
    default:
      return Value();
  }
}

Value BuiltinCall(const std::string& fn, const std::vector<Value>& args) {
  if (fn == "LOWER" && args.size() == 1) {
    std::string s = args[0].CoerceString();
    for (char& c : s) c = static_cast<char>(tolower(c));
    return Value(std::move(s));
  }
  if (fn == "UPPER" && args.size() == 1) {
    return Value(ToUpper(args[0].CoerceString()));
  }
  if (fn == "LENGTH" && args.size() == 1) {
    return Value(static_cast<int64_t>(args[0].CoerceString().size()));
  }
  if (fn == "CONCAT") {
    std::string s;
    for (const Value& v : args) s += v.CoerceString();
    return Value(std::move(s));
  }
  if (fn == "CONTAINS" && args.size() == 2) {
    return Value(static_cast<int64_t>(
        args[0].CoerceString().find(args[1].CoerceString()) !=
        std::string::npos));
  }
  if (fn == "SUBSTR" && args.size() >= 2) {
    const std::string s = args[0].CoerceString();
    const size_t pos = std::min<size_t>(
        s.size(), static_cast<size_t>(std::max<int64_t>(
                      0, args[1].CoerceInt64())));
    const size_t len = args.size() >= 3
                           ? static_cast<size_t>(std::max<int64_t>(
                                 0, args[2].CoerceInt64()))
                           : std::string::npos;
    return Value(s.substr(pos, len));
  }
  if (fn == "IF" && args.size() == 3) {
    return Truthy(args[0]) ? args[1] : args[2];
  }
  if (fn == "ABS" && args.size() == 1) {
    if (args[0].type() == ValueType::kInt64) {
      return Value(std::abs(args[0].AsInt64()));
    }
    return Value(std::fabs(args[0].CoerceDouble()));
  }
  if (fn == "ROUND" && args.size() == 1) {
    return Value(static_cast<int64_t>(std::llround(args[0].CoerceDouble())));
  }
  return Value();  // Unknown builtin: null.
}

}  // namespace

UdfRegistry* UdfRegistry::Global() {
  static UdfRegistry* registry = new UdfRegistry();
  return registry;
}

Status UdfRegistry::Register(const std::string& name, Udf udf) {
  const std::string key = ToUpper(name);
  if (IsAggregateFunctionName(key)) {
    return Status::InvalidArgument("cannot shadow aggregate " + key);
  }
  udfs_[key] = std::move(udf);
  return Status::OK();
}

const UdfRegistry::Udf* UdfRegistry::Find(const std::string& name) const {
  auto it = udfs_.find(ToUpper(name));
  return it == udfs_.end() ? nullptr : &it->second;
}

std::vector<std::string> UdfRegistry::Names() const {
  std::vector<std::string> names;
  for (const auto& [name, udf] : udfs_) names.push_back(name);
  return names;
}

Value EvalExpr(const Expr& expr, const Row& row, const UdfRegistry* udfs) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumn:
      return row.Get(expr.column);
    case ExprKind::kUnaryNot:
      return Value(static_cast<int64_t>(
          !Truthy(EvalExpr(*expr.left, row, udfs))));
    case ExprKind::kBinary: {
      switch (expr.op) {
        case BinaryOp::kAnd:
          return Value(static_cast<int64_t>(
              Truthy(EvalExpr(*expr.left, row, udfs)) &&
              Truthy(EvalExpr(*expr.right, row, udfs))));
        case BinaryOp::kOr:
          return Value(static_cast<int64_t>(
              Truthy(EvalExpr(*expr.left, row, udfs)) ||
              Truthy(EvalExpr(*expr.right, row, udfs))));
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          const int c = EvalExpr(*expr.left, row, udfs)
                            .Compare(EvalExpr(*expr.right, row, udfs));
          bool result = false;
          switch (expr.op) {
            case BinaryOp::kEq:
              result = c == 0;
              break;
            case BinaryOp::kNe:
              result = c != 0;
              break;
            case BinaryOp::kLt:
              result = c < 0;
              break;
            case BinaryOp::kLe:
              result = c <= 0;
              break;
            case BinaryOp::kGt:
              result = c > 0;
              break;
            case BinaryOp::kGe:
              result = c >= 0;
              break;
            default:
              break;
          }
          return Value(static_cast<int64_t>(result));
        }
        default:
          return NumericBinary(expr.op, EvalExpr(*expr.left, row, udfs),
                               EvalExpr(*expr.right, row, udfs));
      }
    }
    case ExprKind::kCall: {
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const ExprPtr& arg : expr.args) {
        args.push_back(EvalExpr(*arg, row, udfs));
      }
      const UdfRegistry* registry =
          udfs != nullptr ? udfs : UdfRegistry::Global();
      const UdfRegistry::Udf* udf = registry->Find(expr.function);
      if (udf != nullptr) return (*udf)(args);
      return BuiltinCall(expr.function, args);
    }
  }
  return Value();
}

bool EvalPredicate(const Expr& expr, const Row& row, const UdfRegistry* udfs) {
  return Truthy(EvalExpr(expr, row, udfs));
}

}  // namespace fbstream::puma
