#include "puma/expr.h"

#include <cctype>
#include <cmath>

namespace fbstream::puma {

namespace {

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(toupper(c));
  return s;
}

}  // namespace

namespace eval_detail {

bool Truthy(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt64:
      return v.AsInt64() != 0;
    case ValueType::kDouble:
      return v.AsDouble() != 0;
    case ValueType::kString:
      return !v.AsString().empty();
  }
  return false;
}

Value NumericBinary(BinaryOp op, const Value& a, const Value& b) {
  const bool both_int = a.type() == ValueType::kInt64 &&
                        b.type() == ValueType::kInt64;
  if (both_int && op != BinaryOp::kDiv) {
    const int64_t x = a.AsInt64();
    const int64_t y = b.AsInt64();
    switch (op) {
      case BinaryOp::kAdd:
        return Value(x + y);
      case BinaryOp::kSub:
        return Value(x - y);
      case BinaryOp::kMul:
        return Value(x * y);
      case BinaryOp::kMod:
        return Value(y == 0 ? int64_t{0} : x % y);
      default:
        break;
    }
  }
  const double x = a.CoerceDouble();
  const double y = b.CoerceDouble();
  switch (op) {
    case BinaryOp::kAdd:
      return Value(x + y);
    case BinaryOp::kSub:
      return Value(x - y);
    case BinaryOp::kMul:
      return Value(x * y);
    case BinaryOp::kDiv:
      return Value(y == 0 ? 0.0 : x / y);
    case BinaryOp::kMod:
      return Value(y == 0 ? 0.0 : std::fmod(x, y));
    default:
      return Value();
  }
}

namespace {

// Arity is checked by ResolveBuiltin before any of these run.

// The value's string content, without a copy when it already is a string;
// `scratch` backs the rendered form otherwise. Byte-identical to what
// CoerceString() returns.
const std::string& StringRef(const Value& v, std::string* scratch) {
  if (v.type() == ValueType::kString) return v.AsString();
  *scratch = v.CoerceString();
  return *scratch;
}

Value BuiltinLower(const Value* const* args, size_t /*n*/) {
  std::string s = (*args[0]).CoerceString();
  for (char& c : s) c = static_cast<char>(tolower(c));
  return Value(std::move(s));
}

Value BuiltinUpper(const Value* const* args, size_t /*n*/) {
  return Value(ToUpper((*args[0]).CoerceString()));
}

Value BuiltinLength(const Value* const* args, size_t /*n*/) {
  std::string scratch;
  return Value(static_cast<int64_t>(StringRef((*args[0]), &scratch).size()));
}

Value BuiltinConcat(const Value* const* args, size_t n) {
  std::string s;
  for (size_t i = 0; i < n; ++i) s += args[i]->CoerceString();
  return Value(std::move(s));
}

Value BuiltinContains(const Value* const* args, size_t /*n*/) {
  std::string hay_scratch, needle_scratch;
  return Value(static_cast<int64_t>(
      StringRef((*args[0]), &hay_scratch).find(
          StringRef((*args[1]), &needle_scratch)) != std::string::npos));
}

Value BuiltinSubstr(const Value* const* args, size_t n) {
  std::string scratch;
  const std::string& s = StringRef((*args[0]), &scratch);
  const size_t pos = std::min<size_t>(
      s.size(),
      static_cast<size_t>(std::max<int64_t>(0, (*args[1]).CoerceInt64())));
  const size_t len =
      n >= 3
          ? static_cast<size_t>(std::max<int64_t>(0, (*args[2]).CoerceInt64()))
          : std::string::npos;
  return Value(s.substr(pos, len));
}

Value BuiltinIf(const Value* const* args, size_t /*n*/) {
  return Truthy((*args[0])) ? (*args[1]) : (*args[2]);
}

Value BuiltinAbs(const Value* const* args, size_t /*n*/) {
  if ((*args[0]).type() == ValueType::kInt64) {
    return Value(std::abs((*args[0]).AsInt64()));
  }
  return Value(std::fabs((*args[0]).CoerceDouble()));
}

Value BuiltinRound(const Value* const* args, size_t /*n*/) {
  return Value(static_cast<int64_t>(std::llround((*args[0]).CoerceDouble())));
}

}  // namespace

BuiltinFn ResolveBuiltin(const std::string& fn, size_t arity) {
  if (fn == "LOWER" && arity == 1) return BuiltinLower;
  if (fn == "UPPER" && arity == 1) return BuiltinUpper;
  if (fn == "LENGTH" && arity == 1) return BuiltinLength;
  if (fn == "CONCAT") return BuiltinConcat;  // Any arity.
  if (fn == "CONTAINS" && arity == 2) return BuiltinContains;
  if (fn == "SUBSTR" && arity >= 2) return BuiltinSubstr;
  if (fn == "IF" && arity == 3) return BuiltinIf;
  if (fn == "ABS" && arity == 1) return BuiltinAbs;
  if (fn == "ROUND" && arity == 1) return BuiltinRound;
  return nullptr;
}

Value BuiltinCall(const std::string& fn, const Value* const* args, size_t n) {
  const BuiltinFn impl = ResolveBuiltin(fn, n);
  return impl != nullptr ? impl(args, n) : Value();  // Unknown builtin: null.
}

}  // namespace eval_detail

UdfRegistry* UdfRegistry::Global() {
  static UdfRegistry* registry = new UdfRegistry();
  return registry;
}

Status UdfRegistry::Register(const std::string& name, Udf udf) {
  const std::string key = ToUpper(name);
  if (IsAggregateFunctionName(key)) {
    return Status::InvalidArgument("cannot shadow aggregate " + key);
  }
  udfs_[key] = std::move(udf);
  return Status::OK();
}

const UdfRegistry::Udf* UdfRegistry::Find(const std::string& name) const {
  auto it = udfs_.find(ToUpper(name));
  return it == udfs_.end() ? nullptr : &it->second;
}

std::vector<std::string> UdfRegistry::Names() const {
  std::vector<std::string> names;
  for (const auto& [name, udf] : udfs_) names.push_back(name);
  return names;
}

Value EvalExpr(const Expr& expr, const Row& row, const UdfRegistry* udfs) {
  using eval_detail::Truthy;
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumn:
      return row.Get(expr.column);
    case ExprKind::kUnaryNot:
      return Value(static_cast<int64_t>(
          !Truthy(EvalExpr(*expr.left, row, udfs))));
    case ExprKind::kBinary: {
      switch (expr.op) {
        case BinaryOp::kAnd:
          return Value(static_cast<int64_t>(
              Truthy(EvalExpr(*expr.left, row, udfs)) &&
              Truthy(EvalExpr(*expr.right, row, udfs))));
        case BinaryOp::kOr:
          return Value(static_cast<int64_t>(
              Truthy(EvalExpr(*expr.left, row, udfs)) ||
              Truthy(EvalExpr(*expr.right, row, udfs))));
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          const int c = EvalExpr(*expr.left, row, udfs)
                            .Compare(EvalExpr(*expr.right, row, udfs));
          bool result = false;
          switch (expr.op) {
            case BinaryOp::kEq:
              result = c == 0;
              break;
            case BinaryOp::kNe:
              result = c != 0;
              break;
            case BinaryOp::kLt:
              result = c < 0;
              break;
            case BinaryOp::kLe:
              result = c <= 0;
              break;
            case BinaryOp::kGt:
              result = c > 0;
              break;
            case BinaryOp::kGe:
              result = c >= 0;
              break;
            default:
              break;
          }
          return Value(static_cast<int64_t>(result));
        }
        default:
          return eval_detail::NumericBinary(
              expr.op, EvalExpr(*expr.left, row, udfs),
              EvalExpr(*expr.right, row, udfs));
      }
    }
    case ExprKind::kCall: {
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const ExprPtr& arg : expr.args) {
        args.push_back(EvalExpr(*arg, row, udfs));
      }
      const UdfRegistry* registry =
          udfs != nullptr ? udfs : UdfRegistry::Global();
      const UdfRegistry::Udf* udf = registry->Find(expr.function);
      if (udf != nullptr) return (*udf)(args);
      const size_t n = args.size();
      const Value* stack_ptrs[8];
      std::vector<const Value*> heap_ptrs;
      const Value* const* argv = stack_ptrs;
      if (n <= 8) {
        for (size_t i = 0; i < n; ++i) stack_ptrs[i] = &args[i];
      } else {
        heap_ptrs.reserve(n);
        for (const Value& v : args) heap_ptrs.push_back(&v);
        argv = heap_ptrs.data();
      }
      return eval_detail::BuiltinCall(expr.function, argv, n);
    }
  }
  return Value();
}

bool EvalPredicate(const Expr& expr, const Row& row, const UdfRegistry* udfs) {
  return eval_detail::Truthy(EvalExpr(expr, row, udfs));
}

}  // namespace fbstream::puma
