#ifndef FBSTREAM_PUMA_AGGREGATION_H_
#define FBSTREAM_PUMA_AGGREGATION_H_

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/value.h"
#include "puma/agg.h"
#include "puma/ast.h"
#include "puma/compiled_expr.h"
#include "puma/expr.h"

namespace fbstream::puma {

// One result row of a Puma aggregation table query.
struct PumaResultRow {
  Micros window_start = 0;
  std::vector<Value> group;       // Group-by values, in group_by order.
  std::vector<Value> aggregates;  // One per aggregate select item.
};

// The continuously maintained windowed aggregation behind one CREATE TABLE
// statement. Shared verbatim by the streaming app and the batch (Hive UDF)
// runner — "The Puma app code remains unchanged, whether it is running over
// streaming or batch data" (§4.5.2).
class TableAggregation {
 public:
  TableAggregation(const CreateTableStmt* stmt, SchemaPtr input_schema,
                   std::string time_column);

  // Folds one input row (filtering, grouping, windowing, aggregating).
  void ProcessRow(const Row& row);

  // Full contents of one window, sorted by group key.
  std::vector<PumaResultRow> QueryWindow(Micros window_start) const;

  // Figure 2 semantics: for each value of the leading group-by column, the
  // top `k` remaining group keys ranked by the given aggregate item
  // (default: the TopK item, else the first aggregate).
  std::vector<PumaResultRow> QueryTopK(Micros window_start, size_t k,
                                       int rank_item = -1) const;

  // Window starts with data, ascending.
  std::vector<Micros> Windows() const;

  // A window is final once event time has moved past its end (plus a grace
  // period for late events): "the delay equals the size of the query
  // result's time window" (§2.2).
  bool IsWindowFinal(Micros window_start, Micros grace = kMicrosPerMinute) const;

  // Drops windows older than `horizon` (state retention).
  void ExpireWindowsBefore(Micros horizon);

  // Checkpoint support: the whole aggregation state as one blob.
  void Serialize(std::string* out) const;
  Status Restore(std::string_view data);

  // Merges another shard's partial aggregation state (all functions are
  // monoid, so merge order does not matter).
  void MergeFrom(const TableAggregation& other);

  const CreateTableStmt& stmt() const { return *stmt_; }
  Micros max_event_time() const { return max_event_time_; }
  uint64_t rows_processed() const { return rows_processed_; }

 private:
  using GroupKey = std::vector<std::string>;
  using Cells = std::vector<AggCell>;

  std::vector<Value> GroupValuesFor(const GroupKey& key) const;

  const CreateTableStmt* stmt_;
  SchemaPtr input_schema_;
  std::string time_column_;
  // The statement's expressions, compiled once at construction (app deploy)
  // against the declared input schema — the per-event hot path never walks
  // an AST or resolves a name. See puma/compiled_expr.h.
  CompiledExpr where_;       // Invalid when the statement has no WHERE.
  CompiledExpr time_expr_;   // The input's TIME column.
  // Compiled expression backing each group-by name (alias -> select expr,
  // or bare column).
  std::vector<CompiledExpr> group_exprs_;
  std::vector<int> agg_items_;  // Indices of aggregate select items.
  // Compiled agg argument per agg item; invalid for COUNT(*).
  std::vector<CompiledExpr> agg_args_;
  std::map<Micros, std::map<GroupKey, Cells>> windows_;
  Micros max_event_time_ = 0;
  uint64_t rows_processed_ = 0;
};

}  // namespace fbstream::puma

#endif  // FBSTREAM_PUMA_AGGREGATION_H_
