#include "puma/agg.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/serde.h"

namespace fbstream::puma {

AggCell::AggCell(AggFunction fn) : fn_(fn) {}

void AggCell::Update(const Value& v) {
  ++count_;
  switch (fn_) {
    case AggFunction::kCount:
      return;
    case AggFunction::kApproxCountDistinct:
      hll_.Add(v.CoerceString());
      hll_used_ = true;
      return;
    case AggFunction::kPercentile:
      if (samples_.size() < kMaxSamples) {
        samples_.push_back(v.CoerceDouble());
      }
      return;
    default:
      break;
  }
  const double x = v.CoerceDouble();
  sum_ += x;
  if (!has_minmax_) {
    min_ = max_ = x;
    has_minmax_ = true;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void AggCell::Merge(const AggCell& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.has_minmax_) {
    if (!has_minmax_) {
      min_ = other.min_;
      max_ = other.max_;
      has_minmax_ = true;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  if (other.hll_used_) {
    hll_.Merge(other.hll_);
    hll_used_ = true;
  }
  for (const double s : other.samples_) {
    if (samples_.size() >= kMaxSamples) break;
    samples_.push_back(s);
  }
}

Value AggCell::Result(const SelectItem& item) const {
  switch (fn_) {
    case AggFunction::kCount:
      return Value(count_);
    case AggFunction::kSum:
    case AggFunction::kTopK:  // TopK accumulates the score; ranking is done
                              // at query time over the group results.
      return Value(sum_);
    case AggFunction::kAvg:
      return Value(count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0);
    case AggFunction::kMin:
      return Value(has_minmax_ ? min_ : 0.0);
    case AggFunction::kMax:
      return Value(has_minmax_ ? max_ : 0.0);
    case AggFunction::kApproxCountDistinct:
      return Value(static_cast<int64_t>(std::llround(hll_.Estimate())));
    case AggFunction::kPercentile: {
      if (samples_.empty()) return Value(0.0);
      std::vector<double> sorted = samples_;
      std::sort(sorted.begin(), sorted.end());
      // ClassifyAggregate validates the fraction at parse time, but state
      // restored from a checkpoint predating that check (or a caller-built
      // SelectItem) can still carry one out of range — clamp instead of
      // indexing out of the sample array.
      const double p = std::min(1.0, std::max(0.0, item.percentile));
      const double rank = p * static_cast<double>(sorted.size() - 1);
      const size_t lo = static_cast<size_t>(std::floor(rank));
      const size_t hi = std::min(lo + 1, sorted.size() - 1);
      const double frac = rank - std::floor(rank);
      return Value(sorted[lo] * (1 - frac) + sorted[hi] * frac);
    }
  }
  return Value();
}

void AggCell::Serialize(std::string* out) const {
  out->push_back(static_cast<char>(fn_));
  PutVarint64(out, ZigzagEncode(count_));
  uint64_t bits = 0;
  static_assert(sizeof(double) == 8, "");
  memcpy(&bits, &sum_, 8);
  PutFixed64(out, bits);
  memcpy(&bits, &min_, 8);
  PutFixed64(out, bits);
  memcpy(&bits, &max_, 8);
  PutFixed64(out, bits);
  out->push_back(has_minmax_ ? 1 : 0);
  out->push_back(hll_used_ ? 1 : 0);
  if (hll_used_) {
    PutLengthPrefixed(out, hll_.Serialize());
  }
  PutVarint64(out, samples_.size());
  for (const double s : samples_) {
    memcpy(&bits, &s, 8);
    PutFixed64(out, bits);
  }
}

StatusOr<AggCell> AggCell::Deserialize(std::string_view* in) {
  if (in->size() < 1) return Status::Corruption("agg cell: empty");
  AggCell cell(static_cast<AggFunction>(in->front()));
  in->remove_prefix(1);
  uint64_t raw = 0;
  if (!GetVarint64(in, &raw)) return Status::Corruption("agg cell: count");
  cell.count_ = ZigzagDecode(raw);
  uint64_t bits = 0;
  if (!GetFixed64(in, &bits)) return Status::Corruption("agg cell: sum");
  memcpy(&cell.sum_, &bits, 8);
  if (!GetFixed64(in, &bits)) return Status::Corruption("agg cell: min");
  memcpy(&cell.min_, &bits, 8);
  if (!GetFixed64(in, &bits)) return Status::Corruption("agg cell: max");
  memcpy(&cell.max_, &bits, 8);
  if (in->size() < 2) return Status::Corruption("agg cell: flags");
  cell.has_minmax_ = (*in)[0] != 0;
  cell.hll_used_ = (*in)[1] != 0;
  in->remove_prefix(2);
  if (cell.hll_used_) {
    std::string_view hll_data;
    if (!GetLengthPrefixed(in, &hll_data)) {
      return Status::Corruption("agg cell: hll");
    }
    cell.hll_ = HyperLogLog::Deserialize(hll_data);
  }
  uint64_t n = 0;
  if (!GetVarint64(in, &n)) return Status::Corruption("agg cell: samples");
  // Each sample is 8 bytes; reject counts the input cannot hold.
  if (n > in->size() / 8) return Status::Corruption("agg cell: sample count");
  cell.samples_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!GetFixed64(in, &bits)) return Status::Corruption("agg cell: sample");
    double s = 0;
    memcpy(&s, &bits, 8);
    cell.samples_.push_back(s);
  }
  return cell;
}

}  // namespace fbstream::puma
