#include "puma/compiled_expr.h"

#include <cctype>
#include <utility>
#include <vector>

#include "common/metrics.h"

namespace fbstream::puma {

namespace {

using eval_detail::BuiltinFn;
using eval_detail::NumericBinary;
using eval_detail::Truthy;

using EvalFn = std::function<Value(const Row&)>;

// One compiled subtree. A constant node still carries a callable (so parent
// nodes can compose without special cases) plus the folded value for
// parents that can fold further. Column nodes additionally expose their
// resolved index/name so parents can fuse the fetch into their own closure
// (see Operand below) instead of paying a nested std::function call.
// A leaf operand a parent closure can evaluate inline: a constant, a
// schema-resolved column (index fast path, name fallback for rows built
// against a foreign schema — same rule as CompileColumn), or a name-only
// column. Fetching returns a reference; no Value is copied.
struct Operand {
  enum Kind { kConst, kIndexed, kNamed };
  Kind kind = kConst;
  Value value;
  size_t index = 0;
  std::string name;
};

// Builtin argument lists up to this arity evaluate into a stack array (the
// interpreter heap-allocates a vector per call).
constexpr size_t kStackArgs = 8;

struct Node {
  EvalFn fn;
  bool constant = false;
  Value value;           // Meaningful only when constant.
  int col_index = -1;    // >= 0: column resolved against the declared schema.
  std::string col_name;  // Non-empty: this node is a bare column reference.
  // True when evaluating the subtree has no side effects (no UDF anywhere
  // below it). Licenses skipping unused evaluations, e.g. the untaken IF
  // branch — unobservable, so results stay interpreter-identical.
  bool pure = false;
  // Set when this node is numeric arithmetic over two leaf operands, so a
  // parent closure can run the kernel inline instead of through fn.
  bool is_arith = false;
  BinaryOp arith_op = BinaryOp::kAdd;
  Operand arith_l, arith_r;
  // Set when this node is a known builtin over leaf operands (arity at most
  // kStackArgs): parents call it inline with a stack argument array.
  BuiltinFn call_fn = nullptr;
  std::vector<Operand> call_args;
};

inline const Value& Fetch(const Operand& op, const Row& row,
                          const Schema* schema) {
  switch (op.kind) {
    case Operand::kConst:
      return op.value;
    case Operand::kIndexed:
      if (row.schema().get() == schema) return row.Get(op.index);
      return row.Get(op.name);
    case Operand::kNamed:
      return row.Get(op.name);
  }
  return op.value;
}

bool AsOperand(const Node& node, Operand* out) {
  if (node.constant) {
    out->kind = Operand::kConst;
    out->value = node.value;
    return true;
  }
  if (!node.col_name.empty()) {
    if (node.col_index >= 0) {
      out->kind = Operand::kIndexed;
      out->index = static_cast<size_t>(node.col_index);
    } else {
      out->kind = Operand::kNamed;
    }
    out->name = node.col_name;
    return true;
  }
  return false;
}

// One side of a binary node (or one builtin argument). Leaves are fetched
// inline; one level of arithmetic or builtin call over leaves also runs
// inline (kArith/kCall), so common shapes like `col % 7 = 3` or
// `LENGTH(col) >= 4` cost a single closure invocation. Everything else
// goes through the compiled closure. Leaf fetches have no effects, so
// reordering or skipping them keeps the fused forms interpreter-equivalent.
struct Source {
  enum Kind { kLeaf, kArith, kCall, kFn };
  Kind kind = kFn;
  Operand op;                     // kLeaf
  BinaryOp bop = BinaryOp::kAdd;  // kArith
  Operand a, b;                   // kArith
  BuiltinFn call = nullptr;       // kCall
  std::vector<Operand> call_args;  // kCall
  EvalFn fn;                      // kFn
};

Source MakeSource(Node&& node) {
  Source s;
  if (AsOperand(node, &s.op)) {
    s.kind = Source::kLeaf;
    return s;
  }
  if (node.is_arith) {
    s.kind = Source::kArith;
    s.bop = node.arith_op;
    s.a = std::move(node.arith_l);
    s.b = std::move(node.arith_r);
    return s;
  }
  if (node.call_fn != nullptr) {
    s.kind = Source::kCall;
    s.call = node.call_fn;
    s.call_args = std::move(node.call_args);
    return s;
  }
  s.kind = Source::kFn;
  s.fn = std::move(node.fn);
  return s;
}

inline const Value& Pull(const Source& s, const Row& row,
                         const Schema* schema, Value* tmp) {
  switch (s.kind) {
    case Source::kLeaf:
      return Fetch(s.op, row, schema);
    case Source::kArith:
      *tmp = NumericBinary(s.bop, Fetch(s.a, row, schema),
                           Fetch(s.b, row, schema));
      return *tmp;
    case Source::kCall: {
      const Value* vals[kStackArgs];
      const size_t n = s.call_args.size();
      for (size_t i = 0; i < n; ++i) {
        vals[i] = &Fetch(s.call_args[i], row, schema);
      }
      *tmp = s.call(vals, n);
      return *tmp;
    }
    case Source::kFn:
      *tmp = s.fn(row);
      return *tmp;
  }
  return *tmp;
}

Node Constant(Value v) {
  Node node;
  node.constant = true;
  node.pure = true;
  node.value = v;
  node.fn = [v = std::move(v)](const Row&) { return v; };
  return node;
}

Node CompileNode(const Expr& expr, const SchemaPtr& schema,
                 const UdfRegistry* udfs, uint64_t* folds);

Node CompileColumn(const Expr& expr, const SchemaPtr& schema) {
  Node node;
  node.pure = true;
  node.col_name = expr.column;
  const int index = schema != nullptr ? schema->IndexOf(expr.column) : -1;
  if (index < 0) {
    // Not in the declared schema; keep the name lookup (it returns null for
    // absent columns, like the interpreter).
    node.fn = [name = expr.column](const Row& row) { return row.Get(name); };
    return node;
  }
  node.col_index = index;
  // Hot path: rows decoded with the declared schema read by index. A row
  // built against some other schema (hand-made in tests) falls back to the
  // name lookup so results never diverge from the interpreter.
  node.fn = [index = static_cast<size_t>(index), schema,
             name = expr.column](const Row& row) -> Value {
    if (row.schema().get() == schema.get()) return row.Get(index);
    return row.Get(name);
  };
  return node;
}

Node CompileBinary(const Expr& expr, const SchemaPtr& schema,
                   const UdfRegistry* udfs, uint64_t* folds) {
  Node left = CompileNode(*expr.left, schema, udfs, folds);
  Node right = CompileNode(*expr.right, schema, udfs, folds);
  const BinaryOp op = expr.op;
  Node node;
  node.pure = left.pure && right.pure;
  switch (op) {
    case BinaryOp::kAnd:
    case BinaryOp::kOr: {
      const bool is_and = op == BinaryOp::kAnd;
      if (left.constant) {
        // Left decides alone: AND with a falsy left (OR with a truthy one)
        // never evaluates the right, so folding it away drops no effects.
        if (Truthy(left.value) != is_and) {
          ++*folds;
          return Constant(Value(static_cast<int64_t>(is_and ? 0 : 1)));
        }
        if (right.constant) {
          ++*folds;
          return Constant(
              Value(static_cast<int64_t>(Truthy(right.value) ? 1 : 0)));
        }
        node.fn = [rf = std::move(right.fn)](const Row& row) {
          return Value(static_cast<int64_t>(Truthy(rf(row)) ? 1 : 0));
        };
        return node;
      }
      // One closure either way; the right side is pulled lazily, preserving
      // the interpreter's short-circuit (skipping a leaf fetch is
      // unobservable, so the fused form stays equivalent).
      node.fn = [is_and, ls = MakeSource(std::move(left)),
                 rs = MakeSource(std::move(right)),
                 schema](const Row& row) -> Value {
        Value lt, rt;
        const bool l = Truthy(Pull(ls, row, schema.get(), &lt));
        if (l != is_and) return Value(static_cast<int64_t>(l ? 1 : 0));
        return Value(
            static_cast<int64_t>(Truthy(Pull(rs, row, schema.get(), &rt))));
      };
      return node;
    }
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      auto compare = [op](const Value& a, const Value& b) {
        const int c = a.Compare(b);
        bool result = false;
        switch (op) {
          case BinaryOp::kEq:
            result = c == 0;
            break;
          case BinaryOp::kNe:
            result = c != 0;
            break;
          case BinaryOp::kLt:
            result = c < 0;
            break;
          case BinaryOp::kLe:
            result = c <= 0;
            break;
          case BinaryOp::kGt:
            result = c > 0;
            break;
          case BinaryOp::kGe:
            result = c >= 0;
            break;
          default:
            break;
        }
        return Value(static_cast<int64_t>(result));
      };
      if (left.constant && right.constant) {
        ++*folds;
        return Constant(compare(left.value, right.value));
      }
      node.fn = [compare, ls = MakeSource(std::move(left)),
                 rs = MakeSource(std::move(right)),
                 schema](const Row& row) {
        Value lt, rt;
        return compare(Pull(ls, row, schema.get(), &lt),
                       Pull(rs, row, schema.get(), &rt));
      };
      return node;
    }
    default: {
      if (left.constant && right.constant) {
        ++*folds;
        return Constant(NumericBinary(op, left.value, right.value));
      }
      // Leaf-over-leaf arithmetic is exposed as metadata so the parent
      // (a comparison, a builtin argument) can run the kernel inline.
      if (AsOperand(left, &node.arith_l) && AsOperand(right, &node.arith_r)) {
        node.is_arith = true;
        node.arith_op = op;
      }
      node.fn = [op, ls = MakeSource(std::move(left)),
                 rs = MakeSource(std::move(right)),
                 schema](const Row& row) {
        Value lt, rt;
        return NumericBinary(op, Pull(ls, row, schema.get(), &lt),
                             Pull(rs, row, schema.get(), &rt));
      };
      return node;
    }
  }
}

bool EqualsUpper(const std::string& name, const char* upper) {
  size_t i = 0;
  for (; i < name.size(); ++i) {
    if (upper[i] == '\0' ||
        std::toupper(static_cast<unsigned char>(name[i])) != upper[i]) {
      return false;
    }
  }
  return upper[i] == '\0';
}

Node CompileCall(const Expr& expr, const SchemaPtr& schema,
                 const UdfRegistry* udfs, uint64_t* folds) {
  std::vector<Node> args;
  args.reserve(expr.args.size());
  bool all_constant = true;
  bool all_pure = true;
  for (const ExprPtr& arg : expr.args) {
    args.push_back(CompileNode(*arg, schema, udfs, folds));
    all_constant = all_constant && args.back().constant;
    all_pure = all_pure && args.back().pure;
  }

  // Resolution order mirrors the interpreter: UDFs shadow builtins.
  const UdfRegistry* registry =
      udfs != nullptr ? udfs : UdfRegistry::Global();
  const UdfRegistry::Udf* udf = registry->Find(expr.function);
  Node node;
  if (udf != nullptr) {
    // Copy the callable: later re-registration must not change a deployed
    // app (compile-once contract). Never folded — UDFs may be stateful.
    node.fn = [udf = *udf,
               arg_fns = [&] {
                 std::vector<EvalFn> fns;
                 fns.reserve(args.size());
                 for (Node& a : args) fns.push_back(std::move(a.fn));
                 return fns;
               }()](const Row& row) {
      std::vector<Value> values;
      values.reserve(arg_fns.size());
      for (const EvalFn& f : arg_fns) values.push_back(f(row));
      return udf(values);
    };
    return node;
  }

  const BuiltinFn builtin =
      eval_detail::ResolveBuiltin(expr.function, expr.args.size());
  if (all_constant) {
    // Builtins are pure, so an all-constant call folds; an unknown call
    // folds to null (what the interpreter returns every time).
    std::vector<const Value*> values;
    values.reserve(args.size());
    for (const Node& a : args) values.push_back(&a.value);
    ++*folds;
    return Constant(builtin != nullptr ? builtin(values.data(), values.size())
                                       : Value());
  }

  if (builtin == nullptr) {
    // Unknown function: still evaluate the arguments (they may call UDFs
    // with effects), then yield null — exactly the interpreter's order.
    node.pure = all_pure;
    std::vector<EvalFn> arg_fns;
    arg_fns.reserve(args.size());
    for (Node& a : args) arg_fns.push_back(std::move(a.fn));
    node.fn = [arg_fns = std::move(arg_fns)](const Row& row) {
      for (const EvalFn& f : arg_fns) f(row);
      return Value();
    };
    return node;
  }

  // Builtins are pure, so the call is pure whenever its arguments are.
  node.pure = all_pure;

  if (all_pure && expr.args.size() == 3 && EqualsUpper(expr.function, "IF")) {
    // IF over pure arguments: evaluate the condition and only the taken
    // branch. The interpreter evaluates all three, but an unused pure
    // argument is unobservable, so results stay identical.
    node.fn = [cs = MakeSource(std::move(args[0])),
               ts = MakeSource(std::move(args[1])),
               es = MakeSource(std::move(args[2])),
               schema](const Row& row) -> Value {
      Value ct;
      const Source& taken =
          Truthy(Pull(cs, row, schema.get(), &ct)) ? ts : es;
      Value tmp;
      const Value& v = Pull(taken, row, schema.get(), &tmp);
      return (&v == &tmp) ? std::move(tmp) : v;
    };
    return node;
  }

  if (args.size() <= kStackArgs) {
    // Leaf-only argument lists additionally become parent-inlinable call
    // metadata: `LENGTH(col) >= 4` then costs one closure call in total.
    bool all_leaf = true;
    std::vector<Operand> leaf_args(args.size());
    for (size_t i = 0; i < args.size(); ++i) {
      all_leaf = all_leaf && AsOperand(args[i], &leaf_args[i]);
    }
    if (all_leaf) {
      node.call_fn = builtin;
      node.call_args = std::move(leaf_args);
    }
  }

  std::vector<Source> sources;
  sources.reserve(args.size());
  for (Node& a : args) sources.push_back(MakeSource(std::move(a)));
  if (sources.size() <= kStackArgs) {
    node.fn = [builtin, sources = std::move(sources),
               schema](const Row& row) {
      // Temporaries live in `tmps` for the duration of the call, so the
      // pointer array can mix fetched references and computed values.
      Value tmps[kStackArgs];
      const Value* vals[kStackArgs];
      const size_t n = sources.size();
      for (size_t i = 0; i < n; ++i) {
        vals[i] = &Pull(sources[i], row, schema.get(), &tmps[i]);
      }
      return builtin(vals, n);
    };
    return node;
  }
  node.fn = [builtin, sources = std::move(sources), schema](const Row& row) {
    const size_t n = sources.size();
    std::vector<Value> tmps(n);
    std::vector<const Value*> vals;
    vals.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      vals.push_back(&Pull(sources[i], row, schema.get(), &tmps[i]));
    }
    return builtin(vals.data(), n);
  };
  return node;
}

Node CompileNode(const Expr& expr, const SchemaPtr& schema,
                 const UdfRegistry* udfs, uint64_t* folds) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return Constant(expr.literal);
    case ExprKind::kColumn:
      return CompileColumn(expr, schema);
    case ExprKind::kUnaryNot: {
      Node child = CompileNode(*expr.left, schema, udfs, folds);
      if (child.constant) {
        ++*folds;
        return Constant(
            Value(static_cast<int64_t>(!Truthy(child.value) ? 1 : 0)));
      }
      Node node;
      node.pure = child.pure;
      node.fn = [cs = MakeSource(std::move(child)),
                 schema](const Row& row) {
        Value tmp;
        return Value(static_cast<int64_t>(
            !Truthy(Pull(cs, row, schema.get(), &tmp)) ? 1 : 0));
      };
      return node;
    }
    case ExprKind::kBinary:
      return CompileBinary(expr, schema, udfs, folds);
    case ExprKind::kCall:
      return CompileCall(expr, schema, udfs, folds);
  }
  return Constant(Value());
}

}  // namespace

CompiledExpr CompiledExpr::Compile(const Expr& expr, const SchemaPtr& schema,
                                   const UdfRegistry* udfs) {
  static Counter* exprs_compiled =
      MetricsRegistry::Global()->GetCounter("puma.compile.exprs");
  static Counter* folded =
      MetricsRegistry::Global()->GetCounter("puma.compile.folded_nodes");
  static Histogram* latency =
      MetricsRegistry::Global()->GetHistogram("puma.compile.latency_us");
  ScopedLatencyTimer timer(latency);

  uint64_t folds = 0;
  Node node = CompileNode(expr, schema, udfs, &folds);
  exprs_compiled->Add(1);
  folded->Add(folds);

  CompiledExpr compiled;
  compiled.fn_ = std::move(node.fn);
  compiled.constant_ = node.constant;
  return compiled;
}

}  // namespace fbstream::puma
