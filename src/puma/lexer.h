#ifndef FBSTREAM_PUMA_LEXER_H_
#define FBSTREAM_PUMA_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace fbstream::puma {

// Tokenizer for the Puma SQL dialect (paper §2.2, Figure 2). Keywords are
// case-insensitive; identifiers keep their case.
enum class TokenType {
  kIdentifier,
  kKeyword,   // Uppercased text in Token::text.
  kInteger,
  kDouble,
  kString,    // Unquoted content in Token::text.
  kSymbol,    // Punctuation / operator in Token::text: ( ) , ; [ ] * etc.
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0;
  size_t position = 0;  // Byte offset, for error messages.
};

// Splits `source` into tokens. Comments (-- to end of line) are skipped.
StatusOr<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace fbstream::puma

#endif  // FBSTREAM_PUMA_LEXER_H_
