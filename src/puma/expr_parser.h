#ifndef FBSTREAM_PUMA_EXPR_PARSER_H_
#define FBSTREAM_PUMA_EXPR_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "puma/ast.h"
#include "puma/lexer.h"

namespace fbstream::puma {

// Token-stream cursor shared by the SQL front-ends (the Puma application
// parser and the Presto SELECT parser).
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  Status Error(const std::string& message) const {
    const Token& token = Peek();
    std::string where = "parse error at offset " +
                        std::to_string(token.position);
    // Name the offending token: "expected ')'" alone is useless in a
    // multi-line CREATE APPLICATION source.
    if (token.type == TokenType::kEnd) {
      where += " (at end of input)";
    } else if (!token.text.empty()) {
      where += " near '" + token.text + "'";
    }
    return Status::InvalidArgument(where + ": " + message);
  }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }

  bool AcceptSymbol(const std::string& sym) {
    if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) return Error("expected " + kw);
    return Status::OK();
  }

  Status ExpectSymbol(const std::string& sym) {
    if (!AcceptSymbol(sym)) return Error("expected '" + sym + "'");
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected identifier");
    }
    return Advance().text;
  }

  StatusOr<std::string> ExpectString() {
    if (Peek().type != TokenType::kString) {
      return Error("expected string literal");
    }
    return Advance().text;
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// Parses one expression (precedence-climbing over OR/AND/NOT, comparisons,
// +,-,*,/,%, calls, literals, columns) starting at the cursor.
StatusOr<ExprPtr> ParseExpression(TokenCursor* cursor);

// Parses a comma-separated SELECT list with optional AS aliases.
Status ParseSelectList(TokenCursor* cursor, std::vector<SelectItem>* items);

// Classifies an item whose expression is an aggregate call: fills agg,
// agg_arg, topk_k, percentile.
Status ClassifyAggregate(SelectItem* item);

}  // namespace fbstream::puma

#endif  // FBSTREAM_PUMA_EXPR_PARSER_H_
