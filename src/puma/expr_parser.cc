#include "puma/expr_parser.h"

#include <cctype>
#include <map>

namespace fbstream::puma {

namespace {

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(toupper(c));
  return s;
}

StatusOr<ExprPtr> ParseOr(TokenCursor* cursor);

StatusOr<ExprPtr> ParsePrimary(TokenCursor* cursor) {
  auto node = std::make_shared<Expr>();
  const Token& token = cursor->Peek();
  switch (token.type) {
    case TokenType::kInteger:
      node->kind = ExprKind::kLiteral;
      node->literal = Value(cursor->Advance().int_value);
      return node;
    case TokenType::kDouble:
      node->kind = ExprKind::kLiteral;
      node->literal = Value(cursor->Advance().double_value);
      return node;
    case TokenType::kString:
      node->kind = ExprKind::kLiteral;
      node->literal = Value(cursor->Advance().text);
      return node;
    case TokenType::kKeyword:
      if (cursor->AcceptKeyword("TRUE")) {
        node->kind = ExprKind::kLiteral;
        node->literal = Value(1);
        return node;
      }
      if (cursor->AcceptKeyword("FALSE")) {
        node->kind = ExprKind::kLiteral;
        node->literal = Value(0);
        return node;
      }
      if (cursor->AcceptKeyword("NULL")) {
        node->kind = ExprKind::kLiteral;
        node->literal = Value();
        return node;
      }
      return cursor->Error("unexpected keyword " + token.text);
    case TokenType::kSymbol:
      if (cursor->AcceptSymbol("(")) {
        FBSTREAM_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr(cursor));
        FBSTREAM_RETURN_IF_ERROR(cursor->ExpectSymbol(")"));
        return inner;
      }
      return cursor->Error("unexpected symbol '" + token.text + "'");
    case TokenType::kIdentifier: {
      const std::string name = cursor->Advance().text;
      if (cursor->AcceptSymbol("(")) {
        node->kind = ExprKind::kCall;
        node->function = ToUpper(name);
        if (cursor->AcceptSymbol("*")) {
          node->star_arg = true;
        } else if (cursor->Peek().type != TokenType::kSymbol ||
                   cursor->Peek().text != ")") {
          while (true) {
            FBSTREAM_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr(cursor));
            node->args.push_back(std::move(arg));
            if (!cursor->AcceptSymbol(",")) break;
          }
        }
        FBSTREAM_RETURN_IF_ERROR(cursor->ExpectSymbol(")"));
        return node;
      }
      node->kind = ExprKind::kColumn;
      node->column = name;
      return node;
    }
    case TokenType::kEnd:
      return cursor->Error("unexpected end of input");
  }
  return cursor->Error("unexpected token");
}

StatusOr<ExprPtr> ParseMultiplicative(TokenCursor* cursor) {
  FBSTREAM_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary(cursor));
  while (cursor->Peek().type == TokenType::kSymbol &&
         (cursor->Peek().text == "*" || cursor->Peek().text == "/" ||
          cursor->Peek().text == "%")) {
    const std::string sym = cursor->Advance().text;
    const BinaryOp op = sym == "*"   ? BinaryOp::kMul
                        : sym == "/" ? BinaryOp::kDiv
                                     : BinaryOp::kMod;
    FBSTREAM_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary(cursor));
    auto node = std::make_shared<Expr>();
    node->kind = ExprKind::kBinary;
    node->op = op;
    node->left = std::move(left);
    node->right = std::move(right);
    left = std::move(node);
  }
  return left;
}

StatusOr<ExprPtr> ParseAdditive(TokenCursor* cursor) {
  FBSTREAM_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative(cursor));
  while (cursor->Peek().type == TokenType::kSymbol &&
         (cursor->Peek().text == "+" || cursor->Peek().text == "-")) {
    const BinaryOp op =
        cursor->Advance().text == "+" ? BinaryOp::kAdd : BinaryOp::kSub;
    FBSTREAM_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative(cursor));
    auto node = std::make_shared<Expr>();
    node->kind = ExprKind::kBinary;
    node->op = op;
    node->left = std::move(left);
    node->right = std::move(right);
    left = std::move(node);
  }
  return left;
}

StatusOr<ExprPtr> ParseComparison(TokenCursor* cursor) {
  FBSTREAM_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive(cursor));
  static const std::map<std::string, BinaryOp> kCmp = {
      {"=", BinaryOp::kEq},  {"!=", BinaryOp::kNe}, {"<", BinaryOp::kLt},
      {"<=", BinaryOp::kLe}, {">", BinaryOp::kGt},  {">=", BinaryOp::kGe}};
  if (cursor->Peek().type == TokenType::kSymbol &&
      kCmp.count(cursor->Peek().text) > 0) {
    const BinaryOp op = kCmp.at(cursor->Advance().text);
    FBSTREAM_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive(cursor));
    auto node = std::make_shared<Expr>();
    node->kind = ExprKind::kBinary;
    node->op = op;
    node->left = std::move(left);
    node->right = std::move(right);
    return node;
  }
  return left;
}

StatusOr<ExprPtr> ParseNot(TokenCursor* cursor) {
  if (cursor->AcceptKeyword("NOT")) {
    FBSTREAM_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot(cursor));
    auto node = std::make_shared<Expr>();
    node->kind = ExprKind::kUnaryNot;
    node->left = std::move(operand);
    return node;
  }
  return ParseComparison(cursor);
}

StatusOr<ExprPtr> ParseAnd(TokenCursor* cursor) {
  FBSTREAM_ASSIGN_OR_RETURN(ExprPtr left, ParseNot(cursor));
  while (cursor->AcceptKeyword("AND")) {
    FBSTREAM_ASSIGN_OR_RETURN(ExprPtr right, ParseNot(cursor));
    auto node = std::make_shared<Expr>();
    node->kind = ExprKind::kBinary;
    node->op = BinaryOp::kAnd;
    node->left = std::move(left);
    node->right = std::move(right);
    left = std::move(node);
  }
  return left;
}

StatusOr<ExprPtr> ParseOr(TokenCursor* cursor) {
  FBSTREAM_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd(cursor));
  while (cursor->AcceptKeyword("OR")) {
    FBSTREAM_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd(cursor));
    auto node = std::make_shared<Expr>();
    node->kind = ExprKind::kBinary;
    node->op = BinaryOp::kOr;
    node->left = std::move(left);
    node->right = std::move(right);
    left = std::move(node);
  }
  return left;
}

}  // namespace

StatusOr<ExprPtr> ParseExpression(TokenCursor* cursor) {
  return ParseOr(cursor);
}

Status ParseSelectList(TokenCursor* cursor, std::vector<SelectItem>* items) {
  while (true) {
    SelectItem item;
    FBSTREAM_ASSIGN_OR_RETURN(item.expr, ParseExpression(cursor));
    if (cursor->AcceptKeyword("AS")) {
      FBSTREAM_ASSIGN_OR_RETURN(item.alias, cursor->ExpectIdentifier());
    } else {
      item.alias = item.expr->kind == ExprKind::kColumn
                       ? item.expr->column
                       : item.expr->ToString();
    }
    items->push_back(std::move(item));
    if (!cursor->AcceptSymbol(",")) break;
  }
  return Status::OK();
}

Status ClassifyAggregate(SelectItem* item) {
  const Expr& call = *item->expr;
  const std::string& fn = call.function;
  if (fn == "COUNT") {
    item->agg = AggFunction::kCount;
    if (!call.star_arg && !call.args.empty()) item->agg_arg = call.args[0];
    return Status::OK();
  }
  if (call.args.empty()) {
    return Status::InvalidArgument(fn + " needs an argument");
  }
  item->agg_arg = call.args[0];
  if (fn == "SUM") {
    item->agg = AggFunction::kSum;
  } else if (fn == "AVG") {
    item->agg = AggFunction::kAvg;
  } else if (fn == "MIN") {
    item->agg = AggFunction::kMin;
  } else if (fn == "MAX") {
    item->agg = AggFunction::kMax;
  } else if (fn == "TOPK") {
    item->agg = AggFunction::kTopK;
    if (call.args.size() > 1) {
      // K must be a positive integer literal; silently falling back to the
      // default 10 used to mask typos like TOPK(score, 0).
      if (call.args[1]->kind != ExprKind::kLiteral) {
        return Status::InvalidArgument("TOPK K must be a literal");
      }
      const int64_t k = call.args[1]->literal.CoerceInt64();
      if (k <= 0) {
        return Status::InvalidArgument("TOPK K must be positive, got " +
                                       call.args[1]->literal.ToString());
      }
      item->topk_k = k;
    }
  } else if (fn == "APPROX_COUNT_DISTINCT") {
    item->agg = AggFunction::kApproxCountDistinct;
  } else if (fn == "PERCENTILE") {
    item->agg = AggFunction::kPercentile;
    if (call.args.size() > 1) {
      // The fraction must be a literal in [0, 1]; out-of-range values used
      // to slip through to query time and index out of the sample array.
      if (call.args[1]->kind != ExprKind::kLiteral) {
        return Status::InvalidArgument("PERCENTILE fraction must be a literal");
      }
      const double p = call.args[1]->literal.CoerceDouble();
      if (!(p >= 0.0 && p <= 1.0)) {
        return Status::InvalidArgument(
            "PERCENTILE fraction must be in [0, 1], got " +
            call.args[1]->literal.ToString());
      }
      item->percentile = p;
    }
  } else {
    return Status::InvalidArgument("unknown aggregate " + fn);
  }
  return Status::OK();
}

}  // namespace fbstream::puma
