#ifndef FBSTREAM_PUMA_APP_H_
#define FBSTREAM_PUMA_APP_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/serde.h"
#include "common/status.h"
#include "puma/aggregation.h"
#include "puma/ast.h"
#include "puma/parser.h"
#include "scribe/scribe.h"
#include "storage/laser/laser.h"
#include "storage/zippydb/zippydb.h"

namespace fbstream::puma {

// A deployed, running Puma application (§2.2): windowed aggregation tables
// served through a Thrift-like query API, and/or stateless filter streams
// whose output is another Scribe category. State checkpoints go to an
// HBase stand-in (a ZippyDB cluster) with at-least-once state and output
// semantics ("Puma guarantees at-least-once state and output semantics
// with checkpoints to HBase", §4.3.2).
struct PumaAppOptions {
  // Checkpoint store; may be null for ephemeral (test) apps.
  zippydb::Cluster* hbase = nullptr;
  // Laser service resolving JOIN LASER lookup joins; may be null if no
  // input table declares one.
  laser::Laser* laser = nullptr;
  // Events processed between checkpoints, per input bucket.
  size_t checkpoint_every_events = 512;
  // Aggregation windows older than this (relative to max event time) are
  // expired from memory.
  Micros window_retention = 24 * kMicrosPerHour;
};

class PumaApp {
 public:
  static StatusOr<std::unique_ptr<PumaApp>> Create(AppSpec spec,
                                                   scribe::Scribe* scribe,
                                                   Clock* clock,
                                                   PumaAppOptions options);

  const std::string& name() const { return spec_.name; }
  const AppSpec& spec() const { return spec_; }

  // Streaming: drains pending input across all buckets of all input tables
  // and checkpoints. Returns events processed.
  StatusOr<size_t> PollOnce();

  // Crash/recovery: in-memory aggregation state dies; the checkpoint in
  // HBase restores it (at-least-once).
  void Crash();
  Status Recover();
  bool alive() const { return alive_; }

  // Thrift-like query API ("The query results are obtained by querying the
  // Puma app through a Thrift API", §2.2). Queries served per app; "Puma is
  // designed to handle thousands of queries per second per app" (§3).
  StatusOr<std::vector<PumaResultRow>> QueryWindow(const std::string& table,
                                                   Micros window_start) const;
  StatusOr<std::vector<PumaResultRow>> QueryTopK(const std::string& table,
                                                 Micros window_start,
                                                 size_t k) const;
  // Uses the K declared in the table's topk(...) item (default 10).
  StatusOr<std::vector<PumaResultRow>> QueryTopK(const std::string& table,
                                                 Micros window_start) const;
  StatusOr<std::vector<Micros>> Windows(const std::string& table) const;
  StatusOr<bool> IsWindowFinal(const std::string& table,
                               Micros window_start) const;

  // Output schema of a stream statement (for consumers of its category).
  StatusOr<SchemaPtr> StreamOutputSchema(const std::string& stream) const;

  uint64_t queries_served() const { return queries_served_; }
  uint64_t rows_processed() const { return rows_processed_; }
  uint64_t checkpoints() const { return checkpoints_; }

  // Direct (test) access to a table's aggregation engine.
  const TableAggregation* aggregation(const std::string& table) const;

 private:
  PumaApp(AppSpec spec, scribe::Scribe* scribe, Clock* clock,
          PumaAppOptions options);

  Status Start();
  Status ProcessInput(const CreateInputTableStmt& input, size_t* processed);
  Status CheckpointNow();
  std::string StateKey() const { return "puma/" + spec_.name + "/__state__"; }
  std::string OffsetKey(const std::string& input, int bucket) const {
    return "puma/" + spec_.name + "/offset/" + input + "/" +
           std::to_string(bucket);
  }

  AppSpec spec_;
  scribe::Scribe* scribe_;
  Clock* clock_;
  PumaAppOptions options_;

  // Derived.
  std::map<std::string, SchemaPtr> input_schemas_;
  std::map<std::string, const CreateInputTableStmt*> inputs_;
  // Resolved lookup joins: input table name -> Laser app.
  std::map<std::string, laser::LaserApp*> lookups_;
  std::map<std::string, std::unique_ptr<TableAggregation>> tables_;
  std::map<std::string, SchemaPtr> stream_schemas_;

  // Per-stream state compiled once at Start() (deploy/recover): predicate
  // and select-item closures plus the output codec, so the per-event loop
  // does no AST walks and no codec construction.
  struct StreamRuntime {
    const CreateStreamStmt* stmt = nullptr;
    CompiledExpr where;  // Invalid when the stream has no WHERE.
    std::vector<CompiledExpr> items;
    SchemaPtr out_schema;
    std::unique_ptr<TextRowCodec> codec;
  };
  std::map<std::string, StreamRuntime> stream_runtimes_;

  struct InputTailers {
    const CreateInputTableStmt* input;
    std::vector<scribe::Tailer> tailers;
  };
  std::vector<InputTailers> readers_;

  bool alive_ = false;
  uint64_t rows_processed_ = 0;
  uint64_t checkpoints_ = 0;
  mutable uint64_t queries_served_ = 0;
};

// The Puma service (§6.3): self-service deployment with a review gate —
// "the UI generates a code diff that must be reviewed. The app is deployed
// or deleted automatically after the diff is accepted and committed."
class PumaService {
 public:
  PumaService(scribe::Scribe* scribe, Clock* clock, PumaAppOptions options)
      : scribe_(scribe), clock_(clock), options_(options) {}

  // Submits app source; returns a diff id awaiting review.
  StatusOr<int> SubmitApp(const std::string& source);
  // Second engineer accepts: the app deploys automatically.
  Status AcceptDiff(int diff_id);
  Status RejectDiff(int diff_id);

  PumaApp* GetApp(const std::string& name) const;
  Status DeleteApp(const std::string& name);
  std::vector<std::string> ListApps() const;

  // Drives all deployed apps; returns events processed.
  StatusOr<size_t> PollAll();

  int pending_diffs() const { return static_cast<int>(pending_.size()); }

 private:
  scribe::Scribe* scribe_;
  Clock* clock_;
  PumaAppOptions options_;
  int next_diff_id_ = 1;
  std::map<int, AppSpec> pending_;
  std::map<std::string, std::unique_ptr<PumaApp>> apps_;
};

}  // namespace fbstream::puma

#endif  // FBSTREAM_PUMA_APP_H_
