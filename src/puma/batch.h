#ifndef FBSTREAM_PUMA_BATCH_H_
#define FBSTREAM_PUMA_BATCH_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "puma/aggregation.h"
#include "puma/ast.h"
#include "storage/hive/hive.h"

namespace fbstream::puma {

// Batch execution of a Puma app over Hive (§4.5.2): "Puma applications can
// run in Hive's environment as Hive UDFs and UDAFs. The Puma app code
// remains unchanged, whether it is running over streaming or batch data."
// The same TableAggregation engine that backs the streaming app is fed from
// warehouse partitions instead of Scribe.
struct PumaBatchResult {
  // Table name -> all result rows across all windows.
  std::map<std::string, std::vector<PumaResultRow>> tables;
  // Stream name -> filtered/projected output rows.
  std::map<std::string, std::vector<Row>> streams;
  uint64_t input_rows = 0;
};

// `input_to_hive_table` maps each CREATE INPUT TABLE name to the Hive table
// holding its archived stream (§4.5.2: "we store input and output streams
// in our data warehouse Hive for longer retention").
StatusOr<PumaBatchResult> RunAppOverHive(
    const AppSpec& spec, const hive::Hive& hive,
    const std::map<std::string, std::string>& input_to_hive_table,
    const std::vector<std::string>& partitions);

}  // namespace fbstream::puma

#endif  // FBSTREAM_PUMA_BATCH_H_
