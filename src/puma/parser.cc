#include "puma/parser.h"

#include <cctype>
#include <map>

#include "puma/expr_parser.h"
#include "puma/lexer.h"

namespace fbstream::puma {

bool IsAggregateFunctionName(const std::string& upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" ||
         upper_name == "AVG" || upper_name == "MIN" || upper_name == "MAX" ||
         upper_name == "TOPK" || upper_name == "APPROX_COUNT_DISTINCT" ||
         upper_name == "PERCENTILE";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kColumn:
      return column;
    case ExprKind::kUnaryNot:
      return "NOT " + (left != nullptr ? left->ToString() : "");
    case ExprKind::kBinary: {
      static const char* kOps[] = {"AND", "OR", "=", "!=", "<",
                                   "<=",  ">",  ">=", "+", "-",
                                   "*",   "/",  "%"};
      return (left != nullptr ? left->ToString() : "") + " " +
             kOps[static_cast<int>(op)] + " " +
             (right != nullptr ? right->ToString() : "");
    }
    case ExprKind::kCall: {
      std::string s = function + "(";
      if (star_arg) s += "*";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) s += ", ";
        s += args[i]->ToString();
      }
      return s + ")";
    }
  }
  return "";
}

namespace {

// Statement-level parser for Puma applications; expression parsing and
// select lists are shared with Presto via puma/expr_parser.h.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : cursor_(std::move(tokens)) {}

  StatusOr<AppSpec> ParseAppSpec() {
    AppSpec spec;
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("CREATE"));
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("APPLICATION"));
    FBSTREAM_ASSIGN_OR_RETURN(spec.name, cursor_.ExpectIdentifier());
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectSymbol(";"));

    while (!cursor_.AtEnd()) {
      FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("CREATE"));
      if (cursor_.AcceptKeyword("INPUT")) {
        FBSTREAM_RETURN_IF_ERROR(ParseInputTable(&spec));
      } else if (cursor_.AcceptKeyword("TABLE")) {
        FBSTREAM_RETURN_IF_ERROR(ParseTable(&spec));
      } else if (cursor_.AcceptKeyword("STREAM")) {
        FBSTREAM_RETURN_IF_ERROR(ParseStream(&spec));
      } else {
        return cursor_.Error("expected INPUT, TABLE, or STREAM after CREATE");
      }
    }
    FBSTREAM_RETURN_IF_ERROR(Analyze(&spec));
    return spec;
  }

 private:
  Status ParseInputTable(AppSpec* spec) {
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("TABLE"));
    CreateInputTableStmt stmt;
    FBSTREAM_ASSIGN_OR_RETURN(stmt.name, cursor_.ExpectIdentifier());
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectSymbol("("));
    while (true) {
      Column column;
      FBSTREAM_ASSIGN_OR_RETURN(column.name, cursor_.ExpectIdentifier());
      column.type = ValueType::kString;
      if (cursor_.AcceptKeyword("INT") || cursor_.AcceptKeyword("BIGINT")) {
        column.type = ValueType::kInt64;
      } else if (cursor_.AcceptKeyword("DOUBLE")) {
        column.type = ValueType::kDouble;
      } else if (cursor_.AcceptKeyword("STRING")) {
        column.type = ValueType::kString;
      }
      stmt.columns.push_back(std::move(column));
      if (!cursor_.AcceptSymbol(",")) break;
    }
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("FROM"));
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("SCRIBE"));
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectSymbol("("));
    FBSTREAM_ASSIGN_OR_RETURN(stmt.scribe_category, cursor_.ExpectString());
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("TIME"));
    FBSTREAM_ASSIGN_OR_RETURN(stmt.time_column, cursor_.ExpectIdentifier());
    if (cursor_.AcceptKeyword("JOIN")) {
      FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("LASER"));
      FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectSymbol("("));
      FBSTREAM_ASSIGN_OR_RETURN(stmt.laser_app, cursor_.ExpectString());
      FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
      FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("ON"));
      FBSTREAM_ASSIGN_OR_RETURN(stmt.laser_key, cursor_.ExpectIdentifier());
      bool has_key = false;
      for (const Column& c : stmt.columns) {
        if (c.name == stmt.laser_key) has_key = true;
      }
      if (!has_key) {
        return Status::InvalidArgument("JOIN LASER key " + stmt.laser_key +
                                       " not in input table " + stmt.name);
      }
    }
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectSymbol(";"));
    spec->inputs.push_back(std::move(stmt));
    return Status::OK();
  }

  Status ParseTable(AppSpec* spec) {
    CreateTableStmt stmt;
    FBSTREAM_ASSIGN_OR_RETURN(stmt.name, cursor_.ExpectIdentifier());
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("AS"));
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("SELECT"));
    FBSTREAM_RETURN_IF_ERROR(ParseSelectList(&cursor_, &stmt.items));
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("FROM"));
    FBSTREAM_ASSIGN_OR_RETURN(stmt.from, cursor_.ExpectIdentifier());
    if (cursor_.AcceptSymbol("[")) {
      if (cursor_.Peek().type != TokenType::kInteger) {
        return cursor_.Error("expected window length");
      }
      const int64_t n = cursor_.Advance().int_value;
      Micros unit = kMicrosPerMinute;
      if (cursor_.AcceptKeyword("SECONDS") ||
          cursor_.AcceptKeyword("SECOND")) {
        unit = kMicrosPerSecond;
      } else if (cursor_.AcceptKeyword("MINUTES") ||
                 cursor_.AcceptKeyword("MINUTE")) {
        unit = kMicrosPerMinute;
      } else if (cursor_.AcceptKeyword("HOURS") ||
                 cursor_.AcceptKeyword("HOUR")) {
        unit = kMicrosPerHour;
      } else {
        return cursor_.Error("expected window unit (seconds/minutes/hours)");
      }
      stmt.window_micros = n * unit;
      FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectSymbol("]"));
    }
    if (cursor_.AcceptKeyword("WHERE")) {
      FBSTREAM_ASSIGN_OR_RETURN(stmt.where, ParseExpression(&cursor_));
    }
    if (cursor_.AcceptKeyword("GROUP")) {
      FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("BY"));
      while (true) {
        FBSTREAM_ASSIGN_OR_RETURN(std::string col,
                                  cursor_.ExpectIdentifier());
        stmt.group_by.push_back(std::move(col));
        if (!cursor_.AcceptSymbol(",")) break;
      }
    }
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectSymbol(";"));
    spec->tables.push_back(std::move(stmt));
    return Status::OK();
  }

  Status ParseStream(AppSpec* spec) {
    CreateStreamStmt stmt;
    FBSTREAM_ASSIGN_OR_RETURN(stmt.name, cursor_.ExpectIdentifier());
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("AS"));
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("SELECT"));
    FBSTREAM_RETURN_IF_ERROR(ParseSelectList(&cursor_, &stmt.items));
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("FROM"));
    FBSTREAM_ASSIGN_OR_RETURN(stmt.from, cursor_.ExpectIdentifier());
    if (cursor_.AcceptKeyword("WHERE")) {
      FBSTREAM_ASSIGN_OR_RETURN(stmt.where, ParseExpression(&cursor_));
    }
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("EMIT"));
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("TO"));
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectKeyword("SCRIBE"));
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectSymbol("("));
    FBSTREAM_ASSIGN_OR_RETURN(stmt.output_category, cursor_.ExpectString());
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectSymbol(")"));
    FBSTREAM_RETURN_IF_ERROR(cursor_.ExpectSymbol(";"));
    spec->streams.push_back(std::move(stmt));
    return Status::OK();
  }

  // -------------------------------------------------------------------
  // Semantic analysis.

  Status Analyze(AppSpec* spec) {
    std::map<std::string, const CreateInputTableStmt*> inputs;
    for (const CreateInputTableStmt& input : spec->inputs) {
      if (inputs.count(input.name) > 0) {
        return Status::InvalidArgument("duplicate input table " + input.name);
      }
      bool has_time = false;
      for (const Column& c : input.columns) {
        if (c.name == input.time_column) has_time = true;
      }
      if (!has_time) {
        return Status::InvalidArgument("TIME column " + input.time_column +
                                       " not in input table " + input.name);
      }
      inputs.emplace(input.name, &input);
    }
    for (CreateTableStmt& table : spec->tables) {
      auto it = inputs.find(table.from);
      if (it == inputs.end()) {
        return Status::InvalidArgument("table " + table.name +
                                       " reads unknown input " + table.from);
      }
      FBSTREAM_RETURN_IF_ERROR(
          AnalyzeSelect(&table.items, *it->second, /*allow_agg=*/true));
      if (table.where != nullptr) {
        FBSTREAM_RETURN_IF_ERROR(
            CheckColumns(*table.where, *it->second, /*allow_agg=*/false));
      }
      // Implicit group key: non-aggregate select items.
      if (table.group_by.empty()) {
        for (const SelectItem& item : table.items) {
          if (!item.is_aggregate) table.group_by.push_back(item.alias);
        }
      }
      bool any_agg = false;
      for (const SelectItem& item : table.items) {
        any_agg = any_agg || item.is_aggregate;
      }
      if (!any_agg) {
        return Status::InvalidArgument(
            "table " + table.name +
            " has no aggregate; use CREATE STREAM for pass-through apps");
      }
    }
    for (CreateStreamStmt& stream : spec->streams) {
      auto it = inputs.find(stream.from);
      if (it == inputs.end()) {
        return Status::InvalidArgument("stream " + stream.name +
                                       " reads unknown input " + stream.from);
      }
      FBSTREAM_RETURN_IF_ERROR(
          AnalyzeSelect(&stream.items, *it->second, /*allow_agg=*/false));
      if (stream.where != nullptr) {
        FBSTREAM_RETURN_IF_ERROR(
            CheckColumns(*stream.where, *it->second, /*allow_agg=*/false));
      }
    }
    return Status::OK();
  }

  Status AnalyzeSelect(std::vector<SelectItem>* items,
                       const CreateInputTableStmt& input, bool allow_agg) {
    for (SelectItem& item : *items) {
      if (item.expr->kind == ExprKind::kCall &&
          IsAggregateFunctionName(item.expr->function)) {
        if (!allow_agg) {
          return Status::InvalidArgument(
              "aggregate " + item.expr->function + " not allowed here");
        }
        item.is_aggregate = true;
        FBSTREAM_RETURN_IF_ERROR(ClassifyAggregate(&item));
        if (item.agg_arg != nullptr) {
          FBSTREAM_RETURN_IF_ERROR(
              CheckColumns(*item.agg_arg, input, /*allow_agg=*/false));
        }
      } else {
        FBSTREAM_RETURN_IF_ERROR(
            CheckColumns(*item.expr, input, /*allow_agg=*/false));
      }
    }
    return Status::OK();
  }

  Status CheckColumns(const Expr& expr, const CreateInputTableStmt& input,
                      bool allow_agg) {
    switch (expr.kind) {
      case ExprKind::kLiteral:
        return Status::OK();
      case ExprKind::kColumn: {
        for (const Column& c : input.columns) {
          if (c.name == expr.column) return Status::OK();
        }
        return Status::InvalidArgument("unknown column " + expr.column +
                                       " in input " + input.name);
      }
      case ExprKind::kUnaryNot:
        return CheckColumns(*expr.left, input, allow_agg);
      case ExprKind::kBinary:
        FBSTREAM_RETURN_IF_ERROR(CheckColumns(*expr.left, input, allow_agg));
        return CheckColumns(*expr.right, input, allow_agg);
      case ExprKind::kCall: {
        if (!allow_agg && IsAggregateFunctionName(expr.function)) {
          return Status::InvalidArgument("nested aggregate " + expr.function);
        }
        for (const ExprPtr& arg : expr.args) {
          FBSTREAM_RETURN_IF_ERROR(CheckColumns(*arg, input, allow_agg));
        }
        return Status::OK();
      }
    }
    return Status::OK();
  }

  TokenCursor cursor_;
};

}  // namespace

StatusOr<AppSpec> ParseApp(const std::string& source) {
  FBSTREAM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseAppSpec();
}

}  // namespace fbstream::puma
