#include "puma/lexer.h"

#include <cctype>
#include <cstdlib>
#include <set>

namespace fbstream::puma {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string>* kKeywords = new std::set<std::string>{
      "CREATE", "APPLICATION", "INPUT",  "TABLE",  "STREAM", "FROM",
      "SCRIBE", "TIME",        "AS",     "SELECT", "WHERE",  "GROUP",
      "JOIN",   "LASER",       "ON",     "ORDER",  "LIMIT",  "DESC",
      "ASC",
      "BY",     "AND",         "OR",     "NOT",    "EMIT",   "TO",
      "MINUTES", "MINUTE",     "SECONDS", "SECOND", "HOURS",  "HOUR",
      "INT",    "BIGINT",      "DOUBLE", "STRING", "TRUE",   "FALSE",
      "NULL",
  };
  return *kKeywords;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(toupper(c));
  return s;
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = source.size();
  while (i < n) {
    const char c = source[i];
    if (isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && source[i + 1] == '-') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = i;
    // Identifiers and keywords.
    if (isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      std::string text = source.substr(start, i - start);
      const std::string upper = ToUpper(text);
      if (Keywords().count(upper) > 0) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = std::move(text);
      }
      tokens.push_back(std::move(token));
      continue;
    }
    // Numbers.
    if (isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && (isdigit(static_cast<unsigned char>(source[i])) ||
                       source[i] == '.')) {
        if (source[i] == '.') is_double = true;
        ++i;
      }
      const std::string text = source.substr(start, i - start);
      if (is_double) {
        token.type = TokenType::kDouble;
        token.double_value = strtod(text.c_str(), nullptr);
      } else {
        token.type = TokenType::kInteger;
        token.int_value = strtoll(text.c_str(), nullptr, 10);
      }
      token.text = text;
      tokens.push_back(std::move(token));
      continue;
    }
    // Strings: single or double quoted.
    if (c == '\'' || c == '"') {
      const char quote = c;
      size_t j = i + 1;
      std::string content;
      bool closed = false;
      while (j < n) {
        if (source[j] == quote) {
          closed = true;
          break;
        }
        content.push_back(source[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string at offset " +
                                       std::to_string(i));
      }
      token.type = TokenType::kString;
      token.text = std::move(content);
      tokens.push_back(std::move(token));
      i = j + 1;
      continue;
    }
    // Multi-char operators.
    if (i + 1 < n) {
      const std::string two = source.substr(i, 2);
      if (two == "!=" || two == "<=" || two == ">=" || two == "<>") {
        token.type = TokenType::kSymbol;
        token.text = two == "<>" ? "!=" : two;
        tokens.push_back(std::move(token));
        i += 2;
        continue;
      }
    }
    // Single-char symbols.
    static const std::string kSymbols = "()[],;*=<>+-/%.";
    if (kSymbols.find(c) != std::string::npos) {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      tokens.push_back(std::move(token));
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace fbstream::puma
