#ifndef FBSTREAM_PUMA_COMPILED_EXPR_H_
#define FBSTREAM_PUMA_COMPILED_EXPR_H_

#include <functional>
#include <memory>
#include <string>

#include "common/value.h"
#include "puma/ast.h"
#include "puma/expr.h"

namespace fbstream::puma {

// Compile-once expression evaluation (§3: "Puma is optimized for compiled
// queries" — an app's expressions are fixed at deploy time, so nothing
// needs to be re-resolved per event).
//
// Compile() lowers an AST once into a closure tree:
//  - column references resolve to value indices against the declared input
//    schema (no per-event name -> index map lookup);
//  - UDF and builtin names resolve to callables at compile time (no
//    per-event registry lookup or name-compare chain);
//  - pure builtin subtrees whose arguments are all constants fold to
//    literals (UDFs are never folded: they may be stateful).
//
// Compile-once contract: a UDF (re)registered after Compile() does not
// affect an already-compiled expression; redeploy the app to pick it up.
//
// Semantics are exactly the interpreter's — both paths share the kernels in
// expr.h's eval_detail (same AND/OR short-circuit, same coercions, same
// div-by-zero -> 0), so Eval() is bit-identical to EvalExpr() on every row.
// The one liberty taken: a subtree proven pure (no UDFs anywhere below) may
// skip evaluating arguments whose value cannot affect the result — e.g. a
// pure IF() evaluates only the taken branch — which is unobservable
// precisely because pure evaluation has no side effects. query_serving_test.cc checks
// that on randomized expressions; OBSERVABILITY.md lists the
// puma.compile.* meters.
class CompiledExpr {
 public:
  // An empty (default) CompiledExpr is invalid; Eval returns null.
  CompiledExpr() = default;

  // Compiles against the declared input schema. `udfs` defaults to the
  // process-global registry, mirroring EvalExpr.
  static CompiledExpr Compile(const Expr& expr, const SchemaPtr& schema,
                              const UdfRegistry* udfs = nullptr);

  bool valid() const { return fn_ != nullptr; }
  // True when the whole expression folded to a literal at compile time.
  bool is_constant() const { return constant_; }

  Value Eval(const Row& row) const {
    return fn_ != nullptr ? fn_(row) : Value();
  }
  // Truthiness, mirroring EvalPredicate.
  bool EvalBool(const Row& row) const {
    return eval_detail::Truthy(Eval(row));
  }

 private:
  std::function<Value(const Row&)> fn_;
  bool constant_ = false;
};

}  // namespace fbstream::puma

#endif  // FBSTREAM_PUMA_COMPILED_EXPR_H_
