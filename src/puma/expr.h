#ifndef FBSTREAM_PUMA_EXPR_H_
#define FBSTREAM_PUMA_EXPR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "puma/ast.h"

namespace fbstream::puma {

// User-defined functions (§2.2: "a SQL-like language with UDFs written in
// Java"; here the stand-ins are C++ callables). Names are case-insensitive.
class UdfRegistry {
 public:
  using Udf = std::function<Value(const std::vector<Value>&)>;

  // Process-wide registry for user functions. Built-ins (LOWER, UPPER,
  // LENGTH, CONCAT, CONTAINS, SUBSTR, IF, ABS, ROUND) resolve automatically
  // when a name is not registered.
  static UdfRegistry* Global();

  Status Register(const std::string& name, Udf udf);
  const Udf* Find(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Udf> udfs_;
};

// Evaluates a scalar expression against one row. Aggregate calls must not
// appear (the planner splits them out first); they evaluate to null.
Value EvalExpr(const Expr& expr, const Row& row,
               const UdfRegistry* udfs = nullptr);

// Convenience: truthiness of an expression (non-zero / non-empty).
bool EvalPredicate(const Expr& expr, const Row& row,
                   const UdfRegistry* udfs = nullptr);

}  // namespace fbstream::puma

#endif  // FBSTREAM_PUMA_EXPR_H_
