#ifndef FBSTREAM_PUMA_EXPR_H_
#define FBSTREAM_PUMA_EXPR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "puma/ast.h"

namespace fbstream::puma {

// User-defined functions (§2.2: "a SQL-like language with UDFs written in
// Java"; here the stand-ins are C++ callables). Names are case-insensitive.
class UdfRegistry {
 public:
  using Udf = std::function<Value(const std::vector<Value>&)>;

  // Process-wide registry for user functions. Built-ins (LOWER, UPPER,
  // LENGTH, CONCAT, CONTAINS, SUBSTR, IF, ABS, ROUND) resolve automatically
  // when a name is not registered.
  static UdfRegistry* Global();

  Status Register(const std::string& name, Udf udf);
  const Udf* Find(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Udf> udfs_;
};

// Evaluates a scalar expression against one row. Aggregate calls must not
// appear (the planner splits them out first); they evaluate to null.
Value EvalExpr(const Expr& expr, const Row& row,
               const UdfRegistry* udfs = nullptr);

// Convenience: truthiness of an expression (non-zero / non-empty).
bool EvalPredicate(const Expr& expr, const Row& row,
                   const UdfRegistry* udfs = nullptr);

// Evaluation kernels shared by the tree-walking interpreter above and the
// closure compiler (puma/compiled_expr.h). Both paths MUST go through these
// so compiled results stay bit-identical to interpreted ones — the
// randomized differential test in query_serving_test.cc enforces that.
namespace eval_detail {

// SQL-ish truthiness: non-zero number / non-empty string; null is false.
bool Truthy(const Value& v);

// +,-,*,/,% with the int64 fast path (division always in double); division
// and modulo by zero yield 0 rather than erroring.
Value NumericBinary(BinaryOp op, const Value& a, const Value& b);

// A builtin resolved to a plain function: args are pre-evaluated, arity is
// pre-checked by ResolveBuiltin. Takes pointers to the evaluated arguments
// so callers pass references to values they already hold — the compiled
// path hands over fetched column storage without materializing a copy.
using BuiltinFn = Value (*)(const Value* const* args, size_t n);

// Resolves (uppercased name, arity) to the builtin implementation, or
// nullptr when unknown / wrong arity — such calls evaluate to null. All
// builtins are pure, which is what licenses compile-time constant folding.
BuiltinFn ResolveBuiltin(const std::string& fn, size_t arity);

// Interpreter entry point: resolve-then-call on every evaluation.
Value BuiltinCall(const std::string& fn, const Value* const* args, size_t n);

}  // namespace eval_detail

}  // namespace fbstream::puma

#endif  // FBSTREAM_PUMA_EXPR_H_
