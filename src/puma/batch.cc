#include "puma/batch.h"

#include "puma/expr.h"

namespace fbstream::puma {

StatusOr<PumaBatchResult> RunAppOverHive(
    const AppSpec& spec, const hive::Hive& hive,
    const std::map<std::string, std::string>& input_to_hive_table,
    const std::vector<std::string>& partitions) {
  PumaBatchResult result;

  for (const CreateInputTableStmt& input : spec.inputs) {
    auto mapping = input_to_hive_table.find(input.name);
    if (mapping == input_to_hive_table.end()) {
      return Status::InvalidArgument("no Hive table mapped for input " +
                                     input.name);
    }
    SchemaPtr schema = Schema::Make(input.columns);

    // The same aggregation engine as the streaming app.
    std::vector<std::unique_ptr<TableAggregation>> aggs;
    std::vector<const CreateTableStmt*> table_stmts;
    for (const CreateTableStmt& table : spec.tables) {
      if (table.from != input.name) continue;
      aggs.push_back(std::make_unique<TableAggregation>(&table, schema,
                                                        input.time_column));
      table_stmts.push_back(&table);
    }
    std::vector<const CreateStreamStmt*> streams;
    for (const CreateStreamStmt& stream : spec.streams) {
      if (stream.from == input.name) streams.push_back(&stream);
    }
    std::map<const CreateStreamStmt*, SchemaPtr> stream_schemas;
    for (const CreateStreamStmt* stream : streams) {
      std::vector<Column> columns;
      for (const SelectItem& item : stream->items) {
        columns.push_back(Column{item.alias, ValueType::kString});
      }
      stream_schemas.emplace(stream, Schema::Make(std::move(columns)));
    }

    for (const std::string& ds : partitions) {
      FBSTREAM_ASSIGN_OR_RETURN(std::vector<Row> rows,
                                hive.ReadPartition(mapping->second, ds));
      for (const Row& row : rows) {
        ++result.input_rows;
        for (auto& agg : aggs) agg->ProcessRow(row);
        for (const CreateStreamStmt* stream : streams) {
          if (stream->where != nullptr &&
              !EvalPredicate(*stream->where, row)) {
            continue;
          }
          Row out(stream_schemas.at(stream));
          for (size_t i = 0; i < stream->items.size(); ++i) {
            out.Set(i, EvalExpr(*stream->items[i].expr, row));
          }
          result.streams[stream->name].push_back(std::move(out));
        }
      }
    }

    for (size_t i = 0; i < aggs.size(); ++i) {
      std::vector<PumaResultRow>& out = result.tables[table_stmts[i]->name];
      for (const Micros window : aggs[i]->Windows()) {
        for (PumaResultRow& row : aggs[i]->QueryWindow(window)) {
          out.push_back(std::move(row));
        }
      }
    }
  }
  return result;
}

}  // namespace fbstream::puma
