#ifndef FBSTREAM_PUMA_AGG_H_
#define FBSTREAM_PUMA_AGG_H_

#include <string>
#include <vector>

#include "common/hll.h"
#include "common/status.h"
#include "common/value.h"
#include "puma/ast.h"

namespace fbstream::puma {

// State of one aggregate function for one (window, group) cell. Every
// function is a monoid (§4.4.2: "The aggregation functions in Puma are all
// monoid"): cells start at the identity, Update folds one row in, Merge is
// the associative combine used for cross-shard/batch partial aggregation.
// PERCENTILE keeps a bounded sample, making it approximate-but-mergeable.
class AggCell {
 public:
  AggCell() = default;
  explicit AggCell(AggFunction fn);

  void Update(const Value& v);
  void UpdateCount() { ++count_; }
  void Merge(const AggCell& other);

  // Final value given the select item (supplies percentile etc.).
  Value Result(const SelectItem& item) const;

  void Serialize(std::string* out) const;
  static StatusOr<AggCell> Deserialize(std::string_view* in);

  AggFunction function() const { return fn_; }
  int64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  static constexpr size_t kMaxSamples = 4096;

  AggFunction fn_ = AggFunction::kCount;
  int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  bool has_minmax_ = false;
  HyperLogLog hll_{12};
  bool hll_used_ = false;
  std::vector<double> samples_;
};

}  // namespace fbstream::puma

#endif  // FBSTREAM_PUMA_AGG_H_
