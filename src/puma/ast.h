#ifndef FBSTREAM_PUMA_AST_H_
#define FBSTREAM_PUMA_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/value.h"

namespace fbstream::puma {

// Expression tree for the Puma dialect.
enum class ExprKind {
  kLiteral,
  kColumn,
  kBinary,
  kUnaryNot,
  kCall,  // Scalar function / UDF, or aggregate function.
};

enum class BinaryOp {
  kAnd,
  kOr,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
};

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  // kLiteral:
  Value literal;
  // kColumn:
  std::string column;
  // kBinary:
  BinaryOp op = BinaryOp::kAnd;
  ExprPtr left;
  ExprPtr right;
  // kUnaryNot: operand in `left`.
  // kCall:
  std::string function;        // Uppercased name.
  std::vector<ExprPtr> args;
  bool star_arg = false;       // COUNT(*).

  std::string ToString() const;
};

// Aggregate functions supported by Puma apps (§2.2: "aggregation functions
// in Puma are all monoid", §6.5 HyperLogLog uniques).
enum class AggFunction {
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kTopK,                // Figure 2's topk(score).
  kApproxCountDistinct, // HyperLogLog.
  kPercentile,
};

bool IsAggregateFunctionName(const std::string& upper_name);

// One item of a SELECT list.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // Output column name (defaults to expression text).
  bool is_aggregate = false;
  // Filled by the analyzer for aggregate items:
  AggFunction agg = AggFunction::kCount;
  ExprPtr agg_arg;       // Argument expression (null for COUNT(*)).
  int64_t topk_k = 10;   // For kTopK.
  double percentile = 0.5;
};

// CREATE APPLICATION name;
struct CreateApplicationStmt {
  std::string name;
};

// CREATE INPUT TABLE t (col [type], ...) FROM SCRIBE("category") TIME col
//   [JOIN LASER("laser_app") ON key_col];
//
// The optional JOIN LASER clause declares a lookup join (§2.5: Laser "can
// also make the result of a complex Hive query or a Scribe stream available
// to a Puma or Stylus app, usually for a lookup join"): the raw stream
// carries the leading columns; the Laser app's value columns (declared by
// name among the table's columns) are filled in per row by looking up
// `laser_key` in the Laser app.
struct CreateInputTableStmt {
  std::string name;
  std::vector<Column> columns;
  std::string scribe_category;
  std::string time_column;
  std::string laser_app;  // Empty = no lookup join.
  std::string laser_key;
};

// CREATE TABLE out AS SELECT ... FROM input [N minutes]
//   [WHERE expr] [GROUP BY col, ...];
// A windowed, continuously maintained aggregation (Figure 2). If GROUP BY
// is omitted, the non-aggregate select items form the implicit group key.
struct CreateTableStmt {
  std::string name;
  std::vector<SelectItem> items;
  std::string from;
  Micros window_micros = 5 * kMicrosPerMinute;
  ExprPtr where;                     // Null = no filter.
  std::vector<std::string> group_by; // Possibly empty.
};

// CREATE STREAM out AS SELECT ... FROM input [WHERE expr]
//   EMIT TO SCRIBE("category");
// A stateless filter/projection app whose output is another Scribe stream
// (§2.2: "The output of these stateless Puma apps is another Scribe
// stream").
struct CreateStreamStmt {
  std::string name;
  std::vector<SelectItem> items;  // No aggregates allowed.
  std::string from;
  ExprPtr where;
  std::string output_category;
};

// A parsed Puma application: one CREATE APPLICATION plus its tables.
struct AppSpec {
  std::string name;
  std::vector<CreateInputTableStmt> inputs;
  std::vector<CreateTableStmt> tables;
  std::vector<CreateStreamStmt> streams;
};

}  // namespace fbstream::puma

#endif  // FBSTREAM_PUMA_AST_H_
