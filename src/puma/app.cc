#include "puma/app.h"

#include <algorithm>

#include "common/logging.h"
#include "common/serde.h"
#include "puma/expr.h"

namespace fbstream::puma {

PumaApp::PumaApp(AppSpec spec, scribe::Scribe* scribe, Clock* clock,
                 PumaAppOptions options)
    : spec_(std::move(spec)),
      scribe_(scribe),
      clock_(clock),
      options_(options) {}

StatusOr<std::unique_ptr<PumaApp>> PumaApp::Create(AppSpec spec,
                                                   scribe::Scribe* scribe,
                                                   Clock* clock,
                                                   PumaAppOptions options) {
  std::unique_ptr<PumaApp> app(
      new PumaApp(std::move(spec), scribe, clock, options));
  // Validate inputs and build schemas.
  for (const CreateInputTableStmt& input : app->spec_.inputs) {
    if (!scribe->HasCategory(input.scribe_category)) {
      return Status::NotFound("scribe category " + input.scribe_category);
    }
    app->input_schemas_.emplace(input.name, Schema::Make(input.columns));
    app->inputs_.emplace(input.name, &input);
    if (!input.laser_app.empty()) {
      if (options.laser == nullptr) {
        return Status::InvalidArgument(
            "input " + input.name + " declares JOIN LASER(\"" +
            input.laser_app + "\") but no Laser service is configured");
      }
      laser::LaserApp* laser_app = options.laser->GetApp(input.laser_app);
      if (laser_app == nullptr) {
        return Status::NotFound("laser app " + input.laser_app);
      }
      app->lookups_.emplace(input.name, laser_app);
    }
  }
  for (const CreateStreamStmt& stream : app->spec_.streams) {
    if (!scribe->HasCategory(stream.output_category)) {
      return Status::NotFound("output category " + stream.output_category);
    }
    std::vector<Column> columns;
    for (const SelectItem& item : stream.items) {
      Column c;
      c.name = item.alias;
      c.type = ValueType::kString;
      if (item.expr->kind == ExprKind::kColumn) {
        const SchemaPtr& in = app->input_schemas_.at(stream.from);
        const int i = in->IndexOf(item.expr->column);
        if (i >= 0) c.type = in->column(static_cast<size_t>(i)).type;
      }
      columns.push_back(std::move(c));
    }
    app->stream_schemas_.emplace(stream.name,
                                 Schema::Make(std::move(columns)));
  }
  FBSTREAM_RETURN_IF_ERROR(app->Start());
  return app;
}

Status PumaApp::Start() {
  // (Re)build aggregation engines, compiled stream runtimes, and tailers.
  tables_.clear();
  readers_.clear();
  stream_runtimes_.clear();
  for (const CreateTableStmt& table : spec_.tables) {
    const CreateInputTableStmt* input = inputs_.at(table.from);
    tables_.emplace(table.name, std::make_unique<TableAggregation>(
                                    &table, input_schemas_.at(table.from),
                                    input->time_column));
  }
  for (const CreateStreamStmt& stream : spec_.streams) {
    const SchemaPtr& in_schema = input_schemas_.at(stream.from);
    StreamRuntime runtime;
    runtime.stmt = &stream;
    if (stream.where != nullptr) {
      runtime.where = CompiledExpr::Compile(*stream.where, in_schema);
    }
    runtime.items.reserve(stream.items.size());
    for (const SelectItem& item : stream.items) {
      runtime.items.push_back(CompiledExpr::Compile(*item.expr, in_schema));
    }
    runtime.out_schema = stream_schemas_.at(stream.name);
    runtime.codec = std::make_unique<TextRowCodec>(runtime.out_schema);
    stream_runtimes_.emplace(stream.name, std::move(runtime));
  }
  for (const CreateInputTableStmt& input : spec_.inputs) {
    InputTailers reader;
    reader.input = &input;
    const int buckets = scribe_->NumBuckets(input.scribe_category);
    for (int b = 0; b < buckets; ++b) {
      reader.tailers.emplace_back(scribe_, input.scribe_category, b);
    }
    readers_.push_back(std::move(reader));
  }

  // Restore from the HBase checkpoint if present.
  if (options_.hbase != nullptr) {
    auto state = options_.hbase->Get(StateKey());
    if (state.ok()) {
      std::string_view data(state.value());
      uint64_t num_tables = 0;
      if (!GetVarint64(&data, &num_tables)) {
        return Status::Corruption("puma state header");
      }
      for (uint64_t i = 0; i < num_tables; ++i) {
        std::string_view name;
        std::string_view blob;
        if (!GetLengthPrefixed(&data, &name) ||
            !GetLengthPrefixed(&data, &blob)) {
          return Status::Corruption("puma state table");
        }
        auto it = tables_.find(std::string(name));
        if (it != tables_.end()) {
          FBSTREAM_RETURN_IF_ERROR(it->second->Restore(blob));
        }
      }
    } else if (!state.status().IsNotFound()) {
      return state.status();
    }
    for (InputTailers& reader : readers_) {
      for (size_t b = 0; b < reader.tailers.size(); ++b) {
        auto offset = options_.hbase->Get(
            OffsetKey(reader.input->name, static_cast<int>(b)));
        if (offset.ok()) {
          std::string_view view(offset.value());
          uint64_t o = 0;
          if (GetFixed64(&view, &o)) reader.tailers[b].Seek(o);
        } else if (!offset.status().IsNotFound()) {
          return offset.status();
        }
      }
    }
  }
  alive_ = true;
  return Status::OK();
}

void PumaApp::Crash() {
  tables_.clear();
  readers_.clear();
  stream_runtimes_.clear();
  alive_ = false;
}

Status PumaApp::Recover() {
  if (alive_) return Status::OK();
  return Start();
}

Status PumaApp::ProcessInput(const CreateInputTableStmt& input,
                             size_t* processed) {
  const SchemaPtr& schema = input_schemas_.at(input.name);
  TextRowCodec codec(schema);
  laser::LaserApp* lookup = nullptr;
  auto lookup_it = lookups_.find(input.name);
  if (lookup_it != lookups_.end()) lookup = lookup_it->second;

  // Dependent tables and streams.
  std::vector<TableAggregation*> aggs;
  for (const CreateTableStmt& table : spec_.tables) {
    if (table.from == input.name) aggs.push_back(tables_.at(table.name).get());
  }
  std::vector<const StreamRuntime*> streams;
  for (const auto& [name, runtime] : stream_runtimes_) {
    if (runtime.stmt->from == input.name) streams.push_back(&runtime);
  }

  for (InputTailers& reader : readers_) {
    if (reader.input != &input) continue;
    for (scribe::Tailer& tailer : reader.tailers) {
      size_t in_interval = 0;
      while (true) {
        auto messages = tailer.Poll(options_.checkpoint_every_events);
        if (messages.empty()) break;
        for (const scribe::Message& m : messages) {
          auto row = codec.Decode(m.payload);
          if (!row.ok()) {
            FBSTREAM_LOG(Warning) << "puma " << spec_.name
                                  << ": bad row: " << row.status();
            continue;
          }
          if (lookup != nullptr) {
            // Lookup join: fill the Laser app's value columns by name.
            auto joined = lookup->Get(row->Get(input.laser_key));
            if (joined.ok()) {
              for (const std::string& col :
                   lookup->config().value_columns) {
                if (schema->Has(col)) row->Set(col, joined->Get(col));
              }
            }
          }
          for (TableAggregation* agg : aggs) agg->ProcessRow(*row);
          for (const StreamRuntime* stream : streams) {
            if (stream->where.valid() && !stream->where.EvalBool(*row)) {
              continue;
            }
            Row out(stream->out_schema);
            for (size_t i = 0; i < stream->items.size(); ++i) {
              out.Set(i, stream->items[i].Eval(*row));
            }
            const std::string shard_key =
                out.num_columns() > 0 ? out.Get(0).ToString() : "";
            FBSTREAM_RETURN_IF_ERROR(scribe_->WriteSharded(
                stream->stmt->output_category, shard_key,
                stream->codec->Encode(out)));
          }
          ++rows_processed_;
          ++*processed;
          ++in_interval;
        }
        if (in_interval >= options_.checkpoint_every_events) {
          FBSTREAM_RETURN_IF_ERROR(CheckpointNow());
          in_interval = 0;
        }
      }
    }
  }
  return Status::OK();
}

StatusOr<size_t> PumaApp::PollOnce() {
  if (!alive_) return Status::FailedPrecondition("app is down");
  size_t processed = 0;
  for (const CreateInputTableStmt& input : spec_.inputs) {
    FBSTREAM_RETURN_IF_ERROR(ProcessInput(input, &processed));
  }
  if (processed > 0) {
    FBSTREAM_RETURN_IF_ERROR(CheckpointNow());
    // Expire old windows.
    for (auto& [name, agg] : tables_) {
      agg->ExpireWindowsBefore(agg->max_event_time() -
                               options_.window_retention);
    }
  }
  return processed;
}

Status PumaApp::CheckpointNow() {
  if (options_.hbase == nullptr) return Status::OK();
  // At-least-once: state blob first, then the offsets.
  std::string blob;
  PutVarint64(&blob, tables_.size());
  for (const auto& [name, agg] : tables_) {
    PutLengthPrefixed(&blob, name);
    std::string table_blob;
    agg->Serialize(&table_blob);
    PutLengthPrefixed(&blob, table_blob);
  }
  FBSTREAM_RETURN_IF_ERROR(options_.hbase->Put(StateKey(), blob));
  for (InputTailers& reader : readers_) {
    for (size_t b = 0; b < reader.tailers.size(); ++b) {
      std::string offset;
      PutFixed64(&offset, reader.tailers[b].offset());
      FBSTREAM_RETURN_IF_ERROR(options_.hbase->Put(
          OffsetKey(reader.input->name, static_cast<int>(b)), offset));
    }
  }
  ++checkpoints_;
  return Status::OK();
}

StatusOr<std::vector<PumaResultRow>> PumaApp::QueryWindow(
    const std::string& table, Micros window_start) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table " + table);
  ++queries_served_;
  return it->second->QueryWindow(window_start);
}

StatusOr<std::vector<PumaResultRow>> PumaApp::QueryTopK(
    const std::string& table, Micros window_start, size_t k) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table " + table);
  ++queries_served_;
  return it->second->QueryTopK(window_start, k);
}

StatusOr<std::vector<PumaResultRow>> PumaApp::QueryTopK(
    const std::string& table, Micros window_start) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table " + table);
  size_t k = 10;
  for (const SelectItem& item : it->second->stmt().items) {
    if (item.is_aggregate && item.agg == AggFunction::kTopK) {
      k = static_cast<size_t>(std::max<int64_t>(1, item.topk_k));
      break;
    }
  }
  ++queries_served_;
  return it->second->QueryTopK(window_start, k);
}

StatusOr<std::vector<Micros>> PumaApp::Windows(const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table " + table);
  return it->second->Windows();
}

StatusOr<bool> PumaApp::IsWindowFinal(const std::string& table,
                                      Micros window_start) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("table " + table);
  return it->second->IsWindowFinal(window_start);
}

StatusOr<SchemaPtr> PumaApp::StreamOutputSchema(
    const std::string& stream) const {
  auto it = stream_schemas_.find(stream);
  if (it == stream_schemas_.end()) return Status::NotFound("stream " + stream);
  return it->second;
}

const TableAggregation* PumaApp::aggregation(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second.get();
}

StatusOr<int> PumaService::SubmitApp(const std::string& source) {
  FBSTREAM_ASSIGN_OR_RETURN(AppSpec spec, ParseApp(source));
  if (apps_.count(spec.name) > 0) {
    return Status::AlreadyExists("app " + spec.name);
  }
  const int id = next_diff_id_++;
  pending_.emplace(id, std::move(spec));
  return id;
}

Status PumaService::AcceptDiff(int diff_id) {
  auto it = pending_.find(diff_id);
  if (it == pending_.end()) return Status::NotFound("diff");
  FBSTREAM_ASSIGN_OR_RETURN(
      auto app, PumaApp::Create(std::move(it->second), scribe_, clock_,
                                options_));
  pending_.erase(it);
  const std::string name = app->name();
  apps_.emplace(name, std::move(app));
  return Status::OK();
}

Status PumaService::RejectDiff(int diff_id) {
  if (pending_.erase(diff_id) == 0) return Status::NotFound("diff");
  return Status::OK();
}

PumaApp* PumaService::GetApp(const std::string& name) const {
  auto it = apps_.find(name);
  return it == apps_.end() ? nullptr : it->second.get();
}

Status PumaService::DeleteApp(const std::string& name) {
  if (apps_.erase(name) == 0) return Status::NotFound("app " + name);
  return Status::OK();
}

std::vector<std::string> PumaService::ListApps() const {
  std::vector<std::string> names;
  for (const auto& [name, app] : apps_) names.push_back(name);
  return names;
}

StatusOr<size_t> PumaService::PollAll() {
  size_t total = 0;
  for (auto& [name, app] : apps_) {
    FBSTREAM_ASSIGN_OR_RETURN(size_t n, app->PollOnce());
    total += n;
  }
  return total;
}

}  // namespace fbstream::puma
