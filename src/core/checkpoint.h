#ifndef FBSTREAM_CORE_CHECKPOINT_H_
#define FBSTREAM_CORE_CHECKPOINT_H_

#include <memory>
#include <string>

#include "common/clock.h"
#include "common/retry.h"
#include "common/status.h"
#include "core/failure.h"
#include "core/semantics.h"
#include "storage/hdfs/hdfs.h"
#include "storage/lsm/db.h"
#include "storage/zippydb/zippydb.h"

namespace fbstream::stylus {

// What a checkpoint holds (§4.3.1): "(a) the in-memory state of the
// processing node, (b) the current offset in the input stream, (c) the
// output value(s)" — (c) only for exactly-once output.
struct Checkpoint {
  bool has_state = false;
  std::string state;
  bool has_offset = false;
  uint64_t offset = 0;
};

// Persistence for a node shard's checkpoints. Implementations realize the
// state semantics through write ordering; SaveCheckpoint consults the
// failure injector between the two non-atomic writes and returns Aborted if
// a crash is injected (everything written before the crash stays durable —
// exactly what a real crash leaves behind).
class StateStore {
 public:
  virtual ~StateStore() = default;

  virtual Status SaveCheckpoint(StateSemantics semantics,
                                const std::string& state, uint64_t offset,
                                const FailureInjector& crash) = 0;
  virtual StatusOr<Checkpoint> Load() = 0;

  // Exactly-once output (§4.3.1): atomically commit state, offset, and the
  // output values in one transaction. Only stores with transaction support
  // implement this — "the receiver must be a data store, rather than a data
  // transport mechanism like Scribe".
  virtual Status SaveCheckpointWithOutput(const std::string& state,
                                          uint64_t offset,
                                          const lsm::WriteBatch& output) {
    (void)state;
    (void)offset;
    (void)output;
    return Status::Unimplemented("store does not support transactions");
  }
};

// Local-database model (§4.4.2, Figure 10): state in an embedded RocksDB
// with the WAL as the durability point, copied asynchronously to HDFS at a
// larger interval via the backup engine. Restart on the same machine uses
// the local DB; machine loss restores from HDFS.
class LocalStateStore : public StateStore {
 public:
  // `hdfs` may be null (no remote backup). `backup_prefix` namespaces this
  // shard's files inside HDFS. `clock` paces backup retry backoff (null =
  // system clock; tests pass a SimClock so backoffs are instant).
  static StatusOr<std::unique_ptr<LocalStateStore>> Open(
      const std::string& dir, hdfs::HdfsCluster* hdfs,
      const std::string& backup_prefix, Clock* clock = nullptr);

  Status SaveCheckpoint(StateSemantics semantics, const std::string& state,
                        uint64_t offset, const FailureInjector& crash) override;
  StatusOr<Checkpoint> Load() override;
  Status SaveCheckpointWithOutput(const std::string& state, uint64_t offset,
                                  const lsm::WriteBatch& output) override;

  // Copies the local DB to HDFS ("copied asynchronously to HDFS at a larger
  // interval using RocksDB's backup engine"). Each file upload runs under a
  // short RetryPolicy to ride out blips; if HDFS stays unavailable, returns
  // Unavailable and processing continues without remote copies — the owning
  // shard queues the missed backup for resync (§4.4.2 degradation).
  Status BackupToHdfs();

  // Retries spent on backup uploads (monitoring).
  RetryPolicy::StatsSnapshot backup_retry_stats() const {
    return backup_retry_->stats();
  }

  // Machine-loss recovery: rebuilds `dir` from the HDFS backup. Use when
  // the local directory is gone.
  static Status RestoreFromHdfs(hdfs::HdfsCluster* hdfs,
                                const std::string& backup_prefix,
                                const std::string& dir);

  lsm::Db* db() { return db_.get(); }

 private:
  LocalStateStore(hdfs::HdfsCluster* hdfs, std::string backup_prefix,
                  Clock* clock);

  hdfs::HdfsCluster* hdfs_;
  std::string backup_prefix_;
  std::unique_ptr<RetryPolicy> backup_retry_;
  std::unique_ptr<lsm::Db> db_;
};

// Remote-database model (§4.4.2, Figure 11): checkpoints live in ZippyDB.
// "A remote database solution also provides faster machine failover time
// since we do not need to load the complete state to the machine upon
// restart." Exactly-once uses the cluster's cross-shard transactions.
class RemoteStateStore : public StateStore {
 public:
  RemoteStateStore(zippydb::Cluster* cluster, std::string key_prefix);

  Status SaveCheckpoint(StateSemantics semantics, const std::string& state,
                        uint64_t offset, const FailureInjector& crash) override;
  StatusOr<Checkpoint> Load() override;
  Status SaveCheckpointWithOutput(const std::string& state, uint64_t offset,
                                  const lsm::WriteBatch& output) override;

 private:
  std::string StateKey() const { return key_prefix_ + "/__state__"; }
  std::string OffsetKey() const { return key_prefix_ + "/__offset__"; }

  zippydb::Cluster* cluster_;
  std::string key_prefix_;
};

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_CHECKPOINT_H_
