#ifndef FBSTREAM_CORE_MONOID_STATE_H_
#define FBSTREAM_CORE_MONOID_STATE_H_

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/processor.h"
#include "storage/lsm/merge_operator.h"
#include "storage/zippydb/zippydb.h"

namespace fbstream::stylus {

// How in-memory partial states reach the remote database (§4.4.2):
//
//   kReadModifyWrite — the classic pattern: "the existing database state is
//   loaded in memory, merged with the in-memory partial state, and then
//   written out to the database". One remote read + one remote write per
//   dirty key per flush.
//
//   kAppendOnly — "When the remote database supports a custom merge
//   operator, then the merge operation can happen in the database. The
//   read-modify-write pattern is optimized to an append-only pattern,
//   resulting in performance gains." One remote merge-write per dirty key,
//   no read.
//
// Figure 12 sweeps the flush interval and compares the two modes.
enum class RemoteWriteMode {
  kReadModifyWrite,
  kAppendOnly,
};

// Adapts a MonoidAggregator into an lsm::MergeOperator so a ZippyDB cluster
// can resolve append-only partials server-side.
class MonoidMergeOperator : public lsm::MergeOperator {
 public:
  explicit MonoidMergeOperator(std::shared_ptr<const MonoidAggregator> agg)
      : agg_(std::move(agg)) {}

  const char* Name() const override { return agg_->Name(); }

  bool FullMerge(std::string_view key, const std::string* existing,
                 const std::vector<std::string>& operands,
                 std::string* result) const override {
    (void)key;
    std::string acc = existing != nullptr ? *existing : agg_->Identity();
    for (const std::string& op : operands) acc = agg_->Combine(acc, op);
    *result = std::move(acc);
    return true;
  }

  bool PartialMerge(std::string_view key, std::string_view left,
                    std::string_view right,
                    std::string* result) const override {
    (void)key;
    *result = agg_->Combine(std::string(left), std::string(right));
    return true;
  }

 private:
  std::shared_ptr<const MonoidAggregator> agg_;
};

// Keyed monoid state for one node shard: partial values accumulate in
// memory ("mutations are applied to an empty state — the identity element")
// and flush to the remote database per RemoteWriteMode. "This read-merge-
// write pattern can be done less often than the read-modify-write" — the
// flush interval is the caller's policy.
class RemoteMonoidState {
 public:
  RemoteMonoidState(zippydb::Cluster* cluster,
                    const MonoidAggregator* aggregator, std::string key_prefix,
                    RemoteWriteMode mode);

  // Combines `partial` into the in-memory partial for `key`.
  void Append(const std::string& key, const std::string& partial);

  // Merged view of one key: remote value (if any) combined with the pending
  // in-memory partial. Used by processors that need to read their state.
  StatusOr<std::string> Read(const std::string& key);

  // Pushes all dirty partials to the remote database and clears them.
  Status Flush();

  size_t dirty_keys() const { return partials_.size(); }
  RemoteWriteMode mode() const { return mode_; }

 private:
  std::string RemoteKey(const std::string& key) const {
    return key_prefix_ + "/" + key;
  }

  zippydb::Cluster* cluster_;
  const MonoidAggregator* aggregator_;
  std::string key_prefix_;
  RemoteWriteMode mode_;
  std::map<std::string, std::string> partials_;
};

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_MONOID_STATE_H_
