#ifndef FBSTREAM_CORE_PROCESSOR_H_
#define FBSTREAM_CORE_PROCESSOR_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/event.h"

namespace fbstream::stylus {

// Stylus provides three types of processors (§4.5.2): "a stateless
// processor, a general stateful processor, and a monoid stream processor."
// Application writers subclass exactly one of these.

// Stateless: pure event -> output rows. Used for filter/project/reshard
// nodes like the Filterer and Joiner of Figure 3.
class StatelessProcessor {
 public:
  virtual ~StatelessProcessor() = default;

  // Emits zero or more output rows for the event. Must be side-effect-free
  // with respect to engine-visible state (rerunnable; §4.3.1 activity 1).
  virtual void Process(const Event& event, std::vector<Row>* out) = 0;
};

// General stateful: maintains opaque in-memory state that the engine
// checkpoints as a unit. The Scorer of Figure 3 and the Counter Node of
// Figure 6 are stateful processors.
class StatefulProcessor {
 public:
  virtual ~StatefulProcessor() = default;

  // Processes one event; may update in-memory state and emit output rows.
  virtual void Process(const Event& event, std::vector<Row>* out) = 0;

  // Called at each checkpoint boundary before state is saved; the processor
  // may emit window results (e.g. the Counter Node "emits the counter value
  // every few seconds").
  virtual void OnCheckpoint(Micros now, std::vector<Row>* out) {
    (void)now;
    (void)out;
  }

  // Engine-driven state persistence.
  virtual std::string SerializeState() const = 0;
  virtual Status RestoreState(std::string_view data) = 0;
};

// A monoid (§4.4.2): an identity element plus an associative combine over
// serialized partial states. HyperLogLog sketches, counters, sums, max/min,
// and top-K sketches are all monoids. Shared with Puma aggregations and the
// MapReduce combiner.
class MonoidAggregator {
 public:
  virtual ~MonoidAggregator() = default;

  virtual const char* Name() const = 0;
  virtual std::string Identity() const = 0;
  // Must be associative: Combine(a, Combine(b, c)) == Combine(Combine(a, b), c).
  virtual std::string Combine(const std::string& older,
                              const std::string& newer) const = 0;
};

// Monoid stream processor: "the application appends partial state to the
// framework and Stylus decides when to merge the partial states into a
// complete state" (§4.4.2). Process() turns one event into (key, partial)
// contributions; the engine owns the keyed state and its flushing.
class MonoidProcessor {
 public:
  virtual ~MonoidProcessor() = default;

  using Contribution = std::pair<std::string, std::string>;

  // Emits (state key, partial value) contributions for the event.
  virtual void Process(const Event& event,
                       std::vector<Contribution>* contributions) = 0;

  virtual const MonoidAggregator& aggregator() const = 0;
};

// Ready-made aggregators.
std::unique_ptr<MonoidAggregator> MakeInt64SumAggregator();
std::unique_ptr<MonoidAggregator> MakeInt64MaxAggregator();
std::unique_ptr<MonoidAggregator> MakeHllAggregator(int precision = 12);

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_PROCESSOR_H_
