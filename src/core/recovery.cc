#include "core/recovery.h"

#include <map>
#include <utility>

#include "common/fault.h"
#include "common/fs.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/serde.h"

namespace fbstream::stylus {

namespace {

// Both files share one framing: magic, then a length-prefixed body, then an
// Fnv1a64 of the body. WriteFileAtomic already guarantees all-or-nothing
// replacement; the checksum catches the remaining ways a file can lie (bit
// rot, manual truncation, a foreign file at the path).
constexpr uint64_t kManifestMagic = 0x4642'4d41'4e49'4631ull;  // "FBMANIF1"
constexpr uint64_t kOffsetsMagic = 0x4642'4f46'4653'4554ull;   // "FBOFFSET"

std::string Frame(uint64_t magic, const std::string& body) {
  std::string out;
  PutFixed64(&out, magic);
  PutLengthPrefixed(&out, body);
  PutFixed64(&out, Fnv1a64(body));
  return out;
}

StatusOr<std::string> Unframe(uint64_t magic, std::string_view data,
                              const char* what) {
  uint64_t got_magic = 0;
  std::string_view body;
  uint64_t checksum = 0;
  if (!GetFixed64(&data, &got_magic) || got_magic != magic ||
      !GetLengthPrefixed(&data, &body) || !GetFixed64(&data, &checksum)) {
    return Status::Corruption(std::string(what) + ": bad frame");
  }
  if (Fnv1a64(body) != checksum) {
    return Status::Corruption(std::string(what) + ": checksum mismatch");
  }
  return std::string(body);
}

bool DecodeEnum(std::string_view* view, uint64_t max_value, uint64_t* out) {
  return GetVarint64(view, out) && *out <= max_value;
}

}  // namespace

std::string EncodeManifest(const PipelineManifest& manifest) {
  std::string body;
  PutVarint64(&body, manifest.epoch);
  PutVarint64(&body, manifest.nodes.size());
  for (const ManifestNodeRecord& node : manifest.nodes) {
    PutLengthPrefixed(&body, node.name);
    PutLengthPrefixed(&body, node.input_category);
    PutVarint64(&body, static_cast<uint64_t>(node.num_shards));
    PutVarint64(&body, static_cast<uint64_t>(node.state_semantics));
    PutVarint64(&body, static_cast<uint64_t>(node.output_semantics));
    PutVarint64(&body, static_cast<uint64_t>(node.backend));
    PutLengthPrefixed(&body, node.state_dir);
    PutVarint64(&body, node.checkpoint_every_events);
    PutVarint64(&body, node.checkpoint_every_bytes);
    PutVarint64(&body, static_cast<uint64_t>(node.backup_every_checkpoints));
    PutVarint64(&body, node.max_pending_backups);
  }
  return Frame(kManifestMagic, body);
}

StatusOr<PipelineManifest> DecodeManifest(std::string_view data) {
  FBSTREAM_ASSIGN_OR_RETURN(const std::string body,
                            Unframe(kManifestMagic, data, "pipeline manifest"));
  std::string_view view(body);
  PipelineManifest manifest;
  uint64_t count = 0;
  if (!GetVarint64(&view, &manifest.epoch) || !GetVarint64(&view, &count)) {
    return Status::Corruption("pipeline manifest: header");
  }
  for (uint64_t i = 0; i < count; ++i) {
    ManifestNodeRecord node;
    std::string_view name;
    std::string_view category;
    std::string_view state_dir;
    uint64_t num_shards = 0;
    uint64_t state_sem = 0;
    uint64_t output_sem = 0;
    uint64_t backend = 0;
    uint64_t backup_every = 0;
    if (!GetLengthPrefixed(&view, &name) ||
        !GetLengthPrefixed(&view, &category) ||
        !GetVarint64(&view, &num_shards) ||
        !DecodeEnum(&view, static_cast<uint64_t>(StateSemantics::kExactlyOnce),
                    &state_sem) ||
        !DecodeEnum(&view, static_cast<uint64_t>(OutputSemantics::kExactlyOnce),
                    &output_sem) ||
        !DecodeEnum(&view, static_cast<uint64_t>(StateBackend::kRemote),
                    &backend) ||
        !GetLengthPrefixed(&view, &state_dir) ||
        !GetVarint64(&view, &node.checkpoint_every_events) ||
        !GetVarint64(&view, &node.checkpoint_every_bytes) ||
        !GetVarint64(&view, &backup_every) ||
        !GetVarint64(&view, &node.max_pending_backups)) {
      return Status::Corruption("pipeline manifest: node record");
    }
    node.name = std::string(name);
    node.input_category = std::string(category);
    node.num_shards = static_cast<int>(num_shards);
    node.state_semantics = static_cast<StateSemantics>(state_sem);
    node.output_semantics = static_cast<OutputSemantics>(output_sem);
    node.backend = static_cast<StateBackend>(backend);
    node.state_dir = std::string(state_dir);
    node.backup_every_checkpoints = static_cast<int>(backup_every);
    manifest.nodes.push_back(std::move(node));
  }
  if (!view.empty()) {
    return Status::Corruption("pipeline manifest: trailing bytes");
  }
  return manifest;
}

Status SaveManifest(const std::string& dir, const PipelineManifest& manifest) {
  FBSTREAM_RETURN_IF_ERROR(CreateDirs(dir));
  FBSTREAM_RETURN_IF_ERROR(WriteFileAtomic(dir + "/" + kManifestFileName,
                                           EncodeManifest(manifest)));
  static Counter* saves =
      MetricsRegistry::Global()->GetCounter("recovery.manifest.saves");
  saves->Add();
  return Status::OK();
}

StatusOr<PipelineManifest> LoadManifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestFileName;
  if (!FileExists(path)) return Status::NotFound("no pipeline manifest: " + path);
  FBSTREAM_ASSIGN_OR_RETURN(const std::string data, ReadFileToString(path));
  return DecodeManifest(data);
}

Status SaveOffsetsSnapshot(const std::string& dir,
                           const std::vector<ShardOffsetRecord>& offsets,
                           const std::string& scope) {
  std::string body;
  PutVarint64(&body, offsets.size());
  for (const ShardOffsetRecord& r : offsets) {
    PutLengthPrefixed(&body, r.node);
    PutVarint64(&body, static_cast<uint64_t>(r.bucket));
    PutVarint64(&body, r.offset);
  }
  // Named fault site so tests can fail the advisory write on demand (the
  // production failure here is a full or read-only disk).
  FBSTREAM_RETURN_IF_ERROR(FaultRegistry::Global()->Hit("recovery.offsets.write"));
  FBSTREAM_RETURN_IF_ERROR(CreateDirs(dir));
  const std::string file = scope.empty()
                               ? std::string(kOffsetsFileName)
                               : std::string(kOffsetsFileName) + "." + scope;
  FBSTREAM_RETURN_IF_ERROR(
      WriteFileAtomic(dir + "/" + file, Frame(kOffsetsMagic, body)));
  static Counter* saves =
      MetricsRegistry::Global()->GetCounter("recovery.offsets.saves");
  saves->Add();
  return Status::OK();
}

namespace {

// Loads one snapshot file; forgiving (see header).
std::vector<ShardOffsetRecord> LoadOneOffsetsFile(const std::string& path) {
  if (!FileExists(path)) return {};
  auto data = ReadFileToString(path);
  if (!data.ok()) {
    FBSTREAM_LOG(Warning) << "offsets snapshot unreadable, ignoring: "
                          << data.status();
    return {};
  }
  auto body = Unframe(kOffsetsMagic, *data, "offsets snapshot");
  if (!body.ok()) {
    // Advisory data: a torn snapshot degrades recovery precision, never
    // correctness, so the right response is to warn and move on.
    FBSTREAM_LOG(Warning) << "offsets snapshot corrupt, ignoring: "
                          << body.status();
    return {};
  }
  std::string_view view(*body);
  uint64_t count = 0;
  if (!GetVarint64(&view, &count)) return {};
  std::vector<ShardOffsetRecord> offsets;
  for (uint64_t i = 0; i < count; ++i) {
    ShardOffsetRecord r;
    std::string_view node;
    uint64_t bucket = 0;
    if (!GetLengthPrefixed(&view, &node) || !GetVarint64(&view, &bucket) ||
        !GetVarint64(&view, &r.offset)) {
      FBSTREAM_LOG(Warning) << "offsets snapshot truncated, ignoring tail";
      return offsets;
    }
    r.node = std::string(node);
    r.bucket = static_cast<int>(bucket);
    offsets.push_back(std::move(r));
  }
  return offsets;
}

}  // namespace

std::vector<ShardOffsetRecord> LoadOffsetsSnapshot(const std::string& dir) {
  // Base file plus every scoped file; max offset wins per (node, bucket).
  std::vector<std::string> files = {std::string(kOffsetsFileName)};
  auto entries = ListDir(dir);
  if (entries.ok()) {
    const std::string prefix = std::string(kOffsetsFileName) + ".";
    for (const std::string& name : *entries) {
      if (name.rfind(prefix, 0) == 0) files.push_back(name);
    }
  }
  std::map<std::pair<std::string, int>, uint64_t> merged;
  for (const std::string& file : files) {
    for (ShardOffsetRecord& r : LoadOneOffsetsFile(dir + "/" + file)) {
      auto key = std::make_pair(r.node, r.bucket);
      auto it = merged.find(key);
      if (it == merged.end() || it->second < r.offset) {
        merged[key] = r.offset;
      }
    }
  }
  std::vector<ShardOffsetRecord> offsets;
  offsets.reserve(merged.size());
  for (const auto& [key, offset] : merged) {
    offsets.push_back(ShardOffsetRecord{key.first, key.second, offset});
  }
  return offsets;
}

}  // namespace fbstream::stylus
