#include "core/semantics.h"

namespace fbstream::stylus {

const char* ToString(StateSemantics s) {
  switch (s) {
    case StateSemantics::kAtLeastOnce:
      return "at-least-once";
    case StateSemantics::kAtMostOnce:
      return "at-most-once";
    case StateSemantics::kExactlyOnce:
      return "exactly-once";
  }
  return "?";
}

const char* ToString(OutputSemantics s) {
  switch (s) {
    case OutputSemantics::kAtLeastOnce:
      return "at-least-once";
    case OutputSemantics::kAtMostOnce:
      return "at-most-once";
    case OutputSemantics::kExactlyOnce:
      return "exactly-once";
  }
  return "?";
}

}  // namespace fbstream::stylus
