#ifndef FBSTREAM_CORE_SEMANTICS_H_
#define FBSTREAM_CORE_SEMANTICS_H_

#include <string>

#include "common/status.h"

namespace fbstream::stylus {

// Processing semantics (§4.3.1). State semantics govern how many times each
// input event can count in the state; output semantics govern how many times
// a given output value can appear downstream. The implementation realizes
// them purely through the *order* of checkpoint writes:
//   at-least-once state:  save state, then offset
//   at-most-once state:   save offset, then state
//   exactly-once state:   save state and offset atomically
// and analogously for where output emission sits relative to the checkpoint.
enum class StateSemantics {
  kAtLeastOnce,
  kAtMostOnce,
  kExactlyOnce,
};

enum class OutputSemantics {
  kAtLeastOnce,
  kAtMostOnce,
  kExactlyOnce,
};

const char* ToString(StateSemantics s);
const char* ToString(OutputSemantics s);

// Validates a (state, output) pair against the paper's Figure 8 matrix of
// common combinations:
//              state:  at-least   at-most   exactly
//   out at-least-once:    X                    X
//   out at-most-once:                X         X
//   out exactly-once:                          X
inline bool IsSupportedCombination(StateSemantics state,
                                   OutputSemantics output) {
  switch (output) {
    case OutputSemantics::kAtLeastOnce:
      return state == StateSemantics::kAtLeastOnce ||
             state == StateSemantics::kExactlyOnce;
    case OutputSemantics::kAtMostOnce:
      return state == StateSemantics::kAtMostOnce ||
             state == StateSemantics::kExactlyOnce;
    case OutputSemantics::kExactlyOnce:
      return state == StateSemantics::kExactlyOnce;
  }
  return false;
}

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_SEMANTICS_H_
