#ifndef FBSTREAM_CORE_WINDOWED_H_
#define FBSTREAM_CORE_WINDOWED_H_

#include <map>
#include <string>
#include <vector>

#include "core/processor.h"
#include "core/watermark.h"

namespace fbstream::stylus {

// Tumbling event-time windows with watermark-driven finalization — the
// utility that turns §2.4's "estimate the event time low watermark with a
// given confidence interval" into application behavior: "Stylus must handle
// imperfect ordering in its input streams".
//
// Subclasses define how one event folds into per-(window, group) state and
// how a finalized cell renders into an output row. The base class assigns
// events to windows by event time, tolerates out-of-order arrivals, and
// emits a window only once the estimated low watermark has passed its end —
// late events beyond that are counted, not silently dropped into fresh
// windows.
class WindowedProcessor : public StatefulProcessor {
 public:
  struct Options {
    Micros window_micros = 5 * kMicrosPerMinute;
    // Confidence for the low-watermark estimate: higher = waits longer for
    // stragglers before finalizing.
    double confidence = 0.99;
  };

  explicit WindowedProcessor(Options options) : options_(options) {}

  // ---- Subclass API -------------------------------------------------

  // Group key for an event (e.g. its topic). Empty string = one global
  // group per window.
  virtual std::string GroupKey(const Event& event) const = 0;
  // Initial per-cell state.
  virtual std::string InitialState() const = 0;
  // Folds one event into the cell state.
  virtual void Fold(const Event& event, std::string* state) const = 0;
  // Renders a finalized cell into an output row.
  virtual Row Render(Micros window_start, const std::string& group,
                     const std::string& state) const = 0;

  // ---- StatefulProcessor implementation ------------------------------

  void Process(const Event& event, std::vector<Row>* out) final;
  void OnCheckpoint(Micros now, std::vector<Row>* out) final;
  std::string SerializeState() const final;
  Status RestoreState(std::string_view data) final;

  // Events that arrived after their window was already finalized.
  uint64_t late_dropped() const { return late_dropped_; }
  size_t open_windows() const { return windows_.size(); }

  // Forces every open window out (end of stream / batch tail).
  void FlushAll(std::vector<Row>* out);

 private:
  Micros WindowOf(Micros event_time) const {
    Micros w = event_time - (event_time % options_.window_micros);
    if (event_time < 0 && event_time % options_.window_micros != 0) {
      w -= options_.window_micros;
    }
    return w;
  }

  Options options_;
  WatermarkEstimator watermark_;
  std::map<Micros, std::map<std::string, std::string>> windows_;
  Micros finalized_through_ = 0;  // Windows starting before this are gone.
  uint64_t late_dropped_ = 0;
};

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_WINDOWED_H_
