#include "core/batch.h"

#include <algorithm>

#include "common/serde.h"

namespace fbstream::stylus {

namespace {

Event EventFromRow(Row row, const std::string& event_time_column) {
  Event e;
  e.event_time = event_time_column.empty()
                     ? 0
                     : row.Get(event_time_column).CoerceInt64();
  e.arrival_time = e.event_time;
  e.row = std::move(row);
  return e;
}

}  // namespace

StatusOr<std::vector<Row>> RunStatelessBatch(
    const hive::Hive& hive, const std::string& table,
    const std::vector<std::string>& partitions,
    const std::function<std::unique_ptr<StatelessProcessor>()>& factory,
    SchemaPtr /*input_schema*/, const std::string& event_time_column) {
  std::vector<Row> output;
  std::unique_ptr<StatelessProcessor> processor = factory();
  for (const std::string& ds : partitions) {
    FBSTREAM_ASSIGN_OR_RETURN(std::vector<Row> rows,
                              hive.ReadPartition(table, ds));
    for (Row& row : rows) {
      std::vector<Row> emitted;
      processor->Process(EventFromRow(std::move(row), event_time_column),
                         &emitted);
      for (Row& r : emitted) output.push_back(std::move(r));
    }
  }
  return output;
}

StatusOr<std::vector<Row>> RunStatefulBatch(
    const hive::Hive& hive, const std::string& table,
    const std::vector<std::string>& partitions,
    const std::function<std::unique_ptr<StatefulProcessor>()>& factory,
    SchemaPtr input_schema, const std::string& event_time_column,
    const std::function<std::string(const Row&)>& key_fn) {
  // Map: shuffle rows by aggregation key, carrying the encoded row.
  TextRowCodec codec(input_schema);
  hive::MapReduceSpec spec;
  spec.map = [&codec, &key_fn](const Row& row) {
    return std::vector<hive::KeyedRecord>{{key_fn(row), codec.Encode(row)}};
  };
  // Reduce: fresh processor per key, rows replayed in event-time order
  // (the reduce key is the aggregation key plus event timestamp).
  Micros final_time = 0;
  spec.reduce = [&codec, &factory, &event_time_column, &final_time](
                    const std::string& /*key*/,
                    const std::vector<std::string>& records)
      -> std::vector<Row> {
    std::vector<Event> events;
    events.reserve(records.size());
    for (const std::string& encoded : records) {
      auto row = codec.Decode(encoded);
      if (!row.ok()) continue;
      events.push_back(
          EventFromRow(std::move(row).value(), event_time_column));
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) {
                       return a.event_time < b.event_time;
                     });
    std::unique_ptr<StatefulProcessor> processor = factory();
    std::vector<Row> out;
    for (const Event& e : events) {
      final_time = std::max(final_time, e.event_time);
      processor->Process(e, &out);
    }
    processor->OnCheckpoint(final_time, &out);
    return out;
  };
  return hive::RunMapReduce(hive, table, partitions, spec);
}

StatusOr<std::vector<std::pair<std::string, std::string>>> RunMonoidBatch(
    const hive::Hive& hive, const std::string& table,
    const std::vector<std::string>& partitions,
    const std::function<std::unique_ptr<MonoidProcessor>()>& factory,
    const MonoidAggregator& aggregator, SchemaPtr /*input_schema*/,
    const std::string& event_time_column, hive::MapReduceCounters* counters,
    bool map_side_combine) {
  auto result_schema = Schema::Make(
      {{"key", ValueType::kString}, {"value", ValueType::kString}});

  std::unique_ptr<MonoidProcessor> mapper = factory();
  hive::MapReduceSpec spec;
  spec.output_schema = result_schema;
  spec.map = [&mapper, &event_time_column](const Row& row) {
    std::vector<MonoidProcessor::Contribution> contributions;
    mapper->Process(EventFromRow(row, event_time_column), &contributions);
    std::vector<hive::KeyedRecord> out;
    out.reserve(contributions.size());
    for (auto& [key, partial] : contributions) {
      out.emplace_back(std::move(key), std::move(partial));
    }
    return out;
  };
  if (map_side_combine) {
    // "The batch binary for monoid processors can be optimized to do partial
    // aggregation in the map phase."
    spec.combine = [&aggregator](const std::string& a, const std::string& b) {
      return aggregator.Combine(a, b);
    };
  }
  spec.reduce = [&aggregator, &result_schema](
                    const std::string& key,
                    const std::vector<std::string>& records)
      -> std::vector<Row> {
    std::string acc = aggregator.Identity();
    for (const std::string& r : records) acc = aggregator.Combine(acc, r);
    return {Row(result_schema, {Value(key), Value(acc)})};
  };

  FBSTREAM_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      hive::RunMapReduce(hive, table, partitions, spec, counters));
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    out.emplace_back(row.Get(0).AsString(), row.Get(1).AsString());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fbstream::stylus
