#ifndef FBSTREAM_CORE_EVENT_H_
#define FBSTREAM_CORE_EVENT_H_

#include <string>

#include "common/clock.h"
#include "common/value.h"

namespace fbstream::stylus {

// One input event as seen by a Stylus processor: the decoded row, the
// event time the application writer identified in the stream (§2.4: "Stylus
// requires the application writer to identify the event time data in the
// stream"), the Scribe sequence it came from, and its arrival time.
struct Event {
  Row row;
  Micros event_time = 0;
  Micros arrival_time = 0;
  uint64_t sequence = 0;
  // Propagated from the Scribe message; nonzero only for tracer-sampled
  // events (§4.2.1 per-hop latency analysis).
  uint64_t trace_id = 0;
};

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_EVENT_H_
