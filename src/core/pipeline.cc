#include "core/pipeline.h"

#include "common/logging.h"

namespace fbstream::stylus {

Status Pipeline::AddNode(const NodeConfig& config) {
  if (nodes_.count(config.name) > 0) {
    return Status::AlreadyExists("node " + config.name);
  }
  const int buckets = scribe_->NumBuckets(config.input_category);
  if (buckets <= 0) {
    return Status::NotFound("input category " + config.input_category);
  }
  std::vector<std::unique_ptr<NodeShard>> shards;
  for (int b = 0; b < buckets; ++b) {
    FBSTREAM_ASSIGN_OR_RETURN(auto shard,
                              NodeShard::Create(config, scribe_, clock_, b));
    shards.push_back(std::move(shard));
  }
  node_order_.push_back(config.name);
  nodes_.emplace(config.name, std::move(shards));
  return Status::OK();
}

StatusOr<size_t> Pipeline::RunRound() {
  size_t processed = 0;
  for (const std::string& name : node_order_) {
    for (auto& shard : nodes_.at(name)) {
      if (!shard->alive()) continue;  // Independent failure (§4.2.2).
      auto result = shard->RunOnce();
      if (!result.ok()) {
        if (result.status().IsAborted()) {
          FBSTREAM_LOG(Warning)
              << name << "/shard-" << shard->bucket() << " crashed";
          continue;  // Other nodes keep running.
        }
        return result.status();
      }
      processed += result.value();
    }
  }
  return processed;
}

StatusOr<size_t> Pipeline::RunUntilQuiescent(int max_rounds) {
  size_t total = 0;
  for (int round = 0; round < max_rounds; ++round) {
    FBSTREAM_ASSIGN_OR_RETURN(size_t n, RunRound());
    total += n;
    if (n == 0) return total;
  }
  return total;
}

std::vector<NodeShard*> Pipeline::Shards(const std::string& node) const {
  std::vector<NodeShard*> out;
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return out;
  for (const auto& shard : it->second) out.push_back(shard.get());
  return out;
}

NodeShard* Pipeline::Shard(const std::string& node, int bucket) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return nullptr;
  if (bucket < 0 || static_cast<size_t>(bucket) >= it->second.size()) {
    return nullptr;
  }
  return it->second[static_cast<size_t>(bucket)].get();
}

Status Pipeline::RecoverAll() {
  for (auto& [name, shards] : nodes_) {
    for (auto& shard : shards) {
      if (!shard->alive()) {
        FBSTREAM_RETURN_IF_ERROR(shard->Recover());
      }
    }
  }
  return Status::OK();
}

Status Pipeline::ReconcileShards() {
  for (auto& [name, shards] : nodes_) {
    if (shards.empty()) continue;
    const NodeConfig& config = shards[0]->config();
    const int buckets = scribe_->NumBuckets(config.input_category);
    while (static_cast<int>(shards.size()) < buckets) {
      const int bucket = static_cast<int>(shards.size());
      FBSTREAM_ASSIGN_OR_RETURN(
          auto shard, NodeShard::Create(config, scribe_, clock_, bucket));
      shards.push_back(std::move(shard));
    }
  }
  return Status::OK();
}

std::vector<Pipeline::LagReport> Pipeline::GetProcessingLag() const {
  std::vector<LagReport> reports;
  for (const std::string& name : node_order_) {
    for (const auto& shard : nodes_.at(name)) {
      reports.push_back(
          LagReport{name, shard->bucket(), shard->ProcessingLag()});
    }
  }
  return reports;
}

std::vector<Pipeline::LagReport> Pipeline::GetLagAlerts(
    uint64_t threshold_messages) const {
  std::vector<LagReport> alerts;
  for (const LagReport& r : GetProcessingLag()) {
    if (r.lag_messages >= threshold_messages) alerts.push_back(r);
  }
  return alerts;
}

}  // namespace fbstream::stylus
