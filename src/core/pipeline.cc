#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <functional>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/shutdown.h"

namespace fbstream::stylus {

Pipeline::Pipeline(scribe::Scribe* scribe, Clock* clock, Options options)
    : scribe_(scribe), clock_(clock), options_(options) {
  if (options_.num_threads > 1) {
    executor_ = std::make_unique<ShardExecutor>(options_.num_threads);
  }
}

Pipeline::~Pipeline() = default;

Status Pipeline::AddNode(const NodeConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  return AddNodeLocked(config);
}

Status Pipeline::AddNodeLocked(const NodeConfig& config) {
  if (nodes_.count(config.name) > 0) {
    return Status::AlreadyExists("node " + config.name);
  }
  const int buckets = scribe_->NumBuckets(config.input_category);
  if (buckets <= 0) {
    return Status::NotFound("input category " + config.input_category);
  }
  std::vector<std::unique_ptr<NodeShard>> shards;
  for (int b = 0; b < buckets; ++b) {
    FBSTREAM_ASSIGN_OR_RETURN(auto shard,
                              NodeShard::Create(config, scribe_, clock_, b));
    shards.push_back(std::move(shard));
  }
  node_order_.push_back(config.name);
  nodes_.emplace(config.name, std::move(shards));
  if (!manifest_dir_.empty()) {
    FBSTREAM_RETURN_IF_ERROR(SaveManifestLocked());
  }
  return Status::OK();
}

Status Pipeline::SaveManifestLocked() {
  PipelineManifest manifest;
  manifest.epoch = ++manifest_epoch_;
  for (const std::string& name : node_order_) {
    const auto& shards = nodes_.at(name);
    if (shards.empty()) continue;
    const NodeConfig& config = shards[0]->config();
    ManifestNodeRecord record;
    record.name = config.name;
    record.input_category = config.input_category;
    record.num_shards = static_cast<int>(shards.size());
    record.state_semantics = config.state_semantics;
    record.output_semantics = config.output_semantics;
    record.backend = config.backend;
    record.state_dir = config.state_dir;
    record.checkpoint_every_events = config.checkpoint_every_events;
    record.checkpoint_every_bytes = config.checkpoint_every_bytes;
    record.backup_every_checkpoints = config.backup_every_checkpoints;
    record.max_pending_backups = config.max_pending_backups;
    manifest.nodes.push_back(std::move(record));
  }
  return SaveManifest(manifest_dir_, manifest);
}

Status Pipeline::EnableManifest(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir.empty()) return Status::InvalidArgument("empty manifest dir");
  manifest_dir_ = dir;
  return SaveManifestLocked();
}

void Pipeline::SaveOffsetsSnapshot() {
  std::vector<ShardOffsetRecord> offsets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& name : node_order_) {
      for (const auto& shard : nodes_.at(name)) {
        offsets.push_back(
            ShardOffsetRecord{name, shard->bucket(), shard->TailerOffset()});
      }
    }
  }
  // Advisory data (see LoadOffsetsSnapshot): a failed write costs recovery
  // precision, not correctness, so it must not fail the round.
  const Status status =
      ::fbstream::stylus::SaveOffsetsSnapshot(manifest_dir_, offsets);
  if (!status.ok()) {
    FBSTREAM_LOG(Warning) << "offsets snapshot write failed: " << status;
  }
}

Status Pipeline::Recover(const std::string& dir,
                         const NodeConfigResolver& resolver) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!nodes_.empty()) {
      return Status::FailedPrecondition("Recover requires an empty pipeline");
    }
  }
  static Histogram* recovery_time =
      MetricsRegistry::Global()->GetHistogram("recovery.time_us");
  ScopedLatencyTimer timer(recovery_time);
  FBSTREAM_ASSIGN_OR_RETURN(const PipelineManifest manifest,
                            LoadManifest(dir));
  const std::vector<ShardOffsetRecord> snapshot = LoadOffsetsSnapshot(dir);
  std::lock_guard<std::mutex> lock(mu_);
  for (const ManifestNodeRecord& record : manifest.nodes) {
    FBSTREAM_ASSIGN_OR_RETURN(NodeConfig config, resolver(record));
    // The manifest is authoritative for everything it records; the resolver
    // only supplies the parts that can't be serialized (factories, schema,
    // sink, cluster handles).
    config.name = record.name;
    config.input_category = record.input_category;
    config.state_semantics = record.state_semantics;
    config.output_semantics = record.output_semantics;
    config.backend = record.backend;
    config.state_dir = record.state_dir;
    config.checkpoint_every_events = record.checkpoint_every_events;
    config.checkpoint_every_bytes = record.checkpoint_every_bytes;
    config.backup_every_checkpoints = record.backup_every_checkpoints;
    config.max_pending_backups = record.max_pending_backups;
    config.restore_state_from_backup = true;
    if (scribe_->NumBuckets(record.input_category) < record.num_shards) {
      // Fewer buckets than recorded shards would silently orphan the extra
      // shards' state; a rescale while down must be resolved by the operator.
      return Status::FailedPrecondition(
          "category " + record.input_category + " has fewer buckets than the " +
          std::to_string(record.num_shards) + " shards recorded for node " +
          record.name);
    }
    FBSTREAM_RETURN_IF_ERROR(AddNodeLocked(config));
    for (const auto& shard : nodes_.at(record.name)) {
      if (!shard->had_checkpoint_offset() &&
          record.state_semantics == StateSemantics::kAtMostOnce) {
        // An at-most-once shard that lost its checkpoint must not replay
        // from zero (that would re-apply events it already counted); the
        // advisory snapshot gives a floor close to where it died.
        for (const ShardOffsetRecord& r : snapshot) {
          if (r.node == record.name && r.bucket == shard->bucket()) {
            shard->SeekTailer(std::max(shard->TailerOffset(), r.offset));
          }
        }
      }
      shard->RequestBackupResync();
    }
  }
  manifest_dir_ = dir;
  manifest_epoch_ = manifest.epoch;  // SaveManifestLocked bumps it.
  FBSTREAM_RETURN_IF_ERROR(SaveManifestLocked());
  static Counter* recoveries =
      MetricsRegistry::Global()->GetCounter("recovery.pipeline.recoveries");
  recoveries->Add();
  FBSTREAM_LOG(Info) << "pipeline recovered from " << dir << " (epoch "
                     << manifest_epoch_ << ", " << manifest.nodes.size()
                     << " nodes)";
  return Status::OK();
}

StatusOr<size_t> Pipeline::RunRound() {
  std::vector<std::string> order;
  {
    std::lock_guard<std::mutex> lock(mu_);
    order = node_order_;
  }
  std::atomic<size_t> processed{0};
  for (const std::string& name : order) {
    // Graceful drain (SIGTERM / SIGINT): stop before starting the next
    // node's batch. Every shard that already ran ended on a completed
    // checkpoint, so stopping here is always consistent.
    if (ShutdownRequested()) break;
    // Snapshot the node's shards: a concurrent ReconcileShards may append
    // (never remove) shards; appended ones join the next round for earlier
    // nodes, this round for later ones.
    std::vector<NodeShard*> shards;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& shard : nodes_.at(name)) shards.push_back(shard.get());
    }
    std::mutex error_mu;
    Status error = Status::OK();
    auto run_shard = [&processed, &error_mu, &error, &name](NodeShard* shard) {
      if (!shard->alive()) return;  // Independent failure (§4.2.2).
      auto result = shard->RunOnce();
      if (result.ok()) {
        processed.fetch_add(result.value(), std::memory_order_relaxed);
        return;
      }
      if (result.status().IsAborted()) {
        FBSTREAM_LOG(Warning)
            << name << "/shard-" << shard->bucket() << " crashed";
        return;  // Other shards keep running.
      }
      std::lock_guard<std::mutex> lock(error_mu);
      if (error.ok()) error = result.status();
    };
    if (executor_ != nullptr && shards.size() > 1) {
      std::vector<std::function<void()>> tasks;
      tasks.reserve(shards.size());
      for (NodeShard* shard : shards) {
        tasks.push_back([&run_shard, shard] { run_shard(shard); });
      }
      executor_->RunBatch(std::move(tasks));
    } else {
      for (NodeShard* shard : shards) run_shard(shard);
    }
    // The node's whole batch ran (matching parallel semantics); a
    // non-crash error still fails the round before downstream nodes run.
    if (!error.ok()) return error;
  }
  if (!manifest_dir_.empty()) SaveOffsetsSnapshot();
  return processed.load();
}

StatusOr<size_t> Pipeline::RunUntilQuiescent(int max_rounds) {
  size_t total = 0;
  for (int round = 0; round < max_rounds; ++round) {
    // A shutdown request ends the drive loop cleanly: the last round ended
    // on checkpoints, so "drained so far" is a consistent stopping point.
    if (ShutdownRequested()) return total;
    FBSTREAM_ASSIGN_OR_RETURN(size_t n, RunRound());
    total += n;
    if (n == 0) return total;
  }
  return Status::DeadlineExceeded(
      "pipeline still consuming after " + std::to_string(max_rounds) +
      " rounds (" + std::to_string(total) + " events processed)");
}

std::vector<NodeShard*> Pipeline::Shards(const std::string& node) const {
  std::vector<NodeShard*> out;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return out;
  for (const auto& shard : it->second) out.push_back(shard.get());
  return out;
}

NodeShard* Pipeline::Shard(const std::string& node, int bucket) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return nullptr;
  if (bucket < 0 || static_cast<size_t>(bucket) >= it->second.size()) {
    return nullptr;
  }
  return it->second[static_cast<size_t>(bucket)].get();
}

Status Pipeline::RecoverAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, shards] : nodes_) {
    for (auto& shard : shards) {
      if (!shard->alive()) {
        FBSTREAM_RETURN_IF_ERROR(shard->Recover());
      }
    }
  }
  return Status::OK();
}

Status Pipeline::ReconcileShards() {
  std::lock_guard<std::mutex> lock(mu_);
  bool grew = false;
  for (auto& [name, shards] : nodes_) {
    if (shards.empty()) continue;
    const NodeConfig& config = shards[0]->config();
    const int buckets = scribe_->NumBuckets(config.input_category);
    while (static_cast<int>(shards.size()) < buckets) {
      const int bucket = static_cast<int>(shards.size());
      FBSTREAM_ASSIGN_OR_RETURN(
          auto shard, NodeShard::Create(config, scribe_, clock_, bucket));
      shards.push_back(std::move(shard));
      grew = true;
    }
  }
  if (grew && !manifest_dir_.empty()) {
    FBSTREAM_RETURN_IF_ERROR(SaveManifestLocked());
  }
  return Status::OK();
}

std::vector<Pipeline::LagReport> Pipeline::GetProcessingLag() const {
  std::vector<LagReport> reports;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& name : node_order_) {
    for (const auto& shard : nodes_.at(name)) {
      reports.push_back(
          LagReport{name, shard->bucket(), shard->ProcessingLag()});
    }
  }
  return reports;
}

std::vector<Pipeline::BackupReport> Pipeline::GetBackupHealth() const {
  std::vector<BackupReport> reports;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& name : node_order_) {
    for (const auto& shard : nodes_.at(name)) {
      reports.push_back(
          BackupReport{name, shard->bucket(), shard->GetBackupHealth()});
    }
  }
  return reports;
}

std::vector<Pipeline::LagReport> Pipeline::GetLagAlerts(
    uint64_t threshold_messages) const {
  std::vector<LagReport> alerts;
  for (const LagReport& r : GetProcessingLag()) {
    if (r.lag_messages >= threshold_messages) alerts.push_back(r);
  }
  return alerts;
}

}  // namespace fbstream::stylus
