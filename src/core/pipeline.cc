#include "core/pipeline.h"

#include <atomic>
#include <functional>

#include "common/logging.h"

namespace fbstream::stylus {

Pipeline::Pipeline(scribe::Scribe* scribe, Clock* clock, Options options)
    : scribe_(scribe), clock_(clock), options_(options) {
  if (options_.num_threads > 1) {
    executor_ = std::make_unique<ShardExecutor>(options_.num_threads);
  }
}

Pipeline::~Pipeline() = default;

Status Pipeline::AddNode(const NodeConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.count(config.name) > 0) {
    return Status::AlreadyExists("node " + config.name);
  }
  const int buckets = scribe_->NumBuckets(config.input_category);
  if (buckets <= 0) {
    return Status::NotFound("input category " + config.input_category);
  }
  std::vector<std::unique_ptr<NodeShard>> shards;
  for (int b = 0; b < buckets; ++b) {
    FBSTREAM_ASSIGN_OR_RETURN(auto shard,
                              NodeShard::Create(config, scribe_, clock_, b));
    shards.push_back(std::move(shard));
  }
  node_order_.push_back(config.name);
  nodes_.emplace(config.name, std::move(shards));
  return Status::OK();
}

StatusOr<size_t> Pipeline::RunRound() {
  std::vector<std::string> order;
  {
    std::lock_guard<std::mutex> lock(mu_);
    order = node_order_;
  }
  std::atomic<size_t> processed{0};
  for (const std::string& name : order) {
    // Snapshot the node's shards: a concurrent ReconcileShards may append
    // (never remove) shards; appended ones join the next round for earlier
    // nodes, this round for later ones.
    std::vector<NodeShard*> shards;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& shard : nodes_.at(name)) shards.push_back(shard.get());
    }
    std::mutex error_mu;
    Status error = Status::OK();
    auto run_shard = [&processed, &error_mu, &error, &name](NodeShard* shard) {
      if (!shard->alive()) return;  // Independent failure (§4.2.2).
      auto result = shard->RunOnce();
      if (result.ok()) {
        processed.fetch_add(result.value(), std::memory_order_relaxed);
        return;
      }
      if (result.status().IsAborted()) {
        FBSTREAM_LOG(Warning)
            << name << "/shard-" << shard->bucket() << " crashed";
        return;  // Other shards keep running.
      }
      std::lock_guard<std::mutex> lock(error_mu);
      if (error.ok()) error = result.status();
    };
    if (executor_ != nullptr && shards.size() > 1) {
      std::vector<std::function<void()>> tasks;
      tasks.reserve(shards.size());
      for (NodeShard* shard : shards) {
        tasks.push_back([&run_shard, shard] { run_shard(shard); });
      }
      executor_->RunBatch(std::move(tasks));
    } else {
      for (NodeShard* shard : shards) run_shard(shard);
    }
    // The node's whole batch ran (matching parallel semantics); a
    // non-crash error still fails the round before downstream nodes run.
    if (!error.ok()) return error;
  }
  return processed.load();
}

StatusOr<size_t> Pipeline::RunUntilQuiescent(int max_rounds) {
  size_t total = 0;
  for (int round = 0; round < max_rounds; ++round) {
    FBSTREAM_ASSIGN_OR_RETURN(size_t n, RunRound());
    total += n;
    if (n == 0) return total;
  }
  return Status::DeadlineExceeded(
      "pipeline still consuming after " + std::to_string(max_rounds) +
      " rounds (" + std::to_string(total) + " events processed)");
}

std::vector<NodeShard*> Pipeline::Shards(const std::string& node) const {
  std::vector<NodeShard*> out;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return out;
  for (const auto& shard : it->second) out.push_back(shard.get());
  return out;
}

NodeShard* Pipeline::Shard(const std::string& node, int bucket) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return nullptr;
  if (bucket < 0 || static_cast<size_t>(bucket) >= it->second.size()) {
    return nullptr;
  }
  return it->second[static_cast<size_t>(bucket)].get();
}

Status Pipeline::RecoverAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, shards] : nodes_) {
    for (auto& shard : shards) {
      if (!shard->alive()) {
        FBSTREAM_RETURN_IF_ERROR(shard->Recover());
      }
    }
  }
  return Status::OK();
}

Status Pipeline::ReconcileShards() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, shards] : nodes_) {
    if (shards.empty()) continue;
    const NodeConfig& config = shards[0]->config();
    const int buckets = scribe_->NumBuckets(config.input_category);
    while (static_cast<int>(shards.size()) < buckets) {
      const int bucket = static_cast<int>(shards.size());
      FBSTREAM_ASSIGN_OR_RETURN(
          auto shard, NodeShard::Create(config, scribe_, clock_, bucket));
      shards.push_back(std::move(shard));
    }
  }
  return Status::OK();
}

std::vector<Pipeline::LagReport> Pipeline::GetProcessingLag() const {
  std::vector<LagReport> reports;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& name : node_order_) {
    for (const auto& shard : nodes_.at(name)) {
      reports.push_back(
          LagReport{name, shard->bucket(), shard->ProcessingLag()});
    }
  }
  return reports;
}

std::vector<Pipeline::BackupReport> Pipeline::GetBackupHealth() const {
  std::vector<BackupReport> reports;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& name : node_order_) {
    for (const auto& shard : nodes_.at(name)) {
      reports.push_back(
          BackupReport{name, shard->bucket(), shard->GetBackupHealth()});
    }
  }
  return reports;
}

std::vector<Pipeline::LagReport> Pipeline::GetLagAlerts(
    uint64_t threshold_messages) const {
  std::vector<LagReport> alerts;
  for (const LagReport& r : GetProcessingLag()) {
    if (r.lag_messages >= threshold_messages) alerts.push_back(r);
  }
  return alerts;
}

}  // namespace fbstream::stylus
