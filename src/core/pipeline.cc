#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/shutdown.h"

namespace fbstream::stylus {

// One continuous event loop. `pending` counts in-flight work units for the
// quiescence check: each polled non-empty batch is one unit, held from the
// moment of polling until its commit completes (so overlap shows 2: one
// committing, one processing). The commit channel is a one-slot handoff
// between the shard thread and the commit pool; commits for one shard never
// overlap each other.
struct Pipeline::ShardLoop {
  std::string node;
  NodeShard* shard = nullptr;
  std::thread thread;

  std::mutex mu;
  std::condition_variable cv;
  bool commit_inflight = false;  // Guarded by mu.
  Status commit_status;          // Result of the last finished commit.
  std::atomic<int> pending{0};
};

Pipeline::Pipeline(scribe::Scribe* scribe, Clock* clock, Options options)
    : scribe_(scribe), clock_(clock), options_(options) {
  if (options_.num_threads > 1) {
    executor_ = std::make_unique<ShardExecutor>(options_.num_threads);
  }
}

Pipeline::~Pipeline() {
  if (running()) (void)Stop();
}

Status Pipeline::AddNode(const NodeConfig& config) {
  if (running()) {
    return Status::FailedPrecondition(
        "cannot add nodes while continuous execution is running");
  }
  std::lock_guard<std::mutex> lock(mu_);
  return AddNodeLocked(config);
}

Status Pipeline::AddNodeLocked(const NodeConfig& config) {
  if (nodes_.count(config.name) > 0) {
    return Status::AlreadyExists("node " + config.name);
  }
  const int buckets = scribe_->NumBuckets(config.input_category);
  if (buckets <= 0) {
    return Status::NotFound("input category " + config.input_category);
  }
  std::vector<std::unique_ptr<NodeShard>> shards;
  for (int b = 0; b < buckets; ++b) {
    FBSTREAM_ASSIGN_OR_RETURN(auto shard,
                              NodeShard::Create(config, scribe_, clock_, b));
    shards.push_back(std::move(shard));
  }
  node_order_.push_back(config.name);
  nodes_.emplace(config.name, std::move(shards));
  if (!manifest_dir_.empty()) {
    FBSTREAM_RETURN_IF_ERROR(SaveManifestLocked());
  }
  return Status::OK();
}

Status Pipeline::SaveManifestLocked() {
  // A partial pipeline sees only its slice of the topology; writing that
  // slice as PIPELINE would amputate every other worker's nodes from the
  // shared manifest.
  if (manifest_partial_) return Status::OK();
  PipelineManifest manifest;
  manifest.epoch = ++manifest_epoch_;
  for (const std::string& name : node_order_) {
    const auto& shards = nodes_.at(name);
    if (shards.empty()) continue;
    const NodeConfig& config = shards[0]->config();
    ManifestNodeRecord record;
    record.name = config.name;
    record.input_category = config.input_category;
    record.num_shards = static_cast<int>(shards.size());
    record.state_semantics = config.state_semantics;
    record.output_semantics = config.output_semantics;
    record.backend = config.backend;
    record.state_dir = config.state_dir;
    record.checkpoint_every_events = config.checkpoint_every_events;
    record.checkpoint_every_bytes = config.checkpoint_every_bytes;
    record.backup_every_checkpoints = config.backup_every_checkpoints;
    record.max_pending_backups = config.max_pending_backups;
    manifest.nodes.push_back(std::move(record));
  }
  return SaveManifest(manifest_dir_, manifest);
}

Status Pipeline::EnableManifest(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dir.empty()) return Status::InvalidArgument("empty manifest dir");
  manifest_dir_ = dir;
  manifest_partial_ = false;  // A fresh deployment owns the whole manifest.
  offsets_scope_.clear();
  return SaveManifestLocked();
}

void Pipeline::SaveOffsetsSnapshot() {
  std::vector<ShardOffsetRecord> offsets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& name : node_order_) {
      for (const auto& shard : nodes_.at(name)) {
        offsets.push_back(
            ShardOffsetRecord{name, shard->bucket(), shard->TailerOffset()});
      }
    }
  }
  // Serialize the write: continuous commit threads hit the cadence
  // concurrently, and two interleaved atomic-rename writes would race on
  // the temp file.
  std::lock_guard<std::mutex> snapshot_lock(snapshot_mu_);
  // Advisory data (see LoadOffsetsSnapshot): a failed write costs recovery
  // precision, not correctness, so it must not fail the round. It must not
  // be invisible either — a sustained streak means recovery would replay
  // from an ever-staler floor, so the failure is counted for the exporter
  // and the streak is tracked for MonitoringService::ActiveSnapshotAlerts.
  const Status status = ::fbstream::stylus::SaveOffsetsSnapshot(
      manifest_dir_, offsets, offsets_scope_);
  if (!status.ok()) {
    static Counter* failures = MetricsRegistry::Global()->GetCounter(
        "recovery.offsets.write_failures");
    failures->Add();
    offsets_failure_streak_.fetch_add(1, std::memory_order_relaxed);
    FBSTREAM_LOG(Warning) << "offsets snapshot write failed: " << status;
  } else {
    offsets_failure_streak_.store(0, std::memory_order_relaxed);
  }
}

Status Pipeline::Recover(const std::string& dir,
                         const NodeConfigResolver& resolver) {
  return Recover(dir, resolver, RecoverOptions{});
}

Status Pipeline::Recover(const std::string& dir,
                         const NodeConfigResolver& resolver,
                         const RecoverOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!nodes_.empty()) {
      return Status::FailedPrecondition("Recover requires an empty pipeline");
    }
  }
  static Histogram* recovery_time =
      MetricsRegistry::Global()->GetHistogram("recovery.time_us");
  ScopedLatencyTimer timer(recovery_time);
  FBSTREAM_ASSIGN_OR_RETURN(const PipelineManifest manifest,
                            LoadManifest(dir));
  const bool partial = !options.node_filter.empty();
  if (partial) {
    for (const std::string& wanted : options.node_filter) {
      bool found = false;
      for (const ManifestNodeRecord& record : manifest.nodes) {
        if (record.name == wanted) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument("node filter names '" + wanted +
                                       "', which the manifest does not record");
      }
    }
  }
  auto in_filter = [&](const std::string& name) {
    if (!partial) return true;
    for (const std::string& wanted : options.node_filter) {
      if (wanted == name) return true;
    }
    return false;
  };
  const std::vector<ShardOffsetRecord> snapshot = LoadOffsetsSnapshot(dir);
  std::lock_guard<std::mutex> lock(mu_);
  // manifest_dir_ stays empty until all nodes are rebuilt (so AddNodeLocked
  // never persists a half-recovered topology); the partial flag is set
  // first so nothing in between can rewrite PIPELINE.
  manifest_partial_ = partial;
  if (partial) {
    offsets_scope_ = options.offsets_scope;
    if (offsets_scope_.empty()) {
      for (const std::string& name : options.node_filter) {
        if (!offsets_scope_.empty()) offsets_scope_ += "+";
        offsets_scope_ += name;
      }
    }
  } else {
    offsets_scope_.clear();
  }
  size_t recovered = 0;
  for (const ManifestNodeRecord& record : manifest.nodes) {
    if (!in_filter(record.name)) continue;
    ++recovered;
    FBSTREAM_ASSIGN_OR_RETURN(NodeConfig config, resolver(record));
    // The manifest is authoritative for everything it records; the resolver
    // only supplies the parts that can't be serialized (factories, schema,
    // sink, cluster handles).
    config.name = record.name;
    config.input_category = record.input_category;
    config.state_semantics = record.state_semantics;
    config.output_semantics = record.output_semantics;
    config.backend = record.backend;
    config.state_dir = record.state_dir;
    config.checkpoint_every_events = record.checkpoint_every_events;
    config.checkpoint_every_bytes = record.checkpoint_every_bytes;
    config.backup_every_checkpoints = record.backup_every_checkpoints;
    config.max_pending_backups = record.max_pending_backups;
    config.restore_state_from_backup = true;
    if (scribe_->NumBuckets(record.input_category) < record.num_shards) {
      // Fewer buckets than recorded shards would silently orphan the extra
      // shards' state; a rescale while down must be resolved by the operator.
      return Status::FailedPrecondition(
          "category " + record.input_category + " has fewer buckets than the " +
          std::to_string(record.num_shards) + " shards recorded for node " +
          record.name);
    }
    FBSTREAM_RETURN_IF_ERROR(AddNodeLocked(config));
    for (const auto& shard : nodes_.at(record.name)) {
      if (!shard->had_checkpoint_offset()) {
        // The shard lost its checkpoint. An offsets-snapshot record is the
        // tell between two very different situations: with no record this
        // is a fresh deployment that legitimately starts from zero, while a
        // record proves a predecessor incarnation ran at least to the
        // recorded floor before the wipe.
        bool ran_before = false;
        uint64_t floor = 0;
        for (const ShardOffsetRecord& r : snapshot) {
          if (r.node == record.name && r.bucket == shard->bucket()) {
            ran_before = true;
            floor = std::max(floor, r.offset);
          }
        }
        if (ran_before &&
            record.output_semantics == OutputSemantics::kAtMostOnce) {
          // The snapshot floor trails the dead incarnation's true cursor
          // (it is written every few batches), and everything the
          // predecessor processed was already emitted to the bus. Resuming
          // anywhere behind that unknown true position re-emits output;
          // the live tail is the only position that cannot duplicate, and
          // at-most-once prefers the loss.
          FBSTREAM_RETURN_IF_ERROR(shard->FastForwardInputToTail());
        } else if (ran_before &&
                   record.state_semantics == StateSemantics::kAtMostOnce) {
          // An at-most-once-*state* shard must not replay from zero (that
          // would re-count events it already applied); the advisory floor
          // is close to where it died.
          shard->SeekTailer(std::max(shard->TailerOffset(), floor));
        }
      }
      shard->RequestBackupResync();
    }
  }
  manifest_dir_ = dir;
  manifest_epoch_ = manifest.epoch;  // SaveManifestLocked bumps it.
  FBSTREAM_RETURN_IF_ERROR(SaveManifestLocked());  // No-op when partial.
  static Counter* recoveries =
      MetricsRegistry::Global()->GetCounter("recovery.pipeline.recoveries");
  recoveries->Add();
  FBSTREAM_LOG(Info) << "pipeline recovered from " << dir << " (epoch "
                     << manifest_epoch_ << ", " << recovered << " of "
                     << manifest.nodes.size() << " nodes"
                     << (manifest_partial_ ? ", partial" : "") << ")";
  return Status::OK();
}

StatusOr<size_t> Pipeline::RunRound() {
  if (running()) {
    return Status::FailedPrecondition(
        "continuous execution is running; Stop() before driving rounds");
  }
  std::vector<std::string> order;
  {
    std::lock_guard<std::mutex> lock(mu_);
    order = node_order_;
  }
  std::atomic<size_t> processed{0};
  for (const std::string& name : order) {
    // Graceful drain (SIGTERM / SIGINT): stop before starting the next
    // node's batch. Every shard that already ran ended on a completed
    // checkpoint, so stopping here is always consistent.
    if (ShutdownRequested()) break;
    // Snapshot the node's shards: a concurrent ReconcileShards may append
    // (never remove) shards; appended ones join the next round for earlier
    // nodes, this round for later ones.
    std::vector<NodeShard*> shards;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& shard : nodes_.at(name)) shards.push_back(shard.get());
    }
    std::mutex error_mu;
    Status error = Status::OK();
    auto run_shard = [&processed, &error_mu, &error, &name](NodeShard* shard) {
      if (!shard->alive()) return;  // Independent failure (§4.2.2).
      auto result = shard->RunOnce();
      if (result.ok()) {
        processed.fetch_add(result.value(), std::memory_order_relaxed);
        return;
      }
      if (result.status().IsAborted()) {
        FBSTREAM_LOG(Warning)
            << name << "/shard-" << shard->bucket() << " crashed";
        return;  // Other shards keep running.
      }
      std::lock_guard<std::mutex> lock(error_mu);
      if (error.ok()) error = result.status();
    };
    if (executor_ != nullptr && shards.size() > 1) {
      std::vector<std::function<void()>> tasks;
      tasks.reserve(shards.size());
      for (NodeShard* shard : shards) {
        tasks.push_back([&run_shard, shard] { run_shard(shard); });
      }
      executor_->RunBatch(std::move(tasks));
    } else {
      for (NodeShard* shard : shards) run_shard(shard);
    }
    // The node's whole batch ran (matching parallel semantics); a
    // non-crash error still fails the round before downstream nodes run.
    if (!error.ok()) return error;
  }
  if (!manifest_dir_.empty()) SaveOffsetsSnapshot();
  return processed.load();
}

StatusOr<size_t> Pipeline::RunUntilQuiescent(int max_rounds) {
  size_t total = 0;
  for (int round = 0; round < max_rounds; ++round) {
    // A shutdown request ends the drive loop cleanly: the last round ended
    // on checkpoints, so "drained so far" is a consistent stopping point.
    // It is NOT quiescence, though — input may remain — so it must be
    // distinguishable from a completed drain: a caller that took the old
    // plain-total return as "drained" would tear down with events still
    // queued. Cancelled carries the count in its message.
    if (ShutdownRequested()) {
      return Status::Cancelled("shutdown requested after draining " +
                               std::to_string(total) + " events");
    }
    FBSTREAM_ASSIGN_OR_RETURN(size_t n, RunRound());
    total += n;
    if (n == 0) return total;
  }
  return Status::DeadlineExceeded(
      "pipeline still consuming after " + std::to_string(max_rounds) +
      " rounds (" + std::to_string(total) + " events processed)");
}

Status Pipeline::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("continuous execution already running");
  }
  stop_requested_.store(false, std::memory_order_release);
  continuous_processed_.store(0, std::memory_order_relaxed);
  continuous_commits_.store(0, std::memory_order_relaxed);
  if (options_.overlap_commits && options_.commit_threads > 0) {
    commit_pool_ = std::make_unique<ShardExecutor>(options_.commit_threads);
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::lock_guard<std::mutex> loops_lock(loops_mu_);
  for (const std::string& name : node_order_) {
    for (const auto& shard : nodes_.at(name)) {
      SpawnLoopLocked(name, shard.get());
    }
  }
  FBSTREAM_LOG(Info) << "continuous execution started (" << loops_.size()
                     << " shard loops, "
                     << (commit_pool_ != nullptr ? options_.commit_threads : 0)
                     << " commit threads)";
  return Status::OK();
}

Status Pipeline::Stop() {
  if (!running()) {
    return Status::FailedPrecondition("continuous execution is not running");
  }
  stop_requested_.store(true, std::memory_order_release);
  // Take ownership of the loops under loops_mu_, but join with the lock
  // released: a loop thread can be blocked on mu_ (lag scan, offsets
  // snapshot) while a concurrent ReconcileShards holds mu_ and waits on
  // loops_mu_ — joining under loops_mu_ closes that cycle into a deadlock.
  // The swap is safe against new spawns because SpawnLoopLocked no-ops once
  // stop is requested (stored above, before loops_mu_ is taken).
  std::vector<std::unique_ptr<ShardLoop>> loops;
  {
    std::lock_guard<std::mutex> loops_lock(loops_mu_);
    loops.swap(loops_);
  }
  for (auto& loop : loops) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  // Drain the commit pool before destroying the loops: a commit callback's
  // tail can still be running after FinishCommit observed the commit done,
  // and it touches the loop's mutex/cv.
  if (commit_pool_ != nullptr) {
    commit_pool_->Shutdown();
    commit_pool_.reset();
  }
  loops.clear();
  // Inside loops_mu_ so a racing ReconcileShards either spawned before the
  // swap a loop we just joined (SpawnLoopLocked no-ops once stop is
  // requested), or observes not-running and spawns nothing.
  {
    std::lock_guard<std::mutex> loops_lock(loops_mu_);
    running_.store(false, std::memory_order_release);
  }
  if (!manifest_dir_.empty()) SaveOffsetsSnapshot();
  FBSTREAM_LOG(Info) << "continuous execution stopped ("
                     << continuous_processed_.load(std::memory_order_relaxed)
                     << " events processed)";
  return Status::OK();
}

void Pipeline::SpawnLoopLocked(const std::string& node, NodeShard* shard) {
  if (stop_requested_.load(std::memory_order_acquire)) return;
  auto loop = std::make_unique<ShardLoop>();
  loop->node = node;
  loop->shard = shard;
  ShardLoop* raw = loop.get();
  loops_.push_back(std::move(loop));
  raw->thread = std::thread([this, raw] { ShardLoopMain(raw); });
}

// Largest backlog any consumer of `category` still has — the "queue depth"
// of the edge this category implements. Empty category (terminal sink) or
// no consumers means no backpressure.
uint64_t Pipeline::MaxDownstreamLag(const std::string& category) const {
  uint64_t max_lag = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, shards] : nodes_) {
    if (shards.empty()) continue;
    if (shards[0]->config().input_category != category) continue;
    for (const auto& shard : shards) {
      // A dead shard's backlog doesn't stall upstream: failure independence
      // (§4.2.2) wins over backpressure. Its loop idles until RecoverAll,
      // and the backlog lands in the durable bus, not in memory — otherwise
      // one crashed consumer would eventually freeze the whole DAG back to
      // the source.
      if (!shard->alive()) continue;
      max_lag = std::max(max_lag, shard->ProcessingLag());
    }
  }
  return max_lag;
}

// Waits for the shard's overlapped commit (if any) and applies its outcome
// on the calling (shard) thread. Returns false when the commit failed — on
// Aborted the injected crash is applied here, where it cannot race the
// shard's own processing.
bool Pipeline::FinishCommit(ShardLoop* loop) {
  Status st;
  {
    std::unique_lock<std::mutex> lock(loop->mu);
    loop->cv.wait(lock, [loop] { return !loop->commit_inflight; });
    st = loop->commit_status;
    loop->commit_status = Status::OK();
  }
  if (st.ok()) return true;
  if (st.IsAborted()) {
    FBSTREAM_LOG(Warning) << loop->node << "/shard-" << loop->shard->bucket()
                          << " crashed during commit";
    loop->shard->Crash();
  } else {
    FBSTREAM_LOG(Warning) << loop->node << "/shard-" << loop->shard->bucket()
                          << " commit failed: " << st;
  }
  return false;
}

void Pipeline::AfterCommit(size_t events) {
  continuous_processed_.fetch_add(events, std::memory_order_relaxed);
  const uint64_t commits =
      continuous_commits_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!manifest_dir_.empty() && options_.snapshot_every_batches > 0 &&
      commits % options_.snapshot_every_batches == 0) {
    SaveOffsetsSnapshot();
  }
}

void Pipeline::ShardLoopMain(ShardLoop* loop) {
  NodeShard* shard = loop->shard;
  MetricsRegistry* metrics = MetricsRegistry::Global();
  Gauge* queue_depth = metrics->GetGauge("stylus.continuous.queue_depth",
                                         loop->node, shard->bucket());
  Counter* stalls = metrics->GetCounter("stylus.continuous.backpressure_stalls",
                                        loop->node, shard->bucket());
  Counter* batches =
      metrics->GetCounter("stylus.continuous.batches", loop->node,
                          shard->bucket());
  Gauge* overlap_inflight =
      metrics->GetGauge("stylus.continuous.overlap_inflight");
  // Monoid shards append partials into a single-threaded buffer during
  // processing and flush it at commit; overlapping the two would race, so
  // they commit on the loop thread.
  const bool inline_commit = commit_pool_ == nullptr ||
                             shard->config().monoid_factory != nullptr;
  const std::string out_category = shard->config().sink != nullptr
                                       ? shard->config().sink->OutputCategory()
                                       : std::string();
  const auto idle =
      std::chrono::microseconds(std::max(1, options_.idle_sleep_micros));

  while (!stop_requested_.load(std::memory_order_acquire) &&
         !ShutdownRequested()) {
    queue_depth->Set(static_cast<int64_t>(shard->ProcessingLag()));
    if (!shard->alive()) {
      // Independent failure (§4.2.2): this loop idles until RecoverAll
      // revives the shard; upstream keeps producing into the durable bus.
      std::this_thread::sleep_for(idle);
      continue;
    }
    if (!out_category.empty() &&
        MaxDownstreamLag(out_category) > options_.max_queue_messages) {
      // Backpressure: the downstream edge is full. Don't poll — the stall
      // makes *this* shard's input back up, which stalls its own upstream
      // in turn, all the way to the source tailer.
      stalls->Add();
      std::this_thread::sleep_for(idle);
      continue;
    }

    loop->pending.fetch_add(1, std::memory_order_acq_rel);
    auto batch_or = shard->ProcessBatch();
    if (!batch_or.ok()) {
      loop->pending.fetch_sub(1, std::memory_order_acq_rel);
      // Aborted = injected crash; ProcessBatch already downed the shard.
      if (!batch_or.status().IsAborted()) {
        FBSTREAM_LOG(Warning) << loop->node << "/shard-" << shard->bucket()
                              << " process failed: " << batch_or.status();
      }
      std::this_thread::sleep_for(idle);
      continue;
    }
    PendingBatch batch = std::move(batch_or).value();
    if (batch.events == 0) {
      loop->pending.fetch_sub(1, std::memory_order_acq_rel);
      // Idle tick: settle the overlapped commit, then run backup
      // maintenance — allowed exactly here because no commit is in flight.
      if (FinishCommit(loop)) shard->MaintainBackups();
      std::this_thread::sleep_for(idle);
      continue;
    }

    const size_t events = batch.events;
    batches->Add();
    if (inline_commit) {
      Status st = shard->CommitBatch(std::move(batch));
      if (st.IsAborted()) {
        FBSTREAM_LOG(Warning) << loop->node << "/shard-" << shard->bucket()
                              << " crashed during commit";
        shard->Crash();
      } else if (!st.ok()) {
        FBSTREAM_LOG(Warning) << loop->node << "/shard-" << shard->bucket()
                              << " commit failed: " << st;
      } else {
        AfterCommit(events);
      }
      loop->pending.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }

    // §4.2 processing overlap: settle the *previous* batch's commit, hand
    // this one to the commit pool, and immediately loop around to process
    // the next batch while it commits.
    if (!FinishCommit(loop)) {
      // Previous commit crashed or failed the shard; this batch is void (a
      // recovered shard replays or skips it per its semantics).
      loop->pending.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(loop->mu);
      loop->commit_inflight = true;
    }
    overlap_inflight->Add(1);
    commit_pool_->Submit(
        [this, loop, events, overlap_inflight,
         batch = std::move(batch)]() mutable {
          Status st = loop->shard->CommitBatch(std::move(batch));
          if (st.ok()) AfterCommit(events);
          overlap_inflight->Add(-1);
          {
            // Notify under the lock: a waiter can only observe the cleared
            // flag after this section releases the mutex, so the notify has
            // finished before the ShardLoop can be considered settled.
            std::lock_guard<std::mutex> lock(loop->mu);
            loop->commit_status = std::move(st);
            loop->commit_inflight = false;
            loop->pending.fetch_sub(1, std::memory_order_acq_rel);
            loop->cv.notify_all();
          }
        });
  }
  // Graceful drain: the in-flight commit completes before the loop exits,
  // so the shard's last act is a completed checkpoint.
  FinishCommit(loop);
  queue_depth->Set(static_cast<int64_t>(shard->ProcessingLag()));
}

bool Pipeline::QuiescentOnce() const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, shards] : nodes_) {
      for (const auto& shard : shards) {
        if (shard->alive() && shard->ProcessingLag() > 0) return false;
      }
    }
  }
  std::lock_guard<std::mutex> loops_lock(loops_mu_);
  for (const auto& loop : loops_) {
    if (loop->pending.load(std::memory_order_acquire) != 0) return false;
  }
  return true;
}

StatusOr<size_t> Pipeline::WaitUntilQuiescent(int64_t timeout_ms) {
  if (!running()) {
    return Status::FailedPrecondition("continuous execution is not running");
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (ShutdownRequested()) {
      return Status::Cancelled(
          "shutdown requested after draining " +
          std::to_string(continuous_processed_.load(
              std::memory_order_relaxed)) +
          " events");
    }
    const size_t before =
        continuous_processed_.load(std::memory_order_acquire);
    if (QuiescentOnce()) {
      // Double-check with a settle delay: a batch that started after the
      // first check would show as pending or as a processed-count bump.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      if (QuiescentOnce() &&
          continuous_processed_.load(std::memory_order_acquire) == before) {
        return before;
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded(
          "pipeline still consuming after " + std::to_string(timeout_ms) +
          " ms (" +
          std::to_string(
              continuous_processed_.load(std::memory_order_relaxed)) +
          " events processed)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::vector<NodeShard*> Pipeline::Shards(const std::string& node) const {
  std::vector<NodeShard*> out;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return out;
  for (const auto& shard : it->second) out.push_back(shard.get());
  return out;
}

NodeShard* Pipeline::Shard(const std::string& node, int bucket) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return nullptr;
  if (bucket < 0 || static_cast<size_t>(bucket) >= it->second.size()) {
    return nullptr;
  }
  return it->second[static_cast<size_t>(bucket)].get();
}

Status Pipeline::RecoverAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, shards] : nodes_) {
    for (auto& shard : shards) {
      if (!shard->alive()) {
        FBSTREAM_RETURN_IF_ERROR(shard->Recover());
      }
    }
  }
  return Status::OK();
}

Status Pipeline::ReconcileShards() {
  std::lock_guard<std::mutex> lock(mu_);
  bool grew = false;
  for (auto& [name, shards] : nodes_) {
    if (shards.empty()) continue;
    const NodeConfig& config = shards[0]->config();
    const int buckets = scribe_->NumBuckets(config.input_category);
    while (static_cast<int>(shards.size()) < buckets) {
      const int bucket = static_cast<int>(shards.size());
      FBSTREAM_ASSIGN_OR_RETURN(
          auto shard, NodeShard::Create(config, scribe_, clock_, bucket));
      NodeShard* raw = shard.get();
      shards.push_back(std::move(shard));
      grew = true;
      if (running()) {
        // Continuous mode: a new bucket needs a consumer *now*, not at the
        // next round — give the shard its own event loop immediately.
        std::lock_guard<std::mutex> loops_lock(loops_mu_);
        SpawnLoopLocked(name, raw);
      }
    }
  }
  if (grew && !manifest_dir_.empty()) {
    FBSTREAM_RETURN_IF_ERROR(SaveManifestLocked());
  }
  return Status::OK();
}

std::vector<Pipeline::LagReport> Pipeline::GetProcessingLag() const {
  std::vector<LagReport> reports;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& name : node_order_) {
    for (const auto& shard : nodes_.at(name)) {
      reports.push_back(
          LagReport{name, shard->bucket(), shard->ProcessingLag()});
    }
  }
  return reports;
}

std::vector<Pipeline::BackupReport> Pipeline::GetBackupHealth() const {
  std::vector<BackupReport> reports;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& name : node_order_) {
    for (const auto& shard : nodes_.at(name)) {
      reports.push_back(
          BackupReport{name, shard->bucket(), shard->GetBackupHealth()});
    }
  }
  return reports;
}

std::vector<Pipeline::LagReport> Pipeline::GetLagAlerts(
    uint64_t threshold_messages) const {
  std::vector<LagReport> alerts;
  for (const LagReport& r : GetProcessingLag()) {
    if (r.lag_messages >= threshold_messages) alerts.push_back(r);
  }
  return alerts;
}

}  // namespace fbstream::stylus
