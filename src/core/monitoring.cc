#include "core/monitoring.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace fbstream::stylus {

void MonitoringService::RegisterPipeline(const std::string& service,
                                         Pipeline* pipeline) {
  std::lock_guard<std::mutex> lock(mu_);
  pipelines_[service] = pipeline;
}

void MonitoringService::Sample() {
  const Micros now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [service, pipeline] : pipelines_) {
    for (const Pipeline::LagReport& report : pipeline->GetProcessingLag()) {
      auto& series =
          samples_[Key{service, report.node, report.shard}];
      series.push_back(LagSample{now, report.lag_messages});
      if (series.size() > history_) series.pop_front();
    }
  }
}

std::vector<LagSample> MonitoringService::History(const std::string& service,
                                                  const std::string& node,
                                                  int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = samples_.find(Key{service, node, shard});
  if (it == samples_.end()) return {};
  return std::vector<LagSample>(it->second.begin(), it->second.end());
}

std::vector<MonitoringService::Alert> MonitoringService::ActiveAlerts(
    uint64_t lag_threshold) const {
  std::vector<Alert> alerts;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, series] : samples_) {
    if (series.empty()) continue;
    if (series.back().lag_messages >= lag_threshold) {
      alerts.push_back(Alert{key.service, key.node, key.shard,
                             series.back().lag_messages});
    }
  }
  return alerts;
}

std::vector<MonitoringService::BackupAlert>
MonitoringService::ActiveBackupAlerts() const {
  const Micros now = clock_->NowMicros();
  std::vector<BackupAlert> alerts;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [service, pipeline] : pipelines_) {
    for (const Pipeline::BackupReport& r : pipeline->GetBackupHealth()) {
      if (!r.health.degraded) continue;
      BackupAlert alert;
      alert.service = service;
      alert.node = r.node;
      alert.shard = r.shard;
      alert.pending_backups = r.health.pending_backups;
      if (r.health.degraded_since > 0 && now > r.health.degraded_since) {
        alert.degraded_for_micros = now - r.health.degraded_since;
      }
      alerts.push_back(std::move(alert));
    }
  }
  return alerts;
}

bool MonitoringService::IsFallingBehind(const std::string& service,
                                        const std::string& node, int shard,
                                        size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = samples_.find(Key{service, node, shard});
  if (it == samples_.end() || it->second.size() < window + 1) return false;
  const auto& series = it->second;
  for (size_t i = series.size() - window; i < series.size(); ++i) {
    if (series[i].lag_messages <= series[i - 1].lag_messages) return false;
  }
  return true;
}

void AutoScaler::RegisterPipeline(const std::string& service,
                                  Pipeline* pipeline) {
  std::lock_guard<std::mutex> lock(mu_);
  pipelines_[service] = pipeline;
  // A re-registered service is a fresh deployment: drop its recorded
  // streaks so a new node reusing a service/node key starts from zero.
  const std::string prefix = service + "/";
  for (auto it = bad_streak_.lower_bound(prefix); it != bad_streak_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    it = bad_streak_.erase(it);
  }
}

std::vector<std::string> AutoScaler::Evaluate() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> actions;
  std::set<std::string> live_keys;
  for (const auto& [service, pipeline] : pipelines_) {
    for (const std::string& node : pipeline->NodeNames()) {
      const std::string key = service + "/" + node;
      live_keys.insert(key);
      const std::vector<NodeShard*> shards = pipeline->Shards(node);
      if (shards.empty()) {
        // No shards means no lag and no input category to rebucket.
        bad_streak_.erase(key);
        continue;
      }
      // A node's pressure is the worst lag across its shards.
      uint64_t worst = 0;
      for (NodeShard* shard : shards) {
        worst = std::max(worst, shard->ProcessingLag());
      }
      const std::string category = shards[0]->config().input_category;
      if (worst >= options_.lag_threshold) {
        ++bad_streak_[key];
      } else {
        bad_streak_[key] = 0;
        continue;
      }
      if (bad_streak_[key] < options_.sustained_samples) continue;
      bad_streak_[key] = 0;

      const int buckets = scribe_->NumBuckets(category);
      if (buckets >= options_.max_buckets) {
        FBSTREAM_LOG(Warning)
            << "autoscaler: " << key << " at max buckets " << buckets;
        continue;
      }
      const int target = std::min(options_.max_buckets, buckets * 2);
      const Status st = scribe_->SetNumBuckets(category, target);
      if (!st.ok()) {
        FBSTREAM_LOG(Warning) << "autoscaler rebucket: " << st;
        continue;
      }
      const Status reconcile = pipeline->ReconcileShards();
      if (!reconcile.ok()) {
        FBSTREAM_LOG(Warning) << "autoscaler reconcile: " << reconcile;
        continue;
      }
      ++scale_ups_;
      actions.push_back(key + ": rebucketed " + category + " " +
                        std::to_string(buckets) + " -> " +
                        std::to_string(target));
    }
  }
  // Prune streaks whose node vanished (pipeline replaced or unregistered):
  // a fresh node that later reuses the key must not inherit them.
  for (auto it = bad_streak_.begin(); it != bad_streak_.end();) {
    if (live_keys.count(it->first) == 0) {
      it = bad_streak_.erase(it);
    } else {
      ++it;
    }
  }
  return actions;
}

}  // namespace fbstream::stylus
