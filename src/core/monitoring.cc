#include "core/monitoring.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace fbstream::stylus {

void MonitoringService::RegisterPipeline(const std::string& service,
                                         Pipeline* pipeline) {
  std::lock_guard<std::mutex> lock(mu_);
  pipelines_[service] = pipeline;
}

void MonitoringService::Sample() {
  const Micros now = clock_->NowMicros();
  // Snapshot registrations, then walk pipelines with mu_ RELEASED:
  // GetProcessingLag takes each pipeline's own lock, and holding mu_ across
  // the walk would stall History/ActiveAlerts readers (and any worker round
  // contending on a pipeline lock would transitively block them too).
  std::map<std::string, Pipeline*> pipelines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pipelines = pipelines_;
  }
  struct Observation {
    Key key;
    uint64_t lag_messages;
  };
  std::vector<Observation> observed;
  for (const auto& [service, pipeline] : pipelines) {
    for (const Pipeline::LagReport& report : pipeline->GetProcessingLag()) {
      observed.push_back(
          Observation{Key{service, report.node, report.shard},
                      report.lag_messages});
    }
  }
  // Re-acquire only to append: the critical section is now O(samples), with
  // no pipeline or Scribe locks held inside it.
  std::lock_guard<std::mutex> lock(mu_);
  for (Observation& o : observed) {
    auto& series = samples_[std::move(o.key)];
    series.push_back(LagSample{now, o.lag_messages});
    if (series.size() > history_) series.pop_front();
  }
}

std::vector<LagSample> MonitoringService::History(const std::string& service,
                                                  const std::string& node,
                                                  int shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = samples_.find(Key{service, node, shard});
  if (it == samples_.end()) return {};
  return std::vector<LagSample>(it->second.begin(), it->second.end());
}

std::vector<MonitoringService::Alert> MonitoringService::ActiveAlerts(
    uint64_t lag_threshold) const {
  std::vector<Alert> alerts;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, series] : samples_) {
    if (series.empty()) continue;
    if (series.back().lag_messages >= lag_threshold) {
      alerts.push_back(Alert{key.service, key.node, key.shard,
                             series.back().lag_messages});
    }
  }
  return alerts;
}

std::vector<MonitoringService::BackupAlert>
MonitoringService::ActiveBackupAlerts() const {
  const Micros now = clock_->NowMicros();
  // Same discipline as Sample(): never hold mu_ while taking pipeline locks.
  std::map<std::string, Pipeline*> pipelines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pipelines = pipelines_;
  }
  std::vector<BackupAlert> alerts;
  for (const auto& [service, pipeline] : pipelines) {
    for (const Pipeline::BackupReport& r : pipeline->GetBackupHealth()) {
      if (!r.health.degraded) continue;
      BackupAlert alert;
      alert.service = service;
      alert.node = r.node;
      alert.shard = r.shard;
      alert.pending_backups = r.health.pending_backups;
      if (r.health.degraded_since > 0 && now > r.health.degraded_since) {
        alert.degraded_for_micros = now - r.health.degraded_since;
      }
      alerts.push_back(std::move(alert));
    }
  }
  return alerts;
}

std::vector<MonitoringService::SnapshotAlert>
MonitoringService::ActiveSnapshotAlerts(uint64_t threshold) const {
  std::map<std::string, Pipeline*> pipelines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pipelines = pipelines_;
  }
  std::vector<SnapshotAlert> alerts;
  for (const auto& [service, pipeline] : pipelines) {
    const uint64_t streak = pipeline->OffsetsWriteFailureStreak();
    if (threshold > 0 && streak >= threshold) {
      alerts.push_back(SnapshotAlert{service, streak});
    }
  }
  return alerts;
}

bool MonitoringService::IsFallingBehind(const std::string& service,
                                        const std::string& node, int shard,
                                        size_t window) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = samples_.find(Key{service, node, shard});
  if (it == samples_.end() || it->second.size() < window + 1) return false;
  const auto& series = it->second;
  for (size_t i = series.size() - window; i < series.size(); ++i) {
    if (series[i].lag_messages <= series[i - 1].lag_messages) return false;
  }
  return true;
}

void AutoScaler::RegisterPipeline(const std::string& service,
                                  Pipeline* pipeline) {
  std::lock_guard<std::mutex> lock(mu_);
  pipelines_[service] = pipeline;
  // A re-registered service is a fresh deployment: drop its recorded
  // streaks so a new node reusing a service/node key starts from zero.
  const std::string prefix = service + "/";
  for (auto it = bad_streak_.lower_bound(prefix); it != bad_streak_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    it = bad_streak_.erase(it);
  }
}

std::vector<std::string> AutoScaler::Evaluate() {
  // Phase 1 — read pressure with mu_ RELEASED. Lag reads are atomic shard
  // counters behind the pipeline's own lock; holding mu_ here used to block
  // RegisterPipeline (deployments) for the whole walk.
  std::map<std::string, Pipeline*> pipelines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pipelines = pipelines_;
  }
  struct Pressure {
    std::string key;
    Pipeline* pipeline = nullptr;
    std::string category;
    uint64_t worst_lag = 0;
    bool has_shards = false;
  };
  std::vector<Pressure> nodes;
  std::set<std::string> live_keys;
  for (const auto& [service, pipeline] : pipelines) {
    for (const std::string& node : pipeline->NodeNames()) {
      Pressure p;
      p.key = service + "/" + node;
      p.pipeline = pipeline;
      live_keys.insert(p.key);
      // A node's pressure is the worst lag across its shards.
      const std::vector<NodeShard*> shards = pipeline->Shards(node);
      p.has_shards = !shards.empty();
      for (NodeShard* shard : shards) {
        p.worst_lag = std::max(p.worst_lag, shard->ProcessingLag());
      }
      if (p.has_shards) p.category = shards[0]->config().input_category;
      nodes.push_back(std::move(p));
    }
  }

  // Phase 2 — streak bookkeeping under mu_. Pure map updates: nothing in
  // this section takes pipeline or Scribe locks.
  std::vector<Pressure> to_scale;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Pressure& p : nodes) {
      if (!p.has_shards) {
        // No shards means no lag and no input category to rebucket.
        bad_streak_.erase(p.key);
        continue;
      }
      if (p.worst_lag >= options_.lag_threshold) {
        ++bad_streak_[p.key];
      } else {
        bad_streak_[p.key] = 0;
        continue;
      }
      if (bad_streak_[p.key] < options_.sustained_samples) continue;
      bad_streak_[p.key] = 0;
      to_scale.push_back(std::move(p));
    }
    // Prune streaks whose node vanished (pipeline replaced or unregistered):
    // a fresh node that later reuses the key must not inherit them.
    for (auto it = bad_streak_.begin(); it != bad_streak_.end();) {
      if (live_keys.count(it->first) == 0) {
        it = bad_streak_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Phase 3 — act with mu_ RELEASED again: rebucketing and reconciling take
  // Scribe and pipeline locks and create shards, which can be slow.
  std::vector<std::string> actions;
  for (const Pressure& p : to_scale) {
    const int buckets = scribe_->NumBuckets(p.category);
    if (buckets >= options_.max_buckets) {
      FBSTREAM_LOG(Warning)
          << "autoscaler: " << p.key << " at max buckets " << buckets;
      continue;
    }
    const int target = std::min(options_.max_buckets, buckets * 2);
    const Status st = scribe_->SetNumBuckets(p.category, target);
    if (!st.ok()) {
      FBSTREAM_LOG(Warning) << "autoscaler rebucket: " << st;
      continue;
    }
    const Status reconcile = p.pipeline->ReconcileShards();
    if (!reconcile.ok()) {
      FBSTREAM_LOG(Warning) << "autoscaler reconcile: " << reconcile;
      continue;
    }
    ++scale_ups_;
    actions.push_back(p.key + ": rebucketed " + p.category + " " +
                      std::to_string(buckets) + " -> " +
                      std::to_string(target));
  }
  return actions;
}

}  // namespace fbstream::stylus
