#include "core/monitoring.h"

#include <algorithm>

#include "common/logging.h"

namespace fbstream::stylus {

void MonitoringService::RegisterPipeline(const std::string& service,
                                         Pipeline* pipeline) {
  pipelines_[service] = pipeline;
}

void MonitoringService::Sample() {
  const Micros now = clock_->NowMicros();
  for (const auto& [service, pipeline] : pipelines_) {
    for (const Pipeline::LagReport& report : pipeline->GetProcessingLag()) {
      auto& series =
          samples_[Key{service, report.node, report.shard}];
      series.push_back(LagSample{now, report.lag_messages});
      if (series.size() > history_) series.pop_front();
    }
  }
}

std::vector<LagSample> MonitoringService::History(const std::string& service,
                                                  const std::string& node,
                                                  int shard) const {
  auto it = samples_.find(Key{service, node, shard});
  if (it == samples_.end()) return {};
  return std::vector<LagSample>(it->second.begin(), it->second.end());
}

std::vector<MonitoringService::Alert> MonitoringService::ActiveAlerts(
    uint64_t lag_threshold) const {
  std::vector<Alert> alerts;
  for (const auto& [key, series] : samples_) {
    if (series.empty()) continue;
    if (series.back().lag_messages >= lag_threshold) {
      alerts.push_back(Alert{key.service, key.node, key.shard,
                             series.back().lag_messages});
    }
  }
  return alerts;
}

bool MonitoringService::IsFallingBehind(const std::string& service,
                                        const std::string& node, int shard,
                                        size_t window) const {
  auto it = samples_.find(Key{service, node, shard});
  if (it == samples_.end() || it->second.size() < window + 1) return false;
  const auto& series = it->second;
  for (size_t i = series.size() - window; i < series.size(); ++i) {
    if (series[i].lag_messages <= series[i - 1].lag_messages) return false;
  }
  return true;
}

void AutoScaler::RegisterPipeline(const std::string& service,
                                  Pipeline* pipeline) {
  pipelines_[service] = pipeline;
}

std::vector<std::string> AutoScaler::Evaluate() {
  std::vector<std::string> actions;
  for (const auto& [service, pipeline] : pipelines_) {
    for (const std::string& node : pipeline->NodeNames()) {
      // A node's pressure is the worst lag across its shards.
      uint64_t worst = 0;
      std::string category;
      for (NodeShard* shard : pipeline->Shards(node)) {
        worst = std::max(worst, shard->ProcessingLag());
        category = shard->config().input_category;
      }
      const std::string key = service + "/" + node;
      if (worst >= options_.lag_threshold) {
        ++bad_streak_[key];
      } else {
        bad_streak_[key] = 0;
        continue;
      }
      if (bad_streak_[key] < options_.sustained_samples) continue;
      bad_streak_[key] = 0;

      const int buckets = scribe_->NumBuckets(category);
      if (buckets >= options_.max_buckets) {
        FBSTREAM_LOG(Warning)
            << "autoscaler: " << key << " at max buckets " << buckets;
        continue;
      }
      const int target = std::min(options_.max_buckets, buckets * 2);
      const Status st = scribe_->SetNumBuckets(category, target);
      if (!st.ok()) {
        FBSTREAM_LOG(Warning) << "autoscaler rebucket: " << st;
        continue;
      }
      const Status reconcile = pipeline->ReconcileShards();
      if (!reconcile.ok()) {
        FBSTREAM_LOG(Warning) << "autoscaler reconcile: " << reconcile;
        continue;
      }
      ++scale_ups_;
      actions.push_back(key + ": rebucketed " + category + " " +
                        std::to_string(buckets) + " -> " +
                        std::to_string(target));
    }
  }
  return actions;
}

}  // namespace fbstream::stylus
