#include "core/telemetry.h"

#include <limits>

namespace fbstream::stylus {

SchemaPtr TelemetrySchema() {
  static SchemaPtr schema = Schema::Make({
      {"time", ValueType::kInt64},
      {"kind", ValueType::kString},
      {"name", ValueType::kString},
      {"service", ValueType::kString},
      {"node", ValueType::kString},
      {"shard", ValueType::kInt64},
      {"value", ValueType::kDouble},
      {"count", ValueType::kInt64},
      {"p50", ValueType::kDouble},
      {"p99", ValueType::kDouble},
      {"max", ValueType::kDouble},
      {"trace_id", ValueType::kInt64},
  });
  return schema;
}

TelemetryExporter::TelemetryExporter(scribe::Scribe* scribe, Options options)
    : scribe_(scribe),
      options_(std::move(options)),
      schema_(TelemetrySchema()),
      registry_(MetricsRegistry::Global()),
      tracer_(Tracer::Global()),
      rows_exported_metric_(
          registry_->GetCounter("telemetry.rows.exported")) {}

Status TelemetryExporter::Init() {
  if (scribe_->HasCategory(options_.category)) return Status::OK();
  scribe::CategoryConfig config;
  config.name = options_.category;
  config.num_buckets = options_.num_buckets;
  config.retention_micros = options_.retention_micros;
  const Status st = scribe_->CreateCategory(config);
  // A concurrent Init won the race; the category exists either way.
  if (st.code() == StatusCode::kAlreadyExists) return Status::OK();
  return st;
}

void TelemetryExporter::RegisterPipeline(const std::string& service,
                                         Pipeline* pipeline) {
  std::lock_guard<std::mutex> lock(mu_);
  pipelines_[service] = pipeline;
}

Status TelemetryExporter::AttachToScuba(scuba::Scuba* scuba,
                                        const std::string& table) {
  FBSTREAM_RETURN_IF_ERROR(Init());
  if (scuba->GetTable(table) == nullptr) {
    FBSTREAM_RETURN_IF_ERROR(scuba->CreateTable(table, schema_));
  }
  return scuba->AttachCategory(table, options_.category);
}

Status TelemetryExporter::WriteRow(const Row& row) {
  TextRowCodec codec(schema_);
  // Shard by metric identity so one hot metric cannot serialize the whole
  // category when the telemetry stream itself is multi-bucket.
  const std::string key =
      row.Get("name").CoerceString() + "/" + row.Get("node").CoerceString();
  return scribe_->WriteSharded(options_.category, key, codec.Encode(row));
}

Status TelemetryExporter::ExportOnce() {
  const Micros now = scribe_->clock()->NowMicros();
  uint64_t written = 0;
  Status first_error = Status::OK();
  // Export is best-effort: keep going past individual append failures and
  // report the first one (a lossy telemetry tick must not wedge the rest).
  auto write = [&](const Row& row) {
    const Status st = WriteRow(row);
    if (st.ok()) {
      ++written;
    } else if (first_error.ok()) {
      first_error = st;
    }
  };

  for (const MetricSnapshot& m : registry_->Snapshot()) {
    Row row(schema_);
    row.Set("time", Value(static_cast<int64_t>(now)));
    row.Set("kind", Value(MetricKindToString(m.kind)));
    row.Set("name", Value(m.name));
    row.Set("service", Value(std::string()));
    row.Set("node", Value(m.node));
    row.Set("shard", Value(static_cast<int64_t>(m.shard)));
    row.Set("value", Value(m.value));
    row.Set("count", Value(static_cast<int64_t>(m.count)));
    row.Set("p50", Value(m.p50));
    row.Set("p99", Value(m.p99));
    row.Set("max", Value(m.max));
    row.Set("trace_id", Value(static_cast<int64_t>(0)));
    write(row);
  }

  std::map<std::string, Pipeline*> pipelines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pipelines = pipelines_;
  }
  for (const auto& [service, pipeline] : pipelines) {
    for (const Pipeline::LagReport& r : pipeline->GetProcessingLag()) {
      Row row(schema_);
      row.Set("time", Value(static_cast<int64_t>(now)));
      row.Set("kind", Value("lag"));
      row.Set("name", Value(kLagMetricName));
      row.Set("service", Value(service));
      row.Set("node", Value(r.node));
      row.Set("shard", Value(static_cast<int64_t>(r.shard)));
      row.Set("value", Value(static_cast<double>(r.lag_messages)));
      row.Set("count", Value(static_cast<int64_t>(0)));
      row.Set("p50", Value(0.0));
      row.Set("p99", Value(0.0));
      row.Set("max", Value(0.0));
      row.Set("trace_id", Value(static_cast<int64_t>(0)));
      write(row);
    }
  }

  for (const SpanRecord& s : tracer_->DrainSpans()) {
    Row row(schema_);
    // Span rows are timestamped at span start, so per-hop queries bucket by
    // when the latency was incurred, not when the exporter ran.
    row.Set("time", Value(static_cast<int64_t>(s.start_time)));
    row.Set("kind", Value("span"));
    row.Set("name", Value(s.hop));
    row.Set("service", Value(std::string()));
    row.Set("node", Value(s.node));
    row.Set("shard", Value(static_cast<int64_t>(s.shard)));
    row.Set("value", Value(static_cast<double>(s.duration_micros)));
    row.Set("count", Value(static_cast<int64_t>(0)));
    row.Set("p50", Value(0.0));
    row.Set("p99", Value(0.0));
    row.Set("max", Value(0.0));
    row.Set("trace_id", Value(static_cast<int64_t>(s.trace_id)));
    write(row);
  }

  rows_exported_.fetch_add(written, std::memory_order_relaxed);
  rows_exported_metric_->Add(written);
  return first_error;
}

namespace {

scuba::Query LagSeriesQuery(const std::string& service,
                            const std::string& node, int shard) {
  scuba::Query q;
  q.filters = {
      {"kind", scuba::FilterOp::kEq, Value("lag")},
      {"service", scuba::FilterOp::kEq, Value(service)},
      {"node", scuba::FilterOp::kEq, Value(node)},
      {"shard", scuba::FilterOp::kEq, Value(static_cast<int64_t>(shard))},
  };
  q.aggregates = {scuba::Aggregate{scuba::AggKind::kMax, "value"}};
  // One point per export tick: ticks are distinct microsecond timestamps,
  // and kMax collapses duplicate rows within a tick (a re-exported tick
  // reports the same lag, so max is exact, not an approximation).
  q.time_column = "time";
  q.bucket_micros = 1;
  // No group_by, so the dashboard's top-7 series cut does not apply.
  return q;
}

}  // namespace

std::vector<LagSample> ScubaLagView::History(const std::string& service,
                                             const std::string& node,
                                             int shard) const {
  auto result = table_->Run(LagSeriesQuery(service, node, shard));
  if (!result.ok()) return {};
  std::vector<LagSample> out;
  out.reserve(result->rows.size());
  for (const scuba::ResultRow& r : result->rows) {
    out.push_back(LagSample{
        r.bucket, static_cast<uint64_t>(r.aggregates.empty() ? 0
                                                             : r.aggregates[0])});
  }
  return out;
}

std::vector<MonitoringService::Alert> ScubaLagView::ActiveAlerts(
    uint64_t lag_threshold) const {
  // Pass 1: enumerate every (service, node, shard) present in the lag data.
  // The limit must be effectively unbounded — alerting walks every shard,
  // not a dashboard's top-7 series.
  scuba::Query groups;
  groups.filters = {{"kind", scuba::FilterOp::kEq, Value("lag")}};
  groups.group_by = {"service", "node", "shard"};
  groups.aggregates = {scuba::Aggregate{scuba::AggKind::kCount}};
  groups.limit = std::numeric_limits<size_t>::max();
  auto result = table_->Run(groups);
  if (!result.ok()) return {};

  // Pass 2: per shard, the latest point decides (same contract as
  // MonitoringService::ActiveAlerts).
  std::vector<MonitoringService::Alert> alerts;
  for (const scuba::ResultRow& g : result->rows) {
    if (g.group.size() != 3) continue;
    const std::string service = g.group[0].CoerceString();
    const std::string node = g.group[1].CoerceString();
    const int shard = static_cast<int>(g.group[2].CoerceInt64());
    const std::vector<LagSample> series = History(service, node, shard);
    if (series.empty()) continue;
    if (series.back().lag_messages >= lag_threshold) {
      alerts.push_back(MonitoringService::Alert{service, node, shard,
                                                series.back().lag_messages});
    }
  }
  return alerts;
}

bool ScubaLagView::IsFallingBehind(const std::string& service,
                                   const std::string& node, int shard,
                                   size_t window) const {
  const std::vector<LagSample> series = History(service, node, shard);
  if (series.size() < window + 1) return false;
  for (size_t i = series.size() - window; i < series.size(); ++i) {
    if (series[i].lag_messages <= series[i - 1].lag_messages) return false;
  }
  return true;
}

}  // namespace fbstream::stylus
