#ifndef FBSTREAM_CORE_MONITORING_H_
#define FBSTREAM_CORE_MONITORING_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "scribe/scribe.h"

namespace fbstream::stylus {

// Monitoring and automatic scaling (§6.4 and the paper's conclusion).
//
// §6.4: "We then use alerts to detect when an app is processing its Scribe
// input more slowly than the input is being generated. We call that
// 'processing lag'. ... In the future, we would like to provide dashboards
// and alerts that are automatically configured ... We would also like to
// scale the apps automatically." The dashboard/alert part is implemented as
// the paper describes; auto-scaling implements the future-work item using
// the mechanism the paper names (§6.4: "changing the parallelism is often
// just changing the number of Scribe buckets and restarting the nodes").
//
// Thread-safety: monitoring runs on its own thread in a deployed system.
// Sample() and Evaluate() are safe to call while a pipeline round is in
// flight on the worker pool — they only touch atomic shard counters and
// mutex-guarded pipeline/Scribe state — and both services serialize their
// own bookkeeping behind an internal mutex.

// One lag observation for one shard.
struct LagSample {
  Micros time = 0;
  uint64_t lag_messages = 0;
};

// Automatically configured dashboard: samples processing lag for every
// shard of every registered pipeline and retains a bounded history that a
// UI (or test) can chart.
class MonitoringService {
 public:
  explicit MonitoringService(Clock* clock, size_t history = 256)
      : clock_(clock), history_(history) {}

  // Registers a pipeline under a service name; all of its nodes are
  // monitored with no per-app setup (the "automatically configured" part).
  void RegisterPipeline(const std::string& service, Pipeline* pipeline);

  // Takes one lag sample for every shard. Call periodically; may race a
  // running round (lag reads are atomic snapshots).
  void Sample();

  // Time series for one node shard, oldest first.
  std::vector<LagSample> History(const std::string& service,
                                 const std::string& node, int shard) const;

  struct Alert {
    std::string service;
    std::string node;
    int shard = 0;
    uint64_t lag_messages = 0;
  };
  // Shards whose *latest* sampled lag exceeds the threshold.
  std::vector<Alert> ActiveAlerts(uint64_t lag_threshold) const;

  // True if the shard's lag grew monotonically over the last `window`
  // samples — the "falling behind" signal that should page someone (or
  // trigger the auto-scaler).
  bool IsFallingBehind(const std::string& service, const std::string& node,
                       int shard, size_t window = 3) const;

  // Shards currently running without remote backup copies (§4.4.2 degraded
  // mode). Unlike lag alerts this reads live shard state, not samples: a
  // shard that cannot back up should page immediately, not at the next
  // sampling interval.
  struct BackupAlert {
    std::string service;
    std::string node;
    int shard = 0;
    uint64_t pending_backups = 0;
    Micros degraded_for_micros = 0;  // Length of the ongoing episode.
  };
  std::vector<BackupAlert> ActiveBackupAlerts() const;

  // Pipelines whose OFFSETS-snapshot writes have failed `threshold` or more
  // times in a row. Like backup alerts this reads live pipeline state: the
  // advisory snapshot degrades recovery precision silently, so a sustained
  // streak (disk full, directory unwritable) should page rather than wait
  // for someone to grep logs.
  struct SnapshotAlert {
    std::string service;
    uint64_t consecutive_failures = 0;
  };
  std::vector<SnapshotAlert> ActiveSnapshotAlerts(uint64_t threshold) const;

 private:
  struct Key {
    std::string service;
    std::string node;
    int shard;
    bool operator<(const Key& other) const {
      if (service != other.service) return service < other.service;
      if (node != other.node) return node < other.node;
      return shard < other.shard;
    }
  };

  Clock* clock_;
  size_t history_;
  mutable std::mutex mu_;
  std::map<std::string, Pipeline*> pipelines_;
  std::map<Key, std::deque<LagSample>> samples_;
};

// Automatic scaling: when a node keeps falling behind, double its input
// category's bucket count and reconcile the pipeline so new shards pick up
// the new buckets. "We save both time and machine resources by being able
// to change it easily; we can get started with some initial level and then
// adapt quickly" (§6.4).
class AutoScaler {
 public:
  struct Options {
    uint64_t lag_threshold = 1000;   // Messages behind before acting.
    size_t sustained_samples = 3;    // Consecutive bad samples required.
    int max_buckets = 64;
  };

  AutoScaler(MonitoringService* monitoring, scribe::Scribe* scribe,
             Options options)
      : monitoring_(monitoring), scribe_(scribe), options_(options) {}

  // Registers (or replaces) a pipeline under a service name. Re-registering
  // is treated as a fresh deployment: any lag streaks recorded under this
  // service are forgotten, so a new node reusing a service/node key cannot
  // inherit a stale streak and trigger a bogus scale-up.
  void RegisterPipeline(const std::string& service, Pipeline* pipeline);

  // Evaluates every monitored node once; returns descriptions of scaling
  // actions taken (empty if none). Safe to call while pipeline rounds are
  // in flight: the triggered ReconcileShards adds shards that join the next
  // round.
  std::vector<std::string> Evaluate();

  int scale_ups() const { return scale_ups_.load(std::memory_order_relaxed); }

 private:
  MonitoringService* monitoring_;
  scribe::Scribe* scribe_;
  Options options_;
  std::mutex mu_;
  std::map<std::string, Pipeline*> pipelines_;
  std::map<std::string, size_t> bad_streak_;  // service/node -> streak.
  std::atomic<int> scale_ups_{0};
};

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_MONITORING_H_
