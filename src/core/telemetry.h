#ifndef FBSTREAM_CORE_TELEMETRY_H_
#define FBSTREAM_CORE_TELEMETRY_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/serde.h"
#include "core/monitoring.h"
#include "core/pipeline.h"
#include "scribe/scribe.h"
#include "storage/scuba/scuba.h"

namespace fbstream::stylus {

// Self-hosted telemetry (§5, §6.4): fbstream observes itself with the same
// realtime stack it implements. The TelemetryExporter flattens the metrics
// registry, per-shard processing lag, and sampled trace spans into rows on a
// dedicated Scribe category; Scuba tails that category like any other
// stream, and lag/latency dashboards become ordinary slice-and-dice queries
// (see OBSERVABILITY.md for the query guide).
//
// Row kinds in the telemetry table (one schema, discriminated by `kind`):
//   "counter" / "gauge"  — value holds the metric value.
//   "histogram"          — value = sum; count/p50/p99/max filled in.
//   "lag"                — name = "stylus.lag_messages", service/node/shard
//                          identify the pipeline shard, value = messages
//                          behind the bucket head at export time.
//   "span"               — name = hop ("scribe.deliver", "engine.process",
//                          "storage.commit"), time = span start,
//                          value = duration in micros, trace_id nonzero.

// Column layout shared by the Scribe payloads and the Scuba table.
SchemaPtr TelemetrySchema();

inline constexpr char kDefaultTelemetryCategory[] = "fbstream_telemetry";
// The `name` column of "lag" rows.
inline constexpr char kLagMetricName[] = "stylus.lag_messages";

class TelemetryExporter {
 public:
  struct Options {
    std::string category = kDefaultTelemetryCategory;
    int num_buckets = 1;
    // Telemetry is small and dashboards look at recent data.
    Micros retention_micros = kMicrosPerDay;
  };

  TelemetryExporter(scribe::Scribe* scribe, Options options);
  // Inline so Options' defaults are parsed in complete-class context (a
  // `= {}` default argument here would not be).
  explicit TelemetryExporter(scribe::Scribe* scribe)
      : TelemetryExporter(scribe, Options()) {}

  // Creates the telemetry category (idempotent).
  Status Init();

  // Registers a pipeline for per-shard lag rows. Give it the same service
  // name it has in MonitoringService so the Scuba-backed lag series lines up
  // with the directly-polled one.
  void RegisterPipeline(const std::string& service, Pipeline* pipeline);

  // Creates `table` with the telemetry schema and tails the exporter's
  // category into it. Call Scuba::PollAll() after each ExportOnce (or on its
  // own cadence) to move rows from Scribe into the table.
  Status AttachToScuba(scuba::Scuba* scuba, const std::string& table);

  // One export tick: a metric row per registry entry, a lag row per shard of
  // every registered pipeline, and a span row per buffered trace span. The
  // exporter's own writes are themselves metered (telemetry.rows.exported,
  // plus scribe.append.* for the telemetry category) — the telemetry stream
  // shows up on its own dashboard like any other stream.
  Status ExportOnce();

  uint64_t rows_exported() const {
    return rows_exported_.load(std::memory_order_relaxed);
  }

 private:
  Status WriteRow(const Row& row);

  scribe::Scribe* scribe_;
  Options options_;
  SchemaPtr schema_;
  MetricsRegistry* registry_;
  Tracer* tracer_;
  Counter* rows_exported_metric_;
  std::atomic<uint64_t> rows_exported_{0};
  mutable std::mutex mu_;
  std::map<std::string, Pipeline*> pipelines_;
};

// Scuba-backed counterpart of MonitoringService's lag dashboard/alerts
// (§6.4): answers the same questions by querying the self-ingested telemetry
// table instead of polling pipelines directly. The differential test checks
// that both modes agree on the same seeded lag scenario.
class ScubaLagView {
 public:
  explicit ScubaLagView(const scuba::ScubaTable* table) : table_(table) {}

  // Lag time series for one shard, oldest first. Each export tick becomes
  // one point (time bucket = 1us, so distinct ticks stay distinct).
  std::vector<LagSample> History(const std::string& service,
                                 const std::string& node, int shard) const;

  // Shards whose latest exported lag meets the threshold; same contract as
  // MonitoringService::ActiveAlerts.
  std::vector<MonitoringService::Alert> ActiveAlerts(
      uint64_t lag_threshold) const;

  // Monotone-growth check over the last `window` points; same contract as
  // MonitoringService::IsFallingBehind.
  bool IsFallingBehind(const std::string& service, const std::string& node,
                       int shard, size_t window = 3) const;

 private:
  const scuba::ScubaTable* table_;
};

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_TELEMETRY_H_
