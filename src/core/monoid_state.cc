#include "core/monoid_state.h"

namespace fbstream::stylus {

RemoteMonoidState::RemoteMonoidState(zippydb::Cluster* cluster,
                                     const MonoidAggregator* aggregator,
                                     std::string key_prefix,
                                     RemoteWriteMode mode)
    : cluster_(cluster),
      aggregator_(aggregator),
      key_prefix_(std::move(key_prefix)),
      mode_(mode) {}

void RemoteMonoidState::Append(const std::string& key,
                               const std::string& partial) {
  auto it = partials_.find(key);
  if (it == partials_.end()) {
    partials_.emplace(key, partial);
  } else {
    it->second = aggregator_->Combine(it->second, partial);
  }
}

StatusOr<std::string> RemoteMonoidState::Read(const std::string& key) {
  std::string value;
  auto remote = cluster_->Get(RemoteKey(key));
  if (remote.ok()) {
    value = std::move(remote).value();
  } else if (remote.status().IsNotFound()) {
    value = aggregator_->Identity();
  } else {
    return remote.status();
  }
  auto it = partials_.find(key);
  if (it != partials_.end()) {
    value = aggregator_->Combine(value, it->second);
  }
  return value;
}

Status RemoteMonoidState::Flush() {
  for (const auto& [key, partial] : partials_) {
    if (mode_ == RemoteWriteMode::kAppendOnly) {
      FBSTREAM_RETURN_IF_ERROR(cluster_->Merge(RemoteKey(key), partial));
      continue;
    }
    // Read-modify-write.
    std::string existing;
    auto remote = cluster_->Get(RemoteKey(key));
    if (remote.ok()) {
      existing = std::move(remote).value();
    } else if (remote.status().IsNotFound()) {
      existing = aggregator_->Identity();
    } else {
      return remote.status();
    }
    FBSTREAM_RETURN_IF_ERROR(
        cluster_->Put(RemoteKey(key), aggregator_->Combine(existing, partial)));
  }
  partials_.clear();
  return Status::OK();
}

}  // namespace fbstream::stylus
