#include "core/watermark.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace fbstream::stylus {

void WatermarkEstimator::Observe(Micros event_time, Micros arrival_time) {
  const Micros lateness = std::max<Micros>(0, arrival_time - event_time);
  lateness_.push_back(lateness);
  if (lateness_.size() > window_) lateness_.pop_front();
  max_event_time_ = std::max(max_event_time_, event_time);
}

Micros WatermarkEstimator::EstimateLowWatermark(Micros now,
                                                double confidence) const {
  if (lateness_.empty()) return now;
  std::vector<Micros> sorted(lateness_.begin(), lateness_.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(1.0, std::max(0.0, confidence));
  // Round the rank up: at confidence c we must cover at least a c-fraction
  // of the observed lateness distribution, so small samples err toward the
  // later (safer) quantile.
  const size_t rank = static_cast<size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size() - 1)));
  return now - sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace fbstream::stylus
