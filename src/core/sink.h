#ifndef FBSTREAM_CORE_SINK_H_
#define FBSTREAM_CORE_SINK_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "common/value.h"
#include "scribe/scribe.h"
#include "storage/lsm/write_batch.h"
#include "storage/scuba/scuba.h"
#include "storage/zippydb/zippydb.h"

namespace fbstream::stylus {

// Where a processor's output goes (§2.4: "the output can be another Scribe
// stream or a data store for serving the data"). Exactly-once output
// requires the sink to support transactions; Scribe (a transport) does not,
// data stores may.
class OutputSink {
 public:
  virtual ~OutputSink() = default;

  virtual Status Emit(const Row& row) = 0;

  virtual bool SupportsTransactions() const { return false; }
  // For exactly-once output: translate rows into ops committed atomically
  // with the checkpoint.
  virtual Status AppendToTransaction(const std::vector<Row>& rows,
                                     lsm::WriteBatch* batch) {
    (void)rows;
    (void)batch;
    return Status::Unimplemented("sink does not support transactions");
  }
  // Scribe category this sink writes into, or "" for terminal sinks (data
  // stores). The continuous engine uses this to find a node's downstream
  // consumers: backpressure is the Scribe backlog between a producer and the
  // tailers of the category it feeds (§5.3 — the persistent bus *is* the
  // queue, so "full" means the slowest consumer is too far behind).
  virtual std::string OutputCategory() const { return ""; }
};

// Writes rows into a Scribe category, resharded by the given key columns
// (the mechanism behind the re-sharding edges of Figure 3).
class ScribeSink : public OutputSink {
 public:
  ScribeSink(scribe::Scribe* scribe, std::string category,
             SchemaPtr output_schema, std::vector<std::string> shard_columns);

  Status Emit(const Row& row) override;
  std::string OutputCategory() const override { return category_; }

 private:
  scribe::Scribe* scribe_;
  std::string category_;
  TextRowCodec codec_;
  std::vector<std::string> shard_columns_;
};

// Writes rows into a Scuba table (best-effort serving store; §4.3.2:
// "Exactly-once semantics are not possible because Scuba does not support
// transactions").
class ScubaSink : public OutputSink {
 public:
  explicit ScubaSink(scuba::ScubaTable* table) : table_(table) {}

  Status Emit(const Row& row) override;

 private:
  scuba::ScubaTable* table_;
};

// Writes (key, value) rows into ZippyDB; transactional, so exactly-once
// output is available.
class ZippyDbSink : public OutputSink {
 public:
  ZippyDbSink(zippydb::Cluster* cluster, std::string key_prefix,
              std::vector<std::string> key_columns,
              std::vector<std::string> value_columns);

  Status Emit(const Row& row) override;
  bool SupportsTransactions() const override { return true; }
  Status AppendToTransaction(const std::vector<Row>& rows,
                             lsm::WriteBatch* batch) override;

  zippydb::Cluster* cluster() const { return cluster_; }

 private:
  std::string KeyOf(const Row& row) const;
  std::string ValueOf(const Row& row) const;

  zippydb::Cluster* cluster_;
  std::string key_prefix_;
  std::vector<std::string> key_columns_;
  std::vector<std::string> value_columns_;
};

// Test sink: collects rows in memory (thread-safe).
class CollectingSink : public OutputSink {
 public:
  Status Emit(const Row& row) override {
    std::lock_guard<std::mutex> lock(mu_);
    rows_.push_back(row);
    return Status::OK();
  }

  std::vector<Row> rows() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rows_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rows_.size();
  }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    rows_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Row> rows_;
};

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_SINK_H_
