#include "core/node.h"

#include <algorithm>

#include "common/fs.h"
#include "common/logging.h"
#include "common/serde.h"

namespace fbstream::stylus {

NodeShard::NodeShard(NodeConfig config, scribe::Scribe* scribe, Clock* clock,
                     int bucket)
    : config_(std::move(config)),
      scribe_(scribe),
      clock_(clock),
      bucket_(bucket),
      tailer_(scribe, config_.input_category, bucket),
      checkpoint_retry_(std::make_unique<RetryPolicy>(clock)) {
  MetricsRegistry* metrics = MetricsRegistry::Global();
  events_processed_metric_ =
      metrics->GetCounter("stylus.events.processed", config_.name, bucket_);
  checkpoints_metric_ = metrics->GetCounter("stylus.checkpoints.completed",
                                            config_.name, bucket_);
  runonce_latency_metric_ =
      metrics->GetHistogram("stylus.runonce.latency_us", config_.name, bucket_);
  hop_scribe_metric_ =
      metrics->GetHistogram("hop.scribe.deliver_us", config_.name, bucket_);
  hop_engine_metric_ =
      metrics->GetHistogram("hop.engine.process_us", config_.name, bucket_);
  hop_storage_metric_ =
      metrics->GetHistogram("hop.storage.commit_us", config_.name, bucket_);
}

StatusOr<std::unique_ptr<NodeShard>> NodeShard::Create(
    const NodeConfig& config, scribe::Scribe* scribe, Clock* clock,
    int bucket) {
  const int factories = (config.stateless_factory != nullptr ? 1 : 0) +
                        (config.stateful_factory != nullptr ? 1 : 0) +
                        (config.monoid_factory != nullptr ? 1 : 0);
  if (factories != 1) {
    return Status::InvalidArgument(config.name +
                                   ": exactly one processor factory required");
  }
  if (!IsSupportedCombination(config.state_semantics,
                              config.output_semantics)) {
    return Status::InvalidArgument(
        config.name + ": unsupported semantics combination (state=" +
        ToString(config.state_semantics) + ", output=" +
        ToString(config.output_semantics) + "); see Figure 8");
  }
  if (config.input_schema == nullptr) {
    return Status::InvalidArgument(config.name + ": input schema required");
  }
  if (!scribe->HasCategory(config.input_category)) {
    return Status::NotFound(config.name + ": input category " +
                            config.input_category);
  }
  if (config.monoid_factory != nullptr) {
    if (config.remote == nullptr || config.monoid_aggregator == nullptr) {
      return Status::InvalidArgument(
          config.name + ": monoid nodes need a remote cluster + aggregator");
    }
    if (config.state_semantics != StateSemantics::kAtLeastOnce) {
      return Status::InvalidArgument(
          config.name +
          ": monoid remote state supports at-least-once state semantics");
    }
  }
  if (config.backend == StateBackend::kRemote && config.remote == nullptr) {
    return Status::InvalidArgument(config.name + ": remote backend needs a "
                                                 "cluster");
  }
  if ((config.backend == StateBackend::kLocal ||
       config.backend == StateBackend::kNone) &&
      config.state_dir.empty() && config.monoid_factory == nullptr) {
    return Status::InvalidArgument(config.name +
                                   ": local backend needs state_dir");
  }
  if (config.output_semantics == OutputSemantics::kExactlyOnce) {
    if (config.sink == nullptr || !config.sink->SupportsTransactions()) {
      return Status::InvalidArgument(
          config.name +
          ": exactly-once output requires a transactional sink (a data "
          "store, not a transport like Scribe)");
    }
  }
  std::unique_ptr<NodeShard> shard(
      new NodeShard(config, scribe, clock, bucket));
  FBSTREAM_RETURN_IF_ERROR(shard->Start());
  return shard;
}

std::string NodeShard::ShardLabel() const {
  return config_.name + "/shard-" + std::to_string(bucket_);
}

std::string NodeShard::RestoreMarkerPath() const {
  return config_.state_dir + "/" + ShardLabel() + "/RESTORE_PENDING";
}

Status NodeShard::OpenStateStore() {
  if (config_.backend == StateBackend::kRemote) {
    store_ = std::make_unique<RemoteStateStore>(config_.remote,
                                                "ckpt/" + ShardLabel());
    return Status::OK();
  }
  const std::string dir = config_.state_dir + "/" + ShardLabel();
  const std::string backup_prefix = "backup/" + ShardLabel();
  const bool local_db_exists = FileExists(dir + "/MANIFEST");
  const bool marker_present = FileExists(RestoreMarkerPath());
  const bool backup_available =
      (config_.restore_state_from_backup || marker_present) &&
      config_.hdfs != nullptr &&
      config_.hdfs->Exists(backup_prefix + "/MANIFEST");
  if ((config_.restore_state_from_backup && !local_db_exists &&
       backup_available) ||
      (marker_present && backup_available)) {
    // "New machine" restart (Fig 10): the local database is gone but an
    // HDFS backup exists. Clear any partial leftovers (an orphan WAL from a
    // kill before the first flush would make RestoreBackup refuse), then
    // rebuild the directory from the backup. The restored checkpoint is the
    // shard's semantics floor; events after the last backup replay or drop
    // per the configured state semantics.
    //
    // A present marker always re-runs the restore down this same path, even
    // when a MANIFEST exists: RestoreBackup writes backup files one by one,
    // so a kill mid-restore can leave a MANIFEST whose referenced files
    // never landed — a directory that must not be opened. The marker
    // guarantees nothing after the restore was reconciled or checkpointed,
    // so wiping and restoring again is always safe, and it covers both a
    // crash mid-restore and a crash between restore and reconciliation.
    if (marker_present) {
      FBSTREAM_LOG(Warning)
          << ShardLabel()
          << ": re-running an interrupted or unreconciled backup restore";
    }
    FBSTREAM_RETURN_IF_ERROR(RemoveAll(dir));
    // Durable marker, written before the restore materializes anything: a
    // restored directory holds a *stale* offset (the backup floor), and
    // Start() must reconcile it with the bus before it can be trusted. If
    // this process dies between the restore and that reconciliation, the
    // next incarnation would otherwise mistake the restored directory for
    // an authoritative local restart and replay — re-emitting output that
    // was already on the bus before the wipe. The marker survives the
    // crash; Start() removes it only after reconciliation is checkpointed.
    FBSTREAM_RETURN_IF_ERROR(CreateDirs(dir));
    FBSTREAM_RETURN_IF_ERROR(WriteFileDurable(RestoreMarkerPath(), "1"));
    FBSTREAM_RETURN_IF_ERROR(
        LocalStateStore::RestoreFromHdfs(config_.hdfs, backup_prefix, dir));
    FBSTREAM_LOG(Info) << ShardLabel() << ": restored local state from HDFS "
                       << backup_prefix;
    restored_from_backup_ = true;
    MetricsRegistry::Global()
        ->GetCounter("recovery.shard.hdfs_restores", config_.name, bucket_)
        ->Add();
  } else if (marker_present) {
    // Marker present but the backup is gone (pruned between incarnations —
    // it existed when the marker was written). Whatever the directory
    // holds is a partial or unreconciled restore that was never
    // checkpointed against the bus, so it cannot be trusted; start the
    // shard empty rather than crash-looping on a torn database.
    FBSTREAM_LOG(Warning) << ShardLabel()
                          << ": restore marker present but no backup exists; "
                             "discarding the partial restore";
    FBSTREAM_RETURN_IF_ERROR(RemoveAll(dir));
  } else if (config_.restore_state_from_backup && local_db_exists) {
    MetricsRegistry::Global()
        ->GetCounter("recovery.shard.local_restarts", config_.name, bucket_)
        ->Add();
  }
  FBSTREAM_ASSIGN_OR_RETURN(
      store_, LocalStateStore::Open(dir, config_.hdfs, backup_prefix, clock_));
  return Status::OK();
}

Status NodeShard::Start() {
  if (config_.monoid_factory != nullptr) {
    // Monoid nodes keep keyed state in the remote DB; the checkpoint store
    // holds only the offset.
    store_ = std::make_unique<RemoteStateStore>(config_.remote,
                                                "ckpt/" + ShardLabel());
    monoid_ = config_.monoid_factory();
    monoid_state_ = std::make_unique<RemoteMonoidState>(
        config_.remote, config_.monoid_aggregator.get(),
        "mono/" + config_.name, config_.remote_mode);
  } else {
    FBSTREAM_RETURN_IF_ERROR(OpenStateStore());
    if (config_.stateless_factory != nullptr) {
      stateless_ = config_.stateless_factory();
    } else {
      stateful_ = config_.stateful_factory();
    }
  }
  FBSTREAM_ASSIGN_OR_RETURN(Checkpoint cp, store_->Load());
  had_checkpoint_offset_ = cp.has_offset;
  if (cp.has_offset) {
    tailer_.Seek(cp.offset);
  } else {
    tailer_.Seek(0);
  }
  if (restored_from_backup_ &&
      config_.output_semantics == OutputSemantics::kAtMostOnce) {
    // An HDFS backup can be up to backup_every_checkpoints behind the last
    // checkpoint, and output for that window was already emitted to the bus
    // before the machine was wiped. Replaying from the restored offset would
    // re-emit it — at-most-once prefers loss, so resume at the live tail and
    // persist that position before processing anything (another crash before
    // the first checkpoint must not rediscover the stale offset).
    FBSTREAM_RETURN_IF_ERROR(FastForwardInputToTail());
  }
  if (restored_from_backup_ && FileExists(RestoreMarkerPath())) {
    // Reconciliation is durable (at-most-once shards just checkpointed the
    // live tail; other semantics treat the backup floor as authoritative),
    // so the restored directory is now safe to resume from on a plain local
    // restart.
    FBSTREAM_RETURN_IF_ERROR(RemoveFile(RestoreMarkerPath()));
  }
  if (stateful_ != nullptr && cp.has_state && !cp.state.empty()) {
    FBSTREAM_RETURN_IF_ERROR(stateful_->RestoreState(cp.state));
  }
  alive_ = true;
  return Status::OK();
}

Status NodeShard::FastForwardInputToTail() {
  FBSTREAM_ASSIGN_OR_RETURN(
      const uint64_t tail,
      scribe_->NextSequence(config_.input_category, bucket_));
  if (tail <= tailer_.offset()) return Status::OK();
  FBSTREAM_LOG(Info) << ShardLabel()
                     << ": at-most-once recovery fast-forwards input from "
                     << tailer_.offset() << " to tail " << tail
                     << " (dropping the replay window)";
  FBSTREAM_ASSIGN_OR_RETURN(Checkpoint cp, store_->Load());
  FBSTREAM_RETURN_IF_ERROR(store_->SaveCheckpoint(config_.state_semantics,
                                                  cp.state, tail, nullptr));
  MetricsRegistry::Global()
      ->GetCounter("recovery.shard.amo_fast_forwards", config_.name, bucket_)
      ->Add();
  tailer_.Seek(tail);
  return Status::OK();
}

void NodeShard::Crash() {
  // Everything in memory dies; only the durable checkpoint store survives.
  stateless_.reset();
  stateful_.reset();
  monoid_.reset();
  monoid_state_.reset();
  store_.reset();
  watermark_ = WatermarkEstimator();
  // Degraded-mode tracking is in-memory too: close the episode (time counts
  // up to the crash) and forget the pending queue. If HDFS is still down
  // after recovery, the next scheduled backup re-detects it, and the first
  // successful full-state upload covers whatever was pending.
  ExitDegraded();
  pending_backups_.clear();
  pending_backup_count_.store(0, std::memory_order_release);
  alive_ = false;
}

Status NodeShard::Recover() {
  if (alive_) return Status::OK();
  return Start();
}

bool NodeShard::MaybeCrash(FailurePoint point) {
  if (failure_ != nullptr && failure_(point)) {
    Crash();
    return true;
  }
  return false;
}

StatusOr<std::vector<Event>> NodeShard::PollEvents() {
  std::vector<scribe::Message> messages =
      tailer_.Poll(config_.checkpoint_every_events);
  if (config_.checkpoint_every_bytes > 0 && !messages.empty()) {
    size_t bytes = 0;
    size_t keep = 0;
    for (; keep < messages.size(); ++keep) {
      bytes += messages[keep].payload.size();
      if (bytes >= config_.checkpoint_every_bytes) {
        ++keep;
        break;
      }
    }
    if (keep < messages.size()) {
      tailer_.Seek(messages[keep].sequence);  // Push back the remainder.
      messages.resize(keep);
    }
  }
  TextRowCodec codec(config_.input_schema);
  const Micros now = clock_->NowMicros();
  std::vector<Event> events;
  events.reserve(messages.size());
  for (scribe::Message& m : messages) {
    auto row = codec.Decode(m.payload);
    if (!row.ok()) {
      FBSTREAM_LOG(Warning) << ShardLabel() << ": bad row: " << row.status();
      continue;
    }
    Event e;
    e.row = std::move(row).value();
    e.arrival_time = now;
    e.event_time = config_.event_time_column.empty()
                       ? now
                       : e.row.Get(config_.event_time_column).CoerceInt64();
    e.sequence = m.sequence;
    e.trace_id = m.trace_id;
    if (e.trace_id != 0) {
      // Scribe hop: batching + delivery delay, measured in *stream* time
      // (write -> arrival) — the seconds-scale figure of §4.2.1, visible
      // under SimClock as well as wall clock.
      const Micros deliver = std::max<Micros>(0, now - m.write_time);
      hop_scribe_metric_->Record(static_cast<uint64_t>(deliver));
      Tracer::Global()->RecordSpan(SpanRecord{e.trace_id, "scribe.deliver",
                                              config_.name, bucket_,
                                              m.write_time, deliver});
    }
    watermark_.Observe(e.event_time, e.arrival_time);
    events.push_back(std::move(e));
  }
  return events;
}

Status NodeShard::EmitRows(const std::vector<Row>& rows) {
  if (config_.sink == nullptr) return Status::OK();
  for (const Row& row : rows) {
    FBSTREAM_RETURN_IF_ERROR(config_.sink->Emit(row));
  }
  return Status::OK();
}

StatusOr<size_t> NodeShard::RunOnce() {
  if (!alive_) return Status::FailedPrecondition(ShardLabel() + " is down");
  // Resync before processing, even when no events are pending: a recovered
  // HDFS drains the backup backlog on the next round regardless of whether
  // traffic is still flowing.
  DrainPendingBackups();
  FBSTREAM_ASSIGN_OR_RETURN(PendingBatch batch, ProcessBatch());
  const size_t events = batch.events;
  if (events == 0) return size_t{0};
  const Status st = CommitBatch(std::move(batch));
  if (st.IsAborted()) {
    // CommitBatch never crashes the shard itself (a commit-pool thread must
    // not destroy the processor); on this synchronous path we are the
    // shard's executing thread, so apply the crash here.
    Crash();
    return st;
  }
  FBSTREAM_RETURN_IF_ERROR(st);
  return events;
}

StatusOr<PendingBatch> NodeShard::ProcessBatch() {
  if (!alive_) return Status::FailedPrecondition(ShardLabel() + " is down");
  FBSTREAM_ASSIGN_OR_RETURN(std::vector<Event> events, PollEvents());
  PendingBatch batch;
  if (events.empty()) return batch;
  batch.events = events.size();

  // Sampled events present in this batch; the batch-level engine/storage
  // durations are attributed to each of them (sampled profiling).
  if (Tracer::Global()->enabled()) {
    for (const Event& e : events) {
      if (e.trace_id != 0) batch.traced.push_back(e.trace_id);
    }
  }

  ScopedLatencyTimer process_timer(nullptr);
  if (monoid_ != nullptr) {
    batch.monoid = true;
    std::vector<MonoidProcessor::Contribution> contributions;
    for (const Event& event : events) {
      contributions.clear();
      monoid_->Process(event, &contributions);
      for (auto& [key, partial] : contributions) {
        monoid_state_->Append(key, partial);
      }
    }
  } else {
    // §4.3.1 activity 1+2: process input events (side-effect-free w.r.t.
    // the checkpoint) and generate output. With at-least-once output,
    // emission happens as events are processed; otherwise output is
    // buffered in the batch and synchronized with the checkpoint.
    const bool emit_immediately =
        config_.output_semantics == OutputSemantics::kAtLeastOnce;
    for (const Event& event : events) {
      std::vector<Row> rows;
      if (stateless_ != nullptr) {
        stateless_->Process(event, &rows);
      } else {
        stateful_->Process(event, &rows);
      }
      if (emit_immediately) {
        FBSTREAM_RETURN_IF_ERROR(EmitRows(rows));
      } else {
        batch.buffered.insert(batch.buffered.end(), rows.begin(), rows.end());
      }
    }
    if (stateful_ != nullptr) {
      std::vector<Row> window_rows;
      stateful_->OnCheckpoint(clock_->NowMicros(), &window_rows);
      if (emit_immediately) {
        FBSTREAM_RETURN_IF_ERROR(EmitRows(window_rows));
      } else {
        batch.buffered.insert(batch.buffered.end(), window_rows.begin(),
                              window_rows.end());
      }
    }
  }

  batch.process_micros = process_timer.ElapsedMicros();
  if (!batch.traced.empty()) {
    const Micros now = clock_->NowMicros();
    for (const uint64_t id : batch.traced) {
      hop_engine_metric_->Record(batch.process_micros);
      Tracer::Global()->RecordSpan(SpanRecord{
          id, "engine.process", config_.name, bucket_, now,
          static_cast<Micros>(batch.process_micros)});
    }
  }

  if (MaybeCrash(FailurePoint::kAfterProcessing)) {
    return Status::Aborted("injected crash after processing");
  }

  // Snapshot what the commit needs *now*, on the shard thread: continuous
  // mode starts processing the next batch while this one commits, so the
  // commit must not read live processor or tailer state.
  if (stateful_ != nullptr) batch.state = stateful_->SerializeState();
  batch.offset = tailer_.offset();
  return batch;
}

Status NodeShard::CommitBatch(PendingBatch batch) {
  if (batch.events == 0) return Status::OK();
  ScopedLatencyTimer commit_timer(nullptr);

  if (batch.monoid) {
    // Flush partials, then save the offset: at-least-once state semantics
    // (a crash between the two replays and re-merges this interval).
    FBSTREAM_RETURN_IF_ERROR(monoid_state_->Flush());
    if (failure_ != nullptr &&
        failure_(FailurePoint::kBetweenCheckpointWrites)) {
      return Status::Aborted("injected crash before offset save");
    }
    FBSTREAM_RETURN_IF_ERROR(store_->SaveCheckpoint(
        StateSemantics::kAtLeastOnce, "", batch.offset, nullptr));
  } else if (config_.output_semantics == OutputSemantics::kExactlyOnce) {
    lsm::WriteBatch output;
    FBSTREAM_RETURN_IF_ERROR(
        config_.sink->AppendToTransaction(batch.buffered, &output));
    FBSTREAM_RETURN_IF_ERROR(checkpoint_retry_->Run("checkpoint.save", [&] {
      return store_->SaveCheckpointWithOutput(batch.state, batch.offset,
                                              output);
    }));
  } else {
    // Retrying a half-written checkpoint is safe: both writes are idempotent
    // Puts of this interval's values. Injected crashes return Aborted, which
    // is not retryable, so failure-semantics tests still observe them.
    FBSTREAM_RETURN_IF_ERROR(checkpoint_retry_->Run("checkpoint.save", [&] {
      return store_->SaveCheckpoint(config_.state_semantics, batch.state,
                                    batch.offset,
                                    [this](FailurePoint point) {
                                      return failure_ != nullptr &&
                                             failure_(point);
                                    });
    }));
    if (config_.output_semantics == OutputSemantics::kAtMostOnce) {
      // Checkpoint first, then emit: a crash here loses this batch's output
      // (data loss preferred to duplication).
      if (failure_ != nullptr && failure_(FailurePoint::kAfterCheckpoint)) {
        return Status::Aborted("injected crash after checkpoint");
      }
      FBSTREAM_RETURN_IF_ERROR(EmitRows(batch.buffered));
    }
  }

  const uint64_t commit_us = commit_timer.ElapsedMicros();
  if (!batch.traced.empty()) {
    const Micros now = clock_->NowMicros();
    for (const uint64_t id : batch.traced) {
      hop_storage_metric_->Record(commit_us);
      Tracer::Global()->RecordSpan(SpanRecord{
          id, "storage.commit", config_.name, bucket_, now,
          static_cast<Micros>(commit_us)});
    }
  }

  // Only non-empty batches are recorded, so the histogram reflects real
  // processing intervals rather than idle polls.
  runonce_latency_metric_->Record(batch.process_micros + commit_us);
  ++checkpoints_completed_;
  checkpoints_metric_->Add();
  events_processed_metric_->Add(batch.events);
  MaybeBackup();
  return Status::OK();
}

void NodeShard::MaintainBackups() {
  if (!alive_) return;
  DrainPendingBackups();
}

bool NodeShard::BackupConfigured() const {
  // Monoid nodes checkpoint remotely regardless of `backend`.
  return config_.backend == StateBackend::kLocal && config_.hdfs != nullptr &&
         config_.backup_every_checkpoints > 0 &&
         config_.monoid_factory == nullptr;
}

void NodeShard::MaybeBackup() {
  if (!BackupConfigured()) return;
  const uint64_t generation =
      checkpoints_completed_.load(std::memory_order_relaxed);
  if (generation % static_cast<uint64_t>(config_.backup_every_checkpoints) !=
      0) {
    return;
  }
  if (!pending_backups_.empty()) {
    // Already degraded. Queue this generation and leave the recovery probe
    // to DrainPendingBackups — no point hammering a down HDFS once per
    // checkpoint on the hot path.
    EnqueuePendingBackup(generation);
    return;
  }
  auto* local = static_cast<LocalStateStore*>(store_.get());
  const Status st = local->BackupToHdfs();
  if (st.ok()) {
    backups_completed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // "If HDFS is not available for writes, processing continues without
  // remote backup copies." The miss is queued for resync once it recovers.
  FBSTREAM_LOG(Warning) << ShardLabel()
                        << ": hdfs backup missed, degraded mode: " << st;
  EnqueuePendingBackup(generation);
  EnterDegraded();
}

void NodeShard::DrainPendingBackups() {
  if (pending_backups_.empty() || !BackupConfigured()) return;
  auto* local = static_cast<LocalStateStore*>(store_.get());
  if (!local->BackupToHdfs().ok()) return;  // Still down; try next round.
  // Backups are full-state copies, so one successful upload of the current
  // DB covers every missed generation at once.
  backups_resynced_.fetch_add(pending_backups_.size(),
                              std::memory_order_relaxed);
  FBSTREAM_LOG(Info) << ShardLabel() << ": hdfs recovered, resynced "
                     << pending_backups_.size() << " pending backup(s)";
  pending_backups_.clear();
  pending_backup_count_.store(0, std::memory_order_release);
  ExitDegraded();
}

void NodeShard::RequestBackupResync() {
  if (!BackupConfigured()) return;
  if (!pending_backups_.empty()) return;  // Already queued.
  EnqueuePendingBackup(checkpoints_completed_.load(std::memory_order_relaxed));
}

void NodeShard::EnqueuePendingBackup(uint64_t generation) {
  if (config_.max_pending_backups > 0 &&
      pending_backups_.size() >= config_.max_pending_backups) {
    pending_backups_.pop_front();
    backups_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  pending_backups_.push_back(generation);
  pending_backup_count_.store(pending_backups_.size(),
                              std::memory_order_release);
}

void NodeShard::EnterDegraded() {
  if (backup_degraded_.exchange(true, std::memory_order_acq_rel)) return;
  degraded_since_.store(clock_->NowMicros(), std::memory_order_release);
}

void NodeShard::ExitDegraded() {
  if (!backup_degraded_.exchange(false, std::memory_order_acq_rel)) return;
  const Micros since = degraded_since_.exchange(0, std::memory_order_acq_rel);
  if (since > 0) {
    degraded_micros_total_.fetch_add(clock_->NowMicros() - since,
                                     std::memory_order_relaxed);
  }
}

BackupHealth NodeShard::GetBackupHealth() const {
  BackupHealth h;
  h.degraded = backup_degraded_.load(std::memory_order_acquire);
  h.degraded_since = degraded_since_.load(std::memory_order_acquire);
  h.degraded_micros_total =
      degraded_micros_total_.load(std::memory_order_relaxed);
  h.pending_backups = pending_backup_count_.load(std::memory_order_acquire);
  h.backups_completed = backups_completed_.load(std::memory_order_relaxed);
  h.backups_resynced = backups_resynced_.load(std::memory_order_relaxed);
  h.backups_dropped = backups_dropped_.load(std::memory_order_relaxed);
  return h;
}


uint64_t NodeShard::ProcessingLag() const { return tailer_.LagMessages(); }

Micros NodeShard::LowWatermark() const {
  return watermark_.EstimateLowWatermark(clock_->NowMicros(),
                                         config_.watermark_confidence);
}

}  // namespace fbstream::stylus
