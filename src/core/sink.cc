#include "core/sink.h"

namespace fbstream::stylus {

ScribeSink::ScribeSink(scribe::Scribe* scribe, std::string category,
                       SchemaPtr output_schema,
                       std::vector<std::string> shard_columns)
    : scribe_(scribe),
      category_(std::move(category)),
      codec_(std::move(output_schema)),
      shard_columns_(std::move(shard_columns)) {}

Status ScribeSink::Emit(const Row& row) {
  std::string shard_key;
  for (const std::string& col : shard_columns_) {
    shard_key += row.Get(col).ToString();
    shard_key.push_back('\x01');
  }
  return scribe_->WriteSharded(category_, shard_key, codec_.Encode(row));
}

Status ScubaSink::Emit(const Row& row) {
  table_->AddRow(row);
  return Status::OK();
}

ZippyDbSink::ZippyDbSink(zippydb::Cluster* cluster, std::string key_prefix,
                         std::vector<std::string> key_columns,
                         std::vector<std::string> value_columns)
    : cluster_(cluster),
      key_prefix_(std::move(key_prefix)),
      key_columns_(std::move(key_columns)),
      value_columns_(std::move(value_columns)) {}

std::string ZippyDbSink::KeyOf(const Row& row) const {
  std::string key = key_prefix_;
  for (const std::string& col : key_columns_) {
    key.push_back('/');
    key += row.Get(col).ToString();
  }
  return key;
}

std::string ZippyDbSink::ValueOf(const Row& row) const {
  std::string value;
  for (size_t i = 0; i < value_columns_.size(); ++i) {
    if (i > 0) value.push_back('\t');
    value += row.Get(value_columns_[i]).ToString();
  }
  return value;
}

Status ZippyDbSink::Emit(const Row& row) {
  return cluster_->Put(KeyOf(row), ValueOf(row));
}

Status ZippyDbSink::AppendToTransaction(const std::vector<Row>& rows,
                                        lsm::WriteBatch* batch) {
  for (const Row& row : rows) {
    batch->Put(KeyOf(row), ValueOf(row));
  }
  return Status::OK();
}

}  // namespace fbstream::stylus
