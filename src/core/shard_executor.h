#ifndef FBSTREAM_CORE_SHARD_EXECUTOR_H_
#define FBSTREAM_CORE_SHARD_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace fbstream::stylus {

// Fixed worker pool that runs batches of independent shard tasks.
//
// The paper's scaling argument (§4.2.2, §6.4) rests on Scribe buckets
// decoupling node shards: every shard owns its bucket cursor, its checkpoint
// store, and its processor state, so shards of one node can run concurrently
// with no coordination beyond the thread-safe Scribe bus. The executor is
// the primitive that exploits that: Pipeline::RunRound dispatches one task
// per alive shard and waits for the batch, node by node, preserving the DAG
// order between nodes while shards within a node run fully in parallel.
//
// RunBatch may be called concurrently from multiple threads; each batch
// tracks its own completion. Tasks must not recursively call RunBatch on the
// same executor (workers do not re-enter the pool).
class ShardExecutor {
 public:
  explicit ShardExecutor(int num_threads);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  // Runs every task on the pool and blocks until all have completed. Tasks
  // within a batch must be independent of each other.
  void RunBatch(std::vector<std::function<void()>> tasks);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  // Shared between the batch submitter and the workers executing its tasks.
  struct Batch {
    std::mutex mu;
    std::condition_variable done;
    size_t remaining = 0;
  };
  using Item = std::pair<std::function<void()>, std::shared_ptr<Batch>>;

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_;
  std::deque<Item> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_SHARD_EXECUTOR_H_
