#ifndef FBSTREAM_CORE_BATCH_H_
#define FBSTREAM_CORE_BATCH_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/processor.h"
#include "storage/hive/hive.h"

namespace fbstream::stylus {

// Batch execution of Stylus processors over Hive (§4.5.2): "When a user
// creates a Stylus application, two binaries are generated at the same
// time: one for stream and one for batch." These runners are the batch
// binary: the *same processor code* runs over warehouse partitions via the
// MapReduce framework in storage/hive.
//
//   stateless  -> custom mapper (map-only job)
//   stateful   -> custom reducer; "the reduce key is the aggregation key
//                 plus event timestamp" — we reduce per aggregation key with
//                 rows replayed in event-time order
//   monoid     -> reducer with map-side partial aggregation via the
//                 aggregator's Combine

// Runs a stateless processor as a custom mapper over the given partitions.
StatusOr<std::vector<Row>> RunStatelessBatch(
    const hive::Hive& hive, const std::string& table,
    const std::vector<std::string>& partitions,
    const std::function<std::unique_ptr<StatelessProcessor>()>& factory,
    SchemaPtr input_schema, const std::string& event_time_column);

// Runs a general stateful processor as a custom reducer: rows are grouped
// by `key_fn`, replayed per group in event-time order through a fresh
// processor instance, and the processor's output (including the final
// OnCheckpoint emission) is collected.
StatusOr<std::vector<Row>> RunStatefulBatch(
    const hive::Hive& hive, const std::string& table,
    const std::vector<std::string>& partitions,
    const std::function<std::unique_ptr<StatefulProcessor>()>& factory,
    SchemaPtr input_schema, const std::string& event_time_column,
    const std::function<std::string(const Row&)>& key_fn);

// Runs a monoid processor with map-side partial aggregation. Returns the
// final (key, merged value) pairs; `counters` (optional) exposes how much
// the combiner shrank the shuffle.
StatusOr<std::vector<std::pair<std::string, std::string>>> RunMonoidBatch(
    const hive::Hive& hive, const std::string& table,
    const std::vector<std::string>& partitions,
    const std::function<std::unique_ptr<MonoidProcessor>()>& factory,
    const MonoidAggregator& aggregator, SchemaPtr input_schema,
    const std::string& event_time_column,
    hive::MapReduceCounters* counters = nullptr,
    bool map_side_combine = true);

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_BATCH_H_
