#include "core/processor.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/hll.h"

namespace fbstream::stylus {

namespace {

class Int64SumAggregator : public MonoidAggregator {
 public:
  const char* Name() const override { return "int64_sum"; }
  std::string Identity() const override { return "0"; }
  std::string Combine(const std::string& older,
                      const std::string& newer) const override {
    return std::to_string(strtoll(older.c_str(), nullptr, 10) +
                          strtoll(newer.c_str(), nullptr, 10));
  }
};

class Int64MaxAggregator : public MonoidAggregator {
 public:
  const char* Name() const override { return "int64_max"; }
  std::string Identity() const override {
    return std::to_string(std::numeric_limits<int64_t>::min());
  }
  std::string Combine(const std::string& older,
                      const std::string& newer) const override {
    return std::to_string(std::max(strtoll(older.c_str(), nullptr, 10),
                                   strtoll(newer.c_str(), nullptr, 10)));
  }
};

class HllAggregator : public MonoidAggregator {
 public:
  explicit HllAggregator(int precision) : precision_(precision) {}
  const char* Name() const override { return "hll_union"; }
  std::string Identity() const override {
    return HyperLogLog(precision_).Serialize();
  }
  std::string Combine(const std::string& older,
                      const std::string& newer) const override {
    HyperLogLog a = HyperLogLog::Deserialize(older);
    a.Merge(HyperLogLog::Deserialize(newer));
    return a.Serialize();
  }

 private:
  int precision_;
};

}  // namespace

std::unique_ptr<MonoidAggregator> MakeInt64SumAggregator() {
  return std::make_unique<Int64SumAggregator>();
}

std::unique_ptr<MonoidAggregator> MakeInt64MaxAggregator() {
  return std::make_unique<Int64MaxAggregator>();
}

std::unique_ptr<MonoidAggregator> MakeHllAggregator(int precision) {
  return std::make_unique<HllAggregator>(precision);
}

}  // namespace fbstream::stylus
