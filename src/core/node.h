#ifndef FBSTREAM_CORE_NODE_H_
#define FBSTREAM_CORE_NODE_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/checkpoint.h"
#include "core/failure.h"
#include "core/monoid_state.h"
#include "core/processor.h"
#include "core/semantics.h"
#include "core/sink.h"
#include "core/watermark.h"
#include "scribe/scribe.h"
#include "storage/hdfs/hdfs.h"
#include "storage/zippydb/zippydb.h"

namespace fbstream::stylus {

// Where a stateful shard keeps its checkpoints (§4.4.2).
enum class StateBackend {
  kNone,    // Stateless nodes: only the offset is checkpointed (locally).
  kLocal,   // Embedded RocksDB + optional HDFS backup (Figure 10).
  kRemote,  // ZippyDB (Figure 11).
};

// Configuration for one logical processing node. The engine instantiates
// one shard per input Scribe bucket ("applications are parallelized by
// sending different Scribe buckets to different processes", §2.1).
struct NodeConfig {
  std::string name;

  // Input.
  std::string input_category;
  SchemaPtr input_schema;
  // Column holding event time in micros; empty = use arrival time.
  std::string event_time_column;

  // Exactly one factory must be set.
  std::function<std::unique_ptr<StatelessProcessor>()> stateless_factory;
  std::function<std::unique_ptr<StatefulProcessor>()> stateful_factory;
  std::function<std::unique_ptr<MonoidProcessor>()> monoid_factory;
  // Monoid nodes share one aggregator definition.
  std::shared_ptr<const MonoidAggregator> monoid_aggregator;

  // Semantics (validated against Figure 8).
  StateSemantics state_semantics = StateSemantics::kAtLeastOnce;
  OutputSemantics output_semantics = OutputSemantics::kAtLeastOnce;

  // Checkpoint policy: a checkpoint closes after this many events (or
  // bytes), whichever comes first, per RunOnce cycle.
  size_t checkpoint_every_events = 256;
  size_t checkpoint_every_bytes = 0;  // 0 = no byte trigger.

  // State backend.
  StateBackend backend = StateBackend::kLocal;
  std::string state_dir;  // Local backend root (per-shard subdirs).
  hdfs::HdfsCluster* hdfs = nullptr;
  int backup_every_checkpoints = 0;  // 0 = no HDFS backups.
  // Degraded mode (§4.4.2: "if HDFS is not available for writes, processing
  // continues without remote backup copies"): backups missed during an HDFS
  // outage queue up for resync, at most this many. Beyond that the oldest
  // pending entry is dropped (counted, not fatal — one successful backup
  // after recovery covers the full current state anyway).
  size_t max_pending_backups = 8;
  zippydb::Cluster* remote = nullptr;
  RemoteWriteMode remote_mode = RemoteWriteMode::kReadModifyWrite;

  // Machine-loss recovery (Fig 10): when a local-backend shard starts with
  // no local database but an HDFS backup exists under its backup prefix,
  // rebuild the local directory from the backup before opening. Set by
  // Pipeline::Recover ("this process may be a new machine"); off for plain
  // deploys so a genuinely fresh shard starts empty instead of resurrecting
  // a stale backup from a previous incarnation of the name.
  bool restore_state_from_backup = false;

  // Output. May be null for monoid nodes whose output *is* the remote DB.
  std::shared_ptr<OutputSink> sink;

  // Watermark confidence used by the shard's estimator.
  double watermark_confidence = 0.99;
};

// Snapshot of a shard's backup/degradation state (§4.4.2 + §6.4
// monitoring). All fields are read from atomics, so a snapshot may race a
// running round; individual fields are exact, cross-field consistency is
// best-effort — fine for dashboards and alerts.
struct BackupHealth {
  bool degraded = false;        // Currently running without remote backups.
  Micros degraded_since = 0;    // Start of the current episode (0 if none).
  // Total time spent degraded over the shard's lifetime, closed episodes
  // only; add (now - degraded_since) for the ongoing one.
  Micros degraded_micros_total = 0;
  uint64_t pending_backups = 0;   // Missed backups queued for resync.
  uint64_t backups_completed = 0; // Successful on-schedule uploads.
  uint64_t backups_resynced = 0;  // Missed backups covered after recovery.
  uint64_t backups_dropped = 0;   // Pending entries evicted by the bound.
};

// One checkpoint interval of processed-but-uncommitted work: everything the
// durable commit needs, snapshotted so the shard can start processing the
// next batch while this one's side effects commit (§4.2 processing overlap).
struct PendingBatch {
  size_t events = 0;          // 0 = nothing polled; no commit needed.
  std::vector<Row> buffered;  // Output withheld until the checkpoint.
  std::string state;          // Processor state snapshot at batch end.
  uint64_t offset = 0;        // Tailer offset after the batch.
  bool monoid = false;        // Monoid partials pending in monoid_state_.
  std::vector<uint64_t> traced;  // Sampled trace ids in the batch.
  uint64_t process_micros = 0;   // Phase-1 wall time (for runonce latency).
};

// One running shard of a node: tailer -> processor -> sink, with
// checkpointing per the configured semantics and crash/recovery support.
//
// Thread-safety: RunOnce / ProcessBatch / Crash / Recover / MaintainBackups
// belong to the single worker currently executing the shard (neither
// scheduler ever runs one shard on two threads at once). CommitBatch may run
// on a different thread (the continuous engine's commit pool), but commits
// are serialized per shard and never overlap that shard's Crash/Recover or
// MaintainBackups — the shard's event loop waits for the in-flight commit
// before doing any of those. alive(), ProcessingLag(),
// checkpoints_completed(), and config() are safe to call concurrently from
// monitoring / auto-scaling threads while a batch is in flight. watermark(),
// LowWatermark(), and monoid_state() are inspection hooks for quiesced
// shards only.
class NodeShard {
 public:
  // Validates the config (semantics combination, backend/sink coherence).
  static StatusOr<std::unique_ptr<NodeShard>> Create(
      const NodeConfig& config, scribe::Scribe* scribe, Clock* clock,
      int bucket);

  // Loads the checkpoint, constructs the processor, restores state, and
  // seeks the tailer. Called by Create and by Recover.
  Status Start();

  // Processes up to one checkpoint interval of pending events, then
  // checkpoints. Returns the number of events consumed. Returns Aborted if
  // the failure injector fired — the shard is then dead until Recover().
  // Equivalent to ProcessBatch + CommitBatch run back to back (the round
  // scheduler's path; continuous mode drives the two phases separately).
  StatusOr<size_t> RunOnce();

  // Phase 1 (§4.3.1 activities 1+2, side-effect-free w.r.t. the
  // checkpoint): poll, process, and snapshot (state, offset) into a
  // PendingBatch. With at-least-once output, rows are emitted here;
  // otherwise they ride in the batch until CommitBatch. Returns Aborted if
  // an injected crash fired (the shard is dead; the batch is void).
  StatusOr<PendingBatch> ProcessBatch();

  // Phase 2: durably commits a batch from ProcessBatch — checkpoint write
  // (atomic with output for exactly-once), post-checkpoint emission for
  // at-most-once, scheduled HDFS backup. Returns Aborted when an injected
  // crash fires mid-commit; the *caller* must then Crash() the shard (the
  // commit may run on a commit-pool thread, and destroying the processor
  // from there would race phase 1 of the next batch).
  Status CommitBatch(PendingBatch batch);

  // Drains pending HDFS backups (degraded-mode resync, §4.4.2) outside the
  // commit path, so queues empty as soon as HDFS recovers even when no
  // traffic flows. Call from the shard's executing thread with no commit in
  // flight; RunOnce does this every round, continuous loops on idle ticks.
  void MaintainBackups();

  // Simulated process death: in-memory state and processor are destroyed.
  void Crash();
  // Restart on the same machine: reload from the checkpoint store.
  Status Recover();
  bool alive() const { return alive_.load(std::memory_order_acquire); }

  void SetFailureInjector(FailureInjector injector) {
    failure_ = std::move(injector);
  }

  // Monitoring (§6.4): messages behind the bucket head.
  uint64_t ProcessingLag() const;

  // Degraded-mode snapshot; safe to call while RunOnce is in flight.
  BackupHealth GetBackupHealth() const;

  const WatermarkEstimator& watermark() const { return watermark_; }
  Micros LowWatermark() const;

  int bucket() const { return bucket_; }
  const NodeConfig& config() const { return config_; }
  uint64_t checkpoints_completed() const {
    return checkpoints_completed_.load(std::memory_order_acquire);
  }

  // Recovery hooks (used by Pipeline::Recover and the manifest writer).
  // Next input sequence this shard will read.
  uint64_t TailerOffset() const { return tailer_.offset(); }
  // Whether the last Start() found a checkpointed offset to resume from.
  bool had_checkpoint_offset() const { return had_checkpoint_offset_; }
  // Repositions the input cursor. Recovery-only: used to apply the advisory
  // offsets-snapshot floor to an at-most-once shard whose checkpoint was
  // lost with its state (replaying from 0 would re-count events).
  void SeekTailer(uint64_t offset) { tailer_.Seek(offset); }
  // Repositions the input cursor at the live bus tail and checkpoints that
  // position durably. Recovery-only, for at-most-once *output* shards whose
  // checkpoint was lost or rolled back (backup restore, wiped machine with
  // a surviving offsets-snapshot record): every position behind the dead
  // incarnation's true cursor re-emits output that is already on the bus,
  // and the tail is the only position guaranteed not to. At-most-once
  // prefers the loss.
  Status FastForwardInputToTail();
  // Rebuilds the pending-backup queue after process death: the in-memory
  // queue died with the old process, so a recovered shard with backups
  // configured re-uploads its current state on the next round — one full
  // copy covers every generation the crash window may have missed.
  void RequestBackupResync();

  // Testing hook: direct access to the shard's monoid state.
  RemoteMonoidState* monoid_state() { return monoid_state_.get(); }

 private:
  NodeShard(NodeConfig config, scribe::Scribe* scribe, Clock* clock,
            int bucket);

  std::string ShardLabel() const;
  Status OpenStateStore();
  // Marker file inside the local state dir recording that the directory was
  // rebuilt from an HDFS backup and its (stale) offset has not yet been
  // reconciled with the bus. Written before the restore, removed by Start()
  // once reconciliation is checkpointed.
  std::string RestoreMarkerPath() const;
  StatusOr<std::vector<Event>> PollEvents();
  Status EmitRows(const std::vector<Row>& rows);
  bool MaybeCrash(FailurePoint point);
  // True when this shard takes periodic HDFS backups of its local store.
  bool BackupConfigured() const;
  // Runs after each checkpoint: uploads on schedule, or queues the missed
  // generation and enters degraded mode when HDFS is down.
  void MaybeBackup();
  // Re-uploads the current state if backups are pending; exits degraded
  // mode on success. Called every RunOnce, even event-less ones, so queues
  // drain as soon as HDFS recovers (not only while traffic flows).
  void DrainPendingBackups();
  void EnqueuePendingBackup(uint64_t generation);
  void EnterDegraded();
  void ExitDegraded();

  NodeConfig config_;
  scribe::Scribe* scribe_;
  Clock* clock_;
  int bucket_;

  scribe::Tailer tailer_;
  std::unique_ptr<StateStore> store_;
  std::unique_ptr<StatelessProcessor> stateless_;
  std::unique_ptr<StatefulProcessor> stateful_;
  std::unique_ptr<MonoidProcessor> monoid_;
  std::unique_ptr<RemoteMonoidState> monoid_state_;
  WatermarkEstimator watermark_;
  FailureInjector failure_;
  std::atomic<bool> alive_{false};
  std::atomic<uint64_t> checkpoints_completed_{0};
  bool had_checkpoint_offset_ = false;
  // Set when OpenStateStore rebuilt the local database from an HDFS backup
  // (Fig 10 "new machine" path). The restored offset may predate output
  // already emitted to the bus, so at-most-once shards must not replay it.
  bool restored_from_backup_ = false;

  // Per-shard metric handles (node = name, shard = bucket), looked up once
  // in the constructor; registry entries are immortal so they can't dangle.
  Counter* events_processed_metric_ = nullptr;
  Counter* checkpoints_metric_ = nullptr;
  Histogram* runonce_latency_metric_ = nullptr;
  // Per-hop latency histograms fed by tracer-sampled events. The Scribe hop
  // is measured in stream time (write -> arrival: batching + delivery
  // delay); engine/storage hops are wall time spent in this process.
  Histogram* hop_scribe_metric_ = nullptr;
  Histogram* hop_engine_metric_ = nullptr;
  Histogram* hop_storage_metric_ = nullptr;

  // Transient checkpoint-write failures (full disk, injected WAL faults)
  // retry before failing the round; Aborted (crash injection) is not
  // retryable, so semantics tests still see their crashes.
  std::unique_ptr<RetryPolicy> checkpoint_retry_;

  // Degraded-mode backup state. The deque belongs to the single worker
  // thread running the shard; the atomics mirror it for monitoring readers.
  std::deque<uint64_t> pending_backups_;
  std::atomic<bool> backup_degraded_{false};
  std::atomic<Micros> degraded_since_{0};
  std::atomic<Micros> degraded_micros_total_{0};
  std::atomic<uint64_t> pending_backup_count_{0};
  std::atomic<uint64_t> backups_completed_{0};
  std::atomic<uint64_t> backups_resynced_{0};
  std::atomic<uint64_t> backups_dropped_{0};
};

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_NODE_H_
