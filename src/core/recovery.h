#ifndef FBSTREAM_CORE_RECOVERY_H_
#define FBSTREAM_CORE_RECOVERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/node.h"
#include "core/semantics.h"

namespace fbstream::stylus {

// Durable pipeline manifest (§4.3, Fig 10): everything a *fresh process*
// needs to resume a pipeline after hard death — the topology, each node's
// semantics modes and state-store layout, and an advisory snapshot of the
// Scribe tailer offsets. Persisted atomically (WriteFileAtomic + checksum)
// under the manifest directory:
//
//   <dir>/PIPELINE      topology + per-node config scalars
//   <dir>/OFFSETS       per-shard tailer offsets, rewritten every round
//
// Code cannot be serialized, so the manifest records only data: on
// Pipeline::Recover the caller supplies a resolver that rebuilds the code
// parts of each NodeConfig (processor factories, schema, sink, clusters)
// from the node's name, and the manifest overrides the scalar fields so the
// recovered topology provably matches what was running.
//
// The offsets snapshot is advisory, not authoritative: each shard's durable
// checkpoint carries the offset that defines its semantics. The snapshot
// exists for the one case with no checkpoint to consult — total state loss
// on an at-most-once shard, where resuming from 0 would recount events the
// pre-crash process already counted. It is rewritten wholesale every round,
// so a torn or corrupt snapshot is simply ignored (recovery then leans on
// the checkpoints alone).

// The persisted scalar subset of one node's NodeConfig, plus its shard
// count at manifest-write time.
struct ManifestNodeRecord {
  std::string name;
  std::string input_category;
  int num_shards = 0;
  StateSemantics state_semantics = StateSemantics::kAtLeastOnce;
  OutputSemantics output_semantics = OutputSemantics::kAtLeastOnce;
  StateBackend backend = StateBackend::kLocal;
  std::string state_dir;
  uint64_t checkpoint_every_events = 256;
  uint64_t checkpoint_every_bytes = 0;
  int backup_every_checkpoints = 0;
  uint64_t max_pending_backups = 8;
};

struct PipelineManifest {
  // Bumped on every save; recovery logs it so operators can correlate a
  // restart with the manifest generation it resumed from.
  uint64_t epoch = 0;
  std::vector<ManifestNodeRecord> nodes;  // Insertion (topological) order.
};

struct ShardOffsetRecord {
  std::string node;
  int bucket = 0;
  uint64_t offset = 0;
};

// Byte-level serde, exposed for tests (corruption injection).
std::string EncodeManifest(const PipelineManifest& manifest);
StatusOr<PipelineManifest> DecodeManifest(std::string_view data);

// Atomic save/load of <dir>/PIPELINE. Load returns NotFound when no
// manifest exists (a fresh deployment) and Corruption when the file fails
// its checksum — a torn manifest must never be half-trusted.
Status SaveManifest(const std::string& dir, const PipelineManifest& manifest);
StatusOr<PipelineManifest> LoadManifest(const std::string& dir);

// Atomic save of <dir>/OFFSETS — or, with a nonempty `scope`, of
// <dir>/OFFSETS.<scope>. Scoped snapshots are how partially-recovered
// pipelines (one worker process owning a slice of the topology, see
// Pipeline::RecoverOptions) persist their advisory offsets without
// clobbering the snapshots of workers owning the other nodes: each worker
// writes its own file, keyed by its node filter.
//
// Load is forgiving by design (see above): missing, torn, or corrupt
// snapshots yield an empty vector. It merges the base OFFSETS file with
// every OFFSETS.<scope> file in the directory; when two files record the
// same (node, bucket) the higher offset wins (the snapshot is a floor —
// closest-to-death loses the least replay).
Status SaveOffsetsSnapshot(const std::string& dir,
                           const std::vector<ShardOffsetRecord>& offsets,
                           const std::string& scope = "");
std::vector<ShardOffsetRecord> LoadOffsetsSnapshot(const std::string& dir);

// File names under the manifest directory (exposed for tests).
inline constexpr char kManifestFileName[] = "PIPELINE";
inline constexpr char kOffsetsFileName[] = "OFFSETS";

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_RECOVERY_H_
