#ifndef FBSTREAM_CORE_FAILURE_H_
#define FBSTREAM_CORE_FAILURE_H_

#include <functional>
#include <string>

namespace fbstream::stylus {

// Crash points inside one processing cycle. The engine consults its
// FailureInjector at each point; if the injector says "crash", the cycle
// aborts and the node loses its in-memory state (the checkpoint store is
// all that survives). The points bracket the checkpoint writes so tests
// and the Figure 7 experiment can land a crash exactly between the state
// write and the offset write — the gap that distinguishes at-least-once
// from at-most-once.
enum class FailurePoint {
  kAfterProcessing,       // Batch processed (and, for at-least-once output,
                          // already emitted), checkpoint not started.
  kBetweenCheckpointWrites,  // First checkpoint record durable, second not.
  kAfterCheckpoint,       // Checkpoint durable, post-checkpoint emission
                          // (at-most-once output) not yet done.
};

// Returns true to inject a crash at this point.
using FailureInjector = std::function<bool(FailurePoint point)>;

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_FAILURE_H_
