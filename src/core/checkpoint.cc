#include "core/checkpoint.h"

#include "common/fault.h"
#include "common/fs.h"
#include "common/metrics.h"
#include "common/serde.h"

namespace fbstream::stylus {

namespace {
constexpr char kStateKey[] = "__state__";
constexpr char kOffsetKey[] = "__offset__";

Status InjectedCrash() { return Status::Aborted("injected crash"); }

std::string EncodeOffset(uint64_t offset) {
  std::string s;
  PutFixed64(&s, offset);
  return s;
}

StatusOr<uint64_t> DecodeOffset(const std::string& s) {
  std::string_view view(s);
  uint64_t offset = 0;
  if (!GetFixed64(&view, &offset)) {
    return Status::Corruption("bad offset record");
  }
  return offset;
}

// Kill-mode crash points bracketing the two checkpoint writes (both
// backends). A kill at "checkpoint.write.state" dies before the state
// record lands; at "checkpoint.write.offset", between the two records —
// the exact gap whose write ORDER realizes the state semantics. A
// status-fault armed here instead surfaces as a retryable error to the
// shard's checkpoint RetryPolicy.
Status HitStateWrite() {
  return FaultRegistry::Global()->Hit("checkpoint.write.state");
}
Status HitOffsetWrite() {
  return FaultRegistry::Global()->Hit("checkpoint.write.offset");
}
}  // namespace

LocalStateStore::LocalStateStore(hdfs::HdfsCluster* hdfs,
                                 std::string backup_prefix, Clock* clock)
    : hdfs_(hdfs), backup_prefix_(std::move(backup_prefix)) {
  // Short budget: a backup that cannot land after a couple of tries means a
  // real outage, and the shard's degraded mode takes over from there.
  RetryOptions retry;
  retry.max_attempts = 2;
  retry.initial_backoff_micros = 2000;
  retry.max_backoff_micros = 100'000;
  backup_retry_ = std::make_unique<RetryPolicy>(clock, retry);
}

StatusOr<std::unique_ptr<LocalStateStore>> LocalStateStore::Open(
    const std::string& dir, hdfs::HdfsCluster* hdfs,
    const std::string& backup_prefix, Clock* clock) {
  std::unique_ptr<LocalStateStore> store(
      new LocalStateStore(hdfs, backup_prefix, clock));
  FBSTREAM_ASSIGN_OR_RETURN(store->db_, lsm::Db::Open({}, dir));
  return store;
}

Status LocalStateStore::SaveCheckpoint(StateSemantics semantics,
                                       const std::string& state,
                                       uint64_t offset,
                                       const FailureInjector& crash) {
  const std::string offset_value = EncodeOffset(offset);
  switch (semantics) {
    case StateSemantics::kAtLeastOnce:
      // State first, offset second: a crash in between leaves the offset
      // behind the state, so events since the previous checkpoint replay.
      FBSTREAM_RETURN_IF_ERROR(HitStateWrite());
      FBSTREAM_RETURN_IF_ERROR(db_->Put(kStateKey, state));
      if (crash != nullptr && crash(FailurePoint::kBetweenCheckpointWrites)) {
        return InjectedCrash();
      }
      FBSTREAM_RETURN_IF_ERROR(HitOffsetWrite());
      return db_->Put(kOffsetKey, offset_value);
    case StateSemantics::kAtMostOnce:
      // Offset first, state second: a crash in between skips those events.
      FBSTREAM_RETURN_IF_ERROR(HitOffsetWrite());
      FBSTREAM_RETURN_IF_ERROR(db_->Put(kOffsetKey, offset_value));
      if (crash != nullptr && crash(FailurePoint::kBetweenCheckpointWrites)) {
        return InjectedCrash();
      }
      FBSTREAM_RETURN_IF_ERROR(HitStateWrite());
      return db_->Put(kStateKey, state);
    case StateSemantics::kExactlyOnce: {
      // One atomic WriteBatch: the WAL makes both records land or neither.
      FBSTREAM_RETURN_IF_ERROR(HitStateWrite());
      lsm::WriteBatch batch;
      batch.Put(kStateKey, state);
      batch.Put(kOffsetKey, offset_value);
      return db_->Write(batch);
    }
  }
  return Status::Internal("unknown semantics");
}

StatusOr<Checkpoint> LocalStateStore::Load() {
  Checkpoint cp;
  auto state = db_->Get(kStateKey);
  if (state.ok()) {
    cp.has_state = true;
    cp.state = std::move(state).value();
  } else if (!state.status().IsNotFound()) {
    return state.status();
  }
  auto offset = db_->Get(kOffsetKey);
  if (offset.ok()) {
    FBSTREAM_ASSIGN_OR_RETURN(cp.offset, DecodeOffset(offset.value()));
    cp.has_offset = true;
  } else if (!offset.status().IsNotFound()) {
    return offset.status();
  }
  return cp;
}

Status LocalStateStore::SaveCheckpointWithOutput(const std::string& state,
                                                 uint64_t offset,
                                                 const lsm::WriteBatch& output) {
  // Local DB supports transactions (atomic WriteBatch): commit state,
  // offset, and output rows together. Output keys share the DB with the
  // checkpoint records, namespaced by the caller.
  FBSTREAM_RETURN_IF_ERROR(HitStateWrite());
  lsm::WriteBatch batch;
  batch.Put(kStateKey, state);
  batch.Put(kOffsetKey, EncodeOffset(offset));
  for (const lsm::WriteBatch::Op& op : output.ops()) {
    switch (op.type) {
      case lsm::EntryType::kPut:
        batch.Put(op.key, op.value);
        break;
      case lsm::EntryType::kDelete:
        batch.Delete(op.key);
        break;
      case lsm::EntryType::kMerge:
        batch.Merge(op.key, op.value);
        break;
    }
  }
  return db_->Write(batch);
}

Status LocalStateStore::BackupToHdfs() {
  if (hdfs_ == nullptr) {
    return Status::FailedPrecondition("no HDFS configured");
  }
  static Histogram* backup_latency =
      MetricsRegistry::Global()->GetHistogram("hdfs.backup.latency_us");
  static Counter* backup_completed =
      MetricsRegistry::Global()->GetCounter("hdfs.backup.completed");
  static Counter* backup_failed =
      MetricsRegistry::Global()->GetCounter("hdfs.backup.failed");
  // Latency covers the whole multi-file upload including per-file retries —
  // the figure that matters for how long a shard's backup lags its state.
  ScopedLatencyTimer timer(backup_latency);
  const Status st = db_->CreateBackup(
      [this](const std::string& name, const std::string& contents) {
        // Re-uploading the same file is idempotent, so per-file retry is
        // safe even when the backup dies halfway through.
        return backup_retry_->Run("hdfs.backup", [&] {
          return hdfs_->WriteFile(backup_prefix_ + "/" + name, contents);
        });
      });
  (st.ok() ? backup_completed : backup_failed)->Add();
  return st;
}

Status LocalStateStore::RestoreFromHdfs(hdfs::HdfsCluster* hdfs,
                                        const std::string& backup_prefix,
                                        const std::string& dir) {
  return lsm::Db::RestoreBackup(
      [hdfs, &backup_prefix]() { return hdfs->ListFiles(backup_prefix); },
      [hdfs, &backup_prefix](const std::string& name) {
        return hdfs->ReadFile(backup_prefix + "/" + name);
      },
      dir);
}

RemoteStateStore::RemoteStateStore(zippydb::Cluster* cluster,
                                   std::string key_prefix)
    : cluster_(cluster), key_prefix_(std::move(key_prefix)) {}

Status RemoteStateStore::SaveCheckpoint(StateSemantics semantics,
                                        const std::string& state,
                                        uint64_t offset,
                                        const FailureInjector& crash) {
  const std::string offset_value = EncodeOffset(offset);
  switch (semantics) {
    case StateSemantics::kAtLeastOnce:
      FBSTREAM_RETURN_IF_ERROR(HitStateWrite());
      FBSTREAM_RETURN_IF_ERROR(cluster_->Put(StateKey(), state));
      if (crash != nullptr && crash(FailurePoint::kBetweenCheckpointWrites)) {
        return InjectedCrash();
      }
      FBSTREAM_RETURN_IF_ERROR(HitOffsetWrite());
      return cluster_->Put(OffsetKey(), offset_value);
    case StateSemantics::kAtMostOnce:
      FBSTREAM_RETURN_IF_ERROR(HitOffsetWrite());
      FBSTREAM_RETURN_IF_ERROR(cluster_->Put(OffsetKey(), offset_value));
      if (crash != nullptr && crash(FailurePoint::kBetweenCheckpointWrites)) {
        return InjectedCrash();
      }
      FBSTREAM_RETURN_IF_ERROR(HitStateWrite());
      return cluster_->Put(StateKey(), state);
    case StateSemantics::kExactlyOnce: {
      // State and offset generally live on different shards: this is the
      // "high-latency distributed transaction" of §4.3.2.
      FBSTREAM_RETURN_IF_ERROR(HitStateWrite());
      lsm::WriteBatch batch;
      batch.Put(StateKey(), state);
      batch.Put(OffsetKey(), offset_value);
      return cluster_->CommitTransaction(batch);
    }
  }
  return Status::Internal("unknown semantics");
}

StatusOr<Checkpoint> RemoteStateStore::Load() {
  Checkpoint cp;
  auto state = cluster_->Get(StateKey());
  if (state.ok()) {
    cp.has_state = true;
    cp.state = std::move(state).value();
  } else if (!state.status().IsNotFound()) {
    return state.status();
  }
  auto offset = cluster_->Get(OffsetKey());
  if (offset.ok()) {
    FBSTREAM_ASSIGN_OR_RETURN(cp.offset, DecodeOffset(offset.value()));
    cp.has_offset = true;
  } else if (!offset.status().IsNotFound()) {
    return offset.status();
  }
  return cp;
}

Status RemoteStateStore::SaveCheckpointWithOutput(const std::string& state,
                                                  uint64_t offset,
                                                  const lsm::WriteBatch& output) {
  FBSTREAM_RETURN_IF_ERROR(HitStateWrite());
  lsm::WriteBatch batch;
  batch.Put(StateKey(), state);
  batch.Put(OffsetKey(), EncodeOffset(offset));
  for (const lsm::WriteBatch::Op& op : output.ops()) {
    switch (op.type) {
      case lsm::EntryType::kPut:
        batch.Put(op.key, op.value);
        break;
      case lsm::EntryType::kDelete:
        batch.Delete(op.key);
        break;
      case lsm::EntryType::kMerge:
        batch.Merge(op.key, op.value);
        break;
    }
  }
  return cluster_->CommitTransaction(batch);
}

}  // namespace fbstream::stylus
