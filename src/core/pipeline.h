#ifndef FBSTREAM_CORE_PIPELINE_H_
#define FBSTREAM_CORE_PIPELINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/node.h"

namespace fbstream::stylus {

// A DAG of processing nodes connected by Scribe categories (§2: "Puma,
// Stylus, and Swift applications can be connected through Scribe into a
// complex DAG"). Because every edge is a persistent Scribe stream, node
// failures are independent: a crashed shard stops consuming but neither
// blocks its upstream nor corrupts its downstream, and it resumes from its
// own checkpoint on recovery (§4.2.2).
//
// Execution is cooperative and deterministic: each round polls every shard
// once, in node insertion order. Tests and benches drive rounds explicitly.
class Pipeline {
 public:
  Pipeline(scribe::Scribe* scribe, Clock* clock)
      : scribe_(scribe), clock_(clock) {}

  // Creates one shard per bucket of the node's input category.
  Status AddNode(const NodeConfig& config);

  // Runs every live shard once; crashed shards are skipped (their upstream
  // keeps flowing — decoupling in action). Returns events processed.
  StatusOr<size_t> RunRound();

  // Rounds until a full round consumes nothing (or max_rounds).
  StatusOr<size_t> RunUntilQuiescent(int max_rounds = 1000);

  // All shards of a node, for crash injection and inspection.
  std::vector<NodeShard*> Shards(const std::string& node) const;
  NodeShard* Shard(const std::string& node, int bucket) const;

  // Restarts every crashed shard from its checkpoint.
  Status RecoverAll();

  // Node names in insertion (topological) order.
  const std::vector<std::string>& NodeNames() const { return node_order_; }

  // Creates shards for input buckets added after the node was deployed
  // (§4.2.2/§6.4: re-bucketing a category is the scaling mechanism; new
  // buckets need consumers). Existing shards are untouched.
  Status ReconcileShards();

  // Monitoring (§6.4): per-shard processing lag, and the alerting query
  // ("alerts ... notify us to adapt our apps to changes in volume").
  struct LagReport {
    std::string node;
    int shard = 0;
    uint64_t lag_messages = 0;
  };
  std::vector<LagReport> GetProcessingLag() const;
  std::vector<LagReport> GetLagAlerts(uint64_t threshold_messages) const;

 private:
  scribe::Scribe* scribe_;
  Clock* clock_;
  std::vector<std::string> node_order_;
  std::map<std::string, std::vector<std::unique_ptr<NodeShard>>> nodes_;
};

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_PIPELINE_H_
