#ifndef FBSTREAM_CORE_PIPELINE_H_
#define FBSTREAM_CORE_PIPELINE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/node.h"
#include "core/recovery.h"
#include "core/shard_executor.h"

namespace fbstream::stylus {

// A DAG of processing nodes connected by Scribe categories (§2: "Puma,
// Stylus, and Swift applications can be connected through Scribe into a
// complex DAG"). Because every edge is a persistent Scribe stream, node
// failures are independent: a crashed shard stops consuming but neither
// blocks its upstream nor corrupts its downstream, and it resumes from its
// own checkpoint on recovery (§4.2.2).
//
// Execution model: rounds are driven explicitly (tests and benches call
// RunRound / RunUntilQuiescent). Within a round, nodes run in insertion
// (topological) order — a downstream node's round starts only after its
// upstream node's round completes. With Options{num_threads > 1} the shards
// *within* each node run concurrently on a fixed worker pool (ShardExecutor);
// Scribe buckets decouple them, so parallel rounds are deterministic-
// equivalent to serial ones: identical per-shard outputs and checkpoints,
// only the interleaving across shards differs.
//
// Thread-safety contract: one driver thread calls RunRound / RunUntilQuiescent
// / RecoverAll / AddNode. While a round is in flight, *other* threads may
// safely call Shards / Shard / GetProcessingLag / GetLagAlerts /
// ReconcileShards (monitoring and auto-scaling race a running round by
// design); shard topology is guarded by an internal mutex and per-shard
// counters are atomic. Shards created by a concurrent ReconcileShards join
// the next round.
class Pipeline {
 public:
  struct Options {
    // Worker threads for shard execution. 1 (the default) preserves the
    // fully serial, single-threaded seed behavior; n > 1 runs each node's
    // shards concurrently on a pool of n threads.
    int num_threads = 1;
  };

  Pipeline(scribe::Scribe* scribe, Clock* clock)
      : Pipeline(scribe, clock, Options{}) {}
  Pipeline(scribe::Scribe* scribe, Clock* clock, Options options);
  ~Pipeline();

  // Creates one shard per bucket of the node's input category.
  Status AddNode(const NodeConfig& config);

  // Durable manifest (core/recovery.h): once enabled, every topology change
  // rewrites <dir>/PIPELINE and every completed round rewrites <dir>/OFFSETS,
  // both atomically — enough for a fresh process to Recover() after hard
  // death. Call after the initial AddNode()s on a new deployment.
  Status EnableManifest(const std::string& dir);
  const std::string& manifest_dir() const { return manifest_dir_; }

  // Rebuilds the code half of a NodeConfig (factories, schema, sink,
  // cluster pointers) for a manifest record; Recover overrides the scalar
  // half from the record itself. Typically a switch on record.name.
  using NodeConfigResolver =
      std::function<StatusOr<NodeConfig>(const ManifestNodeRecord&)>;

  // Process-restart recovery: rebuilds this (empty) pipeline from the
  // manifest in `dir`. For every recorded node, shards reopen their state
  // stores (LSM WAL replay), reload checkpoints and seek their tailers; a
  // local-backend shard whose directory is gone restores from its HDFS
  // backup first (Fig 10 "new machine"); shards with backups configured
  // re-queue one pending backup so the resync path re-uploads state the
  // crash window may have missed. Manifest maintenance continues in `dir`.
  Status Recover(const std::string& dir, const NodeConfigResolver& resolver);

  // Runs every live shard once; crashed shards are skipped (their upstream
  // keeps flowing — decoupling in action). Returns events processed.
  // Checks ShutdownRequested() between node batches: on SIGTERM the round
  // finishes the in-flight node (its shards end on a clean checkpoint) and
  // skips the rest — a graceful drain, never a torn write.
  StatusOr<size_t> RunRound();

  // Rounds until a full round consumes nothing. Returns the events processed
  // if the pipeline quiesced; returns DeadlineExceeded if it was still
  // consuming after max_rounds (callers can tell "drained" from "gave up").
  StatusOr<size_t> RunUntilQuiescent(int max_rounds = 1000);

  // All shards of a node, for crash injection and inspection.
  std::vector<NodeShard*> Shards(const std::string& node) const;
  NodeShard* Shard(const std::string& node, int bucket) const;

  // Restarts every crashed shard from its checkpoint.
  Status RecoverAll();

  // Node names in insertion (topological) order. Stable while rounds run:
  // nodes are only added by AddNode, which must not race a round.
  const std::vector<std::string>& NodeNames() const { return node_order_; }

  // Creates shards for input buckets added after the node was deployed
  // (§4.2.2/§6.4: re-bucketing a category is the scaling mechanism; new
  // buckets need consumers). Existing shards are untouched. Safe to call
  // while a round is in flight; new shards join the next round.
  Status ReconcileShards();

  // Monitoring (§6.4): per-shard processing lag, and the alerting query
  // ("alerts ... notify us to adapt our apps to changes in volume").
  // Safe to call concurrently with a running round.
  struct LagReport {
    std::string node;
    int shard = 0;
    uint64_t lag_messages = 0;
  };
  std::vector<LagReport> GetProcessingLag() const;
  std::vector<LagReport> GetLagAlerts(uint64_t threshold_messages) const;

  // Degraded-mode backup state for every shard (§4.4.2): which shards are
  // running without remote backup copies, how many resyncs are queued, and
  // cumulative time degraded. Safe to call concurrently with a running round.
  struct BackupReport {
    std::string node;
    int shard = 0;
    BackupHealth health;
  };
  std::vector<BackupReport> GetBackupHealth() const;

  int num_threads() const { return options_.num_threads; }

 private:
  // AddNode minus the lock, for callers already holding mu_.
  Status AddNodeLocked(const NodeConfig& config);
  // Serializes the current topology (requires mu_); bumps the epoch.
  Status SaveManifestLocked();
  // Rewrites <dir>/OFFSETS from the live tailer offsets.
  void SaveOffsetsSnapshot();

  scribe::Scribe* scribe_;
  Clock* clock_;
  Options options_;
  std::unique_ptr<ShardExecutor> executor_;  // Null in serial mode.
  std::string manifest_dir_;  // Empty until EnableManifest / Recover.
  uint64_t manifest_epoch_ = 0;
  // Guards the shard topology (nodes_ / node_order_). Shard pointers remain
  // valid once created: shards are never destroyed, only appended.
  mutable std::mutex mu_;
  std::vector<std::string> node_order_;
  std::map<std::string, std::vector<std::unique_ptr<NodeShard>>> nodes_;
};

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_PIPELINE_H_
