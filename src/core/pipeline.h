#ifndef FBSTREAM_CORE_PIPELINE_H_
#define FBSTREAM_CORE_PIPELINE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/node.h"
#include "core/recovery.h"
#include "common/shard_executor.h"

namespace fbstream::stylus {

// A DAG of processing nodes connected by Scribe categories (§2: "Puma,
// Stylus, and Swift applications can be connected through Scribe into a
// complex DAG"). Because every edge is a persistent Scribe stream, node
// failures are independent: a crashed shard stops consuming but neither
// blocks its upstream nor corrupts its downstream, and it resumes from its
// own checkpoint on recovery (§4.2.2).
//
// Two execution models share one pipeline:
//
//  - Round mode (tests and benches call RunRound / RunUntilQuiescent):
//    within a round, nodes run in insertion (topological) order — a
//    downstream node's round starts only after its upstream node's round
//    completes. With Options{num_threads > 1} the shards *within* each node
//    run concurrently on a fixed worker pool (ShardExecutor); Scribe buckets
//    decouple them, so parallel rounds are deterministic-equivalent to
//    serial ones: identical per-shard outputs and checkpoints, only the
//    interleaving across shards differs.
//
//  - Continuous mode (Start / Stop): every shard gets a long-lived event
//    loop that polls, processes, and checkpoints on its own cadence with no
//    cross-node barrier. The persistent Scribe bus is the inter-node queue
//    (§5.3), so backpressure is the backlog between a producer and the
//    tailers of the category it feeds: a shard whose downstream consumers
//    lag more than max_queue_messages stalls instead of polling, and the
//    stall propagates source-ward hop by hop until the source tailer itself
//    pauses. Checkpoint commits overlap the next batch's processing
//    (§4.2 "processing can proceed while the checkpoint is saved"), so
//    commit I/O comes off the per-shard critical path. Both modes chunk
//    input identically (by checkpoint policy), so with the same input they
//    produce byte-identical per-shard outputs and checkpoints.
//
// Thread-safety contract: one driver thread calls RunRound /
// RunUntilQuiescent / Start / Stop / WaitUntilQuiescent / RecoverAll /
// AddNode. While a round is in flight or continuous loops are running,
// *other* threads may safely call Shards / Shard / GetProcessingLag /
// GetLagAlerts / GetBackupHealth / ReconcileShards (monitoring and
// auto-scaling race running work by design); shard topology is guarded by
// an internal mutex and per-shard counters are atomic. Shards created by a
// concurrent ReconcileShards join the next round, or get their own event
// loop immediately in continuous mode. In continuous mode, RecoverAll is
// safe only for shards that are already down (a dead shard's loop idles;
// reviving it never races the loop's alive() gate).
class Pipeline {
 public:
  struct Options {
    // Worker threads for shard execution. 1 (the default) preserves the
    // fully serial, single-threaded seed behavior; n > 1 runs each node's
    // shards concurrently on a pool of n threads.
    int num_threads = 1;

    // --- Continuous mode (Start/Stop) ---
    // Backpressure bound: a shard stalls (stops polling its input) while
    // any tailer of its output category is more than this many messages
    // behind. Bounds the byte footprint of every inter-node edge to roughly
    // max_queue_messages * message size per consumer shard.
    uint64_t max_queue_messages = 4096;
    // §4.2 processing overlap: offload checkpoint commits to a commit pool
    // so the shard loop starts batch N+1 while batch N's checkpoint/backup
    // side effects commit. Monoid shards always commit inline (their
    // partial-aggregate buffer is single-threaded by design).
    bool overlap_commits = true;
    // Commit pool size when overlap_commits is set.
    int commit_threads = 2;
    // Event-loop sleep when a shard is idle, stalled, or down.
    int idle_sleep_micros = 200;
    // Offsets-snapshot cadence in continuous mode: rewrite <dir>/OFFSETS
    // every this many committed batches (manifest enabled; 0 disables the
    // cadence — a final snapshot is still taken on Stop).
    uint64_t snapshot_every_batches = 32;
  };

  Pipeline(scribe::Scribe* scribe, Clock* clock)
      : Pipeline(scribe, clock, Options{}) {}
  Pipeline(scribe::Scribe* scribe, Clock* clock, Options options);
  ~Pipeline();

  // Creates one shard per bucket of the node's input category.
  Status AddNode(const NodeConfig& config);

  // Durable manifest (core/recovery.h): once enabled, every topology change
  // rewrites <dir>/PIPELINE and every completed round rewrites <dir>/OFFSETS,
  // both atomically — enough for a fresh process to Recover() after hard
  // death. Call after the initial AddNode()s on a new deployment.
  Status EnableManifest(const std::string& dir);
  const std::string& manifest_dir() const { return manifest_dir_; }

  // Rebuilds the code half of a NodeConfig (factories, schema, sink,
  // cluster pointers) for a manifest record; Recover overrides the scalar
  // half from the record itself. Typically a switch on record.name.
  using NodeConfigResolver =
      std::function<StatusOr<NodeConfig>(const ManifestNodeRecord&)>;

  // Process-restart recovery: rebuilds this (empty) pipeline from the
  // manifest in `dir`. For every recorded node, shards reopen their state
  // stores (LSM WAL replay), reload checkpoints and seek their tailers; a
  // local-backend shard whose directory is gone restores from its HDFS
  // backup first (Fig 10 "new machine"); shards with backups configured
  // re-queue one pending backup so the resync path re-uploads state the
  // crash window may have missed. Manifest maintenance continues in `dir`.
  Status Recover(const std::string& dir, const NodeConfigResolver& resolver);

  // Partial recovery (distributed mode): a worker process recovers only its
  // slice of the manifest topology while sibling workers own the rest.
  struct RecoverOptions {
    // Empty = recover every recorded node. Otherwise only these nodes are
    // instantiated; every name must exist in the manifest (InvalidArgument
    // otherwise — a worker assigned a node the manifest doesn't know is a
    // deployment bug, not a recovery).
    std::vector<std::string> node_filter;
    // Scoped offsets file name: a filtered pipeline writes its advisory
    // snapshots to OFFSETS.<scope> so concurrent workers don't clobber each
    // other (LoadOffsetsSnapshot merges all scopes). Defaults to the filter
    // names joined with '+'.
    std::string offsets_scope;
  };
  // With a nonempty node_filter the pipeline becomes *partial*: it never
  // rewrites PIPELINE (the manifest describes the whole topology, which no
  // single worker sees) and its offsets snapshots go to the scoped file.
  Status Recover(const std::string& dir, const NodeConfigResolver& resolver,
                 const RecoverOptions& options);

  // Runs every live shard once; crashed shards are skipped (their upstream
  // keeps flowing — decoupling in action). Returns events processed.
  // Checks ShutdownRequested() between node batches: on SIGTERM the round
  // finishes the in-flight node (its shards end on a clean checkpoint) and
  // skips the rest — a graceful drain, never a torn write.
  StatusOr<size_t> RunRound();

  // Rounds until a full round consumes nothing. Returns the events processed
  // if the pipeline quiesced; returns DeadlineExceeded if it was still
  // consuming after max_rounds (callers can tell "drained" from "gave up");
  // returns Cancelled (message carries the drained-so-far count) if a
  // shutdown request interrupted the drive loop — an interrupted drain is
  // consistent (every round ends on checkpoints) but NOT quiescence, and
  // callers that treat the two alike will under-drain.
  StatusOr<size_t> RunUntilQuiescent(int max_rounds = 1000);

  // --- Continuous push-based execution ---

  // Spawns one long-lived event loop thread per shard (plus the commit pool
  // when overlap is enabled). Loops run until Stop(): poll a batch, process
  // it, hand the checkpoint commit to the pool, immediately start the next
  // batch. Fails if already running.
  Status Start();

  // Graceful drain: every loop finishes its in-flight batch *and* its
  // in-flight commit — each shard ends on a completed checkpoint — then
  // exits. Joins all loops, drains the commit pool, and writes a final
  // offsets snapshot. Fails if not running.
  Status Stop();

  // Blocks until every alive shard's input is drained and no batch or
  // commit is in flight, then returns events processed since Start().
  // Returns Cancelled (message carries the count) on a shutdown request,
  // DeadlineExceeded after timeout_ms of wall time.
  StatusOr<size_t> WaitUntilQuiescent(int64_t timeout_ms = 10000);

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Events processed since Start() (continuous mode); worker heartbeats
  // report it so the supervisor can tell progress from liveness.
  size_t events_processed() const {
    return continuous_processed_.load(std::memory_order_relaxed);
  }

  // Consecutive OFFSETS-snapshot write failures (0 after any success).
  // MonitoringService::ActiveSnapshotAlerts pages on a sustained streak: a
  // single miss costs recovery precision, a streak means recovery would
  // replay from an ever-staler floor.
  uint64_t OffsetsWriteFailureStreak() const {
    return offsets_failure_streak_.load(std::memory_order_relaxed);
  }

  // All shards of a node, for crash injection and inspection.
  std::vector<NodeShard*> Shards(const std::string& node) const;
  NodeShard* Shard(const std::string& node, int bucket) const;

  // Restarts every crashed shard from its checkpoint.
  Status RecoverAll();

  // Node names in insertion (topological) order. Stable while rounds run:
  // nodes are only added by AddNode, which must not race a round.
  const std::vector<std::string>& NodeNames() const { return node_order_; }

  // Creates shards for input buckets added after the node was deployed
  // (§4.2.2/§6.4: re-bucketing a category is the scaling mechanism; new
  // buckets need consumers). Existing shards are untouched. Safe to call
  // while a round is in flight; new shards join the next round.
  Status ReconcileShards();

  // Monitoring (§6.4): per-shard processing lag, and the alerting query
  // ("alerts ... notify us to adapt our apps to changes in volume").
  // Safe to call concurrently with a running round.
  struct LagReport {
    std::string node;
    int shard = 0;
    uint64_t lag_messages = 0;
  };
  std::vector<LagReport> GetProcessingLag() const;
  std::vector<LagReport> GetLagAlerts(uint64_t threshold_messages) const;

  // Degraded-mode backup state for every shard (§4.4.2): which shards are
  // running without remote backup copies, how many resyncs are queued, and
  // cumulative time degraded. Safe to call concurrently with a running round.
  struct BackupReport {
    std::string node;
    int shard = 0;
    BackupHealth health;
  };
  std::vector<BackupReport> GetBackupHealth() const;

  int num_threads() const { return options_.num_threads; }

 private:
  // Per-shard continuous event loop: the thread plus the one-slot commit
  // channel between it and the commit pool. Defined in pipeline.cc.
  struct ShardLoop;

  // AddNode minus the lock, for callers already holding mu_.
  Status AddNodeLocked(const NodeConfig& config);
  // Serializes the current topology (requires mu_); bumps the epoch.
  Status SaveManifestLocked();
  // Rewrites <dir>/OFFSETS from the live tailer offsets. Serialized
  // internally (continuous commit threads may call it concurrently); tracks
  // the write-failure streak for monitoring.
  void SaveOffsetsSnapshot();

  // Continuous-mode internals (pipeline.cc).
  void SpawnLoopLocked(const std::string& node, NodeShard* shard);
  void ShardLoopMain(ShardLoop* loop);
  bool FinishCommit(ShardLoop* loop);
  void AfterCommit(size_t events);
  uint64_t MaxDownstreamLag(const std::string& category) const;
  bool QuiescentOnce() const;

  scribe::Scribe* scribe_;
  Clock* clock_;
  Options options_;
  std::unique_ptr<ShardExecutor> executor_;  // Null in serial mode.
  std::string manifest_dir_;  // Empty until EnableManifest / Recover.
  uint64_t manifest_epoch_ = 0;
  // True after a node-filtered Recover: this pipeline owns a slice of the
  // topology, must never rewrite PIPELINE, and snapshots offsets under
  // offsets_scope_.
  bool manifest_partial_ = false;
  std::string offsets_scope_;
  // Guards the shard topology (nodes_ / node_order_). Shard pointers remain
  // valid once created: shards are never destroyed, only appended.
  mutable std::mutex mu_;
  std::vector<std::string> node_order_;
  std::map<std::string, std::vector<std::unique_ptr<NodeShard>>> nodes_;

  // Continuous-mode state. Lock order where both are needed: mu_ before
  // loops_mu_ (ReconcileShards spawns loops while holding mu_); readers
  // that need both snapshots take them sequentially instead of nested.
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::unique_ptr<ShardExecutor> commit_pool_;  // Live while running.
  mutable std::mutex loops_mu_;
  std::vector<std::unique_ptr<ShardLoop>> loops_;
  std::atomic<size_t> continuous_processed_{0};
  std::atomic<uint64_t> continuous_commits_{0};
  std::mutex snapshot_mu_;  // Serializes OFFSETS writes across threads.
  std::atomic<uint64_t> offsets_failure_streak_{0};
};

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_PIPELINE_H_
