#ifndef FBSTREAM_CORE_WATERMARK_H_
#define FBSTREAM_CORE_WATERMARK_H_

#include <deque>

#include "common/clock.h"

namespace fbstream::stylus {

// Event-time low-watermark estimator (§2.4): "Stylus provides a function to
// estimate the event time low watermark with a given confidence interval."
//
// The estimator observes (event_time, arrival_time) pairs and models the
// lateness distribution over a sliding window of recent events. The low
// watermark at confidence c is the time W such that an estimated fraction c
// of all events with event_time <= W have already arrived: we take the c-th
// quantile L of observed lateness and report now - L.
class WatermarkEstimator {
 public:
  // `window` caps how many recent events inform the estimate.
  explicit WatermarkEstimator(size_t window = 4096) : window_(window) {}

  void Observe(Micros event_time, Micros arrival_time);

  // Returns the low watermark at time `now` with the given confidence in
  // (0, 1]. With no observations, returns now (streams with no lateness).
  Micros EstimateLowWatermark(Micros now, double confidence) const;

  size_t num_observations() const { return lateness_.size(); }
  Micros max_event_time() const { return max_event_time_; }

 private:
  size_t window_;
  std::deque<Micros> lateness_;
  Micros max_event_time_ = 0;
};

}  // namespace fbstream::stylus

#endif  // FBSTREAM_CORE_WATERMARK_H_
