#include "core/windowed.h"

#include "common/serde.h"

namespace fbstream::stylus {

void WindowedProcessor::Process(const Event& event, std::vector<Row>* out) {
  (void)out;
  watermark_.Observe(event.event_time, event.arrival_time);
  const Micros window = WindowOf(event.event_time);
  if (window < finalized_through_) {
    // The window already shipped; re-opening it would double count
    // downstream. Count the straggler instead.
    ++late_dropped_;
    return;
  }
  auto& cells = windows_[window];
  auto it = cells.find(GroupKey(event));
  if (it == cells.end()) {
    it = cells.emplace(GroupKey(event), InitialState()).first;
  }
  Fold(event, &it->second);
}

void WindowedProcessor::OnCheckpoint(Micros now, std::vector<Row>* out) {
  const Micros watermark =
      watermark_.EstimateLowWatermark(now, options_.confidence);
  // Finalize every window whose end the watermark has passed.
  auto it = windows_.begin();
  while (it != windows_.end() &&
         it->first + options_.window_micros <= watermark) {
    for (const auto& [group, state] : it->second) {
      out->push_back(Render(it->first, group, state));
    }
    finalized_through_ = it->first + options_.window_micros;
    it = windows_.erase(it);
  }
}

void WindowedProcessor::FlushAll(std::vector<Row>* out) {
  for (const auto& [window, cells] : windows_) {
    for (const auto& [group, state] : cells) {
      out->push_back(Render(window, group, state));
    }
    finalized_through_ = window + options_.window_micros;
  }
  windows_.clear();
}

std::string WindowedProcessor::SerializeState() const {
  std::string out;
  PutVarint64(&out, ZigzagEncode(finalized_through_));
  PutVarint64(&out, late_dropped_);
  PutVarint64(&out, windows_.size());
  for (const auto& [window, cells] : windows_) {
    PutVarint64(&out, ZigzagEncode(window));
    PutVarint64(&out, cells.size());
    for (const auto& [group, state] : cells) {
      PutLengthPrefixed(&out, group);
      PutLengthPrefixed(&out, state);
    }
  }
  return out;
}

Status WindowedProcessor::RestoreState(std::string_view data) {
  windows_.clear();
  uint64_t raw = 0;
  if (!GetVarint64(&data, &raw)) return Status::Corruption("windowed: head");
  finalized_through_ = ZigzagDecode(raw);
  if (!GetVarint64(&data, &late_dropped_)) {
    return Status::Corruption("windowed: late");
  }
  uint64_t num_windows = 0;
  if (!GetVarint64(&data, &num_windows)) {
    return Status::Corruption("windowed: count");
  }
  for (uint64_t w = 0; w < num_windows; ++w) {
    if (!GetVarint64(&data, &raw)) return Status::Corruption("windowed: win");
    const Micros window = ZigzagDecode(raw);
    uint64_t num_cells = 0;
    if (!GetVarint64(&data, &num_cells)) {
      return Status::Corruption("windowed: cells");
    }
    auto& cells = windows_[window];
    for (uint64_t c = 0; c < num_cells; ++c) {
      std::string_view group;
      std::string_view state;
      if (!GetLengthPrefixed(&data, &group) ||
          !GetLengthPrefixed(&data, &state)) {
        return Status::Corruption("windowed: cell");
      }
      cells.emplace(std::string(group), std::string(state));
    }
  }
  return Status::OK();
}

}  // namespace fbstream::stylus
