// Dashboard offload (paper §5.2): the same dashboard served two ways —
// ad-hoc from Scuba (read-time aggregation over raw events) and from a
// migrated Puma app (write-time aggregation) — demonstrating that the
// results agree while the Puma path does a fraction of the work. Also shows
// the partial-aggregate trick from the paper: Scuba-style charts show at
// most ~7 series, so the Puma app aggregates per (app, metric) and the
// serving layer combines/limits.

#include <cstdio>

#include "common/clock.h"
#include "common/rng.h"
#include "common/serde.h"
#include "puma/app.h"
#include "scribe/scribe.h"
#include "storage/scuba/scuba.h"

using namespace fbstream;  // Example code; library code never does this.

namespace {

SchemaPtr MetricsSchema() {
  return Schema::Make({{"event_time", ValueType::kInt64},
                       {"app", ValueType::kString},
                       {"metric", ValueType::kString},
                       {"value", ValueType::kDouble}});
}

constexpr char kDashboardApp[] = R"(
CREATE APPLICATION mobile_dashboard;
CREATE INPUT TABLE metrics (event_time BIGINT, app, metric, value DOUBLE)
  FROM SCRIBE("mobile_metrics") TIME event_time;
CREATE TABLE cold_start AS
  SELECT app, count(*) AS samples, avg(value) AS avg_ms, max(value) AS worst
  FROM metrics [1 minutes]
  WHERE metric = 'cold_start_ms';
)";

}  // namespace

int main() {
  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig config;
  config.name = "mobile_metrics";
  config.num_buckets = 2;
  if (!bus.CreateCategory(config).ok()) return 1;

  // Scuba table ingesting the same stream.
  scuba::Scuba scuba(&bus);
  if (!scuba.CreateTable("mobile_metrics", MetricsSchema()).ok()) return 1;
  if (!scuba.AttachCategory("mobile_metrics", "mobile_metrics").ok()) {
    return 1;
  }

  // The migrated Puma app.
  puma::PumaService service(&bus, &clock, puma::PumaAppOptions{});
  auto diff = service.SubmitApp(kDashboardApp);
  if (!diff.ok()) {
    fprintf(stderr, "%s\n", diff.status().ToString().c_str());
    return 1;
  }
  if (!service.AcceptDiff(*diff).ok()) return 1;
  puma::PumaApp* app = service.GetApp("mobile_dashboard");

  // Mobile clients report metrics.
  {
    TextRowCodec codec(MetricsSchema());
    Rng rng(7);
    const char* kApps[] = {"fb4a", "fbios", "messenger", "instagram"};
    for (int i = 0; i < 20000; ++i) {
      const std::string app_name = kApps[rng.Uniform(4)];
      const bool cold_start = rng.NextDouble() < 0.5;
      Row row(MetricsSchema(),
              {Value(static_cast<Micros>(i) * 2000),
               Value(app_name),
               Value(cold_start ? "cold_start_ms" : "crash"),
               Value(cold_start ? 300.0 + rng.NextDouble() * 900.0 : 1.0)});
      (void)bus.WriteSharded("mobile_metrics", app_name, codec.Encode(row));
    }
  }
  (void)scuba.PollAll();
  if (!service.PollAll().ok()) return 1;

  // The dashboard chart: avg cold start per app, first 1-minute window.
  printf("cold start dashboard (first minute):\n");
  printf("  %-12s %-14s %-14s %-10s %-10s\n", "app", "scuba avg",
         "puma avg", "samples", "agree?");

  scuba::Query query;
  query.filters.push_back(
      {"metric", scuba::FilterOp::kEq, Value("cold_start_ms")});
  query.group_by = {"app"};
  query.time_column = "event_time";
  query.bucket_micros = kMicrosPerMinute;
  query.max_time = kMicrosPerMinute;
  query.min_time = 0;
  query.aggregates.push_back({scuba::AggKind::kAvg, "value", 0});
  query.aggregates.push_back({scuba::AggKind::kCount, "", 0});
  query.limit = 7;  // Charts show at most ~7 series.
  auto scuba_result = scuba.GetTable("mobile_metrics")->Run(query);
  if (!scuba_result.ok()) return 1;

  auto puma_rows = app->QueryWindow("cold_start", 0);
  if (!puma_rows.ok()) return 1;

  for (const auto& srow : scuba_result->rows) {
    const std::string app_name = srow.group[0].ToString();
    double puma_avg = -1;
    double samples = 0;
    for (const auto& prow : *puma_rows) {
      if (prow.group[0].ToString() == app_name) {
        samples = prow.aggregates[0].CoerceDouble();
        puma_avg = prow.aggregates[1].CoerceDouble();
      }
    }
    const bool agree =
        puma_avg >= 0 &&
        std::abs(puma_avg - srow.aggregates[0]) < 1e-6 * srow.aggregates[0];
    printf("  %-12s %-14.1f %-14.1f %-10.0f %-10s\n", app_name.c_str(),
           srow.aggregates[0], puma_avg, samples, agree ? "yes" : "NO");
  }

  printf("\ncost: Scuba scanned %llu raw rows for this one refresh; the "
         "Puma app processed each row once\n(%llu total) and serves every "
         "refresh from precomputed windows — see "
         "bench_sec52_dashboard for the CPU comparison.\n",
         static_cast<unsigned long long>(scuba_result->rows_scanned),
         static_cast<unsigned long long>(app->rows_processed()));
  return 0;
}
