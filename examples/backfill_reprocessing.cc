// Backfill / reprocessing (paper §4.5): running the *same* stream
// processing code over old data in the batch environment. The three reasons
// the paper gives, all shown here:
//   1. testing a new app against old data before deploying it on the live
//      stream;
//   2. bootstrapping historical metric values for a newly added metric;
//   3. reprocessing a period after fixing a processing bug.
//
// A Stylus monoid processor (topic counter) runs once over a Scribe stream
// and once over the Hive archive of the same days through MapReduce with
// map-side partial aggregation; the results match exactly.

#include <cmath>
#include <cstdio>

#include "common/clock.h"
#include "common/fs.h"
#include "common/rng.h"
#include "common/serde.h"
#include "core/batch.h"
#include "core/monoid_state.h"
#include "core/node.h"
#include "core/processor.h"
#include "scribe/scribe.h"
#include "storage/hive/hive.h"
#include "storage/zippydb/zippydb.h"

using namespace fbstream;  // Example code; library code never does this.

namespace {

SchemaPtr PostsSchema() {
  return Schema::Make({{"event_time", ValueType::kInt64},
                       {"topic", ValueType::kString},
                       {"engagement", ValueType::kInt64}});
}

// The app under test: engagement totals per topic. Written once, runs as
// both the stream binary and the batch binary (§4.5.2: "two binaries are
// generated at the same time: one for stream and one for batch").
class EngagementByTopic : public stylus::MonoidProcessor {
 public:
  EngagementByTopic() : agg_(stylus::MakeInt64SumAggregator()) {}

  void Process(const stylus::Event& event,
               std::vector<Contribution>* contributions) override {
    contributions->emplace_back(
        event.row.Get("topic").ToString(),
        event.row.Get("engagement").ToString());
  }
  const stylus::MonoidAggregator& aggregator() const override { return *agg_; }

 private:
  std::unique_ptr<stylus::MonoidAggregator> agg_;
};

}  // namespace

int main() {
  const std::string work_dir = MakeTempDir("backfill");
  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig config;
  config.name = "posts";
  if (!bus.CreateCategory(config).ok()) return 1;

  // Two days of history, both in Scribe (recent retention) and archived in
  // Hive ("we store input and output streams in our data warehouse Hive for
  // longer retention").
  hive::Hive hive(work_dir + "/hive");
  if (!hive.CreateTable("posts_archive", PostsSchema()).ok()) return 1;
  {
    TextRowCodec codec(PostsSchema());
    Rng rng(11);
    const char* kTopics[] = {"sports", "politics", "arts", "tech", "food"};
    for (int day = 0; day < 2; ++day) {
      std::vector<Row> archive;
      for (int i = 0; i < 3000; ++i) {
        Row row(PostsSchema(),
                {Value(day * kMicrosPerDay +
                       static_cast<Micros>(rng.Uniform(24)) * kMicrosPerHour),
                 Value(kTopics[rng.Uniform(5)]),
                 Value(static_cast<int64_t>(rng.Uniform(100)))});
        archive.push_back(row);
        (void)bus.Write("posts", 0, codec.Encode(row));
      }
      const std::string ds = day == 0 ? "2016-01-01" : "2016-01-02";
      if (!hive.WritePartition("posts_archive", ds, archive).ok()) return 1;
      if (!hive.LandPartition("posts_archive", ds).ok()) return 1;
    }
  }

  // --- The stream binary: a Stylus monoid node over Scribe. ---------------
  zippydb::ClusterOptions zopt;
  zopt.simulate_latency = false;
  zopt.merge_operator = std::make_shared<stylus::MonoidMergeOperator>(
      std::shared_ptr<const stylus::MonoidAggregator>(
          stylus::MakeInt64SumAggregator()));
  auto cluster = zippydb::Cluster::Open(zopt, work_dir + "/z");
  if (!cluster.ok()) return 1;

  stylus::NodeConfig node;
  node.name = "engagement";
  node.input_category = "posts";
  node.input_schema = PostsSchema();
  node.event_time_column = "event_time";
  node.monoid_factory = [] { return std::make_unique<EngagementByTopic>(); };
  node.monoid_aggregator = std::shared_ptr<const stylus::MonoidAggregator>(
      stylus::MakeInt64SumAggregator());
  node.remote = cluster->get();
  node.remote_mode = stylus::RemoteWriteMode::kAppendOnly;
  auto shard = stylus::NodeShard::Create(node, &bus, &clock, 0);
  if (!shard.ok()) return 1;
  while (true) {
    auto n = (*shard)->RunOnce();
    if (!n.ok() || *n == 0) break;
  }

  // --- The batch binary: same processor code over the Hive archive. -------
  auto agg = stylus::MakeInt64SumAggregator();
  hive::MapReduceCounters counters;
  auto batch = stylus::RunMonoidBatch(
      hive, "posts_archive", {"2016-01-01", "2016-01-02"},
      [] { return std::make_unique<EngagementByTopic>(); }, *agg,
      PostsSchema(), "event_time", &counters);
  if (!batch.ok()) {
    fprintf(stderr, "%s\n", batch.status().ToString().c_str());
    return 1;
  }

  printf("engagement by topic — stream vs batch over the same two days:\n");
  printf("  %-10s %-12s %-12s %s\n", "topic", "stream", "batch", "match");
  bool all_match = true;
  for (const auto& [topic, batch_value] : *batch) {
    auto stream_value = (*cluster)->Get("mono/engagement/" + topic);
    const std::string stream_str =
        stream_value.ok() ? *stream_value : "<missing>";
    const bool match = stream_str == batch_value;
    all_match = all_match && match;
    printf("  %-10s %-12s %-12s %s\n", topic.c_str(), stream_str.c_str(),
           batch_value.c_str(), match ? "yes" : "NO");
  }
  printf("\nmap-side partial aggregation shrank the shuffle: %llu map "
         "outputs -> %llu shuffle records\n",
         static_cast<unsigned long long>(counters.map_output_records),
         static_cast<unsigned long long>(counters.shuffle_records));
  printf("result: %s\n", all_match
                             ? "stream and batch binaries agree — safe to "
                               "deploy / bootstrap / reprocess"
                             : "MISMATCH");
  (void)RemoveAll(work_dir);
  return all_match ? 0 : 1;
}
