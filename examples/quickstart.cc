// Quickstart: the paper's Figure 2 Puma application, end to end, in ~60
// lines of user code.
//
//   1. stand up a Scribe bus and create the input category;
//   2. submit the SQL app to the Puma service (deploys after review);
//   3. write a few scored events into the stream;
//   4. poll the app and query the "top K events" per 5-minute window.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/clock.h"
#include "common/serde.h"
#include "puma/app.h"
#include "scribe/scribe.h"

using namespace fbstream;  // Example code; library code never does this.

// The complete Puma app from the paper's Figure 2.
constexpr char kTopEventsApp[] = R"(
CREATE APPLICATION top_events;

CREATE INPUT TABLE events_score(
    event_time BIGINT,
    event,
    category,
    score BIGINT
)
FROM SCRIBE("events_stream")
TIME event_time;

CREATE TABLE top_events_5min AS
SELECT
    category,
    event,
    topk(score) AS score
FROM
    events_score [5 minutes];
)";

int main() {
  // 1. The message bus. Every system reads and writes Scribe categories.
  SystemClock* clock = SystemClock::Get();
  scribe::Scribe bus(clock);
  scribe::CategoryConfig input;
  input.name = "events_stream";
  input.num_buckets = 4;  // The unit of parallelism.
  if (!bus.CreateCategory(input).ok()) return 1;

  // 2. Deploy the app: submit -> review -> accept (§6.3 self-service flow).
  puma::PumaService service(&bus, clock, puma::PumaAppOptions{});
  auto diff = service.SubmitApp(kTopEventsApp);
  if (!diff.ok()) {
    fprintf(stderr, "parse error: %s\n", diff.status().ToString().c_str());
    return 1;
  }
  if (!service.AcceptDiff(*diff).ok()) return 1;
  puma::PumaApp* app = service.GetApp("top_events");

  // 3. Producers log scored events (tab-separated rows, like any product
  //    logging through Scribe).
  auto schema = Schema::Make({{"event_time", ValueType::kInt64},
                              {"event", ValueType::kString},
                              {"category", ValueType::kString},
                              {"score", ValueType::kInt64}});
  TextRowCodec codec(schema);
  const struct {
    const char* event;
    const char* category;
    int64_t score;
  } kEvents[] = {
      {"worldcup_final", "sports", 95}, {"worldcup_final", "sports", 88},
      {"election_debate", "politics", 72}, {"oscar_night", "arts", 64},
      {"worldcup_final", "sports", 91}, {"local_derby", "sports", 33},
      {"election_debate", "politics", 81}, {"indie_film", "arts", 12},
  };
  for (const auto& e : kEvents) {
    Row row(schema, {Value(clock->NowMicros()), Value(e.event),
                     Value(e.category), Value(e.score)});
    (void)bus.WriteSharded("events_stream", e.event, codec.Encode(row));
  }

  // 4. The app consumes the stream (seconds of latency in production; one
  //    poll here) and serves queries through its Thrift-like API.
  if (!service.PollAll().ok()) return 1;

  auto windows = app->Windows("top_events_5min");
  if (!windows.ok() || windows->empty()) return 1;
  auto top = app->QueryTopK("top_events_5min", windows->back(), /*k=*/2);
  if (!top.ok()) return 1;

  printf("top 2 events per category (5-minute window):\n");
  for (const auto& row : *top) {
    printf("  %-10s %-18s score=%.0f\n", row.group[0].ToString().c_str(),
           row.group[1].ToString().c_str(),
           row.aggregates[0].CoerceDouble());
  }
  return 0;
}
