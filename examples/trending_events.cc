// The paper's Figure 3 example application: a four-node DAG that computes
// "trending" events.
//
//   Incoming -> [Filterer] -> [Joiner] -> [Scorer] -> [Ranker] -> queries
//      |  scribe   |   scribe    |  scribe   |  scribe   |
//                           Laser lookup   RPC classification
//
//   * Filterer  (Stylus, stateless): keeps only post events and reshards by
//     dimension id, "so that the processing for the next node can be done
//     in parallel on shards with disjoint sets of dimension ids".
//   * Joiner    (Stylus, stateless): queries Laser for dimension info and an
//     external RPC service for topic classification; sharded input keeps
//     its dimension cache hot. Output is resharded by (event, topic).
//   * Scorer    (Stylus, stateful): sliding-window counts per (event,
//     topic) plus long-term trend rates; emits a score.
//   * Ranker    (Puma): the Figure 2 app — top K events per topic per
//     5-minute window, queried by a consumer service.

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/clock.h"
#include "common/fs.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/serde.h"
#include "core/node.h"
#include "core/pipeline.h"
#include "core/processor.h"
#include "core/sink.h"
#include "puma/app.h"
#include "scribe/scribe.h"
#include "storage/laser/laser.h"

using namespace fbstream;  // Example code; library code never does this.

namespace {

// --------------------------------------------------------------------------
// Schemas of the streams between the nodes.

SchemaPtr IncomingSchema() {
  return Schema::Make({{"event_time", ValueType::kInt64},
                       {"event_type", ValueType::kString},
                       {"dim_id", ValueType::kInt64},
                       {"text", ValueType::kString}});
}

SchemaPtr FilteredSchema() { return IncomingSchema(); }

SchemaPtr JoinedSchema() {
  return Schema::Make({{"event_time", ValueType::kInt64},
                       {"event", ValueType::kString},
                       {"topic", ValueType::kString},
                       {"language", ValueType::kString}});
}

SchemaPtr ScoredSchema() {
  return Schema::Make({{"event_time", ValueType::kInt64},
                       {"event", ValueType::kString},
                       {"category", ValueType::kString},
                       {"score", ValueType::kInt64}});
}

// --------------------------------------------------------------------------
// An external RPC classification service ("the Joiner node may need to
// query an arbitrary service for the Classifications, which Puma cannot
// do" — this is why the Joiner must be Stylus).

class ClassificationService {
 public:
  std::string Classify(const std::string& text) {
    ++calls_;
    static const char* kTopics[] = {"sports", "politics", "arts", "tech"};
    // A "model": hash of the first hashtag word.
    const size_t pos = text.find('#');
    const std::string token =
        pos == std::string::npos ? text : text.substr(pos + 1, 8);
    return kTopics[Fnv1a64(token) % 4];
  }
  uint64_t calls() const { return calls_; }

 private:
  uint64_t calls_ = 0;
};

// --------------------------------------------------------------------------
// Node 1: the Filterer.

class Filterer : public stylus::StatelessProcessor {
 public:
  void Process(const stylus::Event& event, std::vector<Row>* out) override {
    if (event.row.Get("event_type").ToString() != "post") return;
    out->push_back(event.row);  // Sink reshards by dim_id.
  }
};

// Node 2: the Joiner (Laser lookup join + RPC classification, with a
// per-shard dimension cache made effective by the dim_id resharding).
class Joiner : public stylus::StatelessProcessor {
 public:
  Joiner(laser::LaserApp* dimensions, ClassificationService* classifier)
      : dimensions_(dimensions), classifier_(classifier) {}

  void Process(const stylus::Event& event, std::vector<Row>* out) override {
    const int64_t dim_id = event.row.Get("dim_id").CoerceInt64();
    std::string language = "unknown";
    auto cached = cache_.find(dim_id);
    if (cached != cache_.end()) {
      language = cached->second;
    } else {
      auto dim = dimensions_->Get(Value(dim_id));
      if (dim.ok()) language = dim->Get("language").ToString();
      cache_.emplace(dim_id, language);  // Hot because input is sharded.
    }
    const std::string text = event.row.Get("text").ToString();
    const std::string topic = classifier_->Classify(text);
    // The "event" here is the content item; use the leading hashtag word.
    const size_t pos = text.find('#');
    std::string event_name = "post";
    if (pos != std::string::npos) {
      const size_t end = text.find(' ', pos);
      event_name = text.substr(pos, end == std::string::npos ? std::string::npos
                                                             : end - pos);
    }
    out->push_back(Row(JoinedSchema(),
                       {event.row.Get("event_time"), Value(event_name),
                        Value(topic), Value(language)}));
  }

 private:
  laser::LaserApp* dimensions_;
  ClassificationService* classifier_;
  std::map<int64_t, std::string> cache_;
};

// Node 3: the Scorer — "keeps a sliding window of the event counts per
// topic for recent history. It also keeps track of the long term trends
// for these counters."
class Scorer : public stylus::StatefulProcessor {
 public:
  void Process(const stylus::Event& event, std::vector<Row>* out) override {
    (void)out;
    const std::string key = event.row.Get("event").ToString() + "\x01" +
                            event.row.Get("topic").ToString();
    ++window_counts_[key];
    long_term_[key] += 0.1;  // Decayed long-term rate (simplified).
    last_event_time_ = std::max(last_event_time_,
                                event.row.Get("event_time").CoerceInt64());
  }

  void OnCheckpoint(Micros /*now*/, std::vector<Row>* out) override {
    for (const auto& [key, count] : window_counts_) {
      const size_t sep = key.find('\x01');
      const std::string event = key.substr(0, sep);
      const std::string topic = key.substr(sep + 1);
      // Score = burst relative to the long-term trend.
      const double long_term = std::max(1.0, long_term_[key]);
      const int64_t score =
          static_cast<int64_t>(100.0 * static_cast<double>(count) /
                               long_term);
      out->push_back(Row(ScoredSchema(), {Value(last_event_time_),
                                          Value(event), Value(topic),
                                          Value(score)}));
    }
    window_counts_.clear();  // The window slides.
  }

  std::string SerializeState() const override {
    std::string out;
    PutVarint64(&out, long_term_.size());
    for (const auto& [key, rate] : long_term_) {
      PutLengthPrefixed(&out, key);
      PutVarint64(&out, static_cast<uint64_t>(rate * 1000));
    }
    return out;
  }

  Status RestoreState(std::string_view data) override {
    uint64_t n = 0;
    if (!GetVarint64(&data, &n)) return Status::Corruption("scorer state");
    for (uint64_t i = 0; i < n; ++i) {
      std::string_view key;
      uint64_t milli = 0;
      if (!GetLengthPrefixed(&data, &key) || !GetVarint64(&data, &milli)) {
        return Status::Corruption("scorer state");
      }
      long_term_[std::string(key)] = static_cast<double>(milli) / 1000.0;
    }
    return Status::OK();
  }

 private:
  std::map<std::string, int64_t> window_counts_;
  std::map<std::string, double> long_term_;
  Micros last_event_time_ = 0;
};

// Node 4: the Ranker is the Figure 2 Puma app, reading the Scorer's output.
constexpr char kRankerApp[] = R"(
CREATE APPLICATION ranker;
CREATE INPUT TABLE events_score (event_time BIGINT, event, category,
                                 score BIGINT)
  FROM SCRIBE("scored") TIME event_time;
CREATE TABLE top_events_5min AS
  SELECT category, event, topk(score) AS score
  FROM events_score [5 minutes];
)";

}  // namespace

int main() {
  const std::string work_dir = MakeTempDir("trending");
  SimClock clock(kMicrosPerHour);  // Some morning.
  scribe::Scribe bus(&clock);

  // Categories: each edge of the DAG is a Scribe stream.
  for (const auto& [name, buckets] :
       std::map<std::string, int>{{"incoming", 4},
                                  {"filtered", 4},
                                  {"joined", 4},
                                  {"scored", 2},
                                  {"dim_updates", 1}}) {
    scribe::CategoryConfig config;
    config.name = name;
    config.num_buckets = buckets;
    if (!bus.CreateCategory(config).ok()) return 1;
  }

  // Laser serves the Dimensions table, fed from its own Scribe stream.
  auto dim_schema = Schema::Make({{"dim_id", ValueType::kInt64},
                                  {"language", ValueType::kString}});
  laser::LaserAppConfig dim_config;
  dim_config.name = "dimensions";
  dim_config.scribe_category = "dim_updates";
  dim_config.input_schema = dim_schema;
  dim_config.key_columns = {"dim_id"};
  dim_config.value_columns = {"language"};
  auto dimensions = laser::LaserApp::Create(dim_config, &bus, &clock,
                                            work_dir + "/laser");
  if (!dimensions.ok()) return 1;
  {
    TextRowCodec codec(dim_schema);
    const char* kLanguages[] = {"en", "es", "pt", "fr", "de"};
    for (int64_t id = 0; id < 50; ++id) {
      Row row(dim_schema, {Value(id), Value(kLanguages[id % 5])});
      (void)bus.Write("dim_updates", 0, codec.Encode(row));
    }
    if (!(*dimensions)->PollOnce().ok()) return 1;
  }

  ClassificationService classifier;

  // Wire the Stylus DAG.
  stylus::Pipeline pipeline(&bus, &clock);
  {
    stylus::NodeConfig filterer;
    filterer.name = "filterer";
    filterer.input_category = "incoming";
    filterer.input_schema = IncomingSchema();
    filterer.event_time_column = "event_time";
    filterer.stateless_factory = [] { return std::make_unique<Filterer>(); };
    filterer.backend = stylus::StateBackend::kNone;
    filterer.state_dir = work_dir + "/state";
    filterer.sink = std::make_shared<stylus::ScribeSink>(
        &bus, "filtered", FilteredSchema(),
        std::vector<std::string>{"dim_id"});
    if (!pipeline.AddNode(filterer).ok()) return 1;
  }
  {
    stylus::NodeConfig joiner;
    joiner.name = "joiner";
    joiner.input_category = "filtered";
    joiner.input_schema = FilteredSchema();
    joiner.event_time_column = "event_time";
    laser::LaserApp* dims = dimensions->get();
    ClassificationService* cls = &classifier;
    joiner.stateless_factory = [dims, cls] {
      return std::make_unique<Joiner>(dims, cls);
    };
    joiner.backend = stylus::StateBackend::kNone;
    joiner.state_dir = work_dir + "/state";
    joiner.sink = std::make_shared<stylus::ScribeSink>(
        &bus, "joined", JoinedSchema(),
        std::vector<std::string>{"event", "topic"});
    if (!pipeline.AddNode(joiner).ok()) return 1;
  }
  {
    stylus::NodeConfig scorer;
    scorer.name = "scorer";
    scorer.input_category = "joined";
    scorer.input_schema = JoinedSchema();
    scorer.event_time_column = "event_time";
    scorer.stateful_factory = [] { return std::make_unique<Scorer>(); };
    scorer.state_semantics = stylus::StateSemantics::kExactlyOnce;
    scorer.backend = stylus::StateBackend::kLocal;  // Fig 10: small state.
    scorer.state_dir = work_dir + "/state";
    scorer.sink = std::make_shared<stylus::ScribeSink>(
        &bus, "scored", ScoredSchema(), std::vector<std::string>{"topic"});
    if (!pipeline.AddNode(scorer).ok()) return 1;
  }

  // The Ranker: a Puma app over the scored stream.
  puma::PumaService puma_service(&bus, &clock, puma::PumaAppOptions{});
  auto diff = puma_service.SubmitApp(kRankerApp);
  if (!diff.ok() || !puma_service.AcceptDiff(*diff).ok()) return 1;
  puma::PumaApp* ranker = puma_service.GetApp("ranker");

  // Generate a morning of posts: #worldcup is bursting.
  {
    TextRowCodec codec(IncomingSchema());
    Rng rng(2016);
    const char* kTags[] = {"#worldcup", "#worldcup", "#worldcup",
                           "#election", "#oscars",   "#kernel",
                           "#worldcup", "#recipes"};
    for (int i = 0; i < 2000; ++i) {
      const bool is_post = rng.NextDouble() < 0.7;
      Row row(IncomingSchema(),
              {Value(clock.NowMicros()),
               Value(is_post ? "post" : "like"),
               Value(static_cast<int64_t>(rng.Uniform(50))),
               Value(std::string(kTags[rng.Uniform(8)]) + " " +
                     rng.NextString(24))});
      (void)bus.WriteSharded("incoming", std::to_string(i),
                             codec.Encode(row));
      clock.AdvanceMicros(200'000);  // 5 events/second.
    }
  }

  // Run the DAG to quiescence, then the Ranker.
  {
    auto drained = pipeline.RunUntilQuiescent();
    // Cancelled = a SIGTERM/SIGINT drain: a clean shutdown, not a failure.
    if (drained.status().IsCancelled()) return 0;
    if (!drained.ok()) return 1;
  }
  if (!puma_service.PollAll().ok()) return 1;

  // A consumer service queries the Ranker for the top events per topic.
  auto windows = ranker->Windows("top_events_5min");
  if (!windows.ok() || windows->empty()) return 1;
  printf("trending now (top 2 events per topic, last window):\n");
  auto top = ranker->QueryTopK("top_events_5min", windows->back(), 2);
  if (!top.ok()) return 1;
  for (const auto& row : *top) {
    printf("  %-10s %-14s score=%6.0f\n", row.group[0].ToString().c_str(),
           row.group[1].ToString().c_str(),
           row.aggregates[0].CoerceDouble());
  }

  // Operational color: lag monitoring and the external service load.
  printf("\nprocessing lag after quiescence:");
  for (const auto& report : pipeline.GetProcessingLag()) {
    printf(" %s/%d=%llu", report.node.c_str(), report.shard,
           static_cast<unsigned long long>(report.lag_messages));
  }
  printf("\nclassification RPCs: %llu, Laser queries: %llu (cache kept them "
         "low)\n",
         static_cast<unsigned long long>(classifier.calls()),
         static_cast<unsigned long long>((*dimensions)->num_queries()));
  (void)RemoveAll(work_dir);
  return 0;
}
