// The Chorus data pipeline (paper §5.1): transforms a stream of posts into
// aggregated, anonymized summaries — "What are the top topics being
// discussed right now?" — with results visible in seconds ("during the 2015
// Superbowl, we watched a huge spike in posts containing the hashtag
// #likeagirl in the 2 minutes following the TV ad").
//
// The pipeline mirrors the paper's description:
//   * "a mix of Puma and Stylus apps, with lookup joins in Laser and both
//     Hive and Scuba as sink data stores";
//   * it evolved in stages — a Puma filter first, then a Laser join, then a
//     Stylus app replacing custom code — and this example is organized in
//     those stages so each can be read (and was deployable) independently.

#include <cstdio>
#include <map>

#include "common/clock.h"
#include "common/fs.h"
#include "common/rng.h"
#include "common/serde.h"
#include "core/node.h"
#include "core/pipeline.h"
#include "core/processor.h"
#include "core/sink.h"
#include "puma/app.h"
#include "scribe/scribe.h"
#include "storage/hive/hive.h"
#include "storage/laser/laser.h"
#include "storage/scuba/scuba.h"

using namespace fbstream;  // Example code; library code never does this.

namespace {

SchemaPtr PostsSchema() {
  return Schema::Make({{"event_time", ValueType::kInt64},
                       {"hashtag", ValueType::kString},
                       {"age_bucket", ValueType::kString},
                       {"text", ValueType::kString}});
}

SchemaPtr AnnotatedSchema() {
  return Schema::Make({{"event_time", ValueType::kInt64},
                       {"hashtag", ValueType::kString},
                       {"topic", ValueType::kString},
                       {"age_bucket", ValueType::kString}});
}

// Stage 3 (latest evolution): the Stylus annotator that replaced the
// "custom Python code" — joins each filtered post with the Laser
// hashtag->topic table and anonymizes it (drops the text).
class Annotator : public stylus::StatelessProcessor {
 public:
  explicit Annotator(laser::LaserApp* topics) : topics_(topics) {}

  void Process(const stylus::Event& event, std::vector<Row>* out) override {
    std::string topic = "other";
    auto looked_up = topics_->Get(event.row.Get("hashtag"));
    if (looked_up.ok()) topic = looked_up->Get("topic").ToString();
    out->push_back(Row(AnnotatedSchema(),
                       {event.row.Get("event_time"),
                        event.row.Get("hashtag"), Value(topic),
                        event.row.Get("age_bucket")}));
  }

 private:
  laser::LaserApp* topics_;
};

// Stage 1 (original pipeline): "only one Puma app to filter posts".
constexpr char kFilterApp[] = R"(
CREATE APPLICATION chorus_filter;
CREATE INPUT TABLE all_posts (event_time BIGINT, hashtag, age_bucket, text)
  FROM SCRIBE("all_posts") TIME event_time;
CREATE STREAM public_posts AS
  SELECT event_time, hashtag, age_bucket, text
  FROM all_posts
  WHERE length(hashtag) > 0
  EMIT TO SCRIBE("filtered_posts");
)";

}  // namespace

int main() {
  const std::string work_dir = MakeTempDir("chorus");
  SimClock clock(kMicrosPerHour * 18);  // Superbowl evening.
  scribe::Scribe bus(&clock);
  for (const char* name : {"all_posts", "filtered_posts", "annotated_posts",
                           "topic_table_updates"}) {
    scribe::CategoryConfig config;
    config.name = name;
    config.num_buckets = 2;
    if (!bus.CreateCategory(config).ok()) return 1;
  }

  // Laser: hashtag -> topic lookup table ("identifying the topic for a
  // given hashtag", §2.5).
  auto topic_schema = Schema::Make(
      {{"hashtag", ValueType::kString}, {"topic", ValueType::kString}});
  laser::LaserAppConfig topics_config;
  topics_config.name = "hashtag_topics";
  topics_config.scribe_category = "topic_table_updates";
  topics_config.input_schema = topic_schema;
  topics_config.key_columns = {"hashtag"};
  topics_config.value_columns = {"topic"};
  auto topics = laser::LaserApp::Create(topics_config, &bus, &clock,
                                        work_dir + "/laser");
  if (!topics.ok()) return 1;
  {
    TextRowCodec codec(topic_schema);
    const std::pair<const char*, const char*> kTable[] = {
        {"#likeagirl", "superbowl-ads"}, {"#superbowl", "superbowl"},
        {"#katyperry", "halftime-show"}, {"#deflategate", "football"}};
    for (const auto& [hashtag, topic] : kTable) {
      Row row(topic_schema, {Value(hashtag), Value(topic)});
      (void)bus.WriteSharded("topic_table_updates", hashtag,
                             codec.Encode(row));
    }
    if (!(*topics)->PollOnce().ok()) return 1;
  }

  // Stage 1: the Puma filter app.
  puma::PumaService puma_service(&bus, &clock, puma::PumaAppOptions{});
  auto diff = puma_service.SubmitApp(kFilterApp);
  if (!diff.ok() || !puma_service.AcceptDiff(*diff).ok()) return 1;

  // Stage 3: the Stylus annotator (replaced the custom join code).
  stylus::Pipeline pipeline(&bus, &clock);
  {
    stylus::NodeConfig annotator;
    annotator.name = "annotator";
    annotator.input_category = "filtered_posts";
    annotator.input_schema = PostsSchema();
    annotator.event_time_column = "event_time";
    laser::LaserApp* table = topics->get();
    annotator.stateless_factory = [table] {
      return std::make_unique<Annotator>(table);
    };
    annotator.backend = stylus::StateBackend::kNone;
    annotator.state_dir = work_dir + "/state";
    annotator.sink = std::make_shared<stylus::ScribeSink>(
        &bus, "annotated_posts", AnnotatedSchema(),
        std::vector<std::string>{"topic"});
    if (!pipeline.AddNode(annotator).ok()) return 1;
  }

  // Sinks: Scuba (realtime slice-and-dice) and Hive (long retention).
  scuba::Scuba scuba(&bus);
  if (!scuba.CreateTable("chorus", AnnotatedSchema()).ok()) return 1;
  if (!scuba.AttachCategory("chorus", "annotated_posts").ok()) return 1;
  hive::Hive hive(work_dir + "/hive");
  if (!hive.CreateTable("chorus_archive", AnnotatedSchema()).ok()) return 1;
  scribe::Tailer archive_tailer(&bus, "annotated_posts", 0);

  // The Superbowl: a #likeagirl spike two minutes after the ad.
  {
    TextRowCodec codec(PostsSchema());
    Rng rng(49);
    const char* kTags[] = {"#superbowl", "#katyperry", "#deflategate", "",
                           "#superbowl"};
    const char* kAges[] = {"13-17", "18-24", "25-34", "35-54", "55+"};
    auto write_post = [&](const std::string& hashtag) {
      Row row(PostsSchema(),
              {Value(clock.NowMicros()), Value(hashtag),
               Value(kAges[rng.Uniform(5)]), Value(rng.NextString(40))});
      (void)bus.WriteSharded("all_posts", hashtag, codec.Encode(row));
    };
    for (int minute = 0; minute < 10; ++minute) {
      const int posts_this_minute = minute >= 6 ? 400 : 100;  // The ad airs
                                                              // at minute 4.
      for (int i = 0; i < posts_this_minute; ++i) {
        const bool spike = minute >= 6 && rng.NextDouble() < 0.6;
        write_post(spike ? "#likeagirl" : kTags[rng.Uniform(5)]);
      }
      clock.AdvanceMicros(kMicrosPerMinute);
    }
  }

  // Drive the DAG: Puma filter -> Stylus annotator -> Scuba/Hive.
  if (!puma_service.PollAll().ok()) return 1;
  {
    auto drained = pipeline.RunUntilQuiescent();
    // Cancelled = a SIGTERM/SIGINT drain: a clean shutdown, not a failure.
    if (drained.status().IsCancelled()) return 0;
    if (!drained.ok()) return 1;
  }
  (void)scuba.PollAll();
  {
    // Archive to Hive for the batch world.
    TextRowCodec codec(AnnotatedSchema());
    std::vector<Row> rows;
    while (true) {
      auto batch = archive_tailer.Poll(1024);
      if (batch.empty()) break;
      for (const auto& m : batch) {
        auto row = codec.Decode(m.payload);
        if (row.ok()) rows.push_back(std::move(row).value());
      }
    }
    (void)hive.WritePartition("chorus_archive", "game-day", rows);
    (void)hive.LandPartition("chorus_archive", "game-day");
  }

  // The insights team slices the conversation in Scuba.
  scuba::Query query;
  query.group_by = {"topic"};
  query.time_column = "event_time";
  query.bucket_micros = kMicrosPerMinute;
  query.aggregates.push_back({scuba::AggKind::kCount, "", 0});
  auto result = scuba.GetTable("chorus")->Run(query);
  if (!result.ok()) return 1;

  printf("posts per topic per minute (watch superbowl-ads spike after the "
         "ad):\n");
  std::map<std::string, std::map<Micros, double>> series;
  for (const auto& row : result->rows) {
    series[row.group[0].ToString()][row.bucket] = row.aggregates[0];
  }
  for (const auto& [topic, buckets] : series) {
    printf("  %-14s", topic.c_str());
    for (const auto& [bucket, count] : buckets) {
      printf(" %4.0f", count);
    }
    printf("\n");
  }

  auto archived = hive.ReadPartition("chorus_archive", "game-day");
  printf("\narchived to Hive: %zu annotated (anonymized) rows\n",
         archived.ok() ? archived->size() : 0);
  (void)RemoveAll(work_dir);
  return 0;
}
