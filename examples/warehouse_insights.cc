// Warehouse round trip (paper §2.7 + §2.5): a daily Presto query over Hive
// feeds Laser, and a live Puma app lookup-joins the stream against it.
//
//   Hive (yesterday's archive)
//     └─ Presto: SELECT tag, count(*) AS popularity ... GROUP BY tag
//          └─ sent to Laser ("they can then be sent to Laser for access by
//             products and realtime stream processors")
//               └─ Puma app: JOIN LASER("tag_popularity") ON tag
//                    └─ realtime "rising tags" report: today's volume
//                       relative to yesterday's popularity.

#include <cstdio>

#include "common/clock.h"
#include "common/fs.h"
#include "common/rng.h"
#include "common/serde.h"
#include "presto/presto.h"
#include "puma/app.h"
#include "scribe/scribe.h"
#include "storage/hive/hive.h"
#include "storage/laser/laser.h"

using namespace fbstream;  // Example code; library code never does this.

namespace {

SchemaPtr PostsSchema() {
  return Schema::Make({{"event_time", ValueType::kInt64},
                       {"tag", ValueType::kString},
                       {"engagement", ValueType::kInt64}});
}

}  // namespace

int main() {
  const std::string work_dir = MakeTempDir("warehouse");
  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig config;
  config.name = "posts";
  config.num_buckets = 2;
  if (!bus.CreateCategory(config).ok()) return 1;

  // Yesterday's posts, archived in Hive.
  hive::Hive hive(work_dir + "/hive");
  if (!hive.CreateTable("posts_archive", PostsSchema()).ok()) return 1;
  {
    Rng rng(88);
    std::vector<Row> yesterday;
    const struct {
      const char* tag;
      int posts;
    } kYesterday[] = {{"#cats", 500}, {"#news", 300}, {"#niche", 5}};
    for (const auto& [tag, posts] : kYesterday) {
      for (int i = 0; i < posts; ++i) {
        yesterday.push_back(
            Row(PostsSchema(), {Value(i), Value(tag),
                                Value(static_cast<int64_t>(rng.Uniform(50)))}));
      }
    }
    if (!hive.WritePartition("posts_archive", "yesterday", yesterday).ok()) {
      return 1;
    }
    if (!hive.LandPartition("posts_archive", "yesterday").ok()) return 1;
  }

  // The daily Presto job (runs once, after midnight).
  presto::Presto presto(&hive);
  auto popularity = presto.Execute(
      "SELECT tag, count(*) AS popularity FROM posts_archive "
      "GROUP BY tag ORDER BY popularity DESC;");
  if (!popularity.ok()) {
    fprintf(stderr, "%s\n", popularity.status().ToString().c_str());
    return 1;
  }
  printf("yesterday's popularity (Presto over Hive, %llu rows scanned):\n",
         static_cast<unsigned long long>(popularity->rows_scanned));
  for (const Row& row : popularity->rows) {
    printf("  %-8s %5.0f posts\n", row.Get("tag").ToString().c_str(),
           row.Get("popularity").CoerceDouble());
  }

  // Send the result to Laser.
  laser::Laser laser_service(&bus, &clock, work_dir + "/laser");
  laser::LaserAppConfig laser_config;
  laser_config.name = "tag_popularity";
  laser_config.input_schema = popularity->schema;
  laser_config.key_columns = {"tag"};
  laser_config.value_columns = {"popularity"};
  if (!laser_service.DeployApp(laser_config).ok()) return 1;
  if (!presto::Presto::SendToLaser(*popularity,
                                   laser_service.GetApp("tag_popularity"))
           .ok()) {
    return 1;
  }

  // The live Puma app: today's stream, joined against yesterday's numbers.
  puma::PumaAppOptions options;
  options.laser = &laser_service;
  puma::PumaService puma_service(&bus, &clock, options);
  auto diff = puma_service.SubmitApp(R"(
    CREATE APPLICATION rising_tags;
    CREATE INPUT TABLE posts (event_time BIGINT, tag, engagement BIGINT,
                              popularity BIGINT)
      FROM SCRIBE("posts") TIME event_time
      JOIN LASER("tag_popularity") ON tag;
    CREATE TABLE rising AS
      SELECT tag, count(*) AS today, max(popularity) AS yesterday
      FROM posts [1 hours];
  )");
  if (!diff.ok() || !puma_service.AcceptDiff(*diff).ok()) {
    fprintf(stderr, "deploy failed\n");
    return 1;
  }

  // Today: #niche explodes, #cats is quiet.
  {
    TextRowCodec codec(PostsSchema());
    Rng rng(99);
    const struct {
      const char* tag;
      int posts;
    } kToday[] = {{"#cats", 40}, {"#news", 250}, {"#niche", 400}};
    for (const auto& [tag, posts] : kToday) {
      for (int i = 0; i < posts; ++i) {
        Row row(PostsSchema(),
                {Value(static_cast<Micros>(i)), Value(tag),
                 Value(static_cast<int64_t>(rng.Uniform(50)))});
        (void)bus.WriteSharded("posts", tag, codec.Encode(row));
      }
    }
  }
  if (!puma_service.PollAll().ok()) return 1;

  auto rows = puma_service.GetApp("rising_tags")->QueryWindow("rising", 0);
  if (!rows.ok()) return 1;
  printf("\nrising tags (today vs yesterday, first hour):\n");
  printf("  %-8s %8s %10s %8s\n", "tag", "today", "yesterday", "ratio");
  for (const auto& row : *rows) {
    const double today = row.aggregates[0].CoerceDouble();
    const double yesterday = std::max(1.0, row.aggregates[1].CoerceDouble());
    printf("  %-8s %8.0f %10.0f %7.1fx\n",
           row.group[0].ToString().c_str(), today, yesterday,
           today / yesterday);
  }
  printf("\n(#niche at ~80x yesterday's volume is the one to alert on.)\n");
  (void)RemoveAll(work_dir);
  return 0;
}
