// Reproduces Section 5.3: hybrid realtime-batch pipelines. Paper: "In
// multiple cases, we have sped up pipelines by 10 to 24 hours. For example,
// we were able to convert a portion of a pipeline that used to complete
// around 2pm to a set of realtime stream processing apps that deliver the
// same data in Hive by 1am. The end result of this pipeline is therefore
// available 13 hours sooner."
//
// Simulation: a day of events lands in Scribe continuously and is archived
// in a Hive partition at midnight. A three-stage daily pipeline consumes
// it:
//   stage1: heavy aggregation of the raw day   (8 h of cluster time)
//   stage2: join/enrich stage1's output        (6 h)
//   stage3: final rollup (not converted)       (4 h)
// Batch-only: the converted portion (stage1+stage2) can only start after
// the partition lands at midnight, completing around 2 pm. Hybrid: that
// portion runs as streaming apps during the day, so its data is in Hive by
// ~1 am. Both variants *actually produce* stage1's numbers (streaming vs
// batch) so the simulation also validates result equivalence — the paper's
// "Validating that the realtime pipeline results are correct".

#include <cstdio>
#include <map>

#include "bench/workloads.h"
#include "common/fs.h"
#include "puma/app.h"
#include "puma/batch.h"
#include "puma/parser.h"
#include "scribe/scribe.h"
#include "storage/hive/hive.h"

namespace fbstream::bench {
namespace {

// The "earlier queries" of the pipeline (§5.3: "converting some of the
// earlier queries in these pipelines to realtime streaming apps") take 14
// cluster-hours after the partition lands — the batch portion completes
// around 2 pm, the paper's example. The downstream stage is not converted.
constexpr Micros kStage1Hours = 8;
constexpr Micros kStage2Hours = 6;
constexpr Micros kStage3Hours = 4;
constexpr int kEventsPerHour = 500;

constexpr char kStage1App[] = R"(
CREATE APPLICATION stage1;
CREATE INPUT TABLE events (event_time BIGINT, event_type, dim_id BIGINT, text)
  FROM SCRIBE("events") TIME event_time;
CREATE TABLE hourly AS
  SELECT event_type, count(*) AS n
  FROM events [1 hours];
)";

std::string FormatClock(Micros t) {
  const int64_t hours = t / kMicrosPerHour;
  const int64_t mins = (t % kMicrosPerHour) / kMicrosPerMinute;
  char buf[32];
  snprintf(buf, sizeof(buf), "day%lld %02lld:%02lld",
           static_cast<long long>(hours / 24),
           static_cast<long long>(hours % 24), static_cast<long long>(mins));
  return buf;
}

// Aggregate (event_type -> count) totals for equivalence checking.
using Totals = std::map<std::string, int64_t>;

void Run() {
  printf("=== Section 5.3: hybrid realtime-batch pipeline completion time "
         "===\n");
  printf("(3-stage daily pipeline: stage1 %lldh, stage2 %lldh, stage3 "
         "%lldh; day 0 data, results due day 1)\n\n",
         static_cast<long long>(kStage1Hours),
         static_cast<long long>(kStage2Hours),
         static_cast<long long>(kStage3Hours));

  const std::string dir = MakeTempDir("sec53");
  SimClock clock(0);  // Day 0, 00:00.
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig category;
  category.name = "events";
  (void)bus.CreateCategory(category);
  hive::Hive hive(dir + "/hive");
  (void)hive.CreateTable("events_archive", EventsSchema());

  // The streaming stage1 app runs all day alongside the batch archiver.
  auto spec = puma::ParseApp(kStage1App);
  if (!spec.ok()) {
    fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return;
  }
  puma::AppSpec spec_for_batch = *spec;
  auto app = puma::PumaApp::Create(std::move(spec).value(), &bus, &clock,
                                   puma::PumaAppOptions{});
  if (!app.ok()) {
    fprintf(stderr, "%s\n", app.status().ToString().c_str());
    return;
  }

  // --- Day 0: events flow hour by hour. ------------------------------------
  EventGenOptions gen_options;
  gen_options.time_step = kMicrosPerHour / kEventsPerHour;
  EventGenerator gen(gen_options);
  std::vector<Row> archive;
  for (int hour = 0; hour < 24; ++hour) {
    for (int i = 0; i < kEventsPerHour; ++i) {
      Row row = gen.NextRow();
      archive.push_back(row);
      TextRowCodec codec(EventsSchema());
      (void)bus.Write("events", 0, codec.Encode(row));
    }
    clock.AdvanceMicros(kMicrosPerHour);
    // The streaming app keeps up in realtime (seconds of latency).
    (void)(*app)->PollOnce();
  }
  // Midnight: the day's partition lands in Hive.
  (void)hive.WritePartition("events_archive", "day0", archive);
  (void)hive.LandPartition("events_archive", "day0");
  const Micros midnight = clock.NowMicros();

  // --- Batch-only pipeline. -----------------------------------------------
  // The early portion (stage1 + stage2) must re-read the whole day from
  // Hive after it lands at midnight.
  Totals batch_stage1;
  {
    auto batch = puma::RunAppOverHive(spec_for_batch, hive,
                                      {{"events", "events_archive"}},
                                      {"day0"});
    if (batch.ok()) {
      for (const puma::PumaResultRow& row : batch->tables.at("hourly")) {
        batch_stage1[row.group[0].ToString()] +=
            row.aggregates[0].CoerceInt64();
      }
    }
  }
  const Micros batch_stage1_done = midnight + kStage1Hours * kMicrosPerHour;
  const Micros batch_stage2_done = batch_stage1_done +
                                   kStage2Hours * kMicrosPerHour;
  const Micros batch_done = batch_stage2_done + kStage3Hours * kMicrosPerHour;

  // --- Hybrid pipeline. ---------------------------------------------------
  // The early portion runs as streaming apps all day; its final windows
  // close within one checkpoint of midnight, so its data is in Hive with
  // only scheduling slack (the paper: "deliver the same data in Hive by
  // 1am").
  Totals streaming_stage1;
  {
    auto windows = (*app)->Windows("hourly");
    if (windows.ok()) {
      for (const Micros w : *windows) {
        auto rows = (*app)->QueryWindow("hourly", w);
        if (!rows.ok()) continue;
        for (const puma::PumaResultRow& row : *rows) {
          streaming_stage1[row.group[0].ToString()] +=
              row.aggregates[0].CoerceInt64();
        }
      }
    }
  }
  const Micros hybrid_portion_done = midnight + kMicrosPerHour;  // ~1 am.
  const Micros hybrid_done = hybrid_portion_done +
                             kStage3Hours * kMicrosPerHour;

  // --- Report. ------------------------------------------------------------
  printf("  batch-only:  converted portion done %s, full pipeline done %s\n",
         FormatClock(batch_stage2_done).c_str(),
         FormatClock(batch_done).c_str());
  printf("  hybrid:      converted portion done %s, full pipeline done %s\n",
         FormatClock(hybrid_portion_done).c_str(),
         FormatClock(hybrid_done).c_str());

  const double hours_sooner =
      static_cast<double>(batch_stage2_done - hybrid_portion_done) /
      kMicrosPerHour;
  char measured[48];
  snprintf(measured, sizeof(measured), "%.0f h sooner (2pm -> 1am)",
           hours_sooner);
  printf("\n%s\n",
         ReportLine("converted portion availability", "13 h sooner",
                    measured)
             .c_str());

  // Correctness validation (§5.3 challenge #1).
  bool equal = batch_stage1 == streaming_stage1;
  int64_t total = 0;
  for (const auto& [type, n] : streaming_stage1) total += n;
  printf("\nvalidation: streaming stage1 == batch stage1 across %zu event "
         "types (%lld events): %s\n",
         streaming_stage1.size(), static_cast<long long>(total),
         equal ? "MATCH" : "MISMATCH");
  (void)RemoveAll(dir);
}

}  // namespace
}  // namespace fbstream::bench

int main() {
  fbstream::bench::Run();
  return 0;
}
