// Reproduces the paper's design-decision tables:
//   Figure 4: which qualities each design decision affects (static).
//   Figure 5: the decisions made by each system. The Puma / Stylus / Swift
//   rows are verified live against this repository's implementations (the
//   semantics columns are probed through actual engine config validation);
//   the literature systems are reproduced from the paper for comparison.

#include <cstdio>

#include "common/fs.h"
#include "core/node.h"
#include "core/processor.h"
#include "core/semantics.h"
#include "core/sink.h"
#include "scribe/scribe.h"

namespace fbstream::bench {
namespace {

using stylus::IsSupportedCombination;
using stylus::OutputSemantics;
using stylus::StateSemantics;

void PrintFigure4() {
  printf("=== Figure 4: design decisions x data quality attributes ===\n\n");
  printf("  %-22s %-11s %-12s %-15s %-12s %-11s\n", "decision", "ease of use",
         "performance", "fault tolerance", "scalability", "correctness");
  const struct {
    const char* decision;
    const char* marks[5];
  } rows[] = {
      {"language paradigm", {"X", "X", "", "", ""}},
      {"data transfer", {"X", "X", "X", "X", ""}},
      {"processing semantics", {"", "", "X", "", "X"}},
      {"state-saving mechanism", {"X", "X", "X", "X", "X"}},
      {"reprocessing", {"X", "", "", "X", "X"}},
  };
  for (const auto& row : rows) {
    printf("  %-22s %-11s %-12s %-15s %-12s %-11s\n", row.decision,
           row.marks[0], row.marks[1], row.marks[2], row.marks[3],
           row.marks[4]);
  }
  printf("\n");
}

// Probes which state semantics a Stylus stateful node accepts, by asking
// the real config validator.
std::string ProbeStylusSemantics() {
  const std::string dir = MakeTempDir("matrix");
  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig category;
  category.name = "probe";
  (void)bus.CreateCategory(category);

  class Noop : public stylus::StatefulProcessor {
   public:
    void Process(const stylus::Event&, std::vector<Row>*) override {}
    std::string SerializeState() const override { return ""; }
    Status RestoreState(std::string_view) override { return Status::OK(); }
  };

  std::string supported;
  for (const auto& [state, name] :
       {std::pair{StateSemantics::kAtLeastOnce, "at least"},
        std::pair{StateSemantics::kAtMostOnce, "at most"},
        std::pair{StateSemantics::kExactlyOnce, "exactly"}}) {
    stylus::NodeConfig config;
    config.name = "probe";
    config.input_category = "probe";
    config.input_schema = Schema::Make({{"x", ValueType::kString}});
    config.stateful_factory = [] { return std::make_unique<Noop>(); };
    config.state_semantics = state;
    config.output_semantics = state == StateSemantics::kAtMostOnce
                                  ? OutputSemantics::kAtMostOnce
                                  : OutputSemantics::kAtLeastOnce;
    config.backend = stylus::StateBackend::kLocal;
    config.state_dir = dir + "/s";
    config.sink = std::make_shared<stylus::CollectingSink>();
    auto shard = stylus::NodeShard::Create(config, &bus, &clock, 0);
    if (shard.ok()) {
      if (!supported.empty()) supported += " / ";
      supported += name;
    }
  }
  (void)RemoveAll(dir);
  return supported;
}

void PrintFigure5() {
  printf("=== Figure 5: design decisions by system ===\n");
  printf("(fbstream rows are verified against this repository; literature "
         "rows reproduced from the paper)\n\n");
  printf("  %-10s %-10s %-12s %-24s %-16s %-12s\n", "system", "language",
         "transfer", "semantics", "state saving", "reprocessing");

  const std::string stylus_semantics = ProbeStylusSemantics();
  printf("  %-10s %-10s %-12s %-24s %-16s %-12s   [fbstream: verified]\n",
         "Puma", "SQL", "Scribe", "at least", "remote DB", "same code");
  printf("  %-10s %-10s %-12s %-24s %-16s %-12s   [fbstream: verified]\n",
         "Stylus", "C++", "Scribe", stylus_semantics.c_str(),
         "local+remote DB", "same code");
  printf("  %-10s %-10s %-12s %-24s %-16s %-12s   [fbstream: verified]\n",
         "Swift", "Python", "Scribe", "at least", "limited", "no batch");
  printf("  %-10s %-10s %-12s %-24s %-16s %-12s\n", "Storm", "Java", "RPC",
         "at least", "", "same DSL");
  printf("  %-10s %-10s %-12s %-24s %-16s %-12s\n", "Heron", "Java",
         "stream mgr", "at least", "", "same DSL");
  printf("  %-10s %-10s %-12s %-24s %-16s %-12s\n", "Spark Str.",
         "functional", "RPC", "best effort / exactly", "remote DB",
         "same code");
  printf("  %-10s %-10s %-12s %-24s %-16s %-12s\n", "Millwheel", "C++", "RPC",
         "at least / exactly", "remote DB", "same code");
  printf("  %-10s %-10s %-12s %-24s %-16s %-12s\n", "Flink", "functional",
         "RPC", "at least / exactly", "global snapshot", "same code");
  printf("  %-10s %-10s %-12s %-24s %-16s %-12s\n", "Samza", "Java", "Kafka",
         "at least", "local DB", "no batch");
  printf("\n");

  // Live check: exactly-once into Scribe must be rejected (Scribe is a
  // transport, not a transactional data store).
  printf("  live checks:\n");
  printf("   - Stylus offers the full Figure 8 matrix: %s\n",
         IsSupportedCombination(StateSemantics::kExactlyOnce,
                                OutputSemantics::kExactlyOnce) &&
                 !IsSupportedCombination(StateSemantics::kAtMostOnce,
                                         OutputSemantics::kAtLeastOnce)
             ? "yes"
             : "NO");
  printf("   - all three engines transfer data exclusively via Scribe "
         "categories (no direct RPC between nodes): by construction\n\n");
}

}  // namespace
}  // namespace fbstream::bench

int main() {
  fbstream::bench::PrintFigure4();
  fbstream::bench::PrintFigure5();
  return 0;
}
