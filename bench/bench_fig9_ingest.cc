// Reproduces Figure 9: throughput of the Scuba data-ingestion processor,
// Swift implementation vs Stylus implementation. Paper numbers: 35 MB/s
// (Swift) vs 135 MB/s (Stylus) — "the Stylus processor achieves nearly four
// times the throughput of the Swift processor" because Stylus overlaps
// side-effect-free work (deserialization) with receiving input between
// checkpoints, while Swift "buffers all input events between checkpoints"
// and then processes them serially in an interpreted-language client.
//
// Model (see DESIGN.md substitutions):
//  * the pipe/network delivers bytes at a rate calibrated to the measured
//    C++ deserialization rate (both links well-provisioned);
//  * the Swift client is "Python": real deserialization plus a calibrated
//    interpreter slowdown factor;
//  * Swift phases are serial (receive -> deserialize+send -> checkpoint);
//  * Stylus runs a receive thread concurrently with the deserializer and
//    checkpoints only the offset synchronously.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>

#include "bench/workloads.h"
#include "common/cost.h"
#include "common/fs.h"
#include "core/checkpoint.h"
#include "scribe/scribe.h"
#include "storage/scuba/scuba.h"
#include "swift/swift.h"

namespace fbstream::bench {
namespace {

constexpr double kInterpreterFactor = 2.5;  // Extra CPU vs C++ deserialize.
constexpr size_t kCheckpointBytes = 4u << 20;
constexpr size_t kTotalBytes = 48u << 20;

double NowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Measures the C++ text deserialization rate in MB/s; this calibrates the
// simulated pipe bandwidth.
double MeasureDeserRate(const std::vector<std::string>& payloads) {
  TextRowCodec codec(EventsSchema());
  const double start = NowSeconds();
  size_t bytes = 0;
  for (const std::string& p : payloads) {
    auto row = codec.Decode(p);
    if (row.ok()) bytes += p.size();
  }
  const double secs = NowSeconds() - start;
  return static_cast<double>(bytes) / 1e6 / secs;
}

struct Setup {
  std::unique_ptr<SimClock> clock;
  std::unique_ptr<scribe::Scribe> bus;
  size_t total_bytes = 0;
  size_t total_messages = 0;
};

Setup FillScribe() {
  Setup setup;
  setup.clock = std::make_unique<SimClock>(1);
  setup.bus = std::make_unique<scribe::Scribe>(setup.clock.get());
  scribe::CategoryConfig config;
  config.name = "scuba_in";
  (void)setup.bus->CreateCategory(config);
  EventGenerator gen;
  while (setup.total_bytes < kTotalBytes) {
    std::string payload = gen.NextPayload();
    setup.total_bytes += payload.size();
    ++setup.total_messages;
    (void)setup.bus->Write("scuba_in", 0, payload);
  }
  return setup;
}

// --- Swift implementation -------------------------------------------------

// The "Python" Scuba-ingest client: per-interval pipe transfer, then
// deserialization with interpreter overhead, then rows into Scuba.
class SwiftScubaClient : public swift::SwiftClient {
 public:
  SwiftScubaClient(scuba::ScubaTable* table, double pipe_mbps)
      : table_(table), codec_(EventsSchema()), pipe_mbps_(pipe_mbps) {}

  void HandleBatch(const std::string& pipe_data) override {
    // Phase 1 finished upstream: the engine buffered the interval. The
    // transfer through the pipe is serial with everything else.
    SpinWaitMicros(static_cast<double>(pipe_data.size()) / pipe_mbps_);
    SwiftClient::HandleBatch(pipe_data);
  }

  void HandleMessage(const std::string& message) override {
    const double t0 = NowSeconds();
    auto row = codec_.Decode(message);
    const double deser_micros = (NowSeconds() - t0) * 1e6;
    // Interpreter overhead on top of the native parse.
    BurnCpuMicros(deser_micros * (kInterpreterFactor - 1.0));
    if (row.ok()) table_->AddRow(std::move(row).value());
  }

 private:
  scuba::ScubaTable* table_;
  TextRowCodec codec_;
  double pipe_mbps_;  // Bytes per microsecond.
};

double RunSwift(Setup* setup, double pipe_mb_per_s) {
  const std::string dir = MakeTempDir("fig9_swift");
  scuba::ScubaTable table("scuba", EventsSchema());
  SwiftScubaClient client(&table, pipe_mb_per_s);  // MB/s == bytes/µs.
  swift::SwiftConfig config;
  config.name = "scuba_ingest";
  config.category = "scuba_in";
  config.checkpoint_every_bytes = kCheckpointBytes;
  config.checkpoint_dir = dir;
  auto runner = swift::SwiftRunner::Create(config, setup->bus.get(), &client);
  if (!runner.ok()) return 0;

  const double start = NowSeconds();
  while (true) {
    auto n = (*runner)->RunOnce(/*flush_partial=*/true);
    if (!n.ok() || *n == 0) break;
  }
  const double secs = NowSeconds() - start;
  (void)RemoveAll(dir);
  if (table.num_rows() != setup->total_messages) {
    fprintf(stderr, "swift ingested %zu of %zu rows\n", table.num_rows(),
            setup->total_messages);
  }
  return static_cast<double>(setup->total_bytes) / 1e6 / secs;
}

// --- Stylus implementation ------------------------------------------------

// Bounded chunk queue between the receive thread and the deserializer.
class ChunkQueue {
 public:
  void Push(std::vector<std::string> chunk) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return chunks_.size() < 16; });
    chunks_.push_back(std::move(chunk));
    not_empty_.notify_one();
  }
  bool Pop(std::vector<std::string>* chunk) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !chunks_.empty() || done_; });
    if (chunks_.empty()) return false;
    *chunk = std::move(chunks_.front());
    chunks_.pop_front();
    not_full_.notify_one();
    return true;
  }
  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
    not_empty_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<std::vector<std::string>> chunks_;
  bool done_ = false;
};

double RunStylus(Setup* setup, double pipe_mb_per_s) {
  const std::string dir = MakeTempDir("fig9_stylus");
  scuba::ScubaTable table("scuba", EventsSchema());
  auto store = stylus::LocalStateStore::Open(dir + "/ckpt", nullptr, "");
  if (!store.ok()) return 0;

  ChunkQueue queue;
  const double start = NowSeconds();

  // Receive thread: tails Scribe at the pipe rate, concurrently with the
  // deserializer — this is the "side-effect-free processing between
  // checkpoints" overlap.
  std::thread receiver([setup, &queue, pipe_mb_per_s] {
    scribe::Tailer tailer(setup->bus.get(), "scuba_in", 0);
    while (true) {
      auto messages = tailer.Poll(512);
      if (messages.empty()) break;
      std::vector<std::string> chunk;
      size_t bytes = 0;
      chunk.reserve(messages.size());
      for (scribe::Message& m : messages) {
        bytes += m.payload.size();
        chunk.push_back(std::move(m.payload));
      }
      SpinWaitMicros(static_cast<double>(bytes) / pipe_mb_per_s);
      queue.Push(std::move(chunk));
    }
    queue.Done();
  });

  // Deserializer: decodes and feeds Scuba while the receiver keeps reading;
  // checkpoints synchronously every interval (offset only — the processor
  // is stateless, at-most-once output like the paper's setup).
  TextRowCodec codec(EventsSchema());
  size_t since_checkpoint = 0;
  uint64_t offset = 0;
  std::vector<std::string> chunk;
  while (queue.Pop(&chunk)) {
    for (const std::string& payload : chunk) {
      auto row = codec.Decode(payload);
      if (row.ok()) table.AddRow(std::move(row).value());
      since_checkpoint += payload.size();
      ++offset;
    }
    if (since_checkpoint >= kCheckpointBytes) {
      (void)(*store)->SaveCheckpoint(stylus::StateSemantics::kAtMostOnce, "",
                                     offset, nullptr);
      since_checkpoint = 0;
    }
  }
  receiver.join();
  const double secs = NowSeconds() - start;
  (void)RemoveAll(dir);
  if (table.num_rows() != setup->total_messages) {
    fprintf(stderr, "stylus ingested %zu of %zu rows\n", table.num_rows(),
            setup->total_messages);
  }
  return static_cast<double>(setup->total_bytes) / 1e6 / secs;
}

void Run() {
  printf("=== Figure 9: Scuba ingest throughput, Swift vs Stylus ===\n");
  printf("(%zu MB of serialized events; checkpoint every %zu MB; interpreter "
         "factor %.1fx)\n\n",
         kTotalBytes >> 20, kCheckpointBytes >> 20, kInterpreterFactor);

  Setup setup = FillScribe();

  // Calibration sample.
  std::vector<std::string> sample;
  {
    EventGenerator gen;
    size_t bytes = 0;
    while (bytes < (4u << 20)) {
      sample.push_back(gen.NextPayload());
      bytes += sample.back().size();
    }
  }
  const double deser_rate = MeasureDeserRate(sample);
  const double pipe_rate = deser_rate;  // Both links well-provisioned.
  printf("calibration: C++ deserialization %.0f MB/s; pipe modeled at "
         "%.0f MB/s\n\n",
         deser_rate, pipe_rate);

  const double swift_mbps = RunSwift(&setup, pipe_rate);

  // Reset reader state (fresh tailer starts at 0 inside RunStylus).
  const double stylus_mbps = RunStylus(&setup, pipe_rate);

  printf("%s\n", ReportLine("Swift implementation", "35 MB/s",
                            (std::to_string(static_cast<int>(swift_mbps)) +
                             " MB/s")
                                .c_str())
                     .c_str());
  printf("%s\n", ReportLine("Stylus implementation", "135 MB/s",
                            (std::to_string(static_cast<int>(stylus_mbps)) +
                             " MB/s")
                                .c_str())
                     .c_str());
  char ratio[64];
  snprintf(ratio, sizeof(ratio), "%.1fx", stylus_mbps / swift_mbps);
  printf("%s\n", ReportLine("Stylus / Swift ratio", "~3.9x", ratio).c_str());
  printf("\nshape check: Stylus wins by overlapping deserialization with "
         "receive; ratio should be ~3-5x.\n");
}

}  // namespace
}  // namespace fbstream::bench

int main() {
  fbstream::bench::Run();
  return 0;
}
