// Reproduces Section 5.2: migrating dashboard queries from Scuba (read-time
// aggregation) to Puma (write-time aggregation). Paper: "The Puma apps
// consume approximately 14% of the CPU that was needed to run the same
// queries in Scuba."
//
// A fixed dashboard of repeated queries refreshes as new data streams in.
// The Scuba path re-aggregates all raw rows on every refresh; the Puma path
// folds each row into windowed aggregates once at write time and serves
// refreshes from the precomputed results. We measure actual CPU seconds
// spent in each path.

#include <chrono>
#include <cstdio>

#include "bench/workloads.h"
#include "puma/app.h"
#include "puma/parser.h"
#include "scribe/scribe.h"
#include "storage/scuba/scuba.h"

namespace fbstream::bench {
namespace {

constexpr int kChunks = 12;           // Dashboard refreshes (e.g. hourly).
constexpr int kRowsPerChunk = 20000;
constexpr int kQueriesPerRefresh = 3; // Charts on the dashboard.

double NowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr char kDashboardApp[] = R"(
CREATE APPLICATION dashboard;
CREATE INPUT TABLE events (event_time BIGINT, event_type, dim_id BIGINT, text)
  FROM SCRIBE("events") TIME event_time;
CREATE TABLE by_type AS
  SELECT event_type, count(*) AS n, sum(dim_id) AS total
  FROM events [5 minutes];
)";

void Run() {
  printf("=== Section 5.2: dashboard queries — Scuba (read-time) vs Puma "
         "(write-time) ===\n");
  printf("(%d refreshes x %d queries over a stream of %d rows/refresh)\n\n",
         kChunks, kQueriesPerRefresh, kRowsPerChunk);

  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig category;
  category.name = "events";
  (void)bus.CreateCategory(category);

  // Scuba side: raw rows, aggregate at query time.
  scuba::ScubaTable scuba_table("events", EventsSchema());

  // Puma side: the same stream through a windowed aggregation app.
  auto spec = puma::ParseApp(kDashboardApp);
  if (!spec.ok()) {
    fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return;
  }
  puma::PumaAppOptions options;  // Ephemeral: no HBase needed for the bench.
  auto app = puma::PumaApp::Create(std::move(spec).value(), &bus, &clock,
                                   options);
  if (!app.ok()) {
    fprintf(stderr, "%s\n", app.status().ToString().c_str());
    return;
  }

  EventGenerator gen;
  double scuba_cpu = 0;
  double puma_cpu = 0;
  uint64_t scuba_rows_scanned = 0;

  for (int chunk = 0; chunk < kChunks; ++chunk) {
    // New data arrives.
    for (int i = 0; i < kRowsPerChunk; ++i) {
      (void)bus.Write("events", 0, gen.NextPayload());
    }

    // Scuba ingest is cheap (store raw rows); queries pay at read time.
    {
      scribe::Tailer tailer(&bus, "events", 0,
                            static_cast<uint64_t>(chunk) * kRowsPerChunk);
      const double t0 = NowSeconds();
      while (true) {
        auto messages = tailer.Poll(1024);
        if (messages.empty()) break;
        for (const scribe::Message& m : messages) {
          (void)scuba_table.IngestPayload(m.payload);
        }
      }
      // Dashboard refresh: every chart re-aggregates all raw rows.
      for (int q = 0; q < kQueriesPerRefresh; ++q) {
        scuba::Query query;
        query.group_by = {"event_type"};
        query.time_column = "event_time";
        query.bucket_micros = 5 * kMicrosPerMinute;
        query.aggregates.push_back({scuba::AggKind::kCount, "", 0});
        query.aggregates.push_back({scuba::AggKind::kSum, "dim_id", 0});
        query.limit = 7;
        auto result = scuba_table.Run(query);
        if (result.ok()) scuba_rows_scanned += result->rows_scanned;
      }
      scuba_cpu += NowSeconds() - t0;
    }

    // Puma pays at write time; refreshes read precomputed windows.
    {
      const double t0 = NowSeconds();
      (void)(*app)->PollOnce();
      auto windows = (*app)->Windows("by_type");
      if (windows.ok()) {
        for (int q = 0; q < kQueriesPerRefresh; ++q) {
          for (const Micros w : *windows) {
            (void)(*app)->QueryWindow("by_type", w);
          }
        }
      }
      puma_cpu += NowSeconds() - t0;
    }
  }

  const double pct = puma_cpu / scuba_cpu * 100.0;
  printf("  Scuba path: %.2f s CPU (%llu raw rows scanned at read time)\n",
         scuba_cpu, static_cast<unsigned long long>(scuba_rows_scanned));
  printf("  Puma path:  %.2f s CPU (%llu rows folded once at write time, "
         "%llu queries served)\n\n",
         puma_cpu,
         static_cast<unsigned long long>((*app)->rows_processed()),
         static_cast<unsigned long long>((*app)->queries_served()));
  char measured[32];
  snprintf(measured, sizeof(measured), "%.0f%%", pct);
  printf("%s\n", ReportLine("Puma CPU as fraction of Scuba CPU", "~14%",
                            measured)
                     .c_str());
  printf("\nshape check: write-time aggregation costs a small fraction of "
         "repeated read-time aggregation;\nthe exact ratio depends on the "
         "refresh rate and retention, not on absolute speed.\n");
}

}  // namespace
}  // namespace fbstream::bench

int main() {
  fbstream::bench::Run();
  return 0;
}
