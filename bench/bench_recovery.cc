// Figure 10 at pipeline granularity: process-crash recovery time through the
// durable manifest (Pipeline::Recover). Two paths are timed end to end —
// build the pipeline from the manifest, reopen every shard's state store,
// reload checkpoints, seek tailers:
//   * local restart  — the shard directories survived the crash; recovery is
//     a WAL replay + checkpoint load per shard.
//   * remote restore — the machine is gone (state dirs wiped); every shard
//     first rebuilds its local DB from the HDFS backup, then opens it.
// `--smoke` shrinks the state for CI; `--out <path>` redirects the JSON
// (default BENCH_RECOVERY.json in the working directory).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/fs.h"
#include "common/rng.h"
#include "common/serde.h"
#include "core/node.h"
#include "core/pipeline.h"
#include "core/recovery.h"
#include "core/sink.h"
#include "storage/hdfs/hdfs.h"

namespace fbstream::bench {
namespace {

using namespace fbstream::stylus;

double NowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SchemaPtr EventSchema() {
  return Schema::Make({{"event_time", ValueType::kInt64},
                       {"id", ValueType::kInt64},
                       {"payload", ValueType::kString}});
}

// Accumulates every payload byte it sees — a deliberately fat state so the
// restore path moves real data.
class AccumulatorProcessor : public StatefulProcessor {
 public:
  void Process(const Event& event, std::vector<Row>* /*out*/) override {
    state_ += event.row.Get("payload").ToString();
  }
  void OnCheckpoint(Micros /*now*/, std::vector<Row>* /*out*/) override {}
  std::string SerializeState() const override { return state_; }
  Status RestoreState(std::string_view data) override {
    state_ = std::string(data);
    return Status::OK();
  }

 private:
  std::string state_;
};

int Run(bool smoke, const std::string& out_path) {
  const int buckets = 4;
  const int events = smoke ? 400 : 4000;
  const size_t payload_bytes = smoke ? 256 : 4096;

  printf("=== Figure 10: pipeline crash recovery via durable manifest ===\n");
  printf("(%d shards, %d events x %zuB payload)\n\n", buckets, events,
         payload_bytes);

  const std::string dir = MakeTempDir("bench_recovery");
  SimClock clock(1'000'000);
  scribe::Scribe scribe(&clock);
  scribe::CategoryConfig in;
  in.name = "in";
  in.num_buckets = buckets;
  if (!scribe.CreateCategory(in).ok()) return 1;
  hdfs::HdfsCluster hdfs(dir + "/hdfs");

  auto make_config = [&]() {
    NodeConfig config;
    config.name = "acc";
    config.input_category = "in";
    config.input_schema = EventSchema();
    config.event_time_column = "event_time";
    config.stateful_factory = [] {
      return std::make_unique<AccumulatorProcessor>();
    };
    config.state_semantics = StateSemantics::kExactlyOnce;
    config.output_semantics = OutputSemantics::kAtLeastOnce;
    config.checkpoint_every_events = 64;
    config.backend = StateBackend::kLocal;
    config.state_dir = dir + "/state";
    config.hdfs = &hdfs;
    config.backup_every_checkpoints = 1;  // Backups always current.
    config.sink = std::make_shared<CollectingSink>();
    return config;
  };
  Pipeline::NodeConfigResolver resolver =
      [&](const ManifestNodeRecord&) -> StatusOr<NodeConfig> {
    return make_config();
  };

  const std::string manifest = dir + "/manifest";
  {
    Pipeline pipeline(&scribe, &clock);
    if (!pipeline.AddNode(make_config()).ok()) return 1;
    if (!pipeline.EnableManifest(manifest).ok()) return 1;
    TextRowCodec codec(EventSchema());
    Rng rng(7);
    for (int i = 0; i < events; ++i) {
      Row row(EventSchema(),
              {Value(clock.NowMicros()), Value(int64_t{i}),
               Value(rng.NextString(payload_bytes))});
      if (!scribe.Write("in", i % buckets, codec.Encode(row)).ok()) return 1;
    }
    auto drained = pipeline.RunUntilQuiescent(100000);
    if (!drained.ok()) {
      fprintf(stderr, "drive failed: %s\n",
              drained.status().ToString().c_str());
      return 1;
    }
  }  // "Crash": the process's pipeline is gone; disk state remains.

  // (a) Local restart: state dirs intact, recovery replays WALs + loads
  // checkpoints per shard.
  double local_restart = 0;
  {
    const double t0 = NowSeconds();
    Pipeline revived(&scribe, &clock);
    if (!revived.Recover(manifest, resolver).ok()) return 1;
    local_restart = NowSeconds() - t0;
  }

  // (b) Remote restore: the machine is lost — every shard directory is gone
  // and must be rebuilt from its HDFS backup before opening.
  double remote_restore = 0;
  {
    if (!RemoveAll(dir + "/state").ok()) return 1;
    const double t0 = NowSeconds();
    Pipeline revived(&scribe, &clock);
    if (!revived.Recover(manifest, resolver).ok()) return 1;
    remote_restore = NowSeconds() - t0;
  }

  const uint64_t backup_bytes = hdfs.UsedBytes();

  printf("  local restart  (WAL replay + checkpoint load): %8.1f ms\n",
         local_restart * 1e3);
  printf("  remote restore (HDFS pull + open):             %8.1f ms\n",
         remote_restore * 1e3);
  printf("  backup footprint on HDFS:                      %8.1f KB\n",
         backup_bytes / 1024.0);
  printf("\nshape check: remote restore costs more than local restart — the\n"
         "paper's reason to prefer same-machine recovery when the local DB\n"
         "survives, and to keep HDFS backups only as the machine-loss path.\n");

  char json[1024];
  snprintf(json, sizeof(json),
           "{\n"
           "  \"bench\": \"bench_recovery\",\n"
           "  \"smoke\": %s,\n"
           "  \"shards\": %d,\n"
           "  \"events\": %d,\n"
           "  \"payload_bytes\": %zu,\n"
           "  \"local_restart_ms\": %.3f,\n"
           "  \"remote_restore_ms\": %.3f,\n"
           "  \"hdfs_backup_bytes\": %llu\n"
           "}\n",
           smoke ? "true" : "false", buckets, events, payload_bytes,
           local_restart * 1e3, remote_restore * 1e3,
           static_cast<unsigned long long>(backup_bytes));
  const Status write = WriteFileAtomic(out_path, json);
  if (!write.ok()) {
    fprintf(stderr, "writing %s: %s\n", out_path.c_str(),
            write.ToString().c_str());
    return 1;
  }
  fprintf(stderr, "wrote %s\n", out_path.c_str());
  (void)RemoveAll(dir);
  return 0;
}

}  // namespace
}  // namespace fbstream::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_RECOVERY.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    }
  }
  return fbstream::bench::Run(smoke, out);
}
