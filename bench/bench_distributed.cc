// Distributed-mode costs, measured at the two seams the multi-process
// topology introduces:
//   * transport tax — appends through the socket Scribe transport
//     (RemoteScribe -> ScribeServer over localhost TCP, one RPC per append)
//     vs the same appends on the in-process Scribe the broker wraps.
//   * restart-to-caught-up — a worker pipeline over the remote bus is
//     stopped, a backlog accrues at the broker, and a successor recovers
//     from the durable manifest and drains back to lag zero; the paper's
//     operational question after every supervisor restart (§4.4, Fig 10).
// `--smoke` shrinks both phases for CI; `--out <path>` redirects the JSON
// (default BENCH_DISTRIBUTED.json in the working directory).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "cluster/workload.h"
#include "common/clock.h"
#include "common/fs.h"
#include "core/pipeline.h"
#include "core/recovery.h"
#include "scribe/remote.h"
#include "scribe/scribe.h"

namespace fbstream::bench {
namespace {

double NowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Run(bool smoke, const std::string& out_path) {
  const int appends = smoke ? 2'000 : 20'000;
  const size_t payload_bytes = 512;
  const int warmup_events = smoke ? 200 : 2'000;
  const int backlog_events = smoke ? 400 : 4'000;

  printf("=== Distributed mode: transport tax and restart catch-up ===\n");
  printf("(%d appends x %zuB, %d-event backlog)\n\n", appends, payload_bytes,
         warmup_events + backlog_events);

  const std::string dir = MakeTempDir("bench_distributed");
  Clock* clock = SystemClock::Get();

  // -- Part 1: append throughput, in-process vs through the socket. Both
  // paths land in the same non-persisted category family, so the delta is
  // framing + syscalls + one round trip per append.
  scribe::Scribe bus(clock);
  scribe::CategoryConfig ingest;
  ingest.name = "ingest";
  ingest.num_buckets = 1;
  if (!bus.CreateCategory(ingest).ok()) return 1;
  const std::string payload(payload_bytes, 'x');

  double inproc_per_sec = 0;
  {
    const double t0 = NowSeconds();
    for (int i = 0; i < appends; ++i) {
      if (!bus.Write("ingest", 0, payload).ok()) return 1;
    }
    inproc_per_sec = appends / (NowSeconds() - t0);
  }

  scribe::ScribeServer server(&bus);
  if (!server.Start().ok()) return 1;
  double remote_per_sec = 0;
  {
    scribe::RemoteScribe remote(clock, "127.0.0.1", server.port(),
                                "bench.ingest");
    const double t0 = NowSeconds();
    for (int i = 0; i < appends; ++i) {
      if (!remote.Write("ingest", 0, payload).ok()) return 1;
    }
    remote_per_sec = appends / (NowSeconds() - t0);
  }
  const double transport_tax = inproc_per_sec / remote_per_sec;

  printf("  in-process append:  %10.0f appends/s (%7.1f MB/s)\n",
         inproc_per_sec, inproc_per_sec * payload_bytes / 1e6);
  printf("  remote append:      %10.0f appends/s (%7.1f MB/s)\n",
         remote_per_sec, remote_per_sec * payload_bytes / 1e6);
  printf("  transport tax:      %10.1fx per-append RPC overhead\n\n",
         transport_tax);

  // -- Part 2: restart-to-caught-up. The at-least-once two-hop chain
  // (alpha: in -> mid, beta: mid -> out) runs over the remote bus exactly
  // as a noded worker does, is stopped, misses a backlog, and a successor
  // recovers through the manifest and drains to quiescence.
  using cluster::WorkloadMode;
  const WorkloadMode mode = WorkloadMode::kAtLeastOnce;
  const std::string root = dir + "/cluster";
  scribe::Scribe durable_bus(clock, root + "/bus");
  scribe::ScribeServer broker(&durable_bus);
  if (!broker.Start().ok()) return 1;
  scribe::RemoteScribe worker_bus(clock, "127.0.0.1", broker.port(),
                                  "worker.bench");
  if (!cluster::EnsureWorkloadCategories(&worker_bus, mode).ok()) return 1;
  if (!stylus::SaveManifest(root + "/manifest",
                            cluster::BuildWorkloadManifest(mode, root))
           .ok()) {
    return 1;
  }
  // The resolver owns the per-node HDFS handles the configs point into; it
  // must outlive every pipeline built from it.
  const auto resolver = cluster::MakeWorkloadResolver(mode, &worker_bus, root);
  stylus::Pipeline::Options options;
  options.idle_sleep_micros = 500;

  {  // First incarnation: process the warmup, then "die" (clean teardown —
     // the checkpoint state it leaves is what a SIGKILL leaves, minus WAL
     // tails, which recovery replays either way).
    stylus::Pipeline pipeline(&worker_bus, clock, options);
    if (!pipeline.Recover(root + "/manifest", resolver).ok()) return 1;
    if (!pipeline.Start().ok()) return 1;
    if (!cluster::AppendWorkloadInput(&worker_bus, 0, warmup_events).ok()) {
      return 1;
    }
    if (!pipeline.WaitUntilQuiescent(60'000).ok()) return 1;
    if (!pipeline.Stop().ok()) return 1;
  }

  // Backlog lands at the broker while no worker is running.
  if (!cluster::AppendWorkloadInput(&worker_bus, warmup_events,
                                    warmup_events + backlog_events)
           .ok()) {
    return 1;
  }

  double recover_ms = 0;
  double caught_up_ms = 0;
  {
    const double t0 = NowSeconds();
    stylus::Pipeline revived(&worker_bus, clock, options);
    if (!revived.Recover(root + "/manifest", resolver).ok()) return 1;
    recover_ms = (NowSeconds() - t0) * 1e3;
    if (!revived.Start().ok()) return 1;
    if (!revived.WaitUntilQuiescent(120'000).ok()) return 1;
    caught_up_ms = (NowSeconds() - t0) * 1e3;
    if (!revived.Stop().ok()) return 1;
  }

  printf("  recover (manifest + checkpoints): %8.1f ms\n", recover_ms);
  printf("  restart-to-caught-up (%4d-event backlog): %8.1f ms\n",
         backlog_events, caught_up_ms);
  printf("\nshape check: the transport tax buys process isolation (a worker\n"
         "SIGKILL can no longer take the broker down), and catch-up stays\n"
         "bounded by backlog size — the paper's case that brokered\n"
         "persistence makes node restarts routine instead of scary.\n");

  char json[1024];
  snprintf(json, sizeof(json),
           "{\n"
           "  \"bench\": \"bench_distributed\",\n"
           "  \"smoke\": %s,\n"
           "  \"appends\": %d,\n"
           "  \"payload_bytes\": %zu,\n"
           "  \"inproc_appends_per_sec\": %.0f,\n"
           "  \"remote_appends_per_sec\": %.0f,\n"
           "  \"transport_tax_x\": %.2f,\n"
           "  \"backlog_events\": %d,\n"
           "  \"recover_ms\": %.3f,\n"
           "  \"restart_to_caught_up_ms\": %.3f\n"
           "}\n",
           smoke ? "true" : "false", appends, payload_bytes, inproc_per_sec,
           remote_per_sec, transport_tax, backlog_events, recover_ms,
           caught_up_ms);
  const Status write = WriteFileAtomic(out_path, json);
  if (!write.ok()) {
    fprintf(stderr, "writing %s: %s\n", out_path.c_str(),
            write.ToString().c_str());
    return 1;
  }
  fprintf(stderr, "wrote %s\n", out_path.c_str());
  broker.Stop();
  server.Stop();
  (void)RemoveAll(dir);
  return 0;
}

}  // namespace
}  // namespace fbstream::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_DISTRIBUTED.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    }
  }
  return fbstream::bench::Run(smoke, out);
}
