// Fault-recovery experiment (§4.4.2 graceful degradation): a Scribe ->
// Stylus counter pipeline is run twice over the same 2,000-event input —
// once fault-free, once under a seeded chaos schedule (probabilistic
// transport/WAL faults, shard crashes, and a timed HDFS outage window).
// Reports per-layer retry activity, degraded-mode accounting, duplicate
// amplification from at-least-once replay, and whether exactly-once state
// converged to the fault-free result.

#include <chrono>
#include <cstdio>
#include <set>

#include "common/fault.h"
#include "common/fs.h"
#include "common/rng.h"
#include "common/serde.h"
#include "core/node.h"
#include "core/processor.h"
#include "core/sink.h"
#include "scribe/scribe.h"
#include "storage/hdfs/hdfs.h"

namespace fbstream::bench {
namespace {

using stylus::BackupHealth;
using stylus::NodeConfig;
using stylus::NodeShard;

double NowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SchemaPtr InputSchema() {
  return Schema::Make(
      {{"event_time", ValueType::kInt64}, {"id", ValueType::kInt64}});
}

SchemaPtr OutputSchema() {
  return Schema::Make(
      {{"kind", ValueType::kString}, {"value", ValueType::kInt64}});
}

class TracingCounter : public stylus::StatefulProcessor {
 public:
  void Process(const stylus::Event& event, std::vector<Row>* out) override {
    ++count_;
    out->push_back(Row(
        OutputSchema(), {Value("id"), Value(event.row.Get("id").CoerceInt64())}));
  }
  void OnCheckpoint(Micros, std::vector<Row>* out) override {
    out->push_back(Row(OutputSchema(), {Value("count"), Value(count_)}));
  }
  std::string SerializeState() const override { return std::to_string(count_); }
  Status RestoreState(std::string_view data) override {
    count_ = strtoll(std::string(data).c_str(), nullptr, 10);
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
};

constexpr int kEvents = 2000;
constexpr Micros kOutageStart = 1'400'000;
constexpr Micros kOutageEnd = 2'200'000;
constexpr Micros kLastCrash = 1'800'000;

struct Outcome {
  int64_t final_count = 0;
  size_t distinct_ids = 0;
  size_t rows_delivered = 0;
  uint64_t crashes = 0;
  uint64_t rounds = 0;
  uint64_t faults_fired = 0;
  double wall_seconds = 0;
  BackupHealth health;
  RetryPolicy::StatsSnapshot scribe_retries;
};

Outcome RunOnce(uint64_t seed, bool inject) {
  SimClock clock(1'000'000);
  auto* faults = FaultRegistry::Global();
  faults->Reset();
  faults->SetClock(&clock);
  if (inject) {
    faults->FailWithProbability("scribe.append", 0.05, seed);
    faults->FailWithProbability("lsm.wal.append", 0.02, seed + 1);
    faults->SetUnavailableBetween("hdfs.write", kOutageStart, kOutageEnd);
  }

  const std::string dir = MakeTempDir("bench_fault");
  hdfs::HdfsCluster hdfs(dir + "/hdfs");
  scribe::Scribe scribe(&clock);
  scribe::CategoryConfig cat;
  cat.name = "in";
  (void)scribe.CreateCategory(cat);

  auto sink = std::make_shared<stylus::CollectingSink>();
  NodeConfig config;
  config.name = "counter";
  config.input_category = "in";
  config.input_schema = InputSchema();
  config.event_time_column = "event_time";
  config.stateful_factory = [] { return std::make_unique<TracingCounter>(); };
  config.state_semantics = stylus::StateSemantics::kExactlyOnce;
  config.output_semantics = stylus::OutputSemantics::kAtLeastOnce;
  config.checkpoint_every_events = 10;
  config.backend = stylus::StateBackend::kLocal;
  config.state_dir = dir + "/state";
  config.hdfs = &hdfs;
  config.backup_every_checkpoints = 1;
  config.max_pending_backups = 8;
  config.sink = sink;
  auto shard_or = NodeShard::Create(config, &scribe, &clock, 0);
  if (!shard_or.ok()) return {};
  NodeShard* shard = shard_or->get();

  TextRowCodec codec(InputSchema());
  Rng chaos_rng(seed + 2);
  Outcome out;
  int written = 0;
  bool settled = false;
  const double t0 = NowSeconds();
  for (int round = 0; round < 20000 && !settled; ++round) {
    ++out.rounds;
    for (int k = 0; k < 10 && written < kEvents; ++k) {
      Row row(InputSchema(), {Value(clock.NowMicros()), Value(written)});
      if (scribe.Write("in", 0, codec.Encode(row)).ok()) {
        ++written;
      } else {
        break;  // Retried next round: the producer is at-least-once.
      }
    }
    if (inject && shard->alive() && clock.NowMicros() < kLastCrash &&
        chaos_rng.Bernoulli(0.1)) {
      shard->Crash();
      ++out.crashes;
    }
    if (!shard->alive()) {
      (void)shard->Recover();
    }
    auto r = shard->RunOnce();
    clock.AdvanceMicros(10'000);
    const BackupHealth h = shard->GetBackupHealth();
    settled = written == kEvents && r.ok() && r.value() == 0 && !h.degraded &&
              h.pending_backups == 0 && clock.NowMicros() > kOutageEnd;
  }
  out.wall_seconds = NowSeconds() - t0;

  out.health = shard->GetBackupHealth();
  out.scribe_retries = scribe.retry_stats();
  out.faults_fired = faults->FiringJournal().size();
  std::set<int64_t> ids;
  for (const Row& row : sink->rows()) {
    ++out.rows_delivered;
    const int64_t value = row.Get("value").CoerceInt64();
    if (row.Get("kind").ToString() == "id") {
      ids.insert(value);
    } else if (value > out.final_count) {
      out.final_count = value;
    }
  }
  out.distinct_ids = ids.size();
  faults->Reset();
  faults->SetClock(nullptr);
  (void)RemoveAll(dir);
  return out;
}

void Report(const char* label, const Outcome& o) {
  printf("%s\n", label);
  printf("  rounds / wall time:          %6llu / %.1f ms\n",
         static_cast<unsigned long long>(o.rounds), o.wall_seconds * 1e3);
  printf("  faults fired / crashes:      %6llu / %llu\n",
         static_cast<unsigned long long>(o.faults_fired),
         static_cast<unsigned long long>(o.crashes));
  printf("  scribe appends retried:      %6llu (exhausted %llu)\n",
         static_cast<unsigned long long>(o.scribe_retries.retries),
         static_cast<unsigned long long>(o.scribe_retries.exhausted));
  printf("  rows delivered (dups incl.): %6zu, distinct ids %zu / %d\n",
         o.rows_delivered, o.distinct_ids, kEvents);
  printf("  final state count:           %6lld\n",
         static_cast<long long>(o.final_count));
  printf("  backups ok/resynced/dropped: %6llu / %llu / %llu\n",
         static_cast<unsigned long long>(o.health.backups_completed),
         static_cast<unsigned long long>(o.health.backups_resynced),
         static_cast<unsigned long long>(o.health.backups_dropped));
  printf("  time in degraded mode:       %6.1f ms (sim)\n\n",
         static_cast<double>(o.health.degraded_micros_total) / 1e3);
}

void Run() {
  printf("=== §4.4.2: fault injection, retry, and degraded-mode resync ===\n");
  printf("(%d events; HDFS down for sim [%.1fs, %.1fs); seeded schedule)\n\n",
         kEvents, kOutageStart / 1e6, kOutageEnd / 1e6);

  const Outcome clean = RunOnce(/*seed=*/7, /*inject=*/false);
  const Outcome faulty = RunOnce(/*seed=*/7, /*inject=*/true);
  Report("fault-free baseline:", clean);
  Report("chaos schedule:", faulty);

  const bool converged = faulty.final_count == clean.final_count &&
                         faulty.distinct_ids == static_cast<size_t>(kEvents);
  printf("shape check: chaos run delivered every id at least once "
         "(duplicates: %zd) and\nexactly-once state %s the fault-free "
         "count; the HDFS outage was absorbed by\nthe pending-backup queue "
         "and drained on recovery.\n",
         static_cast<ssize_t>(faulty.rows_delivered) -
             static_cast<ssize_t>(clean.rows_delivered),
         converged ? "CONVERGED to" : "DIVERGED from");
}

}  // namespace
}  // namespace fbstream::bench

int main() {
  fbstream::bench::Run();
  return 0;
}
