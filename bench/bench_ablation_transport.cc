// Ablation for the paper's central design decision (§4.2, data transfer):
// persistent-store message transfer (Scribe) vs direct/tightly-coupled
// transfer (RPC with bounded buffers and back pressure).
//
// The claim under test (§4.2.2): "Performance: If one processing node is
// slow (or dies), the speed of the previous node is not affected ... In a
// tightly coupled system, back pressure is propagated upstream and the peak
// processing throughput is determined by the slowest node in the DAG."
//
// Deterministic simulation on a virtual clock: a two-node DAG where the
// producer can emit 1000 events/tick and the consumer processes 1000/tick
// but suffers an outage (or a slowdown) mid-run. Coupled transport uses a
// bounded in-flight buffer (RPC window); decoupled transport uses a real
// Scribe category.

#include <algorithm>
#include <cstdio>
#include <deque>
#include <vector>

#include "bench/workloads.h"
#include "scribe/scribe.h"

namespace fbstream::bench {
namespace {

constexpr int kTicks = 60;
constexpr int kProducerRate = 1000;   // Events the producer CAN emit per tick.
constexpr int kConsumerRate = 1000;   // Events the consumer CAN process.
constexpr int kOutageStart = 20;
constexpr int kOutageEnd = 30;        // Consumer dead during [20, 30).
constexpr size_t kRpcWindow = 2000;   // Bounded in-flight buffer (coupled).

struct SimResult {
  std::vector<int> produced_per_tick;
  std::vector<int> consumed_per_tick;
  int total_produced = 0;
  int total_consumed = 0;
  int producer_stalled_events = 0;  // Demand the producer could not emit.
};

// Tightly coupled: the producer can only emit while the RPC window has
// room; a dead consumer propagates back pressure upstream immediately.
SimResult RunCoupled() {
  SimResult result;
  std::deque<int> window;
  for (int tick = 0; tick < kTicks; ++tick) {
    int produced = 0;
    for (int i = 0; i < kProducerRate; ++i) {
      if (window.size() >= kRpcWindow) {
        ++result.producer_stalled_events;  // Back pressure: demand dropped
                                           // or blocked upstream.
        continue;
      }
      window.push_back(tick);
      ++produced;
    }
    int consumed = 0;
    const bool consumer_up = tick < kOutageStart || tick >= kOutageEnd;
    if (consumer_up) {
      while (consumed < kConsumerRate && !window.empty()) {
        window.pop_front();
        ++consumed;
      }
    }
    result.produced_per_tick.push_back(produced);
    result.consumed_per_tick.push_back(consumed);
    result.total_produced += produced;
    result.total_consumed += consumed;
  }
  return result;
}

// Decoupled: the producer writes to a persistent Scribe category at full
// speed no matter what; the consumer tails it and catches up after the
// outage (it can read faster than real time from the retained log).
SimResult RunDecoupled() {
  SimResult result;
  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig config;
  config.name = "edge";
  (void)bus.CreateCategory(config);
  scribe::Tailer tailer(&bus, "edge", 0);

  for (int tick = 0; tick < kTicks; ++tick) {
    int produced = 0;
    for (int i = 0; i < kProducerRate; ++i) {
      (void)bus.Write("edge", 0, "e");
      ++produced;
    }
    int consumed = 0;
    const bool consumer_up = tick < kOutageStart || tick >= kOutageEnd;
    if (consumer_up) {
      // Catch-up: a recovering consumer reads the backlog at up to 3x rate
      // ("they pick up processing the input stream from where they left
      // off").
      const int budget = tick >= kOutageEnd && tick < kOutageEnd + 10
                             ? kConsumerRate * 3
                             : kConsumerRate;
      while (consumed < budget) {
        auto batch = tailer.Poll(static_cast<size_t>(budget - consumed));
        if (batch.empty()) break;
        consumed += static_cast<int>(batch.size());
      }
    }
    result.produced_per_tick.push_back(produced);
    result.consumed_per_tick.push_back(consumed);
    result.total_produced += produced;
    result.total_consumed += consumed;
    clock.AdvanceMicros(kMicrosPerSecond);
  }
  return result;
}

void PrintSeries(const char* label, const std::vector<int>& series) {
  printf("  %-22s", label);
  for (int tick = 0; tick < kTicks; tick += 4) {
    printf(" %5d", series[static_cast<size_t>(tick)]);
  }
  printf("\n");
}

void Run() {
  printf("=== Ablation (§4.2): tightly coupled (RPC) vs decoupled (Scribe) "
         "transport ===\n");
  printf("(producer and consumer both rated %d events/tick; consumer dead "
         "for ticks [%d, %d); RPC window %zu)\n\n",
         kProducerRate, kOutageStart, kOutageEnd, kRpcWindow);

  const SimResult coupled = RunCoupled();
  const SimResult decoupled = RunDecoupled();

  printf("producer output per tick (every 4th tick):\n");
  PrintSeries("coupled (RPC)", coupled.produced_per_tick);
  PrintSeries("decoupled (Scribe)", decoupled.produced_per_tick);
  printf("\nconsumer throughput per tick:\n");
  PrintSeries("coupled (RPC)", coupled.consumed_per_tick);
  PrintSeries("decoupled (Scribe)", decoupled.consumed_per_tick);

  printf("\n  %-36s coupled: %-10d decoupled: %d\n",
         "events produced over the run", coupled.total_produced,
         decoupled.total_produced);
  printf("  %-36s coupled: %-10d decoupled: %d\n",
         "events the producer had to stall", coupled.producer_stalled_events,
         0);
  printf("  %-36s coupled: %-10d decoupled: %d\n",
         "events delivered by the end", coupled.total_consumed,
         decoupled.total_consumed);

  printf("\nshape check: with coupled transport the outage propagates "
         "upstream (producer stalls, events lost to back pressure);\nwith "
         "the persistent bus the producer never slows and the consumer "
         "drains the backlog after recovery.\n");
}

}  // namespace
}  // namespace fbstream::bench

int main() {
  fbstream::bench::Run();
  return 0;
}
