// Self-hosted observability demo over the Figure 9 ingest workload: events
// flow Scribe -> Stylus -> Scuba while the metrics registry and tracer watch
// every hop, and the telemetry exporter feeds the same measurements back
// through Scribe into a Scuba table (§5, §6.4 — Facebook monitors its
// streaming systems with the streaming systems themselves).
//
// The report prints:
//  1. the per-hop latency breakdown (§4.2.1: "we can identify connection
//     points where seconds of latency are introduced") from the in-process
//     registry histograms — Scribe delivery should dominate at ~1s of
//     stream time (the paper's "about a second per stream" batching),
//     with engine processing and storage commit in microseconds;
//  2. the same breakdown recomputed purely from sampled span rows that
//     round-tripped through Scribe into the Scuba telemetry table;
//  3. a differential check that the Scuba-backed lag dashboard
//     (ScubaLagView) matches MonitoringService's direct polling point for
//     point.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/workloads.h"
#include "common/fs.h"
#include "common/metrics.h"
#include "core/monitoring.h"
#include "core/pipeline.h"
#include "core/processor.h"
#include "core/sink.h"
#include "core/telemetry.h"
#include "scribe/scribe.h"
#include "storage/scuba/scuba.h"

namespace fbstream::bench {
namespace {

using stylus::MonitoringService;
using stylus::ScubaLagView;
using stylus::TelemetryExporter;

constexpr int kBuckets = 4;
constexpr int kTicks = 30;
constexpr int kEventsPerTick = 400;
constexpr uint64_t kSampleEvery = 97;  // ~1% of appends traced.

// Fig 9's processor shape: deserialize (done by the shard) and land rows in
// Scuba unchanged.
class IngestProcessor : public stylus::StatelessProcessor {
 public:
  void Process(const stylus::Event& event,
               std::vector<Row>* out) override {
    out->push_back(event.row);
  }
};

// Registry histograms are labeled per shard; merge their power-of-two
// buckets so the report shows one line per hop.
struct MergedHistogram {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t buckets[Histogram::kNumBuckets] = {};

  void Absorb(const Histogram::Snapshot& snap) {
    count += snap.count;
    sum += snap.sum;
    max = std::max(max, snap.max);
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      buckets[b] += snap.buckets[b];
    }
  }
  uint64_t Percentile(double q) const {
    if (count == 0) return 0;
    const uint64_t rank = static_cast<uint64_t>(q * double(count - 1));
    uint64_t seen = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      seen += buckets[b];
      if (seen > rank) return Histogram::BucketUpperBound(b);
    }
    return max;
  }
};

MergedHistogram MergeShards(const std::string& name, const std::string& node) {
  MergedHistogram merged;
  for (int shard = 0; shard < kBuckets; ++shard) {
    merged.Absorb(MetricsRegistry::Global()
                      ->GetHistogram(name, node, shard)
                      ->GetSnapshot());
  }
  return merged;
}

void PrintHopLine(const char* hop, const MergedHistogram& m) {
  printf("  %-24s %8" PRIu64 " %12" PRIu64 " %12" PRIu64 " %12" PRIu64 "\n",
         hop, m.count, m.Percentile(0.5), m.Percentile(0.99), m.max);
}

void Run() {
  printf("=== Observability: per-hop latency for the Fig 9 ingest workload "
         "===\n");
  printf("(%d ticks x %d events, %d buckets, 1s Scribe delivery latency, "
         "1-in-%" PRIu64 " appends traced)\n\n",
         kTicks, kEventsPerTick, kBuckets, kSampleEvery);

  MetricsRegistry::Global()->ResetValues();
  Tracer::Global()->Reset();
  Tracer::Global()->SetSampleEvery(kSampleEvery);

  SimClock clock(1);
  scribe::Scribe bus(&clock);
  scribe::CategoryConfig config;
  config.name = "events";
  config.num_buckets = kBuckets;
  // The paper's §4.2.1 connection point: Scribe batching adds ~a second.
  config.delivery_latency_micros = kMicrosPerSecond;
  (void)bus.CreateCategory(config);

  scuba::Scuba scuba(&bus);
  (void)scuba.CreateTable("scuba_events", EventsSchema());
  scuba::ScubaTable* events_table = scuba.GetTable("scuba_events");

  const std::string dir = MakeTempDir("bench_observability");
  stylus::Pipeline pipeline(&bus, &clock);
  stylus::NodeConfig node;
  node.name = "scuba_ingest";
  node.input_category = "events";
  node.input_schema = EventsSchema();
  node.event_time_column = "event_time";
  node.stateless_factory = [] { return std::make_unique<IngestProcessor>(); };
  node.backend = stylus::StateBackend::kNone;
  node.state_dir = dir + "/state";
  node.sink = std::make_shared<stylus::ScubaSink>(events_table);
  if (!pipeline.AddNode(node).ok()) {
    fprintf(stderr, "pipeline setup failed\n");
    return;
  }

  MonitoringService monitoring(&clock);
  monitoring.RegisterPipeline("ingest", &pipeline);
  TelemetryExporter exporter(&bus);
  exporter.RegisterPipeline("ingest", &pipeline);
  if (!exporter.AttachToScuba(&scuba, "telemetry").ok()) {
    fprintf(stderr, "telemetry setup failed\n");
    return;
  }
  const scuba::ScubaTable* telemetry = scuba.GetTable("telemetry");

  // Drive the workload: each tick writes a batch, advances stream time past
  // the delivery latency, runs a round, and takes one telemetry tick (direct
  // sample + export at the same instant, so the two lag views are
  // point-for-point comparable).
  EventGenerator gen;
  for (int tick = 0; tick < kTicks; ++tick) {
    for (int i = 0; i < kEventsPerTick; ++i) {
      Row row = gen.NextRow();
      const std::string key = row.Get("dim_id").ToString();
      (void)bus.WriteSharded("events", key, gen.codec().Encode(row));
    }
    clock.AdvanceMicros(kMicrosPerSecond);
    (void)pipeline.RunRound();
    monitoring.Sample();
    (void)exporter.ExportOnce();
    scuba.PollAll();
  }
  // Let the tail drain (the last batch becomes visible a second later).
  clock.AdvanceMicros(2 * kMicrosPerSecond);
  (void)pipeline.RunUntilQuiescent();
  monitoring.Sample();
  (void)exporter.ExportOnce();
  scuba.PollAll();

  // --- 1. Per-hop breakdown from the in-process registry. -----------------
  printf("per-hop latency, registry histograms merged over %d shards "
         "(micros):\n", kBuckets);
  printf("  %-24s %8s %12s %12s %12s\n", "hop", "count", "p50", "p99", "max");
  PrintHopLine("scribe.deliver_us",
               MergeShards("hop.scribe.deliver_us", "scuba_ingest"));
  PrintHopLine("engine.process_us",
               MergeShards("hop.engine.process_us", "scuba_ingest"));
  PrintHopLine("storage.commit_us",
               MergeShards("hop.storage.commit_us", "scuba_ingest"));
  printf("  (shape check: scribe.deliver p50 should sit at ~1-2s of stream "
         "time —\n   the §4.2.1 'seconds of latency' connection point; the "
         "other hops are\n   in-process and should be orders of magnitude "
         "smaller.)\n\n");

  // --- 2. Same breakdown from span rows in the Scuba telemetry table. -----
  printf("per-hop latency, Scuba query over self-ingested span rows:\n");
  printf("  %-24s %8s %12s %12s %12s\n", "hop", "count", "p50", "p99", "max");
  scuba::Query spans;
  spans.filters = {{"kind", scuba::FilterOp::kEq, Value("span")}};
  spans.group_by = {"name"};
  spans.aggregates = {
      scuba::Aggregate{scuba::AggKind::kCount},
      scuba::Aggregate{scuba::AggKind::kPercentile, "value", 0.5},
      scuba::Aggregate{scuba::AggKind::kPercentile, "value", 0.99},
      scuba::Aggregate{scuba::AggKind::kMax, "value"},
  };
  auto span_result = telemetry->Run(spans);
  if (span_result.ok()) {
    for (const scuba::ResultRow& r : span_result->rows) {
      printf("  %-24s %8.0f %12.0f %12.0f %12.0f\n",
             r.group[0].CoerceString().c_str(), r.aggregates[0],
             r.aggregates[1], r.aggregates[2], r.aggregates[3]);
    }
  }
  printf("  (hop histograms and spans both cover the 1-in-%" PRIu64
         " traced events, so counts\n   and latency shape must match the "
         "registry view above.)\n\n", kSampleEvery);

  // --- 3. Differential: Scuba-backed lag dashboard vs direct polling. -----
  ScubaLagView view(telemetry);
  uint64_t max_delta = 0;
  size_t points = 0;
  bool shape_mismatch = false;
  for (int shard = 0; shard < kBuckets; ++shard) {
    const auto direct = monitoring.History("ingest", "scuba_ingest", shard);
    const auto via_scuba = view.History("ingest", "scuba_ingest", shard);
    if (direct.size() != via_scuba.size()) {
      shape_mismatch = true;
      continue;
    }
    for (size_t i = 0; i < direct.size(); ++i) {
      if (direct[i].time != via_scuba[i].time) shape_mismatch = true;
      const uint64_t a = direct[i].lag_messages;
      const uint64_t b = via_scuba[i].lag_messages;
      max_delta = std::max(max_delta, a > b ? a - b : b - a);
      ++points;
    }
  }
  printf("lag dashboard differential (MonitoringService vs ScubaLagView):\n");
  printf("  %zu points across %d shards, max |delta| = %" PRIu64
         " messages%s\n",
         points, kBuckets, max_delta,
         shape_mismatch ? "  [SERIES SHAPE MISMATCH]" : "");
  printf("  (both modes read the same sampled instants, so the delta should "
         "be exactly 0.)\n\n");

  // Totals, including the telemetry stream metering itself.
  uint64_t processed = 0;
  for (int shard = 0; shard < kBuckets; ++shard) {
    processed += MetricsRegistry::Global()
                     ->GetCounter("stylus.events.processed", "scuba_ingest",
                                  shard)
                     ->value();
  }
  printf("totals: %" PRIu64 " events processed, %zu rows in scuba_events, "
         "%" PRIu64 " telemetry rows exported,\n        %" PRIu64
         " spans recorded (%" PRIu64 " dropped), telemetry appends metered "
         "at %" PRIu64 " messages\n",
         processed, events_table->num_rows(), exporter.rows_exported(),
         Tracer::Global()->spans_recorded(), Tracer::Global()->spans_dropped(),
         MetricsRegistry::Global()
             ->GetCounter("scribe.append.messages",
                          stylus::kDefaultTelemetryCategory)
             ->value());

  Tracer::Global()->Reset();
  (void)RemoveAll(dir);
}

}  // namespace
}  // namespace fbstream::bench

int main() {
  fbstream::bench::Run();
  return 0;
}
