// Supports Figures 10 and 11 (§4.4.2): recovery paths of the two Stylus
// state-saving mechanisms, timed.
//   * local DB, process restart   — reopen the embedded DB on the same
//     machine (WAL replay + checkpoint load).
//   * local DB, machine loss      — restore the backup from HDFS, then open
//     ("If the machine dies, the copy on HDFS is used instead").
//   * remote DB, any failover     — nothing to load: "A remote database
//     solution also provides faster machine failover time since we do not
//     need to load the complete state to the machine upon restart."

#include <chrono>
#include <cstdio>

#include "bench/workloads.h"
#include "common/fs.h"
#include "core/checkpoint.h"
#include "storage/hdfs/hdfs.h"
#include "storage/zippydb/zippydb.h"

namespace fbstream::bench {
namespace {

double NowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Run() {
  printf("=== Figures 10/11: state-saving mechanisms — recovery time ===\n");

  const std::string dir = MakeTempDir("recovery");
  hdfs::HdfsCluster hdfs(dir + "/hdfs");

  // Build a node state of a few MB (a realistic Scorer-sized state: "the
  // overall state is small and will fit into the flash or disk of a single
  // machine").
  std::string big_state;
  Rng rng(5);
  while (big_state.size() < (8u << 20)) {
    big_state += rng.NextString(64);
  }
  printf("(state size: %zu MB)\n\n", big_state.size() >> 20);

  // Local store: write state + offset, back up to HDFS.
  {
    auto store = stylus::LocalStateStore::Open(dir + "/local", &hdfs,
                                               "backup/node");
    if (!store.ok()) return;
    (void)(*store)->SaveCheckpoint(stylus::StateSemantics::kExactlyOnce,
                                   big_state, 12345, nullptr);
    (void)(*store)->BackupToHdfs();
  }

  // Remote store: same checkpoint in ZippyDB.
  zippydb::ClusterOptions zopt;
  zopt.simulate_latency = true;
  auto cluster = zippydb::Cluster::Open(zopt, dir + "/z");
  if (!cluster.ok()) return;
  {
    stylus::RemoteStateStore store(cluster->get(), "ckpt/node");
    (void)store.SaveCheckpoint(stylus::StateSemantics::kExactlyOnce,
                               big_state, 12345, nullptr);
  }

  // (a) Process restart on the same machine: reopen local DB.
  double local_restart = 0;
  {
    const double t0 = NowSeconds();
    auto store = stylus::LocalStateStore::Open(dir + "/local", &hdfs,
                                               "backup/node");
    if (store.ok()) {
      auto cp = (*store)->Load();
      if (cp.ok() && cp->state.size() == big_state.size()) {
        local_restart = NowSeconds() - t0;
      }
    }
  }

  // (b) Machine loss: restore from HDFS, then open.
  double machine_loss = 0;
  {
    (void)RemoveAll(dir + "/local");
    const double t0 = NowSeconds();
    (void)stylus::LocalStateStore::RestoreFromHdfs(&hdfs, "backup/node",
                                                   dir + "/local");
    auto store = stylus::LocalStateStore::Open(dir + "/local", &hdfs,
                                               "backup/node");
    if (store.ok()) {
      auto cp = (*store)->Load();
      if (cp.ok() && cp->state.size() == big_state.size()) {
        machine_loss = NowSeconds() - t0;
      }
    }
  }

  // (c) Remote DB failover: a new machine only reads the checkpoint row.
  double remote_failover = 0;
  {
    const double t0 = NowSeconds();
    stylus::RemoteStateStore store(cluster->get(), "ckpt/node");
    auto cp = store.Load();
    if (cp.ok() && cp->state.size() == big_state.size()) {
      remote_failover = NowSeconds() - t0;
    }
  }

  printf("  local DB, process restart (WAL/SST reload):   %8.1f ms\n",
         local_restart * 1e3);
  printf("  local DB, machine loss (HDFS restore + open): %8.1f ms\n",
         machine_loss * 1e3);
  printf("  remote DB, failover (read checkpoint row):    %8.1f ms\n",
         remote_failover * 1e3);
  printf("\nshape check: machine-loss recovery > same-machine restart; "
         "remote failover avoids bulk state loading entirely\n"
         "(the remote model instead pays per-event read/write costs during "
         "normal processing — see Figure 12).\n");
  (void)RemoveAll(dir);
}

}  // namespace
}  // namespace fbstream::bench

int main() {
  fbstream::bench::Run();
  return 0;
}
