// Microbenchmarks for the embedded LSM store (the RocksDB stand-in that
// Laser, ZippyDB, and Stylus local state build on): puts, gets, merges,
// scans, and WAL recovery.
//
// Besides the google-benchmark microbenches, `bench_lsm --mixed` runs the
// canonical multi-threaded mixed workload (94% skewed gets / 5% puts / 1%
// short scans, closed loop, plus a rate-limited ingest writer) and writes
// BENCH_LSM.json comparing the concurrent engine against the frozen
// numbers of the pre-rewrite single-mutex engine. `--smoke` shrinks the
// preload and phase durations for CI; `--out <path>` redirects the JSON.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string_view>
#include <thread>

#include "common/fs.h"
#include "common/rng.h"
#include "storage/lsm/block_cache.h"
#include "storage/lsm/db.h"
#include "storage/lsm/merge_operator.h"

namespace fbstream::lsm {
namespace {

std::unique_ptr<Db> FreshDb(const std::string& dir, bool with_merge = false) {
  DbOptions options;
  if (with_merge) options.merge_operator = MakeInt64AddOperator();
  auto db = Db::Open(options, dir);
  return db.ok() ? std::move(db).value() : nullptr;
}

void BM_LsmPut(benchmark::State& state) {
  const std::string dir = MakeTempDir("lsmbench");
  auto db = FreshDb(dir + "/db");
  Rng rng(1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Put("key" + std::to_string(i++), "value-payload-64-bytes"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
  db.reset();
  (void)RemoveAll(dir);
}
BENCHMARK(BM_LsmPut);

void BM_LsmGetHit(benchmark::State& state) {
  const std::string dir = MakeTempDir("lsmbench");
  auto db = FreshDb(dir + "/db");
  constexpr int kKeys = 50000;
  for (int i = 0; i < kKeys; ++i) {
    (void)db->Put("key" + std::to_string(i), "value" + std::to_string(i));
  }
  (void)db->CompactAll();
  Rng rng(2);
  size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Get("key" + std::to_string(rng.Uniform(kKeys))));
    ++n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(n));
  db.reset();
  (void)RemoveAll(dir);
}
BENCHMARK(BM_LsmGetHit);

void BM_LsmGetMiss(benchmark::State& state) {
  const std::string dir = MakeTempDir("lsmbench");
  auto db = FreshDb(dir + "/db");
  for (int i = 0; i < 10000; ++i) {
    (void)db->Put("key" + std::to_string(i), "v");
  }
  (void)db->CompactAll();
  size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Get("missing" + std::to_string(n++)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(n));
  db.reset();
  (void)RemoveAll(dir);
}
BENCHMARK(BM_LsmGetMiss);

void BM_LsmMergeCounter(benchmark::State& state) {
  // The append-only write path: no read before write.
  const std::string dir = MakeTempDir("lsmbench");
  auto db = FreshDb(dir + "/db", /*with_merge=*/true);
  Rng rng(3);
  size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Merge("counter" + std::to_string(rng.Uniform(256)), "1"));
    ++n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(n));
  db.reset();
  (void)RemoveAll(dir);
}
BENCHMARK(BM_LsmMergeCounter);

void BM_LsmReadModifyWriteCounter(benchmark::State& state) {
  // The pattern merge replaces: get, add, put.
  const std::string dir = MakeTempDir("lsmbench");
  auto db = FreshDb(dir + "/db");
  Rng rng(3);
  size_t n = 0;
  for (auto _ : state) {
    const std::string key = "counter" + std::to_string(rng.Uniform(256));
    auto existing = db->Get(key);
    const int64_t value =
        existing.ok() ? strtoll(existing->c_str(), nullptr, 10) : 0;
    benchmark::DoNotOptimize(db->Put(key, std::to_string(value + 1)));
    ++n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(n));
  db.reset();
  (void)RemoveAll(dir);
}
BENCHMARK(BM_LsmReadModifyWriteCounter);

void BM_LsmScan(benchmark::State& state) {
  const std::string dir = MakeTempDir("lsmbench");
  auto db = FreshDb(dir + "/db");
  for (int i = 0; i < 20000; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%08d", i);
    (void)db->Put(key, "value");
  }
  (void)db->CompactAll();
  size_t rows = 0;
  for (auto _ : state) {
    for (auto it = db->NewIterator(); it.Valid(); it.Next()) ++rows;
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows));
  db.reset();
  (void)RemoveAll(dir);
}
BENCHMARK(BM_LsmScan);

void BM_LsmWalRecovery(benchmark::State& state) {
  // Reopen cost with an unflushed WAL of state.range(0) records.
  const std::string dir = MakeTempDir("lsmbench");
  {
    auto db = FreshDb(dir + "/db");
    for (int64_t i = 0; i < state.range(0); ++i) {
      (void)db->Put("key" + std::to_string(i), "value");
    }
  }
  for (auto _ : state) {
    auto db = Db::Open({}, dir + "/db");
    benchmark::DoNotOptimize(db);
  }
  state.counters["wal_records"] = static_cast<double>(state.range(0));
  (void)RemoveAll(dir);
}
BENCHMARK(BM_LsmWalRecovery)->Arg(1000)->Arg(10000);

// ---------------------------------------------------------------------------
// Canonical mixed workload (`--mixed`).
//
// The numbers in kBaseline below were measured by this exact harness against
// the pre-rewrite engine (one mutex across Get/Put/NewIterator, synchronous
// flush+compaction on the writer thread, whole-file SST decode) on the same
// class of machine, and are frozen here as the comparison baseline.
// ---------------------------------------------------------------------------

namespace mixed {

constexpr int kKeySpace = 200000;   // Distinct user keys.
constexpr int kHotKeys = 10000;     // 90% of point ops land here.
constexpr int kValueBytes = 128;
constexpr int kWriterOpsPerSec = 20000;  // Ingest writer rate target.
constexpr int kBurst = 64;          // Ops between stop-flag checks.
constexpr int kScanLength = 20;     // Next() calls per short scan.

std::string KeyOf(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08d", i);
  return buf;
}

int SkewedKey(Rng* rng) {
  return rng->NextDouble() < 0.9 ? static_cast<int>(rng->Uniform(kHotKeys))
                                 : static_cast<int>(rng->Uniform(kKeySpace));
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Exact to the sample set; used for p50/p99 over per-op microsecond
// latencies.
uint64_t Percentile(std::vector<uint64_t>* v, double q) {
  if (v->empty()) return 0;
  const size_t idx =
      std::min(v->size() - 1, static_cast<size_t>(q * double(v->size())));
  std::nth_element(v->begin(), v->begin() + static_cast<ptrdiff_t>(idx),
                   v->end());
  return (*v)[idx];
}

struct WorkerStats {
  uint64_t ops = 0;  // Point ops + scans.
  std::vector<uint64_t> point_latencies_us;
  std::vector<uint64_t> scan_latencies_us;
};

// Closed-loop mixed client: 94% skewed point gets, 5% uniform puts, 1%
// short scans (seek + 20 nexts through a fresh iterator).
void MixedWorker(Db* db, uint64_t seed, const std::atomic<bool>* stop,
                 WorkerStats* out) {
  Rng rng(seed);
  const std::string value(kValueBytes, 'v');
  while (!stop->load(std::memory_order_relaxed)) {
    for (int b = 0; b < kBurst; ++b) {
      const double p = rng.NextDouble();
      const uint64_t t0 = NowMicros();
      if (p < 0.94) {
        auto got = db->Get(KeyOf(SkewedKey(&rng)));
        benchmark::DoNotOptimize(got);
        out->point_latencies_us.push_back(NowMicros() - t0);
      } else if (p < 0.99) {
        (void)db->Put(KeyOf(static_cast<int>(rng.Uniform(kKeySpace))), value);
        out->point_latencies_us.push_back(NowMicros() - t0);
      } else {
        auto it = db->NewIterator();
        it.Seek(KeyOf(SkewedKey(&rng)));
        for (int k = 0; k < kScanLength && it.Valid(); ++k) it.Next();
        out->scan_latencies_us.push_back(NowMicros() - t0);
      }
      ++out->ops;
    }
  }
}

// Open-loop ingest: paces itself to kWriterOpsPerSec with 1ms sleeps, the
// shape of a Scribe tailer applying a bucket's stream.
void IngestWriter(Db* db, const std::atomic<bool>* stop, uint64_t* puts) {
  Rng rng(99);
  const std::string value(kValueBytes, 'w');
  const auto start = std::chrono::steady_clock::now();
  uint64_t n = 0;
  while (!stop->load(std::memory_order_relaxed)) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (double(n) < elapsed * kWriterOpsPerSec) {
      (void)db->Put(KeyOf(static_cast<int>(rng.Uniform(kKeySpace))), value);
      ++n;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  *puts = n;
}

struct PhaseResult {
  double seconds = 0;
  uint64_t ops = 0;
  double ops_per_sec = 0;
  uint64_t p50_us = 0, p99_us = 0;
  uint64_t scan_p50_us = 0, scan_p99_us = 0;
};

PhaseResult RunPhase(Db* db, int num_workers, bool with_ingest,
                     double seconds, uint64_t* ingest_puts,
                     double* ingest_puts_per_sec) {
  std::atomic<bool> stop{false};
  std::vector<WorkerStats> stats(static_cast<size_t>(num_workers));
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < num_workers; ++w) {
    threads.emplace_back(MixedWorker, db, 1000 + w, &stop, &stats[w]);
  }
  uint64_t puts = 0;
  std::thread ingest;
  if (with_ingest) ingest = std::thread(IngestWriter, db, &stop, &puts);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000)));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  if (ingest.joinable()) ingest.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  PhaseResult r;
  r.seconds = elapsed;
  std::vector<uint64_t> point, scan;
  for (auto& s : stats) {
    r.ops += s.ops;
    point.insert(point.end(), s.point_latencies_us.begin(),
                 s.point_latencies_us.end());
    scan.insert(scan.end(), s.scan_latencies_us.begin(),
                s.scan_latencies_us.end());
  }
  r.ops_per_sec = double(r.ops) / elapsed;
  r.p50_us = Percentile(&point, 0.5);
  r.p99_us = Percentile(&point, 0.99);
  r.scan_p50_us = Percentile(&scan, 0.5);
  r.scan_p99_us = Percentile(&scan, 0.99);
  if (ingest_puts != nullptr) *ingest_puts = puts;
  if (ingest_puts_per_sec != nullptr) *ingest_puts_per_sec = puts / elapsed;
  return r;
}

// Frozen measurements of the single-mutex engine under this harness.
struct Baseline {
  double serial_ops_per_sec = 10325;
  uint64_t serial_p50_us = 1, serial_p99_us = 22;
  uint64_t serial_scan_p50_us = 7090, serial_scan_p99_us = 10220;
  double readers4_ops_per_sec = 3827;  // 4 mixed workers, aggregate.
  uint64_t readers4_p50_us = 1, readers4_p99_us = 21237;
  uint64_t readers4_scan_p50_us = 20743, readers4_scan_p99_us = 42891;
  double ingest_puts_per_sec = 19753;
  double aggregate_ops_per_sec = 23580;  // Workers + ingest combined.
};
constexpr Baseline kBaseline;

void AppendPhaseJson(std::string* out, const char* name,
                     const PhaseResult& r) {
  char buf[512];
  snprintf(buf, sizeof(buf),
           "    \"%s\": {\"seconds\": %.2f, \"ops\": %llu, "
           "\"ops_per_sec\": %.0f, \"p50_us\": %llu, \"p99_us\": %llu, "
           "\"scan_p50_us\": %llu, \"scan_p99_us\": %llu}",
           name, r.seconds, static_cast<unsigned long long>(r.ops),
           r.ops_per_sec, static_cast<unsigned long long>(r.p50_us),
           static_cast<unsigned long long>(r.p99_us),
           static_cast<unsigned long long>(r.scan_p50_us),
           static_cast<unsigned long long>(r.scan_p99_us));
  *out += buf;
}

int RunMixedBench(bool smoke, const std::string& out_path) {
  const int preload = smoke ? 20000 : kKeySpace;
  const double serial_secs = smoke ? 1.0 : 5.0;
  const double concurrent_secs = smoke ? 1.0 : 8.0;

  const std::string dir = MakeTempDir("lsmmixed");
  auto cache = std::make_shared<BlockCache>(64u << 20);
  DbOptions options;
  options.memtable_bytes = 512 << 10;
  options.block_cache = cache;
  auto db_or = Db::Open(options, dir + "/db");
  if (!db_or.ok()) {
    fprintf(stderr, "open failed: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).value();

  fprintf(stderr, "preloading %d keys...\n", preload);
  {
    const std::string value(kValueBytes, 'p');
    for (int i = 0; i < preload; ++i) {
      (void)db->Put(KeyOf(i), value);
    }
    (void)db->CompactAll();
  }
  const Db::Stats stats0 = db->GetStats();

  fprintf(stderr, "serial mixed phase (%.0fs)...\n", serial_secs);
  const PhaseResult serial =
      RunPhase(db.get(), 1, /*with_ingest=*/false, serial_secs, nullptr,
               nullptr);

  fprintf(stderr, "concurrent phase: 4 mixed workers + ingest (%.0fs)...\n",
          concurrent_secs);
  uint64_t ingest_puts = 0;
  double ingest_rate = 0;
  const PhaseResult readers4 = RunPhase(db.get(), 4, /*with_ingest=*/true,
                                        concurrent_secs, &ingest_puts,
                                        &ingest_rate);
  const double aggregate_ops_per_sec =
      readers4.ops_per_sec + ingest_rate;

  const Db::Stats stats1 = db->GetStats();
  const auto cache_stats = cache->GetStats();
  const double lookups = double(cache_stats.hits + cache_stats.misses);
  const double hit_rate = lookups > 0 ? cache_stats.hits / lookups : 0;
  const double speedup =
      readers4.ops_per_sec / kBaseline.readers4_ops_per_sec;
  const double serial_ratio = serial.ops_per_sec / kBaseline.serial_ops_per_sec;

  fprintf(stderr,
          "serial: %.0f ops/s (baseline %.0f, ratio %.2f)\n"
          "readers4: %.0f ops/s aggregate (baseline %.0f, speedup %.2fx)\n"
          "ingest: %.0f puts/s (target %d)\n"
          "block cache hit rate: %.3f (%llu hits / %llu misses)\n"
          "flushes %llu, compactions %llu, write stalls %llu\n",
          serial.ops_per_sec, kBaseline.serial_ops_per_sec, serial_ratio,
          readers4.ops_per_sec, kBaseline.readers4_ops_per_sec, speedup,
          ingest_rate, kWriterOpsPerSec, hit_rate,
          static_cast<unsigned long long>(cache_stats.hits),
          static_cast<unsigned long long>(cache_stats.misses),
          static_cast<unsigned long long>(stats1.flushes - stats0.flushes),
          static_cast<unsigned long long>(stats1.compactions -
                                          stats0.compactions),
          static_cast<unsigned long long>(stats1.write_stalls -
                                          stats0.write_stalls));

  std::string json = "{\n  \"bench\": \"lsm_mixed\",\n";
  {
    char buf[1024];
    snprintf(buf, sizeof(buf),
             "  \"smoke\": %s,\n"
             "  \"config\": {\"key_space\": %d, \"hot_keys\": %d, "
             "\"value_bytes\": %d, \"writer_ops_per_sec\": %d, "
             "\"memtable_bytes\": %d, \"preload\": %d, "
             "\"serial_seconds\": %.0f, \"concurrent_seconds\": %.0f},\n",
             smoke ? "true" : "false", kKeySpace, kHotKeys, kValueBytes,
             kWriterOpsPerSec, 512 << 10, preload, serial_secs,
             concurrent_secs);
    json += buf;
    snprintf(
        buf, sizeof(buf),
        "  \"baseline_single_mutex\": {\n"
        "    \"serial_mixed\": {\"ops_per_sec\": %.0f, \"p50_us\": %llu, "
        "\"p99_us\": %llu, \"scan_p50_us\": %llu, \"scan_p99_us\": %llu},\n"
        "    \"readers4_mixed\": {\"ops_per_sec\": %.0f, \"p50_us\": %llu, "
        "\"p99_us\": %llu, \"scan_p50_us\": %llu, \"scan_p99_us\": %llu},\n"
        "    \"ingest_puts_per_sec\": %.0f,\n"
        "    \"aggregate_ops_per_sec\": %.0f\n"
        "  },\n",
        kBaseline.serial_ops_per_sec,
        static_cast<unsigned long long>(kBaseline.serial_p50_us),
        static_cast<unsigned long long>(kBaseline.serial_p99_us),
        static_cast<unsigned long long>(kBaseline.serial_scan_p50_us),
        static_cast<unsigned long long>(kBaseline.serial_scan_p99_us),
        kBaseline.readers4_ops_per_sec,
        static_cast<unsigned long long>(kBaseline.readers4_p50_us),
        static_cast<unsigned long long>(kBaseline.readers4_p99_us),
        static_cast<unsigned long long>(kBaseline.readers4_scan_p50_us),
        static_cast<unsigned long long>(kBaseline.readers4_scan_p99_us),
        kBaseline.ingest_puts_per_sec, kBaseline.aggregate_ops_per_sec);
    json += buf;
  }
  json += "  \"concurrent_lsm\": {\n";
  AppendPhaseJson(&json, "serial_mixed", serial);
  json += ",\n";
  AppendPhaseJson(&json, "readers4_mixed", readers4);
  json += ",\n";
  {
    char buf[1024];
    snprintf(
        buf, sizeof(buf),
        "    \"ingest_puts_per_sec\": %.0f,\n"
        "    \"aggregate_ops_per_sec\": %.0f,\n"
        "    \"block_cache\": {\"hits\": %llu, \"misses\": %llu, "
        "\"evictions\": %llu, \"hit_rate\": %.4f},\n"
        "    \"flushes\": %llu, \"compactions\": %llu, "
        "\"write_stalls\": %llu\n  },\n",
        ingest_rate, aggregate_ops_per_sec,
        static_cast<unsigned long long>(cache_stats.hits),
        static_cast<unsigned long long>(cache_stats.misses),
        static_cast<unsigned long long>(cache_stats.evictions), hit_rate,
        static_cast<unsigned long long>(stats1.flushes - stats0.flushes),
        static_cast<unsigned long long>(stats1.compactions -
                                        stats0.compactions),
        static_cast<unsigned long long>(stats1.write_stalls -
                                        stats0.write_stalls));
    json += buf;
    snprintf(buf, sizeof(buf),
             "  \"speedup_readers4_vs_baseline\": %.2f,\n"
             "  \"serial_ratio_vs_baseline\": %.2f\n}\n",
             speedup, serial_ratio);
    json += buf;
  }

  db.reset();
  (void)RemoveAll(dir);

  const Status write = WriteFileAtomic(out_path, json);
  if (!write.ok()) {
    fprintf(stderr, "writing %s: %s\n", out_path.c_str(),
            write.ToString().c_str());
    return 1;
  }
  fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace mixed

}  // namespace
}  // namespace fbstream::lsm

int main(int argc, char** argv) {
  bool mixed = false;
  bool smoke = false;
  std::string out = "BENCH_LSM.json";
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--mixed") {
      mixed = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (mixed) return fbstream::lsm::mixed::RunMixedBench(smoke, out);
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
