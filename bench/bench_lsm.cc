// Microbenchmarks for the embedded LSM store (the RocksDB stand-in that
// Laser, ZippyDB, and Stylus local state build on): puts, gets, merges,
// scans, and WAL recovery.

#include <benchmark/benchmark.h>

#include "common/fs.h"
#include "common/rng.h"
#include "storage/lsm/db.h"
#include "storage/lsm/merge_operator.h"

namespace fbstream::lsm {
namespace {

std::unique_ptr<Db> FreshDb(const std::string& dir, bool with_merge = false) {
  DbOptions options;
  if (with_merge) options.merge_operator = MakeInt64AddOperator();
  auto db = Db::Open(options, dir);
  return db.ok() ? std::move(db).value() : nullptr;
}

void BM_LsmPut(benchmark::State& state) {
  const std::string dir = MakeTempDir("lsmbench");
  auto db = FreshDb(dir + "/db");
  Rng rng(1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Put("key" + std::to_string(i++), "value-payload-64-bytes"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
  db.reset();
  (void)RemoveAll(dir);
}
BENCHMARK(BM_LsmPut);

void BM_LsmGetHit(benchmark::State& state) {
  const std::string dir = MakeTempDir("lsmbench");
  auto db = FreshDb(dir + "/db");
  constexpr int kKeys = 50000;
  for (int i = 0; i < kKeys; ++i) {
    (void)db->Put("key" + std::to_string(i), "value" + std::to_string(i));
  }
  (void)db->CompactAll();
  Rng rng(2);
  size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Get("key" + std::to_string(rng.Uniform(kKeys))));
    ++n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(n));
  db.reset();
  (void)RemoveAll(dir);
}
BENCHMARK(BM_LsmGetHit);

void BM_LsmGetMiss(benchmark::State& state) {
  const std::string dir = MakeTempDir("lsmbench");
  auto db = FreshDb(dir + "/db");
  for (int i = 0; i < 10000; ++i) {
    (void)db->Put("key" + std::to_string(i), "v");
  }
  (void)db->CompactAll();
  size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Get("missing" + std::to_string(n++)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(n));
  db.reset();
  (void)RemoveAll(dir);
}
BENCHMARK(BM_LsmGetMiss);

void BM_LsmMergeCounter(benchmark::State& state) {
  // The append-only write path: no read before write.
  const std::string dir = MakeTempDir("lsmbench");
  auto db = FreshDb(dir + "/db", /*with_merge=*/true);
  Rng rng(3);
  size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Merge("counter" + std::to_string(rng.Uniform(256)), "1"));
    ++n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(n));
  db.reset();
  (void)RemoveAll(dir);
}
BENCHMARK(BM_LsmMergeCounter);

void BM_LsmReadModifyWriteCounter(benchmark::State& state) {
  // The pattern merge replaces: get, add, put.
  const std::string dir = MakeTempDir("lsmbench");
  auto db = FreshDb(dir + "/db");
  Rng rng(3);
  size_t n = 0;
  for (auto _ : state) {
    const std::string key = "counter" + std::to_string(rng.Uniform(256));
    auto existing = db->Get(key);
    const int64_t value =
        existing.ok() ? strtoll(existing->c_str(), nullptr, 10) : 0;
    benchmark::DoNotOptimize(db->Put(key, std::to_string(value + 1)));
    ++n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(n));
  db.reset();
  (void)RemoveAll(dir);
}
BENCHMARK(BM_LsmReadModifyWriteCounter);

void BM_LsmScan(benchmark::State& state) {
  const std::string dir = MakeTempDir("lsmbench");
  auto db = FreshDb(dir + "/db");
  for (int i = 0; i < 20000; ++i) {
    char key[16];
    snprintf(key, sizeof(key), "k%08d", i);
    (void)db->Put(key, "value");
  }
  (void)db->CompactAll();
  size_t rows = 0;
  for (auto _ : state) {
    for (auto it = db->NewIterator(); it.Valid(); it.Next()) ++rows;
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows));
  db.reset();
  (void)RemoveAll(dir);
}
BENCHMARK(BM_LsmScan);

void BM_LsmWalRecovery(benchmark::State& state) {
  // Reopen cost with an unflushed WAL of state.range(0) records.
  const std::string dir = MakeTempDir("lsmbench");
  {
    auto db = FreshDb(dir + "/db");
    for (int64_t i = 0; i < state.range(0); ++i) {
      (void)db->Put("key" + std::to_string(i), "value");
    }
  }
  for (auto _ : state) {
    auto db = Db::Open({}, dir + "/db");
    benchmark::DoNotOptimize(db);
  }
  state.counters["wal_records"] = static_cast<double>(state.range(0));
  (void)RemoveAll(dir);
}
BENCHMARK(BM_LsmWalRecovery)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace fbstream::lsm

BENCHMARK_MAIN();
