#ifndef FBSTREAM_BENCH_WORKLOADS_H_
#define FBSTREAM_BENCH_WORKLOADS_H_

// Synthetic workload generators shared by the benchmark binaries. These
// stand in for Facebook's production event firehose (see DESIGN.md
// substitutions): the experiments depend on stream *statistics* — event
// rate, dimension fan-out, topic skew, lateness — all exposed here as
// parameters.

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/value.h"

namespace fbstream::bench {

// Schema of the synthetic "events" stream used across benches: the shape of
// the paper's Section 3 example input (event type, dimension id, text).
inline SchemaPtr EventsSchema() {
  static const SchemaPtr* kSchema = new SchemaPtr(
      Schema::Make({{"event_time", ValueType::kInt64},
                    {"event_type", ValueType::kString},
                    {"dim_id", ValueType::kInt64},
                    {"text", ValueType::kString}}));
  return *kSchema;
}

struct EventGenOptions {
  uint64_t seed = 42;
  int num_event_types = 8;
  int num_dims = 1000;
  int num_topics = 50;       // Topic words embedded in text, zipf-skewed.
  double topic_skew = 0.99;
  size_t text_bytes = 120;   // Payload padding, sets average row size.
  Micros start_time = 0;
  Micros time_step = 1000;   // Event-time spacing.
  double late_fraction = 0.05;
  Micros max_lateness = 5 * kMicrosPerSecond;
};

class EventGenerator {
 public:
  explicit EventGenerator(EventGenOptions options = {})
      : options_(options),
        rng_(options.seed),
        zipf_(options.num_topics, options.topic_skew),
        codec_(EventsSchema()) {}

  // Next event row; event times advance by time_step with occasional
  // lateness jitter.
  Row NextRow() {
    Micros t = options_.start_time + next_index_ * options_.time_step;
    if (rng_.Bernoulli(options_.late_fraction)) {
      t -= static_cast<Micros>(rng_.Uniform(
          static_cast<uint64_t>(options_.max_lateness)));
      if (t < 0) t = 0;
    }
    ++next_index_;
    const std::string topic =
        "topic" + std::to_string(zipf_.Sample(&rng_));
    std::string text = "post about #" + topic + " ";
    while (text.size() < options_.text_bytes) {
      text += rng_.NextString(8);
      text.push_back(' ');
    }
    return Row(EventsSchema(),
               {Value(t),
                Value("type" + std::to_string(rng_.Uniform(
                                   options_.num_event_types))),
                Value(static_cast<int64_t>(rng_.Uniform(options_.num_dims))),
                Value(std::move(text))});
  }

  std::string NextPayload() { return codec_.Encode(NextRow()); }

  const TextRowCodec& codec() const { return codec_; }

 private:
  EventGenOptions options_;
  Rng rng_;
  Zipf zipf_;
  TextRowCodec codec_;
  uint64_t next_index_ = 0;
};

// Renders a two-column "paper vs measured" line for experiment reports.
inline std::string ReportLine(const std::string& label,
                              const std::string& paper,
                              const std::string& measured) {
  char buf[160];
  snprintf(buf, sizeof(buf), "  %-44s paper: %-18s measured: %s",
           label.c_str(), paper.c_str(), measured.c_str());
  return buf;
}

}  // namespace fbstream::bench

#endif  // FBSTREAM_BENCH_WORKLOADS_H_
