// Ablation for §4.5.2's backfill optimization: "The batch binary for monoid
// processors can be optimized to do partial aggregation in the map phase."
// Runs the same monoid backfill job over the same Hive partitions with the
// map-side combiner on and off, comparing shuffle volume and wall time.

#include <chrono>
#include <cstdio>

#include "bench/workloads.h"
#include "common/fs.h"
#include "core/batch.h"
#include "core/processor.h"
#include "storage/hive/hive.h"

namespace fbstream::bench {
namespace {

constexpr int kRowsPerDay = 30000;
constexpr int kDays = 3;
constexpr int kTopics = 40;

double NowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class TopicCounter : public stylus::MonoidProcessor {
 public:
  TopicCounter() : agg_(stylus::MakeInt64SumAggregator()) {}
  void Process(const stylus::Event& event,
               std::vector<Contribution>* contributions) override {
    // Count by topic word embedded in the text.
    const std::string text = event.row.Get("text").ToString();
    const size_t pos = text.find('#');
    const size_t end = text.find(' ', pos);
    contributions->emplace_back(
        pos == std::string::npos ? "none"
                                 : text.substr(pos, end - pos),
        "1");
  }
  const stylus::MonoidAggregator& aggregator() const override { return *agg_; }

 private:
  std::unique_ptr<stylus::MonoidAggregator> agg_;
};

void Run() {
  printf("=== Ablation (§4.5.2): map-side partial aggregation in monoid "
         "backfill ===\n");
  printf("(%d days x %d rows, ~%d distinct topics)\n\n", kDays, kRowsPerDay,
         kTopics);

  const std::string dir = MakeTempDir("combiner");
  hive::Hive hive(dir + "/hive");
  (void)hive.CreateTable("events", EventsSchema());
  EventGenOptions gen_options;
  gen_options.num_topics = kTopics;
  EventGenerator gen(gen_options);
  std::vector<std::string> partitions;
  for (int day = 0; day < kDays; ++day) {
    std::vector<Row> rows;
    rows.reserve(kRowsPerDay);
    for (int i = 0; i < kRowsPerDay; ++i) rows.push_back(gen.NextRow());
    const std::string ds = "day" + std::to_string(day);
    (void)hive.WritePartition("events", ds, rows);
    (void)hive.LandPartition("events", ds);
    partitions.push_back(ds);
  }

  auto agg = stylus::MakeInt64SumAggregator();
  auto factory = [] { return std::make_unique<TopicCounter>(); };

  for (const bool combine : {false, true}) {
    hive::MapReduceCounters counters;
    const double start = NowSeconds();
    auto result = stylus::RunMonoidBatch(hive, "events", partitions, factory,
                                         *agg, EventsSchema(), "event_time",
                                         &counters, combine);
    const double secs = NowSeconds() - start;
    if (!result.ok()) {
      fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return;
    }
    printf("  combiner %-4s  %8.3f s   map outputs %-8llu shuffle records "
           "%-8llu groups %llu\n",
           combine ? "ON" : "OFF", secs,
           static_cast<unsigned long long>(counters.map_output_records),
           static_cast<unsigned long long>(counters.shuffle_records),
           static_cast<unsigned long long>(counters.reduce_groups));
  }
  printf("\nshape check: the combiner collapses the shuffle from one record "
         "per input row to one per (reducer, topic),\nexactly the \"partial "
         "aggregation in the map phase\" the paper credits to monoid "
         "processors.\n");
  (void)RemoveAll(dir);
}

}  // namespace
}  // namespace fbstream::bench

int main() {
  fbstream::bench::Run();
  return 0;
}
